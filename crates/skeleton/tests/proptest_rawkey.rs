//! Property tests for the raw-shape-key soundness contract.
//!
//! The parse cache in `sqlog-core` relies on one invariant: **equal raw
//! keys imply equal query templates** (equal (SFC, SWC, SSC) triples and
//! fingerprints) — literals, whitespace, case and comments must never
//! reach the key, and nothing *else* may be erased by it. These tests
//! generate statement pairs that differ only in literals (same key
//! required) and pairs with perturbed spacing/casing/comments (same key
//! required), then assert the templates agree whenever the keys do.

use proptest::prelude::*;
use sqlog_skeleton::{raw_shape_scan, QueryTemplate, RawKey, RawLiteral};
use sqlog_sql::parse_query;

#[derive(Debug, Clone)]
enum Shape {
    PointLookup,
    Window,
    StringFilter,
    InListLookup,
    LikeAndBetween,
    NegatedNumber,
    EscapedString,
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    prop_oneof![
        Just(Shape::PointLookup),
        Just(Shape::Window),
        Just(Shape::StringFilter),
        Just(Shape::InListLookup),
        Just(Shape::LikeAndBetween),
        Just(Shape::NegatedNumber),
        Just(Shape::EscapedString),
    ]
}

fn render(shape: &Shape, a: u64, b: u64, s: &str) -> String {
    match shape {
        Shape::PointLookup => format!("SELECT x FROM t WHERE id = {a}"),
        Shape::Window => format!("SELECT x FROM t WHERE h >= {a} AND h <= {}", a + b),
        Shape::StringFilter => format!("SELECT x FROM t WHERE name = '{s}'"),
        Shape::InListLookup => format!("SELECT x FROM t WHERE id IN ({a}, {b})"),
        Shape::LikeAndBetween => {
            format!("SELECT x FROM t WHERE s LIKE '{s}%' AND r BETWEEN {a} AND {b}")
        }
        Shape::NegatedNumber => format!("SELECT x FROM t WHERE z = -{a}"),
        Shape::EscapedString => format!("SELECT x FROM t WHERE name = '{s}''{s}'"),
    }
}

fn key_of(sql: &str) -> (RawKey, Vec<RawLiteral>) {
    let mut lits = Vec::new();
    let key = raw_shape_scan(sql, &mut lits).expect("generated SQL must be keyable");
    (key, lits)
}

/// Whitespace/comment/case perturbations that must not change the key.
/// Index selects the variant, so shrinking stays meaningful.
fn perturb(sql: &str, variant: u8) -> String {
    match variant % 4 {
        0 => sql.replace(' ', "  \t "),
        1 => format!(
            "  /* c */ {} -- trail",
            sql.replace(" WHERE ", " /*x*/ wHeRe ")
        ),
        2 => sql.to_string(),
        _ => sql.replace(" = ", "="),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Statements of one shape differing only in literal values share a
    /// raw key, and — the cache's soundness direction — produce identical
    /// query-template triples and literal spans covering exactly the
    /// varying text.
    #[test]
    fn equal_keys_imply_equal_templates(
        shape in shape_strategy(),
        a1 in 0u64..1_000_000, b1 in 0u64..1_000,
        a2 in 0u64..1_000_000, b2 in 0u64..1_000,
        s1 in "[a-z]{1,8}", s2 in "[a-z]{1,8}",
    ) {
        let sql1 = render(&shape, a1, b1, &s1);
        let sql2 = render(&shape, a2, b2, &s2);
        let (k1, lits1) = key_of(&sql1);
        let (k2, lits2) = key_of(&sql2);
        prop_assert_eq!(k1, k2, "literals leaked into the key");
        prop_assert_eq!(lits1.len(), lits2.len());

        let t1 = QueryTemplate::of_query(&parse_query(&sql1).unwrap());
        let t2 = QueryTemplate::of_query(&parse_query(&sql2).unwrap());
        prop_assert!(t1.similar(&t2));
        prop_assert_eq!(t1.fingerprint, t2.fingerprint);
        prop_assert_eq!(&t1.full, &t2.full);

        // Recorded spans must slice cleanly out of their statement.
        for (lit, sql) in lits1.iter().map(|l| (l, &sql1)).chain(lits2.iter().map(|l| (l, &sql2))) {
            prop_assert!(lit.text(sql).is_some());
        }
    }

    /// Whitespace, comments and keyword/identifier case never reach the key.
    #[test]
    fn key_ignores_whitespace_comments_and_case(
        shape in shape_strategy(),
        a in 0u64..1_000_000, b in 0u64..1_000, s in "[a-z]{1,8}",
        variant in 0u8..4,
    ) {
        let sql = render(&shape, a, b, &s);
        let noisy = perturb(&sql, variant);
        let (k1, _) = key_of(&sql);
        let (k2, _) = key_of(&noisy);
        prop_assert_eq!(k1, k2, "perturbation changed the key: {}", noisy);
    }

    /// Different shapes never share a key (the key may be finer than
    /// template equality, but for these shapes it must separate them).
    #[test]
    fn different_shapes_get_different_keys(
        a in 0u64..1_000_000, b in 0u64..1_000, s in "[a-z]{1,8}",
    ) {
        // EscapedString is omitted: it is *supposed* to share a key with
        // StringFilter (both are `name = <str>`; the escape only affects
        // the recorded span, not the shape).
        let shapes = [
            Shape::PointLookup,
            Shape::Window,
            Shape::StringFilter,
            Shape::InListLookup,
            Shape::LikeAndBetween,
            Shape::NegatedNumber,
        ];
        let keys: Vec<RawKey> = shapes
            .iter()
            .map(|sh| key_of(&render(sh, a, b, &s)).0)
            .collect();
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                prop_assert_ne!(keys[i], keys[j], "shapes {} and {} collide", i, j);
            }
        }
    }
}
