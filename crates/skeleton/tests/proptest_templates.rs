//! Property tests for skeleton/template invariants (Defs. 2–6).

use proptest::prelude::*;
use sqlog_skeleton::{normalize_sql_text, QueryTemplate};
use sqlog_sql::parse_query;

/// A template shape with holes for constants.
#[derive(Debug, Clone)]
enum Shape {
    PointLookup,
    Window,
    TwoPredicates,
    StringFilter,
    InListLookup,
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    prop_oneof![
        Just(Shape::PointLookup),
        Just(Shape::Window),
        Just(Shape::TwoPredicates),
        Just(Shape::StringFilter),
        Just(Shape::InListLookup),
    ]
}

fn render(shape: &Shape, a: u64, b: u64, s: &str) -> String {
    match shape {
        Shape::PointLookup => format!("SELECT x FROM t WHERE id = {a}"),
        Shape::Window => {
            format!("SELECT x FROM t WHERE h >= {a} AND h <= {}", a + b)
        }
        Shape::TwoPredicates => {
            format!("SELECT x, y FROM t WHERE id = {a} AND r > {b}")
        }
        Shape::StringFilter => format!("SELECT x FROM t WHERE name = '{s}'"),
        Shape::InListLookup => format!("SELECT x FROM t WHERE id IN ({a}, {b})"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Def. 6: two instances of one shape are similar — equal skeletons,
    /// equal fingerprints — no matter the constants.
    #[test]
    fn same_shape_same_template(
        shape in shape_strategy(),
        a1 in 0u64..1_000_000, b1 in 0u64..1_000,
        a2 in 0u64..1_000_000, b2 in 0u64..1_000,
        s1 in "[a-z]{1,8}", s2 in "[a-z]{1,8}",
    ) {
        let q1 = parse_query(&render(&shape, a1, b1, &s1)).unwrap();
        let q2 = parse_query(&render(&shape, a2, b2, &s2)).unwrap();
        let t1 = QueryTemplate::of_query(&q1);
        let t2 = QueryTemplate::of_query(&q2);
        prop_assert!(t1.similar(&t2));
        prop_assert_eq!(t1.fingerprint, t2.fingerprint);
        prop_assert_eq!(&t1.full, &t2.full);
    }

    /// Different shapes never collide on the skeleton text.
    #[test]
    fn different_shapes_different_templates(
        a in 0u64..1_000_000, b in 0u64..1_000, s in "[a-z]{1,8}",
    ) {
        let shapes = [
            Shape::PointLookup,
            Shape::Window,
            Shape::TwoPredicates,
            Shape::StringFilter,
            Shape::InListLookup,
        ];
        let templates: Vec<QueryTemplate> = shapes
            .iter()
            .map(|sh| QueryTemplate::of_query(&parse_query(&render(sh, a, b, &s)).unwrap()))
            .collect();
        for i in 0..templates.len() {
            for j in (i + 1)..templates.len() {
                prop_assert_ne!(&templates[i].full, &templates[j].full);
                prop_assert!(!templates[i].similar(&templates[j]));
            }
        }
    }

    /// Template construction is idempotent over the printed form: printing
    /// the query and re-templating yields the same template.
    #[test]
    fn template_stable_under_printing(
        shape in shape_strategy(),
        a in 0u64..1_000_000, b in 0u64..1_000, s in "[a-z]{1,8}",
    ) {
        let q = parse_query(&render(&shape, a, b, &s)).unwrap();
        let t1 = QueryTemplate::of_query(&q);
        let q2 = parse_query(&q.to_string()).unwrap();
        let t2 = QueryTemplate::of_query(&q2);
        prop_assert_eq!(t1, t2);
    }

    /// Text normalization is idempotent and case/whitespace-insensitive
    /// outside string literals.
    #[test]
    fn normalization_idempotent(sql in ".{0,120}") {
        let once = normalize_sql_text(&sql);
        let twice = normalize_sql_text(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn normalization_collapses_case_and_space(
        shape in shape_strategy(),
        a in 0u64..1_000_000, b in 0u64..1_000, s in "[a-z]{1,8}",
    ) {
        let sql = render(&shape, a, b, &s);
        let spaced = sql.replace(' ', "   ");
        let upper = sql.to_uppercase();
        prop_assert_eq!(
            normalize_sql_text(&sql),
            normalize_sql_text(&spaced)
        );
        // Upper-casing is only safe when no string literal is involved.
        if !matches!(shape, Shape::StringFilter) {
            prop_assert_eq!(
                normalize_sql_text(&sql),
                normalize_sql_text(&upper)
            );
        }
    }
}
