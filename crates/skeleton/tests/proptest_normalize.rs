//! Property tests for the streaming-normalization contracts the dedup
//! prefilter rests on.
//!
//! Two invariants, over arbitrary (including hostile) byte soup:
//!
//! 1. **Streaming fingerprint fidelity**: `text_fingerprint` (one
//!    allocation-free pass) equals hashing the string built by
//!    `normalize_sql_text` — the two must be the same function forever.
//! 2. **Shape-key soundness**: `dedup_shape_scan` factors through
//!    `normalize_sql_text`. Since normalization is idempotent, it is enough
//!    to check `shape(s) == shape(normalize(s))` per input: for any pair
//!    with `normalize(a) == normalize(b)` it then follows that
//!    `shape(a) == shape(b)`, i.e. bucketing by shape never separates true
//!    duplicates.

use proptest::prelude::*;
use sqlog_skeleton::{dedup_shape_scan, normalize_sql_text, text_fingerprint, Fingerprint};

/// Fragments that concatenate into adversarial pseudo-SQL: comment openers
/// without closers, stray quotes, trailing semicolons, multi-byte text,
/// numbers glued to words — everything the scanners must agree on.
fn fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("SELECT ".to_string()),
        Just("x".to_string()),
        Just("T2".to_string()),
        Just(" ".to_string()),
        Just("\t\n".to_string()),
        Just(";".to_string()),
        Just("; ".to_string()),
        Just("--c".to_string()),
        Just("--c\n".to_string()),
        Just("/*b*/".to_string()),
        Just("/* /* nested? */".to_string()),
        Just("/*open".to_string()),
        Just("'lit'".to_string()),
        Just("'it''s'".to_string()),
        Just("'open".to_string()),
        Just("''".to_string()),
        Just("'".to_string()),
        Just("= 12".to_string()),
        Just("0x1F".to_string()),
        Just("1.5e-3".to_string()),
        Just("1e+5".to_string()),
        Just(".5".to_string()),
        Just("-7".to_string()),
        Just("größe".to_string()),
        Just("¡α!".to_string()),
        Just("[A  B]".to_string()),
        Just("@v".to_string()),
        "[ -~]{0,6}".prop_map(|s| s),
    ]
}

fn soup() -> impl Strategy<Value = String> {
    prop::collection::vec(fragment(), 0..12).prop_map(|v| v.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn streaming_fingerprint_equals_string_fingerprint(sql in soup()) {
        prop_assert_eq!(
            text_fingerprint(&sql),
            Fingerprint::of_str(&normalize_sql_text(&sql)),
            "streaming fingerprint diverged for {:?}", sql
        );
    }

    #[test]
    fn normalization_is_idempotent(sql in soup()) {
        let once = normalize_sql_text(&sql);
        prop_assert_eq!(normalize_sql_text(&once), once.clone(),
            "normalize not idempotent for {:?}", sql);
    }

    #[test]
    fn shape_key_factors_through_normalization(sql in soup()) {
        prop_assert_eq!(
            dedup_shape_scan(&sql),
            dedup_shape_scan(&normalize_sql_text(&sql)),
            "shape key not normalize-invariant for {:?}", sql
        );
    }
}
