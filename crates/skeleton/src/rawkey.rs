//! Raw shape keys: the Level-1 parse-cache key.
//!
//! [`raw_shape_scan`] makes one allocation-free pass over a statement's raw
//! bytes and produces a [`RawKey`]: an FNV-1a hash of the *normalized byte
//! stream* (whitespace and comments collapsed, words lower-cased, literals
//! replaced by placeholder bytes) plus the stream length and the literal
//! count. Two statements with equal keys lex to the same token sequence
//! modulo literal text, so they parse to the same AST shape and therefore
//! the same [`crate::QueryTemplate`] — that is the soundness property the
//! parse cache in `sqlog-core` relies on (and property tests pin down).
//!
//! The scan mirrors the `sqlog-sql` lexer's token boundaries exactly:
//!
//! * whitespace and comments become at most one separator byte, emitted
//!   only where the neighboring bytes could otherwise fuse into a
//!   different token (`a b` vs `ab`, `< =` vs `<=`);
//! * numbers (including hex, decimal and exponent forms) collapse to
//!   [`RAW_NUM`], strings to [`RAW_STR`] — their source spans are recorded
//!   in `literals` so the cache can re-extract literal-dependent facts
//!   without re-parsing;
//! * `[x]`- and `"x"`-quoted identifiers normalize to one delimiter pair
//!   ([`RAW_QUOTE_OPEN`] / [`RAW_QUOTE_CLOSE`]) so they never collide with
//!   unquoted words (a quoted keyword is not a keyword);
//! * lexer-level foldings are reproduced: `==` emits `=`, both `<>` and
//!   `!=` emit `<>`, keywords and identifiers are ASCII-lowercased.
//!
//! The placeholder and delimiter bytes live in `0xF8..=0xFB`, a range that
//! cannot occur in valid UTF-8 input, so no raw input byte can forge them.
//!
//! Inputs the lexer would reject in a *position-dependent* way (unterminated
//! strings, block comments or quoted identifiers, a bare `@`) return `None`:
//! the caller falls back to a full parse. Other lexer errors (stray `!`, an
//! unexpected character) are fine to key — the offending byte is emitted
//! verbatim, so equal streams fail identically.

use crate::fingerprint::Fnv1a;

/// Placeholder byte for a numeric literal.
pub const RAW_NUM: u8 = 0xF8;
/// Placeholder byte for a string literal.
pub const RAW_STR: u8 = 0xF9;
/// Delimiter byte opening a quoted identifier.
pub const RAW_QUOTE_OPEN: u8 = 0xFA;
/// Delimiter byte closing a quoted identifier.
pub const RAW_QUOTE_CLOSE: u8 = 0xFB;

/// The literal-normalized shape key of one statement.
///
/// Collision safety by construction: the key carries the full normalized
/// stream hash *and* the stream length *and* the literal count, so two
/// statements only share a key if their normalized streams collide at
/// equal length — a 64-bit FNV-1a collision, negligible at the ~10^5
/// distinct shapes a real log produces, and additionally cross-checked by
/// sampled full parses in debug builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RawKey {
    /// FNV-1a over the normalized byte stream.
    pub hash: u64,
    /// Length of the normalized byte stream.
    pub len: u32,
    /// Number of literals (numbers + strings) collapsed into placeholders.
    pub literals: u32,
}

/// What kind of literal a recorded span is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RawLiteralKind {
    /// A number token; the span covers the token text verbatim.
    Number,
    /// A string token; the span covers the *inner* text between the quotes,
    /// with `''` escapes still doubled. `has_escape` says whether unescaping
    /// is needed to recover the value.
    String {
        /// True when the span contains at least one `''` escape.
        has_escape: bool,
    },
}

/// Source span of one literal, in statement order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawLiteral {
    /// Byte offset of the span start.
    pub start: u32,
    /// Byte offset one past the span end.
    pub end: u32,
    /// Literal kind.
    pub kind: RawLiteralKind,
}

impl RawLiteral {
    /// The span's text within `sql` (the statement the scan ran over).
    pub fn text<'a>(&self, sql: &'a str) -> Option<&'a str> {
        sql.get(self.start as usize..self.end as usize)
    }
}

/// True for bytes that continue a word token in the lexer (and therefore
/// need a separator when whitespace keeps two of them apart). The emitted
/// placeholder range `0xF8..` is excluded: a placeholder never fuses.
fn word_byte(b: u8) -> bool {
    b == b'_' || b == b'#' || b == b'$' || b.is_ascii_alphanumeric() || (0x80..0xF8).contains(&b)
}

/// True when dropping the whitespace between `prev` and `next` would change
/// how the lexer tokenizes: two word bytes would merge into one word, and
/// the listed operator pairs would merge into a different operator (or a
/// comment opener).
fn fusable(prev: u8, next: u8) -> bool {
    (word_byte(prev) && word_byte(next))
        || matches!(
            (prev, next),
            (b'<', b'=')
                | (b'<', b'>')
                | (b'>', b'=')
                | (b'=', b'=')
                | (b'!', b'=')
                | (b'-', b'-')
                | (b'/', b'*')
        )
}

struct Scan<'a> {
    bytes: &'a [u8],
    pos: usize,
    hash: Fnv1a,
    len: u32,
    /// Last emitted byte (0 before the first emission).
    prev: u8,
    /// Whitespace or a comment was skipped since the last emission.
    pending_sep: bool,
}

impl Scan<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn emit(&mut self, b: u8) {
        if self.pending_sep && fusable(self.prev, b) {
            self.hash.update(b" ");
            self.len += 1;
        }
        self.pending_sep = false;
        self.hash.update(&[b]);
        self.prev = b;
        self.len += 1;
    }

    fn skip_line_comment(&mut self) {
        while let Some(b) = self.peek() {
            self.pos += 1;
            if b == b'\n' {
                break;
            }
        }
    }

    /// Mirrors the lexer's nested block comments; `false` = unterminated.
    fn skip_block_comment(&mut self) -> bool {
        self.pos += 2;
        let mut depth = 1usize;
        while depth > 0 {
            match self.peek() {
                Some(b'*') if self.peek2() == Some(b'/') => {
                    self.pos += 2;
                    depth -= 1;
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    self.pos += 2;
                    depth += 1;
                }
                Some(_) => self.pos += 1,
                None => return false,
            }
        }
        true
    }

    /// Mirrors `lex_string`; `false` = unterminated.
    fn scan_string(&mut self, literals: &mut Vec<RawLiteral>) -> bool {
        self.pos += 1; // opening quote
        let content_start = self.pos;
        let mut has_escape = false;
        loop {
            match self.peek() {
                Some(b'\'') => {
                    if self.peek2() == Some(b'\'') {
                        has_escape = true;
                        self.pos += 2;
                    } else {
                        literals.push(RawLiteral {
                            start: content_start as u32,
                            end: self.pos as u32,
                            kind: RawLiteralKind::String { has_escape },
                        });
                        self.pos += 1;
                        self.emit(RAW_STR);
                        return true;
                    }
                }
                Some(_) => self.pos += 1,
                None => return false,
            }
        }
    }

    /// Mirrors `lex_quoted_ident` for either quoting style; both styles emit
    /// the same delimiter pair (their tokens are identical). `false` =
    /// unterminated.
    fn scan_quoted_ident(&mut self, close: u8) -> bool {
        self.pos += 1; // opening quote
        self.emit(RAW_QUOTE_OPEN);
        loop {
            match self.peek() {
                Some(b) if b == close => {
                    self.pos += 1;
                    self.emit(RAW_QUOTE_CLOSE);
                    return true;
                }
                Some(b) => {
                    self.pos += 1;
                    self.emit(b.to_ascii_lowercase());
                }
                None => return false,
            }
        }
    }

    /// Mirrors `lex_variable` (`@name` / `@@global`); `false` = a bare `@`,
    /// which the lexer rejects with a position-dependent error.
    fn scan_variable(&mut self) -> bool {
        self.emit(b'@');
        self.pos += 1;
        if self.peek() == Some(b'@') {
            self.emit(b'@');
            self.pos += 1;
        }
        let name_start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'_' || b.is_ascii_alphanumeric() {
                self.emit(b.to_ascii_lowercase());
                self.pos += 1;
            } else {
                break;
            }
        }
        self.pos != name_start
    }

    /// Mirrors `lex_number` (hex, decimal, trailing-dot, exponent forms).
    fn scan_number(&mut self, literals: &mut Vec<RawLiteral>) {
        let start = self.pos;
        if self.peek() == Some(b'0')
            && matches!(self.peek2(), Some(b'x') | Some(b'X'))
            && self
                .bytes
                .get(self.pos + 2)
                .is_some_and(|b| b.is_ascii_hexdigit())
        {
            self.pos += 2;
            while self.peek().is_some_and(|b| b.is_ascii_hexdigit()) {
                self.pos += 1;
            }
        } else {
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.peek() == Some(b'.') && self.peek2().is_none_or(|b| b.is_ascii_digit()) {
                self.pos += 1;
                while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            if matches!(self.peek(), Some(b'e') | Some(b'E')) {
                let mut look = self.pos + 1;
                if matches!(self.bytes.get(look), Some(b'+') | Some(b'-')) {
                    look += 1;
                }
                if self.bytes.get(look).is_some_and(|b| b.is_ascii_digit()) {
                    self.pos = look;
                    while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                        self.pos += 1;
                    }
                }
            }
        }
        literals.push(RawLiteral {
            start: start as u32,
            end: self.pos as u32,
            kind: RawLiteralKind::Number,
        });
        self.emit(RAW_NUM);
    }

    /// Mirrors `lex_word`. Multi-byte (≥ 0x80) bytes pass through verbatim;
    /// ASCII is lower-cased to match keyword folding and skeleton rendering.
    fn scan_word(&mut self) {
        while let Some(b) = self.peek() {
            if b == b'_' || b == b'#' || b == b'$' || b.is_ascii_alphanumeric() || b >= 0x80 {
                self.emit(if b >= 0x80 { b } else { b.to_ascii_lowercase() });
                self.pos += 1;
            } else {
                break;
            }
        }
    }
}

/// Scans `sql` into a [`RawKey`], recording literal spans into `literals`
/// (cleared first, filled in statement order).
///
/// Returns `None` when the statement cannot be keyed soundly — unterminated
/// strings / block comments / quoted identifiers and bare `@` produce lexer
/// errors whose position the normalized stream does not determine, so such
/// statements must take the full-parse path.
pub fn raw_shape_scan(sql: &str, literals: &mut Vec<RawLiteral>) -> Option<RawKey> {
    literals.clear();
    let mut s = Scan {
        bytes: sql.as_bytes(),
        pos: 0,
        hash: Fnv1a::new(),
        len: 0,
        prev: 0,
        pending_sep: false,
    };
    while let Some(b) = s.peek() {
        match b {
            b' ' | b'\t' | b'\r' | b'\n' | 0x0b | 0x0c => {
                s.pos += 1;
                s.pending_sep = true;
            }
            b'-' if s.peek2() == Some(b'-') => {
                s.skip_line_comment();
                s.pending_sep = true;
            }
            b'/' if s.peek2() == Some(b'*') => {
                if !s.skip_block_comment() {
                    return None;
                }
                s.pending_sep = true;
            }
            b'\'' => {
                if !s.scan_string(literals) {
                    return None;
                }
            }
            b'"' => {
                if !s.scan_quoted_ident(b'"') {
                    return None;
                }
            }
            b'[' => {
                if !s.scan_quoted_ident(b']') {
                    return None;
                }
            }
            b'@' => {
                if !s.scan_variable() {
                    return None;
                }
            }
            b'0'..=b'9' => s.scan_number(literals),
            b'.' if s.peek2().is_some_and(|c| c.is_ascii_digit()) => s.scan_number(literals),
            b'=' => {
                // The lexer folds `==` to `=`.
                s.pos += 1;
                if s.peek() == Some(b'=') {
                    s.pos += 1;
                }
                s.emit(b'=');
            }
            b'<' => {
                s.pos += 1;
                match s.peek() {
                    Some(b'=') => {
                        s.pos += 1;
                        s.emit(b'<');
                        s.emit(b'=');
                    }
                    Some(b'>') => {
                        s.pos += 1;
                        s.emit(b'<');
                        s.emit(b'>');
                    }
                    _ => s.emit(b'<'),
                }
            }
            b'>' => {
                s.pos += 1;
                if s.peek() == Some(b'=') {
                    s.pos += 1;
                    s.emit(b'>');
                    s.emit(b'=');
                } else {
                    s.emit(b'>');
                }
            }
            b'!' => {
                // `!=` folds to the same token as `<>`; a stray `!` is a
                // lexer error either way, so emitting it verbatim keeps
                // equal streams failing equally.
                s.pos += 1;
                if s.peek() == Some(b'=') {
                    s.pos += 1;
                    s.emit(b'<');
                    s.emit(b'>');
                } else {
                    s.emit(b'!');
                }
            }
            b'_' | b'a'..=b'z' | b'A'..=b'Z' | b'#' => s.scan_word(),
            _ if b >= 0x80 => s.scan_word(),
            // Single-char tokens and lexer-error characters alike: emit the
            // byte verbatim. Equal streams tokenize (or fail) identically.
            other => {
                s.pos += 1;
                s.emit(other);
            }
        }
    }
    Some(RawKey {
        hash: s.hash.finish().0,
        len: s.len,
        literals: literals.len() as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(sql: &str) -> RawKey {
        raw_shape_scan(sql, &mut Vec::new()).unwrap()
    }

    fn lits(sql: &str) -> Vec<RawLiteral> {
        let mut v = Vec::new();
        raw_shape_scan(sql, &mut v).unwrap();
        v
    }

    #[test]
    fn whitespace_case_and_comments_are_invisible() {
        let a = key("SELECT a FROM t WHERE x = 1");
        assert_eq!(a, key("select   A \n FROM\tt  WHERE x=1"));
        assert_eq!(a, key("SELECT a /* hint */ FROM t -- c\n WHERE x = 2"));
    }

    #[test]
    fn literal_values_do_not_change_the_key() {
        assert_eq!(key("WHERE x = 1"), key("WHERE x = 99999"));
        assert_eq!(key("WHERE x = 1.5e-3"), key("WHERE x = 0x1AF"));
        assert_eq!(key("WHERE s = 'a'"), key("WHERE s = 'it''s longer'"));
    }

    #[test]
    fn literal_kinds_do_change_the_key() {
        assert_ne!(key("WHERE x = 1"), key("WHERE x = 'a'"));
    }

    #[test]
    fn word_fusion_is_separated() {
        assert_ne!(key("a b"), key("ab"));
        assert_ne!(key("SELECT a"), key("SELECTa"));
        assert_ne!(key("a #t"), key("a#t"));
        assert_ne!(key("@x y"), key("@xy"));
    }

    #[test]
    fn operator_fusion_is_separated() {
        assert_ne!(key("a < = b"), key("a <= b"));
        assert_ne!(key("a < > b"), key("a <> b"));
        assert_ne!(key("a > = b"), key("a >= b"));
        assert_ne!(key("a = = b"), key("a == b"));
        assert_ne!(key("a - - b"), key("a -- b"));
        assert_ne!(key("a / * b"), key("a /*b*/ c"));
    }

    #[test]
    fn lexer_foldings_are_mirrored() {
        assert_eq!(key("a == b"), key("a = b"));
        assert_eq!(key("a != b"), key("a <> b"));
    }

    #[test]
    fn quoted_identifiers_are_distinct_from_words() {
        assert_ne!(key("[select] x"), key("select x"));
        assert_eq!(key("[My Col]"), key("\"My Col\""));
        assert_ne!(key("[a b]"), key("[a] [b]"));
    }

    #[test]
    fn number_token_boundaries_are_mirrored() {
        // `a1` is one word; `a 1` is a word and a number.
        assert_ne!(key("a1"), key("a 1"));
        // `1a` and `1 a` both lex Number("1") Word("a") — equal is correct.
        assert_eq!(key("1a"), key("1 a"));
        // `1e5` is one number; `1 e5` is a number and a word.
        assert_ne!(key("1e5"), key("1 e5"));
        // Trailing-dot and leading-dot decimals.
        assert_eq!(lits("12.")[0].kind, RawLiteralKind::Number);
        assert_eq!(lits(".5")[0].kind, RawLiteralKind::Number);
        assert_ne!(key("1 . 2"), key("1.2"));
    }

    #[test]
    fn literal_spans_cover_token_text() {
        let sql = "WHERE x = -1.5e3 AND s = 'it''s'";
        let v = lits(sql);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].text(sql), Some("1.5e3"));
        assert_eq!(v[0].kind, RawLiteralKind::Number);
        assert_eq!(v[1].text(sql), Some("it''s"));
        assert_eq!(v[1].kind, RawLiteralKind::String { has_escape: true });
    }

    #[test]
    fn unkeyable_inputs_bail_out() {
        let mut v = Vec::new();
        assert!(raw_shape_scan("SELECT 'oops", &mut v).is_none());
        assert!(raw_shape_scan("SELECT [oops", &mut v).is_none());
        assert!(raw_shape_scan("SELECT /* oops", &mut v).is_none());
        assert!(raw_shape_scan("SELECT @ x", &mut v).is_none());
    }

    #[test]
    fn variables_fold_case_like_the_profile() {
        assert_eq!(key("WHERE x = @RA"), key("WHERE x = @ra"));
        assert_eq!(key("n = @@ROWCOUNT"), key("n = @@rowcount"));
        assert_ne!(key("@x"), key("@@x"));
    }

    #[test]
    fn empty_and_blank_statements_share_a_key() {
        assert_eq!(key(""), key("   \t\n"));
        assert_ne!(key(""), key(";"));
    }
}
