//! Skeleton rendering (Definitions 2–6 of the paper).
//!
//! A *skeleton query* (SQ) is obtained from the syntax tree by replacing all
//! parameters in leaf nodes with placeholders (Example 8):
//!
//! ```text
//! SELECT a, b FROM t WHERE a = 0  AND b >= 3
//! SELECT a, b FROM t WHERE a = 10 AND b >= 5
//!        both render to
//! SELECT a, b FROM t WHERE a = <num> AND b >= <num>
//! ```
//!
//! Rendering is canonical: identifiers are lower-cased, keywords upper-cased,
//! whitespace normalized — so the skeletons of two statements are equal
//! exactly when their syntax trees agree on everything but literal values
//! and letter case. The renderer has two modes:
//!
//! * [`Mode::Skeleton`] — literals become `<num>` / `<str>` placeholders
//!   (used for SSC/SFC/SWC and Def. 5/6 equality),
//! * [`Mode::Canonical`] — literals are kept (used for Def. 3's SC/FC/WC,
//!   which the DW/DS/DF-Stifle definitions compare *with* constants).

use sqlog_sql::ast::*;
use std::fmt::Write as _;

/// Rendering mode: with or without literal placeholders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Replace literals with `<num>` / `<str>` placeholders.
    Skeleton,
    /// Keep literal values (canonical form of the clause).
    Canonical,
}

/// Renders the full skeleton (or canonical) text of a query.
pub fn render_query(q: &Query, mode: Mode) -> String {
    let mut out = String::with_capacity(96);
    query(q, mode, &mut out);
    out
}

/// Renders one clause of a SELECT body. Empty string when the clause is
/// absent — two queries that both lack a WHERE clause have equal (empty) WCs.
pub fn render_select_clause(s: &Select, mode: Mode) -> String {
    let mut out = String::with_capacity(32);
    projection(&s.projection, mode, &mut out);
    out
}

/// Renders the FROM clause (see [`render_select_clause`]).
pub fn render_from_clause(s: &Select, mode: Mode) -> String {
    let mut out = String::with_capacity(32);
    from(&s.from, mode, &mut out);
    out
}

/// Renders the WHERE clause (see [`render_select_clause`]).
pub fn render_where_clause(s: &Select, mode: Mode) -> String {
    let mut out = String::with_capacity(32);
    if let Some(w) = &s.selection {
        expr(w, mode, &mut out);
    }
    out
}

/// Renders everything *outside* the SELECT/FROM/WHERE triple: DISTINCT, TOP,
/// INTO, GROUP BY, HAVING, set operations, ORDER BY, LIMIT. Definitions 4–5
/// of the paper identify a template with the clause triple; the tail is kept
/// separately so that template identity can optionally be refined with it.
pub fn render_tail(q: &Query, mode: Mode) -> String {
    let mut out = String::new();
    let s = &q.body;
    if s.distinct {
        out.push_str("DISTINCT ");
    }
    if let Some(top) = &s.top {
        out.push_str("TOP ");
        expr(top, mode, &mut out);
        out.push(' ');
    }
    if let Some(into) = &s.into {
        out.push_str("INTO ");
        object_name(into, &mut out);
        out.push(' ');
    }
    if !s.group_by.is_empty() {
        out.push_str("GROUP BY ");
        for (i, e) in s.group_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            expr(e, mode, &mut out);
        }
        out.push(' ');
    }
    if let Some(h) = &s.having {
        out.push_str("HAVING ");
        expr(h, mode, &mut out);
        out.push(' ');
    }
    for (op, all, body) in &q.set_ops {
        out.push_str(match op {
            SetOperator::Union => "UNION ",
            SetOperator::Except => "EXCEPT ",
            SetOperator::Intersect => "INTERSECT ",
        });
        if *all {
            out.push_str("ALL ");
        }
        select_body(body, mode, &mut out);
        out.push(' ');
    }
    if !q.order_by.is_empty() {
        out.push_str("ORDER BY ");
        for (i, item) in q.order_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            expr(&item.expr, mode, &mut out);
            match item.asc {
                Some(true) => out.push_str(" ASC"),
                Some(false) => out.push_str(" DESC"),
                None => {}
            }
        }
        out.push(' ');
    }
    if let Some(l) = &q.limit {
        out.push_str("LIMIT ");
        expr(l, mode, &mut out);
        out.push(' ');
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

// ---- internal walkers ------------------------------------------------------

fn query(q: &Query, mode: Mode, out: &mut String) {
    select_body(&q.body, mode, out);
    for (op, all, body) in &q.set_ops {
        out.push_str(match op {
            SetOperator::Union => " UNION",
            SetOperator::Except => " EXCEPT",
            SetOperator::Intersect => " INTERSECT",
        });
        if *all {
            out.push_str(" ALL");
        }
        out.push(' ');
        select_body(body, mode, out);
    }
    if !q.order_by.is_empty() {
        out.push_str(" ORDER BY ");
        for (i, item) in q.order_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            expr(&item.expr, mode, out);
            match item.asc {
                Some(true) => out.push_str(" ASC"),
                Some(false) => out.push_str(" DESC"),
                None => {}
            }
        }
    }
    if let Some(l) = &q.limit {
        out.push_str(" LIMIT ");
        expr(l, mode, out);
    }
}

fn select_body(s: &Select, mode: Mode, out: &mut String) {
    out.push_str("SELECT ");
    if s.distinct {
        out.push_str("DISTINCT ");
    }
    if let Some(top) = &s.top {
        out.push_str("TOP ");
        expr(top, mode, out);
        if s.top_percent {
            out.push_str(" PERCENT");
        }
        out.push(' ');
    }
    projection(&s.projection, mode, out);
    if let Some(into) = &s.into {
        out.push_str(" INTO ");
        object_name(into, out);
    }
    if !s.from.is_empty() {
        out.push_str(" FROM ");
        from(&s.from, mode, out);
    }
    if let Some(w) = &s.selection {
        out.push_str(" WHERE ");
        expr(w, mode, out);
    }
    if !s.group_by.is_empty() {
        out.push_str(" GROUP BY ");
        for (i, e) in s.group_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            expr(e, mode, out);
        }
    }
    if let Some(h) = &s.having {
        out.push_str(" HAVING ");
        expr(h, mode, out);
    }
}

fn projection(items: &[SelectItem], mode: Mode, out: &mut String) {
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match item {
            SelectItem::Wildcard => out.push('*'),
            SelectItem::QualifiedWildcard(name) => {
                object_name(name, out);
                out.push_str(".*");
            }
            SelectItem::Expr { expr: e, alias } => {
                expr(e, mode, out);
                if let Some(a) = alias {
                    out.push_str(" AS ");
                    ident(a, out);
                }
            }
        }
    }
}

fn from(tables: &[TableRef], mode: Mode, out: &mut String) {
    for (i, t) in tables.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        table_ref(t, mode, out);
    }
}

fn table_ref(t: &TableRef, mode: Mode, out: &mut String) {
    match t {
        TableRef::Table { name, alias } => {
            object_name(name, out);
            if let Some(a) = alias {
                out.push_str(" AS ");
                ident(a, out);
            }
        }
        TableRef::Function { name, args, alias } => {
            object_name(name, out);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr(a, mode, out);
            }
            out.push(')');
            if let Some(a) = alias {
                out.push_str(" AS ");
                ident(a, out);
            }
        }
        TableRef::Derived { subquery, alias } => {
            out.push('(');
            query(subquery, mode, out);
            out.push(')');
            if let Some(a) = alias {
                out.push_str(" AS ");
                ident(a, out);
            }
        }
        TableRef::Join {
            left,
            right,
            kind,
            constraint,
        } => {
            table_ref(left, mode, out);
            out.push_str(match kind {
                JoinKind::Inner => " INNER JOIN ",
                JoinKind::Left => " LEFT OUTER JOIN ",
                JoinKind::Right => " RIGHT OUTER JOIN ",
                JoinKind::Full => " FULL OUTER JOIN ",
                JoinKind::Cross => " CROSS JOIN ",
                JoinKind::CrossApply => " CROSS APPLY ",
                JoinKind::OuterApply => " OUTER APPLY ",
            });
            if matches!(right.as_ref(), TableRef::Join { .. }) {
                out.push('(');
                table_ref(right, mode, out);
                out.push(')');
            } else {
                table_ref(right, mode, out);
            }
            if let Some(on) = constraint {
                out.push_str(" ON ");
                expr(on, mode, out);
            }
        }
    }
}

fn object_name(name: &ObjectName, out: &mut String) {
    for (i, part) in name.0.iter().enumerate() {
        if i > 0 {
            out.push('.');
        }
        ident(part, out);
    }
}

fn ident(id: &Ident, out: &mut String) {
    for c in id.value.chars() {
        out.push(c.to_ascii_lowercase());
    }
}

fn literal(lit: &Literal, mode: Mode, out: &mut String) {
    match (mode, lit) {
        (Mode::Skeleton, Literal::Number(_)) => out.push_str("<num>"),
        (Mode::Skeleton, Literal::String(_)) => out.push_str("<str>"),
        (Mode::Canonical, Literal::Number(n)) => out.push_str(n),
        (Mode::Canonical, Literal::String(s)) => {
            out.push('\'');
            out.push_str(&s.replace('\'', "''"));
            out.push('\'');
        }
        // NULL and booleans are structural, not parameters: the SNC
        // antipattern (Def. 16) is recognizable only if `= NULL` survives in
        // the skeleton.
        (_, Literal::Null) => out.push_str("NULL"),
        (_, Literal::Boolean(true)) => out.push_str("TRUE"),
        (_, Literal::Boolean(false)) => out.push_str("FALSE"),
    }
}

fn expr(e: &Expr, mode: Mode, out: &mut String) {
    match e {
        Expr::Column(name) => object_name(name, out),
        Expr::Literal(lit) => literal(lit, mode, out),
        Expr::Variable(v) => {
            out.push('@');
            for c in v.chars() {
                out.push(c.to_ascii_lowercase());
            }
        }
        Expr::Binary { left, op, right } => {
            expr(left, mode, out);
            let _ = write!(out, " {op} ");
            expr(right, mode, out);
        }
        Expr::Unary { op, expr: inner } => {
            // A signed numeric literal is a parameter: `-0.9` and `0.5`
            // must map to the same `<num>` placeholder.
            if mode == Mode::Skeleton
                && matches!(op, UnaryOp::Minus | UnaryOp::Plus)
                && matches!(inner.as_ref(), Expr::Literal(Literal::Number(_)))
            {
                out.push_str("<num>");
                return;
            }
            match op {
                UnaryOp::Not => out.push_str("NOT "),
                UnaryOp::Minus => out.push('-'),
                UnaryOp::Plus => out.push('+'),
            }
            expr(inner, mode, out);
        }
        Expr::Function {
            name,
            args,
            distinct,
        } => {
            object_name(name, out);
            out.push('(');
            if *distinct {
                out.push_str("DISTINCT ");
            }
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr(a, mode, out);
            }
            out.push(')');
        }
        Expr::Wildcard => out.push('*'),
        Expr::IsNull {
            expr: inner,
            negated,
        } => {
            expr(inner, mode, out);
            out.push_str(if *negated { " IS NOT NULL" } else { " IS NULL" });
        }
        Expr::InList {
            expr: inner,
            list,
            negated,
        } => {
            expr(inner, mode, out);
            out.push_str(if *negated { " NOT IN (" } else { " IN (" });
            match mode {
                // A skeleton abstracts the *whole* list: `IN (1,2)` and
                // `IN (3,4,5)` share one skeleton. This is what makes a
                // DW-Stifle rewrite idempotent — the merged IN-query maps to
                // one template no matter how many values were merged.
                Mode::Skeleton if list.iter().all(is_literal) && !list.is_empty() => {
                    out.push_str("<list>");
                }
                _ => {
                    for (i, v) in list.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        expr(v, mode, out);
                    }
                }
            }
            out.push(')');
        }
        Expr::InSubquery {
            expr: inner,
            subquery,
            negated,
        } => {
            expr(inner, mode, out);
            out.push_str(if *negated { " NOT IN (" } else { " IN (" });
            query(subquery, mode, out);
            out.push(')');
        }
        Expr::Between {
            expr: inner,
            low,
            high,
            negated,
        } => {
            expr(inner, mode, out);
            out.push_str(if *negated {
                " NOT BETWEEN "
            } else {
                " BETWEEN "
            });
            expr(low, mode, out);
            out.push_str(" AND ");
            expr(high, mode, out);
        }
        Expr::Like {
            expr: inner,
            pattern,
            negated,
        } => {
            expr(inner, mode, out);
            out.push_str(if *negated { " NOT LIKE " } else { " LIKE " });
            expr(pattern, mode, out);
        }
        Expr::Nested(inner) => {
            out.push('(');
            expr(inner, mode, out);
            out.push(')');
        }
        Expr::Subquery(q) => {
            out.push('(');
            query(q, mode, out);
            out.push(')');
        }
        Expr::Exists { subquery, negated } => {
            if *negated {
                out.push_str("NOT ");
            }
            out.push_str("EXISTS (");
            query(subquery, mode, out);
            out.push(')');
        }
        Expr::Case {
            operand,
            branches,
            else_result,
        } => {
            out.push_str("CASE");
            if let Some(op) = operand {
                out.push(' ');
                expr(op, mode, out);
            }
            for (w, t) in branches {
                out.push_str(" WHEN ");
                expr(w, mode, out);
                out.push_str(" THEN ");
                expr(t, mode, out);
            }
            if let Some(el) = else_result {
                out.push_str(" ELSE ");
                expr(el, mode, out);
            }
            out.push_str(" END");
        }
        Expr::Cast { expr: inner, ty } => {
            out.push_str("CAST(");
            expr(inner, mode, out);
            let _ = write!(out, " AS {}", ty.to_ascii_lowercase());
            out.push(')');
        }
    }
}

fn is_literal(e: &Expr) -> bool {
    matches!(e, Expr::Literal(Literal::Number(_) | Literal::String(_)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlog_sql::parse_query;

    fn skel(sql: &str) -> String {
        render_query(&parse_query(sql).unwrap(), Mode::Skeleton)
    }

    #[test]
    fn example_8_of_the_paper() {
        let a = skel("SELECT a, b FROM T WHERE a = 0 AND b >= 3");
        let b = skel("SELECT a, b FROM T WHERE a = 10 AND b >= 5");
        assert_eq!(a, b);
        assert_eq!(a, "SELECT a, b FROM t WHERE a = <num> AND b >= <num>");
    }

    #[test]
    fn case_differences_do_not_split_skeletons() {
        assert_eq!(
            skel("select OBJID from PhotoPrimary where objid = 5"),
            skel("SELECT objid FROM photoprimary WHERE OBJID = 7")
        );
    }

    #[test]
    fn string_and_number_placeholders_differ() {
        assert_ne!(
            skel("SELECT a FROM t WHERE a = 5"),
            skel("SELECT a FROM t WHERE a = '5'")
        );
    }

    #[test]
    fn null_survives_in_skeleton() {
        // Required for SNC detection (Def. 16).
        assert_eq!(
            skel("SELECT * FROM Bugs WHERE assigned_to = NULL"),
            "SELECT * FROM bugs WHERE assigned_to = NULL"
        );
    }

    #[test]
    fn in_lists_of_literals_collapse() {
        assert_eq!(
            skel("SELECT a FROM t WHERE id IN (1, 2)"),
            skel("SELECT a FROM t WHERE id IN (3, 4, 5)")
        );
        assert_eq!(
            skel("SELECT a FROM t WHERE id IN (1, 2)"),
            "SELECT a FROM t WHERE id IN (<list>)"
        );
    }

    #[test]
    fn in_lists_with_non_literals_do_not_collapse() {
        assert_eq!(
            skel("SELECT a FROM t WHERE id IN (b, c)"),
            "SELECT a FROM t WHERE id IN (b, c)"
        );
    }

    #[test]
    fn clause_renderers_split_the_triple() {
        let q = parse_query("SELECT name, ra FROM photoprimary WHERE objid = 42").unwrap();
        assert_eq!(render_select_clause(&q.body, Mode::Skeleton), "name, ra");
        assert_eq!(render_from_clause(&q.body, Mode::Skeleton), "photoprimary");
        assert_eq!(
            render_where_clause(&q.body, Mode::Skeleton),
            "objid = <num>"
        );
        assert_eq!(render_where_clause(&q.body, Mode::Canonical), "objid = 42");
    }

    #[test]
    fn missing_where_renders_empty() {
        let q = parse_query("SELECT a FROM t").unwrap();
        assert_eq!(render_where_clause(&q.body, Mode::Skeleton), "");
    }

    #[test]
    fn tail_captures_order_group_top() {
        let q =
            parse_query("SELECT TOP 10 a FROM t GROUP BY a HAVING count(*) > 2 ORDER BY a DESC")
                .unwrap();
        let tail = render_tail(&q, Mode::Skeleton);
        assert!(tail.contains("TOP <num>"));
        assert!(tail.contains("GROUP BY a"));
        assert!(tail.contains("HAVING count(*) > <num>"));
        assert!(tail.contains("ORDER BY a DESC"));
    }

    #[test]
    fn variables_are_kept_as_parameters_of_the_template() {
        // The Table-7 SkyServer patterns parameterize on @ra/@dec/@r; those
        // markers are part of the template, not per-instance constants.
        let a = skel("SELECT p.objid FROM fgetnearbyobjeq(@ra, @dec, @r) n, photoprimary p WHERE n.objid = p.objid");
        assert!(a.contains("@ra"));
    }

    #[test]
    fn tvf_literal_args_are_parameters() {
        assert_eq!(
            skel("SELECT * FROM dbo.fGetNearestObjEq(145.38708, 0.12532, 0.1)"),
            skel("SELECT * FROM dbo.fGetNearestObjEq(211.0, -0.9, 0.5)")
        );
    }

    #[test]
    fn canonical_mode_keeps_constants() {
        let q = parse_query("SELECT a FROM t WHERE a = 5 AND s = 'x'").unwrap();
        assert_eq!(
            render_query(&q, Mode::Canonical),
            "SELECT a FROM t WHERE a = 5 AND s = 'x'"
        );
    }

    #[test]
    fn derived_tables_and_joins_render() {
        let s = skel(
            "SELECT E.empId FROM Employees E INNER JOIN \
             (SELECT empId, count(orders) AS oCount FROM Orders GROUP BY empId) O \
             ON O.empId = E.empId",
        );
        assert_eq!(
            s,
            "SELECT e.empid FROM employees AS e INNER JOIN \
             (SELECT empid, count(orders) AS ocount FROM orders GROUP BY empid) AS o \
             ON o.empid = e.empid"
        );
    }
}
