//! # sqlog-skeleton — skeleton queries, templates and predicate profiles
//!
//! Implements Definitions 2–6 of *"Cleaning Antipatterns in an SQL Query
//! Log"*: skeleton trees (literals replaced by placeholders), the
//! (SFC, SWC, SSC) query-template triple, skeleton equality, plus the
//! per-query predicate facts (CP, θ, filter columns, output columns) that
//! the antipattern definitions (Defs. 11–16) consume.
//!
//! ```
//! use sqlog_skeleton::QueryTemplate;
//! use sqlog_sql::parse_query;
//!
//! let a = QueryTemplate::of_query(
//!     &parse_query("SELECT name FROM Employee WHERE empId = 8").unwrap());
//! let b = QueryTemplate::of_query(
//!     &parse_query("SELECT name FROM Employee WHERE empId = 1").unwrap());
//! assert!(a.similar(&b));                 // Def. 6
//! assert_eq!(a.fingerprint, b.fingerprint);
//! assert_eq!(a.swc, "empid = <num>");     // skeleton WHERE clause
//! assert_ne!(a.wc, b.wc);                 // canonical WHERE clauses differ
//! ```

#![warn(missing_docs)]

pub mod fingerprint;
pub mod normalize;
pub mod predicate;
pub mod rawkey;
pub mod skeleton;
pub mod template;

pub use fingerprint::{Fingerprint, Fnv1a, FnvBuildHasher, FnvHashMap, FnvHashSet, FnvHasher};
pub use normalize::{dedup_shape_scan, normalize_sql_text, text_fingerprint};
pub use predicate::{
    base_tables, primary_table, OutputColumns, PredicateKind, PredicateProfile, Theta, ValueKind,
};
pub use rawkey::{raw_shape_scan, RawKey, RawLiteral, RawLiteralKind};
pub use skeleton::{
    render_from_clause, render_query, render_select_clause, render_tail, render_where_clause, Mode,
};
pub use template::QueryTemplate;
