//! 64-bit FNV-1a fingerprints.
//!
//! Templates and patterns are identified by fingerprints of their canonical
//! skeleton text. FNV-1a is implemented here directly (no external crates):
//! it is fast on short keys, and collision resistance at 64 bits is ample for
//! the ~10^5 distinct templates a 40 M-query log produces.

use serde::{Deserialize, Serialize};
use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 64-bit content fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Fingerprint(pub u64);

impl Fingerprint {
    /// Fingerprints a byte slice.
    pub fn of_bytes(bytes: &[u8]) -> Self {
        let mut h = FNV_OFFSET;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        Fingerprint(h)
    }

    /// Fingerprints a string.
    pub fn of_str(s: &str) -> Self {
        Self::of_bytes(s.as_bytes())
    }

    /// Combines two fingerprints order-sensitively (for sequences).
    pub fn combine(self, other: Fingerprint) -> Fingerprint {
        let mut h = self.0 ^ FNV_OFFSET;
        for b in other.0.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        Fingerprint(h)
    }

    /// Fingerprints an ordered sequence of fingerprints.
    pub fn of_sequence(parts: impl IntoIterator<Item = Fingerprint>) -> Fingerprint {
        let mut acc = Fingerprint(FNV_OFFSET);
        for p in parts {
            acc = acc.combine(p);
        }
        acc
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// A streaming FNV-1a hasher for incremental fingerprinting.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Fresh hasher.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Feeds bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Finishes and returns the fingerprint.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.0)
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// A [`std::hash::Hasher`] over the same FNV-1a stream as [`Fnv1a`].
///
/// The std `HashMap` defaults to SipHash-1-3, whose keyed rounds dominate
/// lookup cost for the short fixed-size keys the pipeline hashes millions of
/// times (user ids, fingerprints, template-id n-grams). FNV-1a is a handful
/// of arithmetic ops per byte and — unlike SipHash — needs no random keying,
/// which the pipeline does not want anyway: inputs are logs the operator
/// already controls, not untrusted network traffic, so hash-flooding
/// resistance buys nothing here.
#[derive(Debug, Clone, Copy)]
pub struct FnvHasher(u64);

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// [`std::hash::BuildHasher`] for [`FnvHasher`]; plugs into `HashMap`s via
/// [`FnvHashMap`]/[`FnvHashSet`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FnvBuildHasher;

impl std::hash::BuildHasher for FnvBuildHasher {
    type Hasher = FnvHasher;

    fn build_hasher(&self) -> FnvHasher {
        FnvHasher(FNV_OFFSET)
    }
}

/// A `HashMap` keyed by FNV-1a — the hot-path map type for dedup state,
/// parse-cache memos, the template store index and pattern counting.
pub type FnvHashMap<K, V> = std::collections::HashMap<K, V, FnvBuildHasher>;

/// A `HashSet` hashed by FNV-1a.
pub type FnvHashSet<T> = std::collections::HashSet<T, FnvBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_fnv1a_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(Fingerprint::of_str("").0, 0xcbf2_9ce4_8422_2325);
        assert_eq!(Fingerprint::of_str("a").0, 0xaf63_dc4c_8601_ec8c);
        assert_eq!(Fingerprint::of_str("foobar").0, 0x85944171f73967e8);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let mut h = Fnv1a::new();
        h.update(b"SELECT ");
        h.update(b"objid");
        assert_eq!(h.finish(), Fingerprint::of_str("SELECT objid"));
    }

    #[test]
    fn combine_is_order_sensitive() {
        let a = Fingerprint::of_str("a");
        let b = Fingerprint::of_str("b");
        assert_ne!(a.combine(b), b.combine(a));
        assert_ne!(
            Fingerprint::of_sequence([a, b]),
            Fingerprint::of_sequence([b, a])
        );
    }

    #[test]
    fn distinct_inputs_distinct_outputs() {
        assert_ne!(
            Fingerprint::of_str("SELECT a FROM t"),
            Fingerprint::of_str("SELECT b FROM t")
        );
    }

    #[test]
    fn build_hasher_matches_fingerprint_stream() {
        use std::hash::{BuildHasher, Hasher};
        let mut h = FnvBuildHasher.build_hasher();
        h.write(b"foobar");
        assert_eq!(h.finish(), Fingerprint::of_str("foobar").0);
    }

    #[test]
    fn fnv_hash_map_behaves_like_a_map() {
        let mut m: FnvHashMap<(u32, Fingerprint), u64> = FnvHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, Fingerprint::of_bytes(&i.to_le_bytes())), u64::from(i));
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(
                m.get(&(i, Fingerprint::of_bytes(&i.to_le_bytes()))),
                Some(&u64::from(i))
            );
        }
        let mut s: FnvHashSet<Vec<u32>> = FnvHashSet::default();
        assert!(s.insert(vec![1, 2, 3]));
        assert!(!s.insert(vec![1, 2, 3]));
    }
}
