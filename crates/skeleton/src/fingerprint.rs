//! 64-bit FNV-1a fingerprints.
//!
//! Templates and patterns are identified by fingerprints of their canonical
//! skeleton text. FNV-1a is implemented here directly (no external crates):
//! it is fast on short keys, and collision resistance at 64 bits is ample for
//! the ~10^5 distinct templates a 40 M-query log produces.

use serde::{Deserialize, Serialize};
use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 64-bit content fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Fingerprint(pub u64);

impl Fingerprint {
    /// Fingerprints a byte slice.
    pub fn of_bytes(bytes: &[u8]) -> Self {
        let mut h = FNV_OFFSET;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        Fingerprint(h)
    }

    /// Fingerprints a string.
    pub fn of_str(s: &str) -> Self {
        Self::of_bytes(s.as_bytes())
    }

    /// Combines two fingerprints order-sensitively (for sequences).
    pub fn combine(self, other: Fingerprint) -> Fingerprint {
        let mut h = self.0 ^ FNV_OFFSET;
        for b in other.0.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        Fingerprint(h)
    }

    /// Fingerprints an ordered sequence of fingerprints.
    pub fn of_sequence(parts: impl IntoIterator<Item = Fingerprint>) -> Fingerprint {
        let mut acc = Fingerprint(FNV_OFFSET);
        for p in parts {
            acc = acc.combine(p);
        }
        acc
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// A streaming FNV-1a hasher for incremental fingerprinting.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Fresh hasher.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Feeds bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Finishes and returns the fingerprint.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.0)
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_fnv1a_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(Fingerprint::of_str("").0, 0xcbf2_9ce4_8422_2325);
        assert_eq!(Fingerprint::of_str("a").0, 0xaf63_dc4c_8601_ec8c);
        assert_eq!(Fingerprint::of_str("foobar").0, 0x85944171f73967e8);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let mut h = Fnv1a::new();
        h.update(b"SELECT ");
        h.update(b"objid");
        assert_eq!(h.finish(), Fingerprint::of_str("SELECT objid"));
    }

    #[test]
    fn combine_is_order_sensitive() {
        let a = Fingerprint::of_str("a");
        let b = Fingerprint::of_str("b");
        assert_ne!(a.combine(b), b.combine(a));
        assert_ne!(
            Fingerprint::of_sequence([a, b]),
            Fingerprint::of_sequence([b, a])
        );
    }

    #[test]
    fn distinct_inputs_distinct_outputs() {
        assert_ne!(
            Fingerprint::of_str("SELECT a FROM t"),
            Fingerprint::of_str("SELECT b FROM t")
        );
    }
}
