//! Query templates (Definition 4): the triple of clause skeletons
//! (SFC, SWC, SSC), plus the canonical clause forms used by the Stifle class
//! definitions (Defs. 12–14).

use crate::fingerprint::Fingerprint;
use crate::skeleton::{
    render_from_clause, render_query, render_select_clause, render_tail, render_where_clause, Mode,
};
use serde::{Deserialize, Serialize};
use sqlog_sql::ast::Query;

/// A query template: skeleton and canonical clause renderings of one query.
///
/// *Skeleton* fields (`ssc`, `sfc`, `swc`) have literals replaced with
/// placeholders; *canonical* fields (`sc`, `fc`, `wc`) keep the constants.
/// Definition 5 equality compares the skeleton triple; the Stifle class
/// definitions additionally compare the canonical clauses (e.g. a DW-Stifle
/// has equal `swc` but pairwise-different `wc`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryTemplate {
    /// Skeleton of the SELECT clause (Def. 2's SSC).
    pub ssc: String,
    /// Skeleton of the FROM clause (SFC).
    pub sfc: String,
    /// Skeleton of the WHERE clause (SWC); empty when absent.
    pub swc: String,
    /// Canonical SELECT clause with constants (Def. 3's SC).
    pub sc: String,
    /// Canonical FROM clause (FC).
    pub fc: String,
    /// Canonical WHERE clause (WC); empty when absent.
    pub wc: String,
    /// Skeleton of everything outside the triple (GROUP BY, ORDER BY, …).
    pub tail: String,
    /// Full skeleton text of the whole query.
    pub full: String,
    /// Fingerprint of the full skeleton text — the template's identity in
    /// the template store.
    pub fingerprint: Fingerprint,
    /// Fingerprint of the (SFC, SWC, SSC) triple only (Def. 4 identity).
    pub triple_fingerprint: Fingerprint,
}

impl QueryTemplate {
    /// Builds the template of a query.
    pub fn of_query(q: &Query) -> Self {
        let ssc = render_select_clause(&q.body, Mode::Skeleton);
        let sfc = render_from_clause(&q.body, Mode::Skeleton);
        let swc = render_where_clause(&q.body, Mode::Skeleton);
        let sc = render_select_clause(&q.body, Mode::Canonical);
        let fc = render_from_clause(&q.body, Mode::Canonical);
        let wc = render_where_clause(&q.body, Mode::Canonical);
        let tail = render_tail(q, Mode::Skeleton);
        let full = render_query(q, Mode::Skeleton);
        let fingerprint = Fingerprint::of_str(&full);
        let triple_fingerprint = Fingerprint::of_sequence([
            Fingerprint::of_str(&sfc),
            Fingerprint::of_str(&swc),
            Fingerprint::of_str(&ssc),
        ]);
        QueryTemplate {
            ssc,
            sfc,
            swc,
            sc,
            fc,
            wc,
            tail,
            full,
            fingerprint,
            triple_fingerprint,
        }
    }

    /// Approximate heap + inline footprint in bytes: the struct itself
    /// plus each string's heap buffer. Good enough for memory accounting
    /// (it ignores allocator slack and `String` over-capacity).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<QueryTemplate>()
            + self.ssc.len()
            + self.sfc.len()
            + self.swc.len()
            + self.sc.len()
            + self.fc.len()
            + self.wc.len()
            + self.tail.len()
            + self.full.len()
    }

    /// Definition 5: two skeletons are equal iff their SFC, SWC and SSC are
    /// pairwise equal.
    pub fn skeleton_equal(&self, other: &QueryTemplate) -> bool {
        self.sfc == other.sfc && self.swc == other.swc && self.ssc == other.ssc
    }

    /// Definition 6: two queries are *similar* iff their skeletons are equal.
    /// Alias of [`Self::skeleton_equal`], kept for readability at call sites.
    pub fn similar(&self, other: &QueryTemplate) -> bool {
        self.skeleton_equal(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlog_sql::parse_query;

    fn tpl(sql: &str) -> QueryTemplate {
        QueryTemplate::of_query(&parse_query(sql).unwrap())
    }

    #[test]
    fn same_shape_same_fingerprint() {
        let a = tpl("SELECT name FROM Employee WHERE empId = 8");
        let b = tpl("SELECT name FROM Employee WHERE empId = 1");
        assert_eq!(a.fingerprint, b.fingerprint);
        assert!(a.skeleton_equal(&b));
        assert!(a.similar(&b));
        // Canonical WHERE clauses differ — this is what DW-Stifle checks.
        assert_ne!(a.wc, b.wc);
    }

    #[test]
    fn different_projection_different_fingerprint() {
        let a = tpl("SELECT name FROM Employee WHERE empId = 8");
        let b = tpl("SELECT address, phone FROM Employee WHERE empId = 8");
        assert_ne!(a.fingerprint, b.fingerprint);
        assert!(!a.skeleton_equal(&b));
        // Same FROM + WHERE with constants — this is what DS-Stifle checks.
        assert_eq!(a.fc, b.fc);
        assert_eq!(a.wc, b.wc);
    }

    #[test]
    fn triple_fingerprint_ignores_tail() {
        let a = tpl("SELECT a FROM t WHERE x = 1");
        let b = tpl("SELECT a FROM t WHERE x = 1 ORDER BY a DESC");
        assert_eq!(a.triple_fingerprint, b.triple_fingerprint);
        assert_ne!(a.fingerprint, b.fingerprint);
        assert_eq!(b.tail, "ORDER BY a DESC");
    }

    #[test]
    fn triple_components_are_separated() {
        // Moving text between clauses must change the triple fingerprint:
        // (sfc="t x", swc="") vs (sfc="t", swc="x") style collisions are
        // prevented by hashing components separately.
        let a = tpl("SELECT a FROM t WHERE b = 1");
        let b = tpl("SELECT a, b FROM t");
        assert_ne!(a.triple_fingerprint, b.triple_fingerprint);
    }
}
