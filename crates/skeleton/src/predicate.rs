//! Predicate profiles: the per-query facts the antipattern definitions need.
//!
//! Definition 11 (Stifle) needs, per query: the count of predicates (CP),
//! the comparison operator θ of each predicate, and the filter column.
//! Definition 15 (CTH candidate) additionally needs the *output columns* of
//! the SELECT clause, to test whether a later query filters on an attribute
//! an earlier query produced. Definition 16 (SNC) needs `= NULL` /
//! `<> NULL` comparisons. This module extracts all of that from the AST.

use serde::{Deserialize, Serialize};
use sqlog_sql::ast::*;

/// Comparison operator of a predicate (the paper's θ).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Theta {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

impl Theta {
    fn from_binop(op: BinaryOp) -> Option<Theta> {
        Some(match op {
            BinaryOp::Eq => Theta::Eq,
            BinaryOp::NotEq => Theta::NotEq,
            BinaryOp::Lt => Theta::Lt,
            BinaryOp::LtEq => Theta::LtEq,
            BinaryOp::Gt => Theta::Gt,
            BinaryOp::GtEq => Theta::GtEq,
            _ => return None,
        })
    }

    /// Flips the operator for a reversed comparison (`5 < x` → `x > 5`).
    fn flipped(self) -> Theta {
        match self {
            Theta::Lt => Theta::Gt,
            Theta::LtEq => Theta::GtEq,
            Theta::Gt => Theta::Lt,
            Theta::GtEq => Theta::LtEq,
            other => other,
        }
    }
}

/// The value side of a column-vs-value predicate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ValueKind {
    /// A numeric literal (original text preserved).
    Number(String),
    /// A string literal.
    String(String),
    /// `NULL` compared with `=` / `<>` — the SNC smell.
    Null,
    /// A boolean literal.
    Bool(bool),
    /// A host variable `@x`.
    Variable(String),
    /// Another column (join-style predicate).
    Column(String),
    /// Anything else (arithmetic, function call, subquery, …).
    Complex,
}

impl ValueKind {
    fn of_expr(e: &Expr) -> ValueKind {
        match e {
            Expr::Literal(Literal::Number(n)) => ValueKind::Number(n.clone()),
            Expr::Literal(Literal::String(s)) => ValueKind::String(s.clone()),
            Expr::Literal(Literal::Null) => ValueKind::Null,
            Expr::Literal(Literal::Boolean(b)) => ValueKind::Bool(*b),
            Expr::Variable(v) => ValueKind::Variable(v.to_ascii_lowercase()),
            Expr::Column(name) => ValueKind::Column(name.last().normalized()),
            Expr::Nested(inner) => ValueKind::of_expr(inner),
            Expr::Unary {
                op: UnaryOp::Minus,
                expr,
            } => match ValueKind::of_expr(expr) {
                ValueKind::Number(n) => ValueKind::Number(format!("-{n}")),
                _ => ValueKind::Complex,
            },
            _ => ValueKind::Complex,
        }
    }

    /// True when the value is a constant (number, string, bool).
    pub fn is_constant(&self) -> bool {
        matches!(
            self,
            ValueKind::Number(_) | ValueKind::String(_) | ValueKind::Bool(_)
        )
    }

    /// The literal this value denotes, if it is a constant.
    pub fn as_literal(&self) -> Option<Literal> {
        match self {
            ValueKind::Number(n) => Some(Literal::Number(n.clone())),
            ValueKind::String(s) => Some(Literal::String(s.clone())),
            ValueKind::Bool(b) => Some(Literal::Boolean(*b)),
            _ => None,
        }
    }
}

/// One top-level conjunct of the WHERE clause, classified.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PredicateKind {
    /// `column θ value` (either orientation in the source).
    Comparison {
        /// Unqualified, lower-cased column name.
        column: String,
        /// Comparison operator, normalized to column-on-the-left.
        theta: Theta,
        /// The value side.
        value: ValueKind,
    },
    /// `column BETWEEN low AND high`.
    Between {
        /// Filter column.
        column: String,
        /// Lower bound.
        low: ValueKind,
        /// Upper bound.
        high: ValueKind,
        /// `NOT BETWEEN`.
        negated: bool,
    },
    /// `column IN (v1, …, vn)`.
    InList {
        /// Filter column.
        column: String,
        /// List values.
        values: Vec<ValueKind>,
        /// `NOT IN`.
        negated: bool,
    },
    /// `column IS [NOT] NULL`.
    IsNull {
        /// Tested column.
        column: String,
        /// `IS NOT NULL`.
        negated: bool,
    },
    /// `column [NOT] LIKE pattern`.
    Like {
        /// Filter column.
        column: String,
        /// The pattern if constant.
        pattern: ValueKind,
        /// `NOT LIKE`.
        negated: bool,
    },
    /// Any other conjunct (OR trees, EXISTS, function predicates, …).
    Other,
}

impl PredicateKind {
    fn of_conjunct(e: &Expr) -> PredicateKind {
        match e {
            Expr::Binary { left, op, right } => {
                let Some(theta) = Theta::from_binop(*op) else {
                    return PredicateKind::Other;
                };
                if let Expr::Column(name) = strip(left) {
                    PredicateKind::Comparison {
                        column: name.last().normalized(),
                        theta,
                        value: ValueKind::of_expr(strip(right)),
                    }
                } else if let Expr::Column(name) = strip(right) {
                    PredicateKind::Comparison {
                        column: name.last().normalized(),
                        theta: theta.flipped(),
                        value: ValueKind::of_expr(strip(left)),
                    }
                } else {
                    PredicateKind::Other
                }
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => match strip(expr) {
                Expr::Column(name) => PredicateKind::Between {
                    column: name.last().normalized(),
                    low: ValueKind::of_expr(strip(low)),
                    high: ValueKind::of_expr(strip(high)),
                    negated: *negated,
                },
                _ => PredicateKind::Other,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => match strip(expr) {
                Expr::Column(name) => PredicateKind::InList {
                    column: name.last().normalized(),
                    values: list.iter().map(|v| ValueKind::of_expr(strip(v))).collect(),
                    negated: *negated,
                },
                _ => PredicateKind::Other,
            },
            Expr::IsNull { expr, negated } => match strip(expr) {
                Expr::Column(name) => PredicateKind::IsNull {
                    column: name.last().normalized(),
                    negated: *negated,
                },
                _ => PredicateKind::Other,
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => match strip(expr) {
                Expr::Column(name) => PredicateKind::Like {
                    column: name.last().normalized(),
                    pattern: ValueKind::of_expr(strip(pattern)),
                    negated: *negated,
                },
                _ => PredicateKind::Other,
            },
            _ => PredicateKind::Other,
        }
    }

    /// The filter column (the paper's *filCol*), when this predicate has one.
    pub fn column(&self) -> Option<&str> {
        match self {
            PredicateKind::Comparison { column, .. }
            | PredicateKind::Between { column, .. }
            | PredicateKind::InList { column, .. }
            | PredicateKind::IsNull { column, .. }
            | PredicateKind::Like { column, .. } => Some(column),
            PredicateKind::Other => None,
        }
    }
}

fn strip(e: &Expr) -> &Expr {
    match e {
        Expr::Nested(inner) => strip(inner),
        other => other,
    }
}

/// The predicate profile of one SELECT body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredicateProfile {
    /// Classified top-level conjuncts of the WHERE clause, in source order.
    pub conjuncts: Vec<PredicateKind>,
}

impl PredicateProfile {
    /// Analyzes the WHERE clause of a SELECT body.
    pub fn of_select(s: &Select) -> Self {
        let conjuncts = match &s.selection {
            Some(w) => w
                .conjuncts()
                .iter()
                .map(|c| PredicateKind::of_conjunct(c))
                .collect(),
            None => Vec::new(),
        };
        PredicateProfile { conjuncts }
    }

    /// The paper's CP: count of predicates (top-level conjuncts).
    pub fn cp(&self) -> usize {
        self.conjuncts.len()
    }

    /// Definition 11 / 15 shape: exactly one predicate, which is an equality
    /// comparison of a column against a constant or variable. Returns the
    /// column and value.
    pub fn single_equality(&self) -> Option<(&str, &ValueKind)> {
        match self.conjuncts.as_slice() {
            [PredicateKind::Comparison {
                column,
                theta: Theta::Eq,
                value,
            }] if !matches!(value, ValueKind::Column(_) | ValueKind::Complex) => {
                Some((column.as_str(), value))
            }
            _ => None,
        }
    }

    /// SNC (Def. 16): predicates of the form `col = NULL` or `col <> NULL`.
    /// Returns `(index, column, theta)` for each occurrence.
    pub fn null_comparisons(&self) -> Vec<(usize, &str, Theta)> {
        self.conjuncts
            .iter()
            .enumerate()
            .filter_map(|(i, c)| match c {
                PredicateKind::Comparison {
                    column,
                    theta: theta @ (Theta::Eq | Theta::NotEq),
                    value: ValueKind::Null,
                } => Some((i, column.as_str(), *theta)),
                _ => None,
            })
            .collect()
    }

    /// All filter columns mentioned by classified predicates.
    pub fn columns(&self) -> impl Iterator<Item = &str> {
        self.conjuncts.iter().filter_map(|c| c.column())
    }
}

/// Output columns of a SELECT body, for CTH's "attribute of the first query's
/// SELECT clause appears in the WHERE clause of a later query" test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutputColumns {
    /// True if the projection contains `*` or `alias.*` — then *any*
    /// attribute of the source tables may be in the output.
    pub wildcard: bool,
    /// Unqualified, lower-cased output names (alias if given, otherwise the
    /// column's own name). Expressions without aliases produce no name.
    pub names: Vec<String>,
}

impl OutputColumns {
    /// Extracts the output columns of a SELECT body.
    pub fn of_select(s: &Select) -> Self {
        let mut wildcard = false;
        let mut names = Vec::new();
        for item in &s.projection {
            match item {
                SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => wildcard = true,
                SelectItem::Expr { expr, alias } => {
                    if let Some(a) = alias {
                        names.push(a.normalized());
                    } else if let Expr::Column(name) = expr {
                        names.push(name.last().normalized());
                    }
                }
            }
        }
        OutputColumns { wildcard, names }
    }

    /// True if the output may contain `column` (case-insensitive).
    pub fn may_contain(&self, column: &str) -> bool {
        self.wildcard || self.names.iter().any(|n| n.eq_ignore_ascii_case(column))
    }
}

/// The single base table of a SELECT body, when the FROM clause is exactly
/// one unjoined plain table. The Stifle key-attribute check (Def. 11, third
/// axiom) resolves the filter column against this table in the catalog.
pub fn primary_table(s: &Select) -> Option<String> {
    match s.from.as_slice() {
        [TableRef::Table { name, .. }] => Some(name.last().normalized()),
        _ => None,
    }
}

/// All base-table names (lower-cased) mentioned anywhere in the FROM clause.
pub fn base_tables(s: &Select) -> Vec<String> {
    let mut names = Vec::new();
    for t in &s.from {
        t.visit_names(&mut |n| names.push(n.last().normalized()));
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlog_sql::parse_query;

    fn profile(sql: &str) -> PredicateProfile {
        PredicateProfile::of_select(&parse_query(sql).unwrap().body)
    }

    #[test]
    fn cp_counts_conjuncts() {
        assert_eq!(profile("SELECT a FROM t").cp(), 0);
        assert_eq!(profile("SELECT a FROM t WHERE x = 1").cp(), 1);
        assert_eq!(
            profile("SELECT a FROM t WHERE x = 1 AND y > 2 AND z LIKE 'q%'").cp(),
            3
        );
        // OR is one conjunct.
        assert_eq!(profile("SELECT a FROM t WHERE x = 1 OR y = 2").cp(), 1);
    }

    #[test]
    fn single_equality_matches_def_11_shape() {
        let p = profile("SELECT name FROM Employee WHERE empId = 8");
        let (col, val) = p.single_equality().unwrap();
        assert_eq!(col, "empid");
        assert_eq!(val, &ValueKind::Number("8".into()));

        assert!(profile("SELECT a FROM t WHERE x > 1")
            .single_equality()
            .is_none());
        assert!(profile("SELECT a FROM t WHERE x = 1 AND y = 2")
            .single_equality()
            .is_none());
        assert!(profile("SELECT a FROM t").single_equality().is_none());
        // Join predicates are not value filters.
        assert!(profile("SELECT a FROM t, u WHERE t.id = u.id")
            .single_equality()
            .is_none());
    }

    #[test]
    fn reversed_comparison_is_normalized() {
        let p = profile("SELECT a FROM t WHERE 5 < x");
        match &p.conjuncts[0] {
            PredicateKind::Comparison { column, theta, .. } => {
                assert_eq!(column, "x");
                assert_eq!(*theta, Theta::Gt);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn qualified_columns_are_unqualified() {
        let p = profile("SELECT a FROM Employees E WHERE E.id = 12");
        assert_eq!(p.single_equality().unwrap().0, "id");
    }

    #[test]
    fn null_comparisons_found_for_snc() {
        let p = profile("SELECT * FROM Bugs WHERE assigned_to = NULL");
        let nc = p.null_comparisons();
        assert_eq!(nc.len(), 1);
        assert_eq!(nc[0].1, "assigned_to");
        assert_eq!(nc[0].2, Theta::Eq);

        let p = profile("SELECT * FROM Bugs WHERE assigned_to <> NULL AND x = 1");
        let nc = p.null_comparisons();
        assert_eq!(nc.len(), 1);
        assert_eq!(nc[0].0, 0);
        assert_eq!(nc[0].2, Theta::NotEq);

        // Proper IS NULL is *not* an SNC.
        let p = profile("SELECT * FROM Bugs WHERE assigned_to IS NULL");
        assert!(p.null_comparisons().is_empty());
    }

    #[test]
    fn between_in_like_classified() {
        let p = profile("SELECT a FROM t WHERE r BETWEEN 1 AND 2 AND id IN (3, 4) AND s LIKE 'x%'");
        assert!(matches!(&p.conjuncts[0], PredicateKind::Between { column, .. } if column == "r"));
        assert!(
            matches!(&p.conjuncts[1], PredicateKind::InList { values, .. } if values.len() == 2)
        );
        assert!(matches!(&p.conjuncts[2], PredicateKind::Like { .. }));
    }

    #[test]
    fn output_columns_with_aliases_and_wildcards() {
        let q = parse_query("SELECT E.empId, name AS n, count(*) AS c FROM Employees E").unwrap();
        let out = OutputColumns::of_select(&q.body);
        assert!(!out.wildcard);
        assert!(out.may_contain("EMPID"));
        assert!(out.may_contain("n"));
        assert!(out.may_contain("c"));
        assert!(!out.may_contain("name")); // aliased away

        let q = parse_query("SELECT * FROM dbo.fGetNearestObjEq(1, 2, 3)").unwrap();
        let out = OutputColumns::of_select(&q.body);
        assert!(out.wildcard);
        assert!(out.may_contain("specobjid"));
    }

    #[test]
    fn primary_table_only_for_single_plain_table() {
        let q = parse_query("SELECT a FROM PhotoPrimary").unwrap();
        assert_eq!(primary_table(&q.body).as_deref(), Some("photoprimary"));
        let q = parse_query("SELECT a FROM t, u").unwrap();
        assert_eq!(primary_table(&q.body), None);
        let q = parse_query("SELECT a FROM t JOIN u ON t.x = u.x").unwrap();
        assert_eq!(primary_table(&q.body), None);
    }

    #[test]
    fn base_tables_recurse_into_joins() {
        let q = parse_query("SELECT a FROM t JOIN u ON t.x = u.x, (SELECT b FROM v) AS d").unwrap();
        assert_eq!(base_tables(&q.body), vec!["t", "u", "v"]);
    }

    #[test]
    fn variable_equality_counts_as_single_equality() {
        // The SkyServer web templates filter with @variables; Def. 15's
        // equality test must accept them.
        let p = profile("SELECT a FROM t WHERE objid = @id");
        assert!(p.single_equality().is_some());
    }
}
