//! Text-level normalization used by duplicate detection.
//!
//! The paper defines duplicates as *identical statements* from the same user
//! within a small time window (§5.2). "Identical" is judged on a lightly
//! normalized form — collapsed whitespace, comments removed, case-folded
//! outside string literals — so that a web form that re-submits the same
//! query with different line breaks still counts as a duplicate, while any
//! change to a constant does not.

use crate::fingerprint::Fingerprint;

/// Normalizes raw SQL text for duplicate comparison.
///
/// * runs of whitespace collapse to a single space,
/// * `--` and `/* */` comments are dropped,
/// * characters outside single-quoted strings are lower-cased,
/// * string literals are preserved byte-for-byte,
/// * leading/trailing whitespace and trailing semicolons are trimmed.
pub fn normalize_sql_text(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let bytes = sql.as_bytes();
    let mut i = 0;
    let mut pending_space = false;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' | 0x0b | 0x0c => {
                pending_space = !out.is_empty();
                i += 1;
            }
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment (non-nested here: normalization must not
                // fail on malformed input, so an unterminated comment simply
                // swallows the rest).
                i += 2;
                while i < bytes.len() {
                    if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'\'' => {
                if pending_space {
                    out.push(' ');
                    pending_space = false;
                }
                // Copy the string literal verbatim (as a byte slice, so
                // multi-byte characters survive), honoring '' escapes.
                let start = i;
                i += 1;
                while i < bytes.len() {
                    let c = bytes[i];
                    i += 1;
                    if c == b'\'' {
                        if bytes.get(i) == Some(&b'\'') {
                            i += 1;
                        } else {
                            break;
                        }
                    }
                }
                out.push_str(&sql[start..i]);
            }
            _ => {
                if pending_space {
                    out.push(' ');
                    pending_space = false;
                }
                if b < 0x80 {
                    out.push(b.to_ascii_lowercase() as char);
                    i += 1;
                } else {
                    // Copy a whole multi-byte UTF-8 character verbatim
                    // (case folding beyond ASCII is not needed for SQL).
                    let mut end = i + 1;
                    while end < bytes.len() && (bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(&sql[i..end]);
                    i = end;
                }
            }
        }
    }
    while out.ends_with(';') || out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Fingerprint of the normalized text — the duplicate-detection identity.
pub fn text_fingerprint(sql: &str) -> Fingerprint {
    Fingerprint::of_str(&normalize_sql_text(sql))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collapses_whitespace_and_case() {
        assert_eq!(
            normalize_sql_text("SELECT  a\n FROM\tT  WHERE x=1 ;"),
            "select a from t where x=1"
        );
    }

    #[test]
    fn preserves_string_literals() {
        assert_eq!(
            normalize_sql_text("SELECT 'It''s  HERE' FROM t"),
            "select 'It''s  HERE' from t"
        );
    }

    #[test]
    fn strips_comments() {
        assert_eq!(
            normalize_sql_text("SELECT a -- comment\nFROM t /* block */ WHERE x = 1"),
            "select a from t where x = 1"
        );
    }

    #[test]
    fn reload_variants_share_a_fingerprint() {
        // A web-form reload often differs only in whitespace/casing.
        assert_eq!(
            text_fingerprint("SELECT objid FROM photoprimary WHERE objid = 5"),
            text_fingerprint("select OBJID\n  from PhotoPrimary where objid = 5")
        );
    }

    #[test]
    fn different_constants_differ() {
        assert_ne!(
            text_fingerprint("SELECT a FROM t WHERE x = 1"),
            text_fingerprint("SELECT a FROM t WHERE x = 2")
        );
    }

    #[test]
    fn preserves_multibyte_characters() {
        assert_eq!(
            normalize_sql_text("SELECT Größe FROM Tabelle -- ¡hola!"),
            "select gröSSe from tabelle".replace("SS", "ß")
        );
        // Idempotence on non-ASCII input.
        let once = normalize_sql_text("¡SELECT α FROM t!");
        assert_eq!(normalize_sql_text(&once), once);
    }

    #[test]
    fn survives_malformed_input() {
        // Normalization is used *before* parsing; it must accept anything.
        assert_eq!(normalize_sql_text("/* unterminated"), "");
        assert_eq!(normalize_sql_text("'unterminated"), "'unterminated");
        assert_eq!(normalize_sql_text(""), "");
        assert_eq!(normalize_sql_text("   "), "");
    }
}
