//! Text-level normalization used by duplicate detection.
//!
//! The paper defines duplicates as *identical statements* from the same user
//! within a small time window (§5.2). "Identical" is judged on a lightly
//! normalized form — collapsed whitespace, comments removed, case-folded
//! outside string literals — so that a web form that re-submits the same
//! query with different line breaks still counts as a duplicate, while any
//! change to a constant does not.
//!
//! The normalization pass is written once, as a streaming scanner
//! ([`normalize_scan`]) that feeds a [`NormSink`], and every consumer is a
//! sink over the same byte stream:
//!
//! * [`normalize_sql_text`] collects the stream into a `String` (the
//!   historical API, still the reference semantics),
//! * [`text_fingerprint`] hashes the stream directly — no intermediate
//!   `String`, which matters when dedup fingerprints millions of entries,
//! * [`dedup_shape_scan`] collapses literals to placeholders while hashing,
//!   producing the shape key the dedup prefilter buckets on.
//!
//! Because the shape sink consumes only the *normalized* stream, the shape
//! key factors through `normalize_sql_text` by construction: two statements
//! with equal normalized text always get equal shape keys, so bucketing by
//! shape can never separate true duplicates. (The lexer-mirroring
//! [`crate::rawkey::raw_shape_scan`] key does *not* have this property — it
//! keeps trailing semicolons, treats comments as token separators and block
//! comments as nested, all places where the lexer and the duplicate
//! definition disagree — which is why dedup buckets on this scan instead.)

use crate::fingerprint::{Fingerprint, Fnv1a};
use crate::rawkey::RawKey;

/// Byte emitted in place of a number literal in the dedup shape stream
/// (same placeholder value as the rawkey scanner uses; both are outside the
/// UTF-8 continuation range so they cannot collide with real text).
const SHAPE_NUM: u8 = 0xF8;
/// Byte emitted in place of a string literal in the dedup shape stream.
const SHAPE_STR: u8 = 0xF9;

/// Receives the normalized byte stream from [`normalize_scan`].
///
/// `byte` is called once per normalized output byte, in order, with the
/// trailing `;`/space run already trimmed. `str_lit` is called once per
/// single-quoted literal with its verbatim text (including quotes; an
/// unterminated literal arrives without its trailing trimmed run); the
/// default forwards it byte-by-byte, which reproduces the plain text stream.
trait NormSink {
    fn byte(&mut self, b: u8);

    fn str_lit(&mut self, raw: &str) {
        for &b in raw.as_bytes() {
            self.byte(b);
        }
    }
}

/// Deferred run of trailing-trimmable bytes (only ever `' '` and `';'`).
///
/// `normalize_sql_text` historically trimmed the trailing `;`/space run by
/// popping the built `String`; a streaming consumer has no string to pop, so
/// the scanner defers any run of poppable bytes and drops whatever is still
/// pending at end of input. The run is inline up to 24 bytes and spills to a
/// heap vector beyond that, so ordinary statements never allocate here.
#[derive(Default)]
struct Tail {
    buf: [u8; 24],
    len: usize,
    spill: Vec<u8>,
}

impl Tail {
    fn push(&mut self, b: u8) {
        if self.len < self.buf.len() {
            self.buf[self.len] = b;
            self.len += 1;
        } else {
            self.spill.push(b);
        }
    }

    fn flush(&mut self, sink: &mut impl NormSink) {
        for i in 0..self.len {
            sink.byte(self.buf[i]);
        }
        for &b in &self.spill {
            sink.byte(b);
        }
        self.len = 0;
        self.spill.clear();
    }

    fn is_empty(&self) -> bool {
        self.len == 0 && self.spill.is_empty()
    }
}

/// Runs the normalization scan over `sql`, feeding `sink`.
///
/// Semantics are pinned to the historical `normalize_sql_text`:
///
/// * runs of whitespace collapse to a single space,
/// * `--` and `/* */` comments are dropped (non-nested; an unterminated
///   block comment swallows the rest of the input),
/// * characters outside single-quoted strings are lower-cased,
/// * string literals are preserved byte-for-byte (honoring `''` escapes; an
///   unterminated literal runs to end of input),
/// * leading/trailing whitespace and trailing semicolons are trimmed.
fn normalize_scan(sql: &str, sink: &mut impl NormSink) {
    let bytes = sql.as_bytes();
    let mut i = 0;
    let mut pending_space = false;
    let mut any = false;
    let mut tail = Tail::default();

    // Emits one normalized byte, routing poppable bytes through the tail.
    macro_rules! emit {
        ($b:expr) => {{
            let b: u8 = $b;
            if b == b' ' || b == b';' {
                tail.push(b);
            } else {
                tail.flush(sink);
                sink.byte(b);
            }
        }};
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' | 0x0b | 0x0c => {
                pending_space = any;
                i += 1;
            }
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment (the terminating newline, if any, is left for
                // the whitespace arm so it still separates tokens).
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment (non-nested here: normalization must not
                // fail on malformed input, so an unterminated comment simply
                // swallows the rest).
                i += 2;
                while i < bytes.len() {
                    if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'\'' => {
                if pending_space {
                    emit!(b' ');
                    pending_space = false;
                }
                // The string literal is passed through verbatim (as a byte
                // slice, so multi-byte characters survive), honoring ''
                // escapes.
                let start = i;
                i += 1;
                let mut terminated = false;
                while i < bytes.len() {
                    let c = bytes[i];
                    i += 1;
                    if c == b'\'' {
                        if bytes.get(i) == Some(&b'\'') {
                            i += 1;
                        } else {
                            terminated = true;
                            break;
                        }
                    }
                }
                let mut lit = &sql[start..i];
                if !terminated {
                    // An unterminated literal is the final emission, and its
                    // own trailing `;`/space run is subject to the trim (the
                    // string-building path popped through it); split the run
                    // off into the tail so end-of-input drops it.
                    let kept = lit.trim_end_matches([' ', ';']);
                    let (kept, run) = lit.split_at(kept.len());
                    lit = kept;
                    tail.flush(sink);
                    if !lit.is_empty() {
                        sink.str_lit(lit);
                    }
                    for rb in run.bytes() {
                        tail.push(rb);
                    }
                    any = true;
                    continue;
                }
                tail.flush(sink);
                sink.str_lit(lit);
                any = true;
            }
            _ => {
                if pending_space {
                    emit!(b' ');
                    pending_space = false;
                }
                if b < 0x80 {
                    emit!(b.to_ascii_lowercase());
                    any = true;
                    i += 1;
                } else {
                    // A whole multi-byte UTF-8 character passes through
                    // verbatim (case folding beyond ASCII is not needed for
                    // SQL); continuation bytes are ≥ 0x80 so none of them can
                    // be mistaken for a poppable ' ' or ';'.
                    let mut end = i + 1;
                    while end < bytes.len() && (bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    tail.flush(sink);
                    for &cb in &bytes[i..end] {
                        sink.byte(cb);
                    }
                    any = true;
                    i = end;
                }
            }
        }
    }
    // Whatever is still deferred is the trailing `;`/space run: dropped.
    let _ = tail.is_empty();
}

struct StringSink {
    out: Vec<u8>,
}

impl NormSink for StringSink {
    fn byte(&mut self, b: u8) {
        self.out.push(b);
    }

    fn str_lit(&mut self, raw: &str) {
        self.out.extend_from_slice(raw.as_bytes());
    }
}

/// Normalizes raw SQL text for duplicate comparison.
///
/// * runs of whitespace collapse to a single space,
/// * `--` and `/* */` comments are dropped,
/// * characters outside single-quoted strings are lower-cased,
/// * string literals are preserved byte-for-byte,
/// * leading/trailing whitespace and trailing semicolons are trimmed.
pub fn normalize_sql_text(sql: &str) -> String {
    let mut sink = StringSink {
        out: Vec::with_capacity(sql.len()),
    };
    normalize_scan(sql, &mut sink);
    // The scan copies whole UTF-8 characters and only folds ASCII case, so
    // the collected bytes are valid UTF-8 whenever the input was.
    String::from_utf8(sink.out).expect("normalized text is valid UTF-8")
}

struct FnvSink {
    h: Fnv1a,
}

impl NormSink for FnvSink {
    fn byte(&mut self, b: u8) {
        self.h.update(&[b]);
    }

    fn str_lit(&mut self, raw: &str) {
        self.h.update(raw.as_bytes());
    }
}

/// Fingerprint of the normalized text — the duplicate-detection identity.
///
/// Streams the normalization scan straight into the hasher: no intermediate
/// `String` is built, so fingerprinting an entry is a single allocation-free
/// pass. Equal to `Fingerprint::of_str(&normalize_sql_text(sql))` by
/// construction (both consume the same sink stream).
pub fn text_fingerprint(sql: &str) -> Fingerprint {
    let mut sink = FnvSink { h: Fnv1a::new() };
    normalize_scan(sql, &mut sink);
    sink.h.finish()
}

/// Shape sink: hashes the normalized stream with literals collapsed.
///
/// The sink re-tokenizes literals from the normalized *byte stream* itself —
/// including its own string-literal state machine — rather than reusing the
/// scanner's tokenization events. That distinction is load-bearing: the
/// normalized text of `''/*x*/''` is `''''`, which re-tokenizes as a single
/// string literal even though the raw text held two, so any shape computed
/// from raw-text token boundaries would split that normalize-equal pair.
/// Consuming only normalized bytes makes the key a pure function of the
/// normalized text, which (with text-level idempotence of normalization)
/// gives the soundness property the dedup prefilter needs.
///
/// Number tokens are recognized the same way (a digit not continuing a word
/// opens a number; digits, hex letters, `.`/`x`/`e` continuations and
/// exponent signs extend it) and collapse to [`SHAPE_NUM`]; string literals
/// collapse to [`SHAPE_STR`].
struct ShapeSink {
    h: u64,
    len: u32,
    literals: u32,
    /// Previous hashed byte continued a word (identifier characters and
    /// multi-byte text), so a following digit does not open a number token.
    word: bool,
    /// Inside a number token; holds the previous swallowed byte so exponent
    /// signs (`1e+5`) are only consumed right after `e`/`E`.
    num_last: Option<u8>,
    /// String-literal state over the normalized stream.
    str_mode: StrMode,
}

#[derive(PartialEq)]
enum StrMode {
    /// Outside any string literal.
    Plain,
    /// Inside a string literal (its placeholder already hashed).
    InStr,
    /// Saw a quote inside a literal; the next byte decides `''` escape
    /// (stay inside) vs. close (re-process the byte as plain text).
    Quote,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl ShapeSink {
    fn new() -> Self {
        ShapeSink {
            h: FNV_OFFSET,
            len: 0,
            literals: 0,
            word: false,
            num_last: None,
            str_mode: StrMode::Plain,
        }
    }

    fn hash(&mut self, b: u8) {
        self.h ^= u64::from(b);
        self.h = self.h.wrapping_mul(FNV_PRIME);
        self.len = self.len.saturating_add(1);
    }

    fn key(&self) -> RawKey {
        RawKey {
            hash: self.h,
            len: self.len,
            literals: self.literals,
        }
    }

    fn continues_number(last: u8, b: u8) -> bool {
        match b {
            b'0'..=b'9' | b'.' => true,
            b'a'..=b'f' | b'A'..=b'F' | b'x' | b'X' => true,
            b'+' | b'-' => matches!(last, b'e' | b'E'),
            _ => false,
        }
    }
}

impl NormSink for ShapeSink {
    fn byte(&mut self, b: u8) {
        match self.str_mode {
            StrMode::InStr => {
                if b == b'\'' {
                    self.str_mode = StrMode::Quote;
                }
                return;
            }
            StrMode::Quote => {
                if b == b'\'' {
                    // '' escape: still inside the literal.
                    self.str_mode = StrMode::InStr;
                    return;
                }
                // The previous quote closed the literal; fall through and
                // process this byte as plain text.
                self.str_mode = StrMode::Plain;
            }
            StrMode::Plain => {}
        }
        if let Some(last) = self.num_last {
            if Self::continues_number(last, b) {
                self.num_last = Some(b);
                return;
            }
            self.num_last = None;
        }
        if b == b'\'' {
            self.literals = self.literals.saturating_add(1);
            self.hash(SHAPE_STR);
            self.word = false;
            self.str_mode = StrMode::InStr;
            return;
        }
        if b.is_ascii_digit() && !self.word {
            self.num_last = Some(b);
            self.literals = self.literals.saturating_add(1);
            self.hash(SHAPE_NUM);
            self.word = true;
            return;
        }
        self.hash(b);
        self.word = b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80;
    }
}

/// The dedup prefilter's shape key: the normalized text with literals
/// collapsed to placeholders, hashed allocation-free in one pass.
///
/// Guarantee (the prefilter's soundness argument): the scan is a
/// deterministic function of the [`normalize_sql_text`] output stream, and
/// normalization is idempotent, so
///
/// ```text
/// normalize(a) == normalize(b)  ⇒  dedup_shape_scan(a) == dedup_shape_scan(b)
/// ```
///
/// for *all* inputs — including trailing semicolons, comment-glued tokens,
/// unterminated strings/comments and other hostile shapes. The converse does
/// not hold (two statements differing only in literal values share a key);
/// the prefilter resolves such collisions with full fingerprints, so a
/// coarser key costs time, never correctness.
pub fn dedup_shape_scan(sql: &str) -> RawKey {
    let mut sink = ShapeSink::new();
    normalize_scan(sql, &mut sink);
    sink.key()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collapses_whitespace_and_case() {
        assert_eq!(
            normalize_sql_text("SELECT  a\n FROM\tT  WHERE x=1 ;"),
            "select a from t where x=1"
        );
    }

    #[test]
    fn preserves_string_literals() {
        assert_eq!(
            normalize_sql_text("SELECT 'It''s  HERE' FROM t"),
            "select 'It''s  HERE' from t"
        );
    }

    #[test]
    fn strips_comments() {
        assert_eq!(
            normalize_sql_text("SELECT a -- comment\nFROM t /* block */ WHERE x = 1"),
            "select a from t where x = 1"
        );
    }

    #[test]
    fn reload_variants_share_a_fingerprint() {
        // A web-form reload often differs only in whitespace/casing.
        assert_eq!(
            text_fingerprint("SELECT objid FROM photoprimary WHERE objid = 5"),
            text_fingerprint("select OBJID\n  from PhotoPrimary where objid = 5")
        );
    }

    #[test]
    fn different_constants_differ() {
        assert_ne!(
            text_fingerprint("SELECT a FROM t WHERE x = 1"),
            text_fingerprint("SELECT a FROM t WHERE x = 2")
        );
    }

    #[test]
    fn preserves_multibyte_characters() {
        assert_eq!(
            normalize_sql_text("SELECT Größe FROM Tabelle -- ¡hola!"),
            "select gröSSe from tabelle".replace("SS", "ß")
        );
        // Idempotence on non-ASCII input.
        let once = normalize_sql_text("¡SELECT α FROM t!");
        assert_eq!(normalize_sql_text(&once), once);
    }

    #[test]
    fn survives_malformed_input() {
        // Normalization is used *before* parsing; it must accept anything.
        assert_eq!(normalize_sql_text("/* unterminated"), "");
        assert_eq!(normalize_sql_text("'unterminated"), "'unterminated");
        assert_eq!(normalize_sql_text(""), "");
        assert_eq!(normalize_sql_text("   "), "");
    }

    /// The streaming fingerprint must equal hashing the built string — the
    /// contract that lets dedup skip the allocation.
    #[test]
    fn streaming_fingerprint_matches_string_path() {
        let cases = [
            "SELECT  a\n FROM\tT  WHERE x=1 ;",
            "SELECT 'It''s  HERE' FROM t",
            "SELECT a -- comment\nFROM t /* block */ WHERE x = 1",
            "SELECT Größe FROM Tabelle -- ¡hola!",
            "/* unterminated",
            "'unterminated",
            "'unterminated trailing ; ; ",
            "",
            "   ",
            ";",
            " ; ; ;",
            "x ; ; ;",
            ";;;;;;;;;;;;;;;;;;;;;;;;;;;;;;;;;;;;;;;;x",
            "SELECT 1;--comment",
            "SELECT 1 /* x /* y */ z */",
            "a/*c*/b",
            "a--c\nb",
            "[A  B] = 'q;' ; ",
        ];
        for sql in cases {
            assert_eq!(
                text_fingerprint(sql),
                Fingerprint::of_str(&normalize_sql_text(sql)),
                "fingerprint mismatch for {sql:?}"
            );
        }
    }

    /// Equal normalized text must imply equal shape keys (the prefilter
    /// soundness direction), exercised on the adversarial pairs where the
    /// lexer-mirroring rawkey scan would disagree.
    #[test]
    fn shape_key_is_sound_on_normalize_equal_pairs() {
        let pairs = [
            ("SELECT 1;", "SELECT 1"),
            ("SELECT 1;--comment", "SELECT 1"),
            ("SELECT 1 ; ; ", "SELECT 1"),
            ("a/*c*/b", "ab"),
            ("a--c\nb", "a b"),
            ("SELECT 1 /* x /* y */ z */", "SELECT 1 z */"),
            ("[A  B]", "[a b]"),
            ("SELECT A FROM T", "select a from t"),
            ("/* unterminated", ""),
            ("x 'abc ", "x 'abc"),
        ];
        for (a, b) in pairs {
            assert_eq!(
                normalize_sql_text(a),
                normalize_sql_text(b),
                "test pair is not normalize-equal: {a:?} vs {b:?}"
            );
            assert_eq!(
                dedup_shape_scan(a),
                dedup_shape_scan(b),
                "shape key split a normalize-equal pair: {a:?} vs {b:?}"
            );
        }
    }

    /// The shape scan factors through normalization (idempotence makes the
    /// general soundness property testable one input at a time).
    #[test]
    fn shape_key_is_invariant_under_normalization() {
        let cases = [
            "SELECT name FROM Employee WHERE empId = 8;",
            "select COUNT(*) from t where x = 0x1F and y = 1.5e-3",
            "SELECT 'It''s  HERE' FROM t /* c */ ;",
            "INSERT INTO t VALUES (1, 'a'), (2, 'b')",
            "'unterminated with ; inside",
            "@x = @y",
            "¡SELECT α FROM t! WHERE n = 42",
        ];
        for sql in cases {
            assert_eq!(
                dedup_shape_scan(sql),
                dedup_shape_scan(&normalize_sql_text(sql)),
                "shape not normalize-invariant for {sql:?}"
            );
        }
    }

    /// Literal values must not reach the shape hash (that selectivity is
    /// resolved by full fingerprints inside a bucket), while shape-changing
    /// edits must change the key.
    #[test]
    fn shape_key_collapses_literals_only() {
        let k = |s| dedup_shape_scan(s);
        assert_eq!(
            k("SELECT a FROM t WHERE x = 1"),
            k("SELECT a FROM t WHERE x = 29941")
        );
        assert_eq!(
            k("SELECT a FROM t WHERE s = 'abc'"),
            k("SELECT a FROM t WHERE s = 'zzzzzz'")
        );
        assert_ne!(
            k("SELECT a FROM t WHERE x = 1"),
            k("SELECT b FROM t WHERE x = 1")
        );
        assert_ne!(
            k("SELECT a FROM t WHERE x = 1"),
            k("SELECT a FROM t WHERE x = 'one'")
        );
        // Word-glued digits are part of the identifier, not a literal.
        assert_ne!(k("SELECT a1 FROM t"), k("SELECT a2 FROM t"));
    }
}
