//! Property tests: the TSV log format round-trips arbitrary content.

use proptest::prelude::*;
use sqlog_log::{read_log, write_log, GroundTruth, IntentKind, LogEntry, QueryLog, Timestamp};

fn intent_strategy() -> impl Strategy<Value = IntentKind> {
    prop_oneof![
        Just(IntentKind::Human),
        Just(IntentKind::WebUi),
        Just(IntentKind::StifleDw),
        Just(IntentKind::StifleDs),
        Just(IntentKind::StifleDf),
        Just(IntentKind::CthSource),
        Just(IntentKind::CthFollowUp),
        Just(IntentKind::CthCoincidental),
        Just(IntentKind::Sws),
        Just(IntentKind::Duplicate),
        Just(IntentKind::NonSelect),
        Just(IntentKind::Malformed),
        Just(IntentKind::Snc),
    ]
}

fn entry_strategy() -> impl Strategy<Value = LogEntry> {
    (
        any::<u64>(),
        // Statements with every escaping hazard: tabs, newlines, CRs,
        // backslashes, unicode.
        ".{0,80}",
        any::<i64>().prop_map(|ms| ms % 10_000_000_000_000),
        prop::option::of("[0-9.]{1,15}"),
        prop::option::of("[a-z0-9-]{1,10}"),
        prop::option::of(any::<u64>()),
        prop::option::of((intent_strategy(), any::<u64>())),
    )
        .prop_map(|(id, statement, ms, user, session, rows, truth)| LogEntry {
            id,
            statement,
            timestamp: Timestamp::from_millis(ms),
            user,
            session,
            rows,
            truth: truth.map(|(kind, group)| GroundTruth { kind, group }),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tsv_round_trip(entries in prop::collection::vec(entry_strategy(), 0..40)) {
        let log = QueryLog::from_entries(entries);
        let mut buf = Vec::new();
        write_log(&log, &mut buf).unwrap();
        let back = read_log(&buf[..]).unwrap();
        prop_assert_eq!(log, back);
    }

    #[test]
    fn sort_is_idempotent_and_total(entries in prop::collection::vec(entry_strategy(), 0..40)) {
        let mut log = QueryLog::from_entries(entries);
        log.sort_by_time();
        prop_assert!(log.is_time_sorted());
        let snapshot = log.clone();
        log.sort_by_time();
        prop_assert_eq!(log, snapshot);
    }
}
