//! Atomic file writes: temp file + fsync + rename.
//!
//! A crashed run must never leave a truncated file at a destination path —
//! readers either see the complete old contents, the complete new contents,
//! or no file at all. The recipe is the classic one: write everything to
//! `<path>.tmp` in the same directory, `fsync` the file, rename it over the
//! destination, and (on Unix) `fsync` the directory so the rename itself
//! survives a power cut. The checkpointed runner builds its torn-write
//! detection on top of this, and every final artifact (clean log, removal
//! log, quarantine sidecar, stats JSON, NDJSON trace) goes through it.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

/// A file being written atomically: writes land in `<path>.tmp`, and only
/// [`AtomicFile::commit`] makes them visible at `path`.
///
/// Creating the value opens the temp file immediately, so an unwritable
/// destination fails fast — before any expensive work produces the bytes.
/// Dropping without committing removes the temp file (best effort), so an
/// abandoned write leaves nothing behind.
pub struct AtomicFile {
    path: PathBuf,
    tmp_path: PathBuf,
    writer: Option<BufWriter<File>>,
}

impl AtomicFile {
    /// Opens `<path>.tmp` for writing. The destination is untouched until
    /// [`AtomicFile::commit`].
    pub fn create(path: impl AsRef<Path>) -> io::Result<AtomicFile> {
        let path = path.as_ref().to_path_buf();
        let mut tmp_os = path.as_os_str().to_owned();
        tmp_os.push(".tmp");
        let tmp_path = PathBuf::from(tmp_os);
        let writer = BufWriter::new(File::create(&tmp_path)?);
        Ok(AtomicFile {
            path,
            tmp_path,
            writer: Some(writer),
        })
    }

    /// The destination path this file will be committed to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Flushes, fsyncs, and renames the temp file over the destination.
    /// After this returns, the destination holds the complete contents.
    pub fn commit(mut self) -> io::Result<()> {
        let writer = self.writer.take().expect("commit consumes the writer");
        let file = writer
            .into_inner()
            .map_err(|e| io::Error::other(e.to_string()))?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&self.tmp_path, &self.path)?;
        sync_parent_dir(&self.path);
        Ok(())
    }
}

impl Write for AtomicFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.writer.as_mut().expect("write after commit").write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.writer.as_mut().expect("flush after commit").flush()
    }
}

impl Drop for AtomicFile {
    fn drop(&mut self) {
        if self.writer.take().is_some() {
            // Uncommitted: drop the buffered writer first, then remove the
            // temp file so an abandoned write leaves no debris.
            let _ = std::fs::remove_file(&self.tmp_path);
        }
    }
}

/// Fsyncs the parent directory of `path` so a just-committed rename is
/// durable. Best effort: directory fsync is a Unix notion; elsewhere (and
/// on filesystems that reject it) the rename alone is the best we can do.
fn sync_parent_dir(path: &Path) {
    #[cfg(unix)]
    if let Some(parent) = path.parent() {
        let parent = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    #[cfg(not(unix))]
    let _ = path;
}

/// Writes `bytes` to `path` atomically (temp file + fsync + rename).
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let mut f = AtomicFile::create(path)?;
    f.write_all(bytes)?;
    f.commit()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sqlog_atomic_{}_{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn commit_makes_contents_visible() {
        let dir = scratch("commit");
        let path = dir.join("out.txt");
        let mut f = AtomicFile::create(&path).unwrap();
        f.write_all(b"hello").unwrap();
        assert!(!path.exists(), "destination must not exist before commit");
        f.commit().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        assert!(!dir.join("out.txt.tmp").exists(), "temp file must be gone");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drop_without_commit_leaves_nothing() {
        let dir = scratch("drop");
        let path = dir.join("out.txt");
        {
            let mut f = AtomicFile::create(&path).unwrap();
            f.write_all(b"partial").unwrap();
        }
        assert!(!path.exists());
        assert!(!dir.join("out.txt.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn commit_replaces_existing_file_completely() {
        let dir = scratch("replace");
        let path = dir.join("out.txt");
        std::fs::write(&path, b"old contents, longer than the new ones").unwrap();
        atomic_write(&path, b"new").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"new");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unwritable_destination_fails_at_create() {
        let missing = Path::new("/definitely/not/a/dir/out.txt");
        assert!(AtomicFile::create(missing).is_err());
    }
}
