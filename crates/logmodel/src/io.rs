//! On-disk log format: tab-separated values, one entry per line.
//!
//! Column order: `id`, `timestamp_ms`, `user`, `session`, `rows`, `truth`,
//! `statement`. Empty fields encode `None`. The statement comes last and is
//! escaped (`\t`, `\n`, `\r`, `\\`) so multi-line SQL survives. Reading and
//! writing are streaming (buffered), so multi-million-entry logs do not need
//! to be materialized twice.

use crate::entry::{GroundTruth, IntentKind, LogEntry};
use crate::log::QueryLog;
use crate::time::Timestamp;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from log I/O.
#[derive(Debug)]
pub enum IoFormatError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line (1-based line number and description).
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A line that is not valid UTF-8 (1-based line number).
    ///
    /// Distinct from [`IoFormatError::Malformed`] so that lenient readers
    /// can count encoding damage separately from structural damage, and so
    /// strict callers get a precise diagnostic.
    InvalidUtf8 {
        /// 1-based line number.
        line: usize,
    },
}

impl IoFormatError {
    /// True for per-line data faults (malformed or mis-encoded lines) that a
    /// lenient reader can skip; false for real I/O failures, which abort
    /// reading under every policy.
    pub fn is_data_fault(&self) -> bool {
        matches!(
            self,
            IoFormatError::Malformed { .. } | IoFormatError::InvalidUtf8 { .. }
        )
    }
}

impl std::fmt::Display for IoFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoFormatError::Io(e) => write!(f, "I/O error: {e}"),
            IoFormatError::Malformed { line, message } => {
                write!(f, "malformed log line {line}: {message}")
            }
            IoFormatError::InvalidUtf8 { line } => {
                write!(f, "log line {line} is not valid UTF-8")
            }
        }
    }
}

impl std::error::Error for IoFormatError {}

impl From<io::Error> for IoFormatError {
    fn from(e: io::Error) -> Self {
        IoFormatError::Io(e)
    }
}

fn escape(statement: &str, out: &mut String) {
    for c in statement.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
}

fn unescape(field: &str) -> String {
    // Most statements contain no escapes at all; skip the char-by-char
    // rebuild for them.
    if !field.as_bytes().contains(&b'\\') {
        return field.to_string();
    }
    let mut out = String::with_capacity(field.len());
    let mut chars = field.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('t') => out.push('\t'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn intent_to_str(kind: IntentKind) -> &'static str {
    match kind {
        IntentKind::Human => "human",
        IntentKind::WebUi => "webui",
        IntentKind::StifleDw => "stifle_dw",
        IntentKind::StifleDs => "stifle_ds",
        IntentKind::StifleDf => "stifle_df",
        IntentKind::CthSource => "cth_source",
        IntentKind::CthFollowUp => "cth_followup",
        IntentKind::CthCoincidental => "cth_coincidental",
        IntentKind::Sws => "sws",
        IntentKind::Duplicate => "duplicate",
        IntentKind::NonSelect => "non_select",
        IntentKind::Malformed => "malformed",
        IntentKind::Snc => "snc",
    }
}

fn intent_from_str(s: &str) -> Option<IntentKind> {
    Some(match s {
        "human" => IntentKind::Human,
        "webui" => IntentKind::WebUi,
        "stifle_dw" => IntentKind::StifleDw,
        "stifle_ds" => IntentKind::StifleDs,
        "stifle_df" => IntentKind::StifleDf,
        "cth_source" => IntentKind::CthSource,
        "cth_followup" => IntentKind::CthFollowUp,
        "cth_coincidental" => IntentKind::CthCoincidental,
        "sws" => IntentKind::Sws,
        "duplicate" => IntentKind::Duplicate,
        "non_select" => IntentKind::NonSelect,
        "malformed" => IntentKind::Malformed,
        "snc" => IntentKind::Snc,
        _ => return None,
    })
}

/// Writes a log to any writer in the TSV format.
pub fn write_log<W: Write>(log: &QueryLog, writer: W) -> Result<(), IoFormatError> {
    let mut w = BufWriter::new(writer);
    let mut buf = String::new();
    for e in &log.entries {
        buf.clear();
        buf.push_str(&e.id.to_string());
        buf.push('\t');
        buf.push_str(&e.timestamp.millis().to_string());
        buf.push('\t');
        if let Some(u) = &e.user {
            buf.push_str(u);
        }
        buf.push('\t');
        if let Some(s) = &e.session {
            buf.push_str(s);
        }
        buf.push('\t');
        if let Some(r) = e.rows {
            buf.push_str(&r.to_string());
        }
        buf.push('\t');
        if let Some(t) = e.truth {
            buf.push_str(intent_to_str(t.kind));
            buf.push(':');
            buf.push_str(&t.group.to_string());
        }
        buf.push('\t');
        escape(&e.statement, &mut buf);
        buf.push('\n');
        w.write_all(buf.as_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a log from any reader in the TSV format, aborting on the first
/// malformed line (strict policy).
pub fn read_log<R: Read>(reader: R) -> Result<QueryLog, IoFormatError> {
    let mut log = QueryLog::new();
    for entry in LogReader::new(reader) {
        log.push(entry?);
    }
    Ok(log)
}

/// How ingestion treats per-line data faults (malformed fields, invalid
/// UTF-8).
///
/// Raw logs at SkyServer scale are hostile: truncated writes, encoding
/// damage and tool glitches are routine in tens of millions of lines, and a
/// cleaning framework that aborts on the first bad byte never finishes a
/// real run. The strict policy pins the historical fail-fast behavior; the
/// lenient policy trades it for run-to-completion with full accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IngestPolicy {
    /// Abort on the first bad line (the historical behavior).
    #[default]
    Strict,
    /// Skip bad lines, optionally copying them to a quarantine sidecar, and
    /// report counts.
    Lenient,
}

/// Accounting from one [`read_log_with`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Non-blank lines examined.
    pub lines: usize,
    /// Entries successfully parsed.
    pub entries: usize,
    /// Lines skipped as unreadable (lenient mode only; strict aborts
    /// instead). Always `malformed + invalid_utf8`.
    pub quarantined: usize,
    /// Quarantined lines with structural damage (bad field count/values).
    pub malformed: usize,
    /// Quarantined lines that were not valid UTF-8.
    pub invalid_utf8: usize,
}

/// Reads a log under an explicit [`IngestPolicy`].
///
/// Under [`IngestPolicy::Lenient`], lines that fail to parse are skipped
/// and counted instead of aborting the read; when `quarantine` is given,
/// each skipped line's raw bytes are copied to it byte-verbatim, including
/// the original line terminator (`\n` or `\r\n`; a terminator-less final
/// line is copied as-is), so the damage can be inspected or repaired and
/// re-ingested later without the sidecar itself rewriting anything. Real
/// I/O errors abort under both policies.
pub fn read_log_with<R: Read>(
    reader: R,
    policy: IngestPolicy,
    mut quarantine: Option<&mut dyn Write>,
) -> Result<(QueryLog, IngestStats), IoFormatError> {
    let mut log = QueryLog::new();
    let mut stats = IngestStats::default();
    let mut reader = LogReader::new(reader);
    while let Some(item) = reader.next() {
        stats.lines += 1;
        match item {
            Ok(entry) => {
                stats.entries += 1;
                log.push(entry);
            }
            Err(e) if policy == IngestPolicy::Lenient && e.is_data_fault() => {
                stats.quarantined += 1;
                match &e {
                    IoFormatError::InvalidUtf8 { .. } => stats.invalid_utf8 += 1,
                    _ => stats.malformed += 1,
                }
                if let Some(w) = quarantine.as_deref_mut() {
                    w.write_all(reader.raw_line_bytes())?;
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok((log, stats))
}

/// Result of scanning one in-memory byte segment with [`scan_log_slice`].
///
/// Line numbers inside `error` (and the `lines` statistics) are **local to
/// the segment**: the segmented driver rebases them by the physical line
/// count of the preceding segments.
#[derive(Debug, Default)]
pub struct SegmentOutcome {
    /// Entries parsed, in segment order.
    pub entries: Vec<LogEntry>,
    /// Per-segment ingest accounting.
    pub stats: IngestStats,
    /// Byte-verbatim copies of the quarantined lines, in segment order
    /// (empty unless requested).
    pub quarantine: Vec<u8>,
    /// The data fault that aborted a strict scan, with a segment-local line
    /// number. `None` for completed scans (lenient scans always complete).
    pub error: Option<IoFormatError>,
    /// Physical lines consumed, blank lines included — the rebase offset
    /// for the line numbers of every following segment.
    pub physical_lines: usize,
}

/// Estimated entry capacity for a byte slice: lines counted in the first
/// 64 KiB, extrapolated by length. Pre-sizing the entry vector this way
/// avoids the log-scale reallocation cascade (a 1 M-entry log otherwise
/// re-copies its entry vector ~20 times while growing).
fn estimate_entry_capacity(data: &[u8]) -> usize {
    let probe = &data[..data.len().min(64 * 1024)];
    let newlines = probe.iter().filter(|&&b| b == b'\n').count();
    if newlines == 0 {
        return usize::from(!data.is_empty());
    }
    data.len() / (probe.len() / newlines).max(1) + 1
}

/// Scans one in-memory segment of TSV log bytes, mirroring [`LogReader`] +
/// [`read_log_with`] exactly: blank lines are skipped silently, line
/// numbers count every physical line, quarantined lines are copied
/// byte-verbatim (terminator included) when `want_quarantine` is set, and a
/// strict scan stops at the first data fault (recorded in
/// [`SegmentOutcome::error`] rather than returned, so completed work
/// survives for the segmented driver's merge).
///
/// `segment_ranges` guarantees segments start on line boundaries, which is
/// the only precondition: a slice of the whole file produces exactly what
/// the streaming reader produces.
pub fn scan_log_slice(data: &[u8], policy: IngestPolicy, want_quarantine: bool) -> SegmentOutcome {
    let mut out = SegmentOutcome {
        entries: Vec::with_capacity(estimate_entry_capacity(data)),
        ..SegmentOutcome::default()
    };
    let mut pos = 0usize;
    while pos < data.len() {
        let line_end = match data[pos..].iter().position(|&b| b == b'\n') {
            Some(k) => pos + k + 1,
            None => data.len(),
        };
        let with_term = &data[pos..line_end];
        pos = line_end;
        out.physical_lines += 1;
        let lineno = out.physical_lines;
        let mut end = with_term.len();
        while end > 0 && matches!(with_term[end - 1], b'\n' | b'\r') {
            end -= 1;
        }
        let raw = &with_term[..end];
        if raw.is_empty() {
            continue;
        }
        out.stats.lines += 1;
        let parsed = match std::str::from_utf8(raw) {
            Ok(text) => parse_line(text, lineno),
            Err(_) => Err(IoFormatError::InvalidUtf8 { line: lineno }),
        };
        match parsed {
            Ok(entry) => {
                out.stats.entries += 1;
                out.entries.push(entry);
            }
            Err(e) if policy == IngestPolicy::Lenient && e.is_data_fault() => {
                out.stats.quarantined += 1;
                match &e {
                    IoFormatError::InvalidUtf8 { .. } => out.stats.invalid_utf8 += 1,
                    _ => out.stats.malformed += 1,
                }
                if want_quarantine {
                    out.quarantine.extend_from_slice(with_term);
                }
            }
            Err(e) => {
                out.error = Some(e);
                return out;
            }
        }
    }
    out
}

/// Splits `data` into at most `parts` contiguous byte ranges whose
/// boundaries fall just after a `\n`, so every segment starts at the start
/// of a physical line and [`scan_log_slice`] per segment reproduces the
/// sequential scan. Returns one range for empty input or `parts <= 1`;
/// ranges always cover `0..data.len()` exactly, in order.
pub fn segment_ranges(data: &[u8], parts: usize) -> Vec<std::ops::Range<usize>> {
    let n = data.len();
    if n == 0 || parts <= 1 {
        let whole = 0..n;
        return vec![whole];
    }
    let mut cuts: Vec<usize> = Vec::with_capacity(parts + 1);
    cuts.push(0);
    for k in 1..parts {
        let mut c = (n * k / parts).max(*cuts.last().unwrap()).max(1);
        // Advance to the next line boundary (just past a newline); a cut
        // that reaches the end merges into the final segment.
        while c < n && data[c - 1] != b'\n' {
            c += 1;
        }
        if c > *cuts.last().unwrap() && c < n {
            cuts.push(c);
        }
    }
    cuts.push(n);
    cuts.windows(2).map(|w| w[0]..w[1]).collect()
}

/// Streaming reader: iterates entries one at a time with constant memory —
/// the right tool for multi-gigabyte logs (the SkyServer log at full scale
/// would not fit in RAM on a laptop).
///
/// Lines are read as raw bytes (`read_until`), so a single invalid UTF-8
/// byte yields one [`IoFormatError::InvalidUtf8`] item for that line and
/// the iterator then continues with the next line — it can neither wedge
/// nor lose its place on encoding damage. Callers decide whether an error
/// item is fatal (strict) or skippable (lenient).
pub struct LogReader<R: Read> {
    reader: BufReader<R>,
    line: Vec<u8>,
    lineno: usize,
}

impl<R: Read> LogReader<R> {
    /// Wraps a reader.
    pub fn new(reader: R) -> Self {
        LogReader {
            reader: BufReader::new(reader),
            line: Vec::new(),
            lineno: 0,
        }
    }

    /// The raw bytes (without the line terminator) of the line most recently
    /// yielded by [`Iterator::next`].
    pub fn raw_line(&self) -> &[u8] {
        let mut end = self.line.len();
        while end > 0 && matches!(self.line[end - 1], b'\n' | b'\r') {
            end -= 1;
        }
        &self.line[..end]
    }

    /// The raw bytes of the line most recently yielded, *including* its
    /// original terminator (`\n`, `\r\n`, or nothing for a terminator-less
    /// final line) — the input for byte-verbatim quarantine sidecars.
    pub fn raw_line_bytes(&self) -> &[u8] {
        &self.line
    }

    /// 1-based number of the line most recently yielded.
    pub fn line_number(&self) -> usize {
        self.lineno
    }
}

impl<R: Read> Iterator for LogReader<R> {
    type Item = Result<LogEntry, IoFormatError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.line.clear();
            match self.reader.read_until(b'\n', &mut self.line) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => return Some(Err(IoFormatError::Io(e))),
            }
            self.lineno += 1;
            let raw = self.raw_line();
            if raw.is_empty() {
                continue;
            }
            let Ok(text) = std::str::from_utf8(raw) else {
                return Some(Err(IoFormatError::InvalidUtf8 { line: self.lineno }));
            };
            return Some(parse_line(text, self.lineno));
        }
    }
}

/// Parses one TSV line into an entry.
fn parse_line(line: &str, lineno: usize) -> Result<LogEntry, IoFormatError> {
    let mut fields = line.splitn(7, '\t');
    let mut next = |name: &str| {
        fields.next().ok_or(IoFormatError::Malformed {
            line: lineno,
            message: format!("missing field {name}"),
        })
    };
    let id: u64 = next("id")?.parse().map_err(|e| IoFormatError::Malformed {
        line: lineno,
        message: format!("bad id: {e}"),
    })?;
    let ts: i64 = next("timestamp")?
        .parse()
        .map_err(|e| IoFormatError::Malformed {
            line: lineno,
            message: format!("bad timestamp: {e}"),
        })?;
    let user = next("user")?;
    let session = next("session")?;
    let rows = next("rows")?;
    let truth = next("truth")?;
    let statement = next("statement")?;
    let truth = if truth.is_empty() {
        None
    } else {
        let (kind, group) = truth.split_once(':').ok_or(IoFormatError::Malformed {
            line: lineno,
            message: "truth field must be kind:group".into(),
        })?;
        let kind = intent_from_str(kind).ok_or(IoFormatError::Malformed {
            line: lineno,
            message: format!("unknown intent kind {kind:?}"),
        })?;
        let group = group.parse().map_err(|e| IoFormatError::Malformed {
            line: lineno,
            message: format!("bad truth group: {e}"),
        })?;
        Some(GroundTruth { kind, group })
    };
    Ok(LogEntry {
        id,
        statement: unescape(statement),
        timestamp: Timestamp::from_millis(ts),
        user: (!user.is_empty()).then(|| user.to_string()),
        session: (!session.is_empty()).then(|| session.to_string()),
        rows: if rows.is_empty() {
            None
        } else {
            Some(rows.parse().map_err(|e| IoFormatError::Malformed {
                line: lineno,
                message: format!("bad rows: {e}"),
            })?)
        },
        truth,
    })
}

/// Writes a log to a file path.
pub fn write_log_file(log: &QueryLog, path: impl AsRef<Path>) -> Result<(), IoFormatError> {
    write_log(log, std::fs::File::create(path)?)
}

/// Writes a log to a file path atomically (temp file + fsync + rename): a
/// crash mid-write leaves the destination untouched instead of truncated.
pub fn write_log_file_atomic(log: &QueryLog, path: impl AsRef<Path>) -> Result<(), IoFormatError> {
    let mut f = crate::atomic::AtomicFile::create(path)?;
    write_log(log, &mut f)?;
    f.commit()?;
    Ok(())
}

/// Reads a log from a file path.
///
/// The file is read whole and scanned as a slice ([`scan_log_slice`]) with
/// a pre-sized entry vector — measurably faster than the streaming path at
/// 1 M+ entries and byte-identical to it. Use [`read_log`] on an open
/// reader for logs too large to buffer.
pub fn read_log_file(path: impl AsRef<Path>) -> Result<QueryLog, IoFormatError> {
    let data = std::fs::read(path)?;
    let out = scan_log_slice(&data, IngestPolicy::Strict, false);
    match out.error {
        Some(e) => Err(e),
        None => Ok(QueryLog::from_entries(out.entries)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::IntentKind;

    fn sample_log() -> QueryLog {
        QueryLog::from_entries(vec![
            LogEntry::minimal(0, "SELECT a\nFROM t\tWHERE x = 1", Timestamp::from_secs(10))
                .with_user("10.1.2.3")
                .with_rows(5)
                .with_truth(IntentKind::Human, 1),
            LogEntry::minimal(1, "SELECT 'tab\\here'", Timestamp::from_millis(10_500)),
        ])
    }

    #[test]
    fn round_trips_through_bytes() {
        let log = sample_log();
        let mut buf = Vec::new();
        write_log(&log, &mut buf).unwrap();
        let back = read_log(&buf[..]).unwrap();
        assert_eq!(log, back);
    }

    #[test]
    fn statement_escaping_round_trips() {
        let nasty = "line1\nline2\ttab \\ backslash\rcr";
        let mut out = String::new();
        escape(nasty, &mut out);
        assert!(!out.contains('\n'));
        assert!(!out.contains('\t'));
        assert_eq!(unescape(&out), nasty);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(matches!(
            read_log("not-a-number\t0\t\t\t\t\tSELECT 1\n".as_bytes()),
            Err(IoFormatError::Malformed { line: 1, .. })
        ));
        assert!(matches!(
            read_log("0\t0\t\t\t\n".as_bytes()),
            Err(IoFormatError::Malformed { .. })
        ));
        assert!(matches!(
            read_log("0\t0\t\t\t\tbadtruth\tSELECT 1\n".as_bytes()),
            Err(IoFormatError::Malformed { .. })
        ));
    }

    #[test]
    fn skips_blank_lines() {
        let log = read_log("\n0\t0\t\t\t\t\tSELECT 1\n\n".as_bytes()).unwrap();
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn all_intents_round_trip() {
        for kind in [
            IntentKind::Human,
            IntentKind::WebUi,
            IntentKind::StifleDw,
            IntentKind::StifleDs,
            IntentKind::StifleDf,
            IntentKind::CthSource,
            IntentKind::CthFollowUp,
            IntentKind::CthCoincidental,
            IntentKind::Sws,
            IntentKind::Duplicate,
            IntentKind::NonSelect,
            IntentKind::Malformed,
            IntentKind::Snc,
        ] {
            assert_eq!(intent_from_str(intent_to_str(kind)), Some(kind));
        }
    }

    #[test]
    fn streaming_reader_matches_batch_reader() {
        let log = sample_log();
        let mut buf = Vec::new();
        write_log(&log, &mut buf).unwrap();
        let streamed: Vec<LogEntry> = LogReader::new(&buf[..]).collect::<Result<_, _>>().unwrap();
        assert_eq!(streamed, log.entries);
    }

    #[test]
    fn streaming_reader_reports_bad_lines_and_continues_if_asked() {
        let data = "0\t0\t\t\t\t\tSELECT 1\nbroken line\n1\t5\t\t\t\t\tSELECT 2\n";
        let results: Vec<_> = LogReader::new(data.as_bytes()).collect();
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
    }

    #[test]
    fn invalid_utf8_yields_typed_error_and_reader_continues() {
        // A single 0xFF byte must produce one InvalidUtf8 item for that line
        // and leave the reader positioned on the next line — the regression
        // that motivated switching to read_until(b'\n').
        let mut data = Vec::new();
        data.extend_from_slice(b"0\t0\t\t\t\t\tSELECT 1\n");
        data.extend_from_slice(b"1\t5\t\xFF\t\t\t\tSELECT 2\n");
        data.extend_from_slice(b"2\t9\t\t\t\t\tSELECT 3\n");
        let results: Vec<_> = LogReader::new(&data[..]).collect();
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(IoFormatError::InvalidUtf8 { line: 2 })
        ));
        assert!(results[2].is_ok());
        assert_eq!(results[2].as_ref().unwrap().statement, "SELECT 3");
    }

    #[test]
    fn lenient_ingest_quarantines_bad_lines_with_exact_counts() {
        let mut data = Vec::new();
        data.extend_from_slice(b"0\t0\t\t\t\t\tSELECT 1\n");
        data.extend_from_slice(b"garbage without tabs\n");
        data.extend_from_slice(b"\n"); // blank: skipped silently, not counted
        data.extend_from_slice(b"1\t5\t\xFFbad\t\t\t\tSELECT 2\n");
        data.extend_from_slice(b"2\t9\t\t\t\t\tSELECT 3\n");
        data.extend_from_slice(b"not-a-number\t0\t\t\t\t\tSELECT 4\n");
        let mut sidecar = Vec::new();
        let (log, stats) =
            read_log_with(&data[..], IngestPolicy::Lenient, Some(&mut sidecar)).unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(
            stats,
            IngestStats {
                lines: 5,
                entries: 2,
                quarantined: 3,
                malformed: 2,
                invalid_utf8: 1,
            }
        );
        // The sidecar holds the raw offending lines, byte for byte.
        let mut expected = Vec::new();
        expected.extend_from_slice(b"garbage without tabs\n");
        expected.extend_from_slice(b"1\t5\t\xFFbad\t\t\t\tSELECT 2\n");
        expected.extend_from_slice(b"not-a-number\t0\t\t\t\t\tSELECT 4\n");
        assert_eq!(sidecar, expected);
    }

    #[test]
    fn quarantine_preserves_crlf_and_missing_terminators_byte_verbatim() {
        // CRLF lines must keep their `\r\n` and a terminator-less final line
        // must not gain one: the sidecar is a byte-exact copy of the damage,
        // as the repair-and-re-ingest contract documents.
        let mut data = Vec::new();
        data.extend_from_slice(b"crlf garbage\r\n");
        data.extend_from_slice(b"0\t0\t\t\t\t\tSELECT 1\r\n"); // good CRLF line
        data.extend_from_slice(b"last line, no newline");
        let mut sidecar = Vec::new();
        let (log, stats) =
            read_log_with(&data[..], IngestPolicy::Lenient, Some(&mut sidecar)).unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(stats.quarantined, 2);
        let mut expected = Vec::new();
        expected.extend_from_slice(b"crlf garbage\r\n");
        expected.extend_from_slice(b"last line, no newline");
        assert_eq!(sidecar, expected);
    }

    #[test]
    fn strict_ingest_aborts_on_first_bad_line() {
        let data = "0\t0\t\t\t\t\tSELECT 1\nbroken\n1\t5\t\t\t\t\tSELECT 2\n";
        let err = read_log_with(data.as_bytes(), IngestPolicy::Strict, None).unwrap_err();
        assert!(matches!(err, IoFormatError::Malformed { line: 2, .. }));
        // read_log is the strict wrapper.
        assert!(read_log(data.as_bytes()).is_err());
    }

    #[test]
    fn lenient_ingest_of_clean_input_matches_strict() {
        let log = sample_log();
        let mut buf = Vec::new();
        write_log(&log, &mut buf).unwrap();
        let (back, stats) = read_log_with(&buf[..], IngestPolicy::Lenient, None).unwrap();
        assert_eq!(back, log);
        assert_eq!(stats.quarantined, 0);
        assert_eq!(stats.entries, log.len());
    }

    /// A hostile corpus: good lines, CRLF, blanks, structural damage,
    /// encoding damage, a terminator-less tail.
    fn hostile_corpus() -> Vec<u8> {
        let mut data = Vec::new();
        data.extend_from_slice(b"0\t0\t\t\t\t\tSELECT 1\n");
        data.extend_from_slice(b"garbage without tabs\n");
        data.extend_from_slice(b"\n");
        data.extend_from_slice(b"1\t5\t\xFFbad\t\t\t\tSELECT 2\n");
        data.extend_from_slice(b"crlf garbage\r\n");
        data.extend_from_slice(b"2\t9\t\t\t\t\tSELECT 3\r\n");
        data.extend_from_slice(b"not-a-number\t0\t\t\t\t\tSELECT 4\n");
        data.extend_from_slice(b"3\t11\t\t\t\t\tSELECT a\\nFROM t\n");
        data.extend_from_slice(b"last line, no newline");
        data
    }

    #[test]
    fn slice_scan_matches_streaming_reader_lenient() {
        let data = hostile_corpus();
        let mut sidecar = Vec::new();
        let (log, stats) =
            read_log_with(&data[..], IngestPolicy::Lenient, Some(&mut sidecar)).unwrap();
        let out = scan_log_slice(&data, IngestPolicy::Lenient, true);
        assert!(out.error.is_none());
        assert_eq!(out.entries, log.entries);
        assert_eq!(out.stats, stats);
        assert_eq!(out.quarantine, sidecar);
        assert_eq!(out.physical_lines, 9);
    }

    #[test]
    fn slice_scan_matches_streaming_reader_strict() {
        let data = hostile_corpus();
        let err = read_log_with(&data[..], IngestPolicy::Strict, None).unwrap_err();
        let out = scan_log_slice(&data, IngestPolicy::Strict, false);
        let slice_err = out.error.expect("strict scan must stop at the fault");
        assert_eq!(slice_err.to_string(), err.to_string());
        // Completed work before the fault survives for the driver's merge.
        assert_eq!(out.entries.len(), 1);
        assert_eq!(out.physical_lines, 2);
    }

    #[test]
    fn segment_ranges_cover_and_start_on_line_boundaries() {
        let data = hostile_corpus();
        for parts in [1usize, 2, 3, 5, 8, 64] {
            let ranges = segment_ranges(&data, parts);
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next, "parts {parts}");
                assert!(r.start == 0 || data[r.start - 1] == b'\n', "parts {parts}");
                next = r.end;
            }
            assert_eq!(next, data.len(), "parts {parts}");
        }
        assert_eq!(segment_ranges(b"", 4), vec![0..0]);
        assert_eq!(segment_ranges(b"no newline at all", 4), vec![0..17]);
    }

    #[test]
    fn segmented_scan_concatenates_to_the_sequential_scan() {
        let data = hostile_corpus();
        let whole = scan_log_slice(&data, IngestPolicy::Lenient, true);
        for parts in [2usize, 3, 4, 8] {
            let mut entries = Vec::new();
            let mut stats = IngestStats::default();
            let mut quarantine = Vec::new();
            let mut physical = 0usize;
            for r in segment_ranges(&data, parts) {
                let o = scan_log_slice(&data[r], IngestPolicy::Lenient, true);
                assert!(o.error.is_none());
                entries.extend(o.entries);
                stats.lines += o.stats.lines;
                stats.entries += o.stats.entries;
                stats.quarantined += o.stats.quarantined;
                stats.malformed += o.stats.malformed;
                stats.invalid_utf8 += o.stats.invalid_utf8;
                quarantine.extend_from_slice(&o.quarantine);
                physical += o.physical_lines;
            }
            assert_eq!(entries, whole.entries, "parts {parts}");
            assert_eq!(stats, whole.stats, "parts {parts}");
            assert_eq!(quarantine, whole.quarantine, "parts {parts}");
            assert_eq!(physical, whole.physical_lines, "parts {parts}");
        }
    }

    #[test]
    fn unescape_fast_path_agrees_with_escaped_path() {
        for s in [
            "plain statement",
            "",
            "with \\ one",
            "a\\tb\\nc\\rd\\\\e",
            "tail\\",
        ] {
            let slow = {
                // Reference: the historical char-by-char behavior.
                let mut out = String::new();
                let mut chars = s.chars();
                while let Some(c) = chars.next() {
                    if c == '\\' {
                        match chars.next() {
                            Some('t') => out.push('\t'),
                            Some('n') => out.push('\n'),
                            Some('r') => out.push('\r'),
                            Some('\\') => out.push('\\'),
                            Some(other) => {
                                out.push('\\');
                                out.push(other);
                            }
                            None => out.push('\\'),
                        }
                    } else {
                        out.push(c);
                    }
                }
                out
            };
            assert_eq!(unescape(s), slow, "{s:?}");
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("sqlog_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.tsv");
        let log = sample_log();
        write_log_file(&log, &path).unwrap();
        assert_eq!(read_log_file(&path).unwrap(), log);
        std::fs::remove_file(&path).ok();
    }
}
