//! On-disk log format: tab-separated values, one entry per line.
//!
//! Column order: `id`, `timestamp_ms`, `user`, `session`, `rows`, `truth`,
//! `statement`. Empty fields encode `None`. The statement comes last and is
//! escaped (`\t`, `\n`, `\r`, `\\`) so multi-line SQL survives. Reading and
//! writing are streaming (buffered), so multi-million-entry logs do not need
//! to be materialized twice.

use crate::entry::{GroundTruth, IntentKind, LogEntry};
use crate::log::QueryLog;
use crate::time::Timestamp;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from log I/O.
#[derive(Debug)]
pub enum IoFormatError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line (1-based line number and description).
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl std::fmt::Display for IoFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoFormatError::Io(e) => write!(f, "I/O error: {e}"),
            IoFormatError::Malformed { line, message } => {
                write!(f, "malformed log line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for IoFormatError {}

impl From<io::Error> for IoFormatError {
    fn from(e: io::Error) -> Self {
        IoFormatError::Io(e)
    }
}

fn escape(statement: &str, out: &mut String) {
    for c in statement.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
}

fn unescape(field: &str) -> String {
    let mut out = String::with_capacity(field.len());
    let mut chars = field.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('t') => out.push('\t'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn intent_to_str(kind: IntentKind) -> &'static str {
    match kind {
        IntentKind::Human => "human",
        IntentKind::WebUi => "webui",
        IntentKind::StifleDw => "stifle_dw",
        IntentKind::StifleDs => "stifle_ds",
        IntentKind::StifleDf => "stifle_df",
        IntentKind::CthSource => "cth_source",
        IntentKind::CthFollowUp => "cth_followup",
        IntentKind::CthCoincidental => "cth_coincidental",
        IntentKind::Sws => "sws",
        IntentKind::Duplicate => "duplicate",
        IntentKind::NonSelect => "non_select",
        IntentKind::Malformed => "malformed",
        IntentKind::Snc => "snc",
    }
}

fn intent_from_str(s: &str) -> Option<IntentKind> {
    Some(match s {
        "human" => IntentKind::Human,
        "webui" => IntentKind::WebUi,
        "stifle_dw" => IntentKind::StifleDw,
        "stifle_ds" => IntentKind::StifleDs,
        "stifle_df" => IntentKind::StifleDf,
        "cth_source" => IntentKind::CthSource,
        "cth_followup" => IntentKind::CthFollowUp,
        "cth_coincidental" => IntentKind::CthCoincidental,
        "sws" => IntentKind::Sws,
        "duplicate" => IntentKind::Duplicate,
        "non_select" => IntentKind::NonSelect,
        "malformed" => IntentKind::Malformed,
        "snc" => IntentKind::Snc,
        _ => return None,
    })
}

/// Writes a log to any writer in the TSV format.
pub fn write_log<W: Write>(log: &QueryLog, writer: W) -> Result<(), IoFormatError> {
    let mut w = BufWriter::new(writer);
    let mut buf = String::new();
    for e in &log.entries {
        buf.clear();
        buf.push_str(&e.id.to_string());
        buf.push('\t');
        buf.push_str(&e.timestamp.millis().to_string());
        buf.push('\t');
        if let Some(u) = &e.user {
            buf.push_str(u);
        }
        buf.push('\t');
        if let Some(s) = &e.session {
            buf.push_str(s);
        }
        buf.push('\t');
        if let Some(r) = e.rows {
            buf.push_str(&r.to_string());
        }
        buf.push('\t');
        if let Some(t) = e.truth {
            buf.push_str(intent_to_str(t.kind));
            buf.push(':');
            buf.push_str(&t.group.to_string());
        }
        buf.push('\t');
        escape(&e.statement, &mut buf);
        buf.push('\n');
        w.write_all(buf.as_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a log from any reader in the TSV format.
pub fn read_log<R: Read>(reader: R) -> Result<QueryLog, IoFormatError> {
    let mut log = QueryLog::new();
    for entry in LogReader::new(reader) {
        log.push(entry?);
    }
    Ok(log)
}

/// Streaming reader: iterates entries one at a time with constant memory —
/// the right tool for multi-gigabyte logs (the SkyServer log at full scale
/// would not fit in RAM on a laptop).
pub struct LogReader<R: Read> {
    reader: BufReader<R>,
    line: String,
    lineno: usize,
}

impl<R: Read> LogReader<R> {
    /// Wraps a reader.
    pub fn new(reader: R) -> Self {
        LogReader {
            reader: BufReader::new(reader),
            line: String::new(),
            lineno: 0,
        }
    }
}

impl<R: Read> Iterator for LogReader<R> {
    type Item = Result<LogEntry, IoFormatError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.line.clear();
            match self.reader.read_line(&mut self.line) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => return Some(Err(IoFormatError::Io(e))),
            }
            self.lineno += 1;
            let trimmed = self.line.trim_end_matches(['\n', '\r']);
            if trimmed.is_empty() {
                continue;
            }
            return Some(parse_line(trimmed, self.lineno));
        }
    }
}

/// Parses one TSV line into an entry.
fn parse_line(line: &str, lineno: usize) -> Result<LogEntry, IoFormatError> {
    let mut fields = line.splitn(7, '\t');
    let mut next = |name: &str| {
        fields.next().ok_or(IoFormatError::Malformed {
            line: lineno,
            message: format!("missing field {name}"),
        })
    };
    let id: u64 = next("id")?.parse().map_err(|e| IoFormatError::Malformed {
        line: lineno,
        message: format!("bad id: {e}"),
    })?;
    let ts: i64 = next("timestamp")?
        .parse()
        .map_err(|e| IoFormatError::Malformed {
            line: lineno,
            message: format!("bad timestamp: {e}"),
        })?;
    let user = next("user")?;
    let session = next("session")?;
    let rows = next("rows")?;
    let truth = next("truth")?;
    let statement = next("statement")?;
    let truth = if truth.is_empty() {
        None
    } else {
        let (kind, group) = truth.split_once(':').ok_or(IoFormatError::Malformed {
            line: lineno,
            message: "truth field must be kind:group".into(),
        })?;
        let kind = intent_from_str(kind).ok_or(IoFormatError::Malformed {
            line: lineno,
            message: format!("unknown intent kind {kind:?}"),
        })?;
        let group = group.parse().map_err(|e| IoFormatError::Malformed {
            line: lineno,
            message: format!("bad truth group: {e}"),
        })?;
        Some(GroundTruth { kind, group })
    };
    Ok(LogEntry {
        id,
        statement: unescape(statement),
        timestamp: Timestamp::from_millis(ts),
        user: (!user.is_empty()).then(|| user.to_string()),
        session: (!session.is_empty()).then(|| session.to_string()),
        rows: if rows.is_empty() {
            None
        } else {
            Some(rows.parse().map_err(|e| IoFormatError::Malformed {
                line: lineno,
                message: format!("bad rows: {e}"),
            })?)
        },
        truth,
    })
}

/// Writes a log to a file path.
pub fn write_log_file(log: &QueryLog, path: impl AsRef<Path>) -> Result<(), IoFormatError> {
    write_log(log, std::fs::File::create(path)?)
}

/// Reads a log from a file path.
pub fn read_log_file(path: impl AsRef<Path>) -> Result<QueryLog, IoFormatError> {
    read_log(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::IntentKind;

    fn sample_log() -> QueryLog {
        QueryLog::from_entries(vec![
            LogEntry::minimal(0, "SELECT a\nFROM t\tWHERE x = 1", Timestamp::from_secs(10))
                .with_user("10.1.2.3")
                .with_rows(5)
                .with_truth(IntentKind::Human, 1),
            LogEntry::minimal(1, "SELECT 'tab\\here'", Timestamp::from_millis(10_500)),
        ])
    }

    #[test]
    fn round_trips_through_bytes() {
        let log = sample_log();
        let mut buf = Vec::new();
        write_log(&log, &mut buf).unwrap();
        let back = read_log(&buf[..]).unwrap();
        assert_eq!(log, back);
    }

    #[test]
    fn statement_escaping_round_trips() {
        let nasty = "line1\nline2\ttab \\ backslash\rcr";
        let mut out = String::new();
        escape(nasty, &mut out);
        assert!(!out.contains('\n'));
        assert!(!out.contains('\t'));
        assert_eq!(unescape(&out), nasty);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(matches!(
            read_log("not-a-number\t0\t\t\t\t\tSELECT 1\n".as_bytes()),
            Err(IoFormatError::Malformed { line: 1, .. })
        ));
        assert!(matches!(
            read_log("0\t0\t\t\t\n".as_bytes()),
            Err(IoFormatError::Malformed { .. })
        ));
        assert!(matches!(
            read_log("0\t0\t\t\t\tbadtruth\tSELECT 1\n".as_bytes()),
            Err(IoFormatError::Malformed { .. })
        ));
    }

    #[test]
    fn skips_blank_lines() {
        let log = read_log("\n0\t0\t\t\t\t\tSELECT 1\n\n".as_bytes()).unwrap();
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn all_intents_round_trip() {
        for kind in [
            IntentKind::Human,
            IntentKind::WebUi,
            IntentKind::StifleDw,
            IntentKind::StifleDs,
            IntentKind::StifleDf,
            IntentKind::CthSource,
            IntentKind::CthFollowUp,
            IntentKind::CthCoincidental,
            IntentKind::Sws,
            IntentKind::Duplicate,
            IntentKind::NonSelect,
            IntentKind::Malformed,
            IntentKind::Snc,
        ] {
            assert_eq!(intent_from_str(intent_to_str(kind)), Some(kind));
        }
    }

    #[test]
    fn streaming_reader_matches_batch_reader() {
        let log = sample_log();
        let mut buf = Vec::new();
        write_log(&log, &mut buf).unwrap();
        let streamed: Vec<LogEntry> = LogReader::new(&buf[..]).collect::<Result<_, _>>().unwrap();
        assert_eq!(streamed, log.entries);
    }

    #[test]
    fn streaming_reader_reports_bad_lines_and_continues_if_asked() {
        let data = "0\t0\t\t\t\t\tSELECT 1\nbroken line\n1\t5\t\t\t\t\tSELECT 2\n";
        let results: Vec<_> = LogReader::new(data.as_bytes()).collect();
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("sqlog_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.tsv");
        let log = sample_log();
        write_log_file(&log, &path).unwrap();
        assert_eq!(read_log_file(&path).unwrap(), log);
        std::fs::remove_file(&path).ok();
    }
}
