//! Log entries and (for synthetic logs) ground-truth labels.

use crate::time::Timestamp;
use serde::{Deserialize, Serialize};

/// What the workload generator *meant* a statement to be.
///
/// Real logs never carry this; the synthetic SkyServer-like log attaches it
/// so experiments can measure the detector against a known truth — most
/// importantly the CTH precision experiment (§6.6: 28 of 50 candidates were
/// judged real by domain experts; here the generator plays the expert).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntentKind {
    /// An ordinary human-issued query.
    Human,
    /// A query from the SkyServer-style web UI.
    WebUi,
    /// Part of a DW-Stifle run (bot crawler re-querying by key).
    StifleDw,
    /// Part of a DS-Stifle run.
    StifleDs,
    /// Part of a DF-Stifle run.
    StifleDf,
    /// First query of a truly dependent CTH sequence.
    CthSource,
    /// Follow-up query whose constant came from a previous result (real CTH).
    CthFollowUp,
    /// A CTH-*shaped* sequence with no actual dependency (false positive).
    CthCoincidental,
    /// Sliding-window-search robot download.
    Sws,
    /// An unintended resubmission (web-form reload).
    Duplicate,
    /// A DML/DDL statement.
    NonSelect,
    /// A statement with a syntax error.
    Malformed,
    /// `= NULL` / `<> NULL` misuse (SNC antipattern).
    Snc,
}

/// Ground truth attached to a synthetic log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// The generator's intent for this statement.
    pub kind: IntentKind,
    /// Groups the statements of one generated instance (e.g. the source and
    /// follow-ups of one CTH occurrence share a group id).
    pub group: u64,
}

/// One record of the query log.
///
/// Only `statement` and `timestamp` are required — the framework is designed
/// to operate on minimal logs (§6.8). `user` is the client identity (an IP
/// in SkyServer); `rows` is the reported result-row count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogEntry {
    /// Position of the entry in the original log (stable identity).
    pub id: u64,
    /// The SQL statement as logged.
    pub statement: String,
    /// Submission time.
    pub timestamp: Timestamp,
    /// Client identity (IP address in the SkyServer log), if recorded.
    pub user: Option<String>,
    /// Session label, if recorded.
    pub session: Option<String>,
    /// Number of result rows, if recorded.
    pub rows: Option<u64>,
    /// Generator ground truth (synthetic logs only).
    pub truth: Option<GroundTruth>,
}

impl LogEntry {
    /// Creates a minimal entry (statement + timestamp only).
    pub fn minimal(id: u64, statement: impl Into<String>, timestamp: Timestamp) -> Self {
        LogEntry {
            id,
            statement: statement.into(),
            timestamp,
            user: None,
            session: None,
            rows: None,
            truth: None,
        }
    }

    /// Builder-style user assignment.
    pub fn with_user(mut self, user: impl Into<String>) -> Self {
        self.user = Some(user.into());
        self
    }

    /// Builder-style row-count assignment.
    pub fn with_rows(mut self, rows: u64) -> Self {
        self.rows = Some(rows);
        self
    }

    /// Builder-style ground-truth assignment.
    pub fn with_truth(mut self, kind: IntentKind, group: u64) -> Self {
        self.truth = Some(GroundTruth { kind, group });
        self
    }

    /// The user key used for per-user grouping: the recorded user, or a
    /// single synthetic user when the log has no user information (§4.1.1:
    /// "if the log does not contain information on the users, we assume that
    /// one user has issued all queries").
    pub fn user_key(&self) -> &str {
        self.user.as_deref().unwrap_or("")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let e = LogEntry::minimal(7, "SELECT 1", Timestamp::from_secs(5))
            .with_user("10.0.0.1")
            .with_rows(12)
            .with_truth(IntentKind::Human, 3);
        assert_eq!(e.id, 7);
        assert_eq!(e.user.as_deref(), Some("10.0.0.1"));
        assert_eq!(e.rows, Some(12));
        assert_eq!(
            e.truth,
            Some(GroundTruth {
                kind: IntentKind::Human,
                group: 3
            })
        );
    }

    #[test]
    fn missing_user_maps_to_single_synthetic_user() {
        let a = LogEntry::minimal(0, "SELECT 1", Timestamp::from_secs(0));
        let b = LogEntry::minimal(1, "SELECT 2", Timestamp::from_secs(1));
        assert_eq!(a.user_key(), b.user_key());
    }
}
