//! # sqlog-log — query-log data model and I/O
//!
//! The log model consumed and produced by the cleaning framework: entries
//! with statement text, timestamp and optional metadata (user/IP, session,
//! result-row count), the in-memory [`QueryLog`], a streaming TSV reader /
//! writer, and the [`GroundTruth`] labels the synthetic workload generator
//! attaches for evaluation.
//!
//! Mirroring §5.1 of the paper, only statement + timestamp are required;
//! everything else is optional and the framework degrades gracefully
//! (§6.8's "reduced information" experiment runs on [`QueryLog::strip_metadata`]).

#![warn(missing_docs)]

pub mod atomic;
pub mod entry;
pub mod io;
pub mod log;
pub mod time;
pub mod view;

pub use atomic::{atomic_write, AtomicFile};
pub use entry::{GroundTruth, IntentKind, LogEntry};
pub use io::{
    read_log, read_log_file, read_log_with, scan_log_slice, segment_ranges, write_log,
    write_log_file, write_log_file_atomic, IngestPolicy, IngestStats, IoFormatError, LogReader,
    SegmentOutcome,
};
pub use log::QueryLog;
pub use time::{Timestamp, TimestampParseError};
pub use view::LogView;
