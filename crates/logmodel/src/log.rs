//! The in-memory query log.

use crate::entry::LogEntry;
use std::collections::HashMap;

/// An ordered collection of log entries.
///
/// Invariant maintained by [`QueryLog::sort_by_time`] and relied on by the
/// pipeline: entries are ordered by `(timestamp, id)` — `id` breaks ties so
/// that same-second statements keep their original log order, which Def. 8
/// needs ("a pattern is a sequence of statements, not a set", §6.8).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryLog {
    /// The entries, in log order.
    pub entries: Vec<LogEntry>,
}

impl QueryLog {
    /// An empty log.
    pub fn new() -> Self {
        QueryLog::default()
    }

    /// Wraps a vector of entries (does not sort).
    pub fn from_entries(entries: Vec<LogEntry>) -> Self {
        QueryLog { entries }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends an entry.
    pub fn push(&mut self, entry: LogEntry) {
        self.entries.push(entry);
    }

    /// Sorts entries by `(timestamp, id)`, restoring the pipeline invariant.
    pub fn sort_by_time(&mut self) {
        self.entries.sort_by_key(|e| (e.timestamp, e.id));
    }

    /// True if entries are sorted by `(timestamp, id)`.
    pub fn is_time_sorted(&self) -> bool {
        self.entries
            .windows(2)
            .all(|w| (w[0].timestamp, w[0].id) <= (w[1].timestamp, w[1].id))
    }

    /// Groups entry indices by user key, preserving time order inside each
    /// group. The per-user streams are the unit of pattern mining (Def. 8:
    /// all queries of an instance come from one user).
    pub fn user_streams(&self) -> HashMap<&str, Vec<usize>> {
        let mut map: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, e) in self.entries.iter().enumerate() {
            map.entry(e.user_key()).or_default().push(i);
        }
        map
    }

    /// Number of distinct users (the empty key counts as one).
    pub fn distinct_users(&self) -> usize {
        self.entries
            .iter()
            .map(LogEntry::user_key)
            .collect::<std::collections::HashSet<_>>()
            .len()
    }

    /// Drops user/session metadata, producing the "minimal input" variant
    /// used by the §6.8 experiment (statements and timestamps only).
    pub fn strip_metadata(&self) -> QueryLog {
        QueryLog {
            entries: self
                .entries
                .iter()
                .map(|e| LogEntry {
                    user: None,
                    session: None,
                    ..e.clone()
                })
                .collect(),
        }
    }
}

impl FromIterator<LogEntry> for QueryLog {
    fn from_iter<I: IntoIterator<Item = LogEntry>>(iter: I) -> Self {
        QueryLog {
            entries: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    fn entry(id: u64, t: i64, user: &str) -> LogEntry {
        LogEntry::minimal(id, format!("SELECT {id}"), Timestamp::from_secs(t)).with_user(user)
    }

    #[test]
    fn sorting_is_stable_on_ties() {
        let mut log =
            QueryLog::from_entries(vec![entry(2, 5, "a"), entry(0, 5, "a"), entry(1, 3, "b")]);
        assert!(!log.is_time_sorted());
        log.sort_by_time();
        assert!(log.is_time_sorted());
        let ids: Vec<_> = log.entries.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![1, 0, 2]);
    }

    #[test]
    fn user_streams_preserve_order() {
        let log =
            QueryLog::from_entries(vec![entry(0, 1, "a"), entry(1, 2, "b"), entry(2, 3, "a")]);
        let streams = log.user_streams();
        assert_eq!(streams["a"], vec![0, 2]);
        assert_eq!(streams["b"], vec![1]);
        assert_eq!(log.distinct_users(), 2);
    }

    #[test]
    fn strip_metadata_keeps_statements_and_times() {
        let log = QueryLog::from_entries(vec![entry(0, 1, "a")]);
        let stripped = log.strip_metadata();
        assert_eq!(stripped.entries[0].user, None);
        assert_eq!(stripped.entries[0].statement, "SELECT 0");
        assert_eq!(stripped.distinct_users(), 1);
    }
}
