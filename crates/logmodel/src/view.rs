//! Zero-copy views over a [`QueryLog`].
//!
//! The cleaning pipeline repeatedly needs "the same log, minus some entries
//! or in a different order" — the time-sorted input, the deduplicated
//! pre-clean log. Materializing those as fresh [`QueryLog`]s clones every
//! [`LogEntry`] (and its statement `String`), which dominates the cost of
//! the early pipeline stages on large logs. A [`LogView`] instead keeps a
//! borrowed base log plus an optional `u32` index vector: selecting or
//! reordering entries costs one machine word per entry, never a clone.

use crate::entry::LogEntry;
use crate::log::QueryLog;

/// A borrowed, possibly filtered/reordered view of a [`QueryLog`].
///
/// `idx == None` is the identity view (all entries, base order) — the common
/// case of an already-sorted input log stays entirely allocation-free.
#[derive(Debug, Clone)]
pub struct LogView<'a> {
    base: &'a QueryLog,
    idx: Option<Vec<u32>>,
}

impl<'a> LogView<'a> {
    /// The identity view: every entry of `base`, in base order.
    pub fn identity(base: &'a QueryLog) -> Self {
        LogView { base, idx: None }
    }

    /// A view selecting `idx[i]`-th base entries, in the given order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds for `base`.
    pub fn from_indices(base: &'a QueryLog, idx: Vec<u32>) -> Self {
        assert!(
            idx.iter().all(|&i| (i as usize) < base.len()),
            "view index out of bounds"
        );
        LogView {
            base,
            idx: Some(idx),
        }
    }

    /// The underlying log this view borrows from.
    pub fn base(&self) -> &'a QueryLog {
        self.base
    }

    /// Number of entries visible through the view.
    pub fn len(&self) -> usize {
        match &self.idx {
            Some(idx) => idx.len(),
            None => self.base.len(),
        }
    }

    /// True when the view selects no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th entry of the view.
    pub fn entry(&self, i: usize) -> &'a LogEntry {
        match &self.idx {
            Some(idx) => &self.base.entries[idx[i] as usize],
            None => &self.base.entries[i],
        }
    }

    /// Maps a view position to the index of that entry in the base log.
    pub fn base_index(&self, i: usize) -> usize {
        match &self.idx {
            Some(idx) => idx[i] as usize,
            None => i,
        }
    }

    /// Iterates the visible entries in view order.
    pub fn iter(&self) -> impl Iterator<Item = &'a LogEntry> + '_ {
        (0..self.len()).map(move |i| self.entry(i))
    }

    /// Restricts this view to the positions in `keep` (view positions, in
    /// the order given). Composes index vectors; no entries are cloned.
    pub fn select(&self, keep: Vec<u32>) -> LogView<'a> {
        let idx = match &self.idx {
            Some(idx) => keep.into_iter().map(|i| idx[i as usize]).collect(),
            None => {
                assert!(
                    keep.iter().all(|&i| (i as usize) < self.base.len()),
                    "view index out of bounds"
                );
                keep
            }
        };
        LogView {
            base: self.base,
            idx: Some(idx),
        }
    }

    /// True if the visible entries are sorted by `(timestamp, id)`.
    pub fn is_time_sorted(&self) -> bool {
        (1..self.len()).all(|i| {
            let (a, b) = (self.entry(i - 1), self.entry(i));
            (a.timestamp, a.id) <= (b.timestamp, b.id)
        })
    }

    /// A view of `base` sorted by `(timestamp, id)`. When the base is
    /// already sorted this is the identity view (no index vector at all);
    /// otherwise only a permutation is sorted — entries are not cloned.
    pub fn sorted_by_time(base: &'a QueryLog) -> Self {
        if base.is_time_sorted() {
            return LogView::identity(base);
        }
        let mut perm: Vec<u32> = (0..base.len() as u32).collect();
        perm.sort_by_key(|&i| {
            let e = &base.entries[i as usize];
            (e.timestamp, e.id)
        });
        LogView {
            base,
            idx: Some(perm),
        }
    }

    /// Materializes the view into an owned [`QueryLog`] (clones entries).
    pub fn to_log(&self) -> QueryLog {
        QueryLog::from_entries(self.iter().cloned().collect())
    }
}

impl<'a> From<&'a QueryLog> for LogView<'a> {
    fn from(base: &'a QueryLog) -> Self {
        LogView::identity(base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    fn entry(id: u64, t: i64) -> LogEntry {
        LogEntry::minimal(id, format!("SELECT {id}"), Timestamp::from_secs(t))
    }

    #[test]
    fn identity_passes_through() {
        let log = QueryLog::from_entries(vec![entry(0, 0), entry(1, 1)]);
        let v = LogView::identity(&log);
        assert_eq!(v.len(), 2);
        assert_eq!(v.entry(1).id, 1);
        assert_eq!(v.base_index(1), 1);
        assert!(v.is_time_sorted());
        assert_eq!(v.to_log(), log);
    }

    #[test]
    fn select_composes_indices() {
        let log = QueryLog::from_entries(vec![entry(0, 0), entry(1, 1), entry(2, 2)]);
        let v = LogView::from_indices(&log, vec![2, 0, 1]);
        assert_eq!(v.entry(0).id, 2);
        let w = v.select(vec![1, 2]);
        assert_eq!(w.len(), 2);
        assert_eq!(w.entry(0).id, 0);
        assert_eq!(w.entry(1).id, 1);
        assert_eq!(w.base_index(0), 0);
    }

    #[test]
    fn sorted_view_orders_without_cloning_base() {
        let log = QueryLog::from_entries(vec![entry(1, 5), entry(0, 3), entry(2, 5)]);
        let v = LogView::sorted_by_time(&log);
        assert!(v.is_time_sorted());
        let ids: Vec<_> = v.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        // The base log itself is untouched.
        assert_eq!(log.entries[0].id, 1);
    }

    #[test]
    fn sorted_view_of_sorted_log_is_identity() {
        let log = QueryLog::from_entries(vec![entry(0, 0), entry(1, 1)]);
        let v = LogView::sorted_by_time(&log);
        assert!(v.idx.is_none());
    }
}
