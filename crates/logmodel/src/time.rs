//! A minimal timestamp type.
//!
//! The framework needs timestamps for exactly two things (§6.8 of the
//! paper): ordering statements and measuring the small time gaps that define
//! duplicates and pattern instances. Millisecond resolution since the Unix
//! epoch is plenty; civil-time conversion (for display and log parsing) is
//! implemented here directly with the days-from-civil algorithm, keeping the
//! workspace free of date-time dependencies.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Milliseconds since 1970-01-01T00:00:00Z.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// From whole seconds since the epoch.
    pub const fn from_secs(secs: i64) -> Self {
        Timestamp(secs * 1000)
    }

    /// From milliseconds since the epoch.
    pub const fn from_millis(ms: i64) -> Self {
        Timestamp(ms)
    }

    /// Milliseconds since the epoch.
    pub const fn millis(self) -> i64 {
        self.0
    }

    /// Whole seconds since the epoch (floor).
    pub const fn secs(self) -> i64 {
        self.0.div_euclid(1000)
    }

    /// Builds a timestamp from a civil date and time (UTC).
    pub fn from_civil(year: i32, month: u32, day: u32, hour: u32, min: u32, sec: u32) -> Self {
        let days = days_from_civil(year, month, day);
        Timestamp(
            ((days * 86_400) + i64::from(hour) * 3600 + i64::from(min) * 60 + i64::from(sec))
                * 1000,
        )
    }

    /// Absolute difference to another timestamp, in milliseconds.
    pub fn abs_diff(self, other: Timestamp) -> u64 {
        self.0.abs_diff(other.0)
    }

    /// This timestamp shifted by a signed number of milliseconds.
    pub fn offset_millis(self, ms: i64) -> Timestamp {
        Timestamp(self.0 + ms)
    }
}

/// Days since the epoch for a civil date (proleptic Gregorian).
/// Howard Hinnant's `days_from_civil` algorithm.
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = i64::from(m);
    let d = i64::from(d);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date for days since the epoch (inverse of [`days_from_civil`]).
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m as u32, d as u32)
}

/// Error from parsing a timestamp string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimestampParseError {
    /// The offending input.
    pub input: String,
}

impl fmt::Display for TimestampParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot parse timestamp {:?} (expected epoch seconds/millis or \
             YYYY-MM-DD[ HH:MM:SS])",
            self.input
        )
    }
}

impl std::error::Error for TimestampParseError {}

impl std::str::FromStr for Timestamp {
    type Err = TimestampParseError;

    /// Accepts `YYYY-MM-DD HH:MM:SS` (also with a `T` separator), a bare
    /// date `YYYY-MM-DD`, or an integer (epoch seconds when < 10^11, epoch
    /// milliseconds otherwise).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let err = || TimestampParseError {
            input: s.to_string(),
        };
        if s.is_empty() {
            return Err(err());
        }
        // Plain integer: epoch seconds or milliseconds. 10^11 separates the
        // two cleanly (10^11 s is the year 5138; 10^11 ms is 1973).
        if let Ok(n) = s.parse::<i64>() {
            return Ok(if n.abs() < 100_000_000_000 {
                Timestamp::from_secs(n)
            } else {
                Timestamp::from_millis(n)
            });
        }
        // Civil date / datetime.
        let (date, time) = match s.split_once([' ', 'T']) {
            Some((d, t)) => (d, Some(t)),
            None => (s, None),
        };
        let mut dp = date.split('-');
        let year: i32 = dp.next().and_then(|v| v.parse().ok()).ok_or_else(err)?;
        let month: u32 = dp.next().and_then(|v| v.parse().ok()).ok_or_else(err)?;
        let day: u32 = dp.next().and_then(|v| v.parse().ok()).ok_or_else(err)?;
        if dp.next().is_some() || !(1..=12).contains(&month) || !(1..=31).contains(&day) {
            return Err(err());
        }
        let (h, m, sec) = match time {
            None => (0, 0, 0),
            Some(t) => {
                let mut tp = t.trim_end_matches('Z').split(':');
                let h: u32 = tp.next().and_then(|v| v.parse().ok()).ok_or_else(err)?;
                let m: u32 = tp.next().and_then(|v| v.parse().ok()).ok_or_else(err)?;
                let sec: u32 = match tp.next() {
                    // Fractional seconds are truncated.
                    Some(v) => v
                        .split('.')
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(err)?,
                    None => 0,
                };
                if tp.next().is_some() || h > 23 || m > 59 || sec > 60 {
                    return Err(err());
                }
                (h, m, sec)
            }
        };
        Ok(Timestamp::from_civil(year, month, day, h, m, sec))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.secs();
        let (y, m, d) = civil_from_days(secs.div_euclid(86_400));
        let tod = secs.rem_euclid(86_400);
        write!(
            f,
            "{y:04}-{m:02}-{d:02} {:02}:{:02}:{:02}",
            tod / 3600,
            (tod / 60) % 60,
            tod % 60
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_displays_correctly() {
        assert_eq!(Timestamp(0).to_string(), "1970-01-01 00:00:00");
    }

    #[test]
    fn civil_round_trip() {
        // The SkyServer study spans 2003–2008.
        let t = Timestamp::from_civil(2007, 6, 13, 12, 18, 46);
        assert_eq!(t.to_string(), "2007-06-13 12:18:46");
        let t = Timestamp::from_civil(2003, 1, 1, 0, 0, 0);
        assert_eq!(t.to_string(), "2003-01-01 00:00:00");
        // Leap day.
        let t = Timestamp::from_civil(2004, 2, 29, 23, 59, 59);
        assert_eq!(t.to_string(), "2004-02-29 23:59:59");
    }

    #[test]
    fn known_epoch_values() {
        // 2000-01-01 = 946684800 seconds after the epoch.
        assert_eq!(
            Timestamp::from_civil(2000, 1, 1, 0, 0, 0).secs(),
            946_684_800
        );
    }

    #[test]
    fn diff_and_offset() {
        let a = Timestamp::from_secs(100);
        let b = a.offset_millis(1500);
        assert_eq!(a.abs_diff(b), 1500);
        assert_eq!(b.abs_diff(a), 1500);
        assert_eq!(b.secs(), 101);
    }

    #[test]
    fn parses_common_formats() {
        let parse = |s: &str| s.parse::<Timestamp>().unwrap();
        assert_eq!(
            parse("2007-06-13 12:18:46").to_string(),
            "2007-06-13 12:18:46"
        );
        assert_eq!(
            parse("2007-06-13T12:18:46Z").to_string(),
            "2007-06-13 12:18:46"
        );
        assert_eq!(
            parse("2007-06-13"),
            Timestamp::from_civil(2007, 6, 13, 0, 0, 0)
        );
        assert_eq!(parse("946684800"), Timestamp::from_secs(946_684_800));
        assert_eq!(
            parse("946684800123"),
            Timestamp::from_millis(946_684_800_123)
        );
        assert_eq!(
            parse("2007-06-13 12:18:46.750"),
            parse("2007-06-13 12:18:46")
        );
    }

    #[test]
    fn rejects_bad_timestamps() {
        for bad in [
            "",
            "yesterday",
            "2007-13-01",
            "2007-06-32",
            "2007-06-13 25:00:00",
            "2007-06-13 12:61:00",
            "2007/06/13",
        ] {
            assert!(bad.parse::<Timestamp>().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn pre_epoch_dates_work() {
        let t = Timestamp::from_civil(1969, 12, 31, 23, 59, 59);
        assert_eq!(t.millis(), -1000);
        assert_eq!(t.to_string(), "1969-12-31 23:59:59");
    }

    #[test]
    fn ordering_follows_time() {
        assert!(Timestamp::from_secs(10) < Timestamp::from_secs(11));
    }
}
