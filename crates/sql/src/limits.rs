//! Parser resource guards.
//!
//! Real query logs contain adversarial inputs: statements with thousands of
//! nested parentheses (stack exhaustion), multi-megabyte statements
//! (memory), or token floods. The guards here bound what the lexer and
//! parser will attempt so that *no input* can abort the process; a tripped
//! guard surfaces as [`crate::ParseError::LimitExceeded`], which the
//! pipeline counts alongside syntax errors (§5.3 drops both the same way).

/// Resource limits applied while lexing and parsing one statement (or one
/// `;`-separated batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum nesting depth of expressions, subqueries and parenthesized
    /// join trees. Each level costs a handful of stack frames, so this
    /// bounds recursion well below stack exhaustion.
    ///
    /// Also seeds the parser's *flat-nesting* budget: iteratively parsed
    /// operator chains (`NOT NOT ...`, `- - ...`, `a OR b OR ...`, join
    /// chains) build one AST level per node without recursing, and may
    /// build at most `32 × max_depth` such nodes per statement. Together
    /// the two caps bound the height of any AST the parser returns, which
    /// keeps the tree's own recursive consumers — drop glue, visitors, the
    /// printer — stack-safe on inputs no recursion guard ever sees.
    pub max_depth: usize,
    /// Maximum input length in bytes; longer inputs are rejected before
    /// lexing.
    pub max_statement_bytes: usize,
    /// Maximum number of lexed tokens; the lexer stops once exceeded.
    pub max_tokens: usize,
}

impl Default for ParseLimits {
    /// Generous defaults: orders of magnitude above anything observed in the
    /// SkyServer log, while keeping worst-case stack depth trivially safe.
    ///
    /// The depth cap is calibrated to unoptimized builds, where one nesting
    /// level costs on the order of 10 stack frames: 64 levels stay well
    /// inside the 2 MiB default stack of spawned (worker and test) threads.
    fn default() -> Self {
        ParseLimits {
            max_depth: 64,
            max_statement_bytes: 1 << 20, // 1 MiB
            max_tokens: 1 << 18,          // 262 144
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_generous_but_finite() {
        let l = ParseLimits::default();
        assert!(l.max_depth >= 32);
        assert!(l.max_statement_bytes >= 1 << 20);
        assert!(l.max_tokens >= 1 << 16);
    }
}
