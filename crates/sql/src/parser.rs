//! Recursive-descent parser for the SELECT-centric dialect.
//!
//! Entry points:
//! * [`parse_statement`] — exactly one statement,
//! * [`parse_statements`] — a `;`-separated batch,
//! * [`parse_query`] — a bare query (used by rewrite tests).
//!
//! Non-SELECT statements are classified by their leading keyword and their
//! tokens skipped; the pipeline only needs to count them (§5.3 of the paper).
//! Unsupported constructs (e.g. CTEs) surface as [`ParseError`]s and land in
//! the pipeline's syntax-error bucket, exactly like genuinely malformed
//! statements in the original framework.

use crate::ast::*;
use crate::error::{ParseError, ParseLimit, Result};
use crate::lexer::tokenize_with;
use crate::limits::ParseLimits;
use crate::token::{Keyword, SpannedToken, Token};

/// Parses exactly one statement; trailing semicolons are permitted.
pub fn parse_statement(sql: &str) -> Result<Statement> {
    parse_statement_with(sql, &ParseLimits::default())
}

/// Parses exactly one statement under explicit resource limits.
pub fn parse_statement_with(sql: &str, limits: &ParseLimits) -> Result<Statement> {
    let tokens = tokenize_with(sql, limits)?;
    let mut p = Parser::new(tokens, limits.max_depth);
    let stmt = p.parse_statement()?;
    p.skip_semicolons();
    p.expect_eof()?;
    Ok(stmt)
}

/// Parses a `;`-separated batch of statements.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>> {
    parse_statements_with(sql, &ParseLimits::default())
}

/// Parses a `;`-separated batch of statements under explicit resource
/// limits.
pub fn parse_statements_with(sql: &str, limits: &ParseLimits) -> Result<Vec<Statement>> {
    let tokens = tokenize_with(sql, limits)?;
    let mut p = Parser::new(tokens, limits.max_depth);
    let mut out = Vec::new();
    p.skip_semicolons();
    while !p.at_eof() {
        out.push(p.parse_statement()?);
        p.skip_semicolons();
    }
    Ok(out)
}

/// Parses a bare `SELECT` query.
pub fn parse_query(sql: &str) -> Result<Query> {
    parse_query_with(sql, &ParseLimits::default())
}

/// Parses a bare `SELECT` query under explicit resource limits.
pub fn parse_query_with(sql: &str, limits: &ParseLimits) -> Result<Query> {
    let tokens = tokenize_with(sql, limits)?;
    let mut p = Parser::new(tokens, limits.max_depth);
    let q = p.parse_query()?;
    p.skip_semicolons();
    p.expect_eof()?;
    Ok(q)
}

/// Flat-nesting budget per unit of `max_depth`: iteratively parsed operator
/// chains may build at most `32 × max_depth` AST levels per statement (2048
/// at the default depth of 64) — orders of magnitude above real queries,
/// while capping AST height low enough for its recursive consumers.
const FLAT_NODES_PER_DEPTH: usize = 32;

struct Parser<'a> {
    tokens: Vec<SpannedToken<'a>>,
    pos: usize,
    /// Current nesting depth (expressions, subqueries, join trees).
    depth: usize,
    /// Depth at which [`Parser::descend`] refuses to go deeper.
    max_depth: usize,
    /// AST levels built iteratively in the current statement — see
    /// [`Parser::charge`].
    flat: usize,
    /// Budget at which [`Parser::charge`] refuses to build more.
    flat_cap: usize,
}

impl<'a> Parser<'a> {
    fn new(tokens: Vec<SpannedToken<'a>>, max_depth: usize) -> Self {
        Parser {
            tokens,
            pos: 0,
            depth: 0,
            max_depth,
            flat: 0,
            flat_cap: max_depth.saturating_mul(FLAT_NODES_PER_DEPTH),
        }
    }

    /// Enters one nesting level; errs with a typed limit violation when the
    /// configured depth is exceeded. Every `descend` must be paired with an
    /// `ascend` on the success *and* error path of the caller — the pattern
    /// used below runs the recursive body, then decrements unconditionally.
    fn descend(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > self.max_depth {
            self.depth -= 1;
            return Err(ParseError::limit(ParseLimit::Depth, self.offset()));
        }
        Ok(())
    }

    fn ascend(&mut self) {
        debug_assert!(self.depth > 0);
        self.depth -= 1;
    }

    /// Charges `n` AST levels built *iteratively* — left-deep binary-operator
    /// chains, `NOT`/sign chains, join chains — against the per-statement
    /// flat-nesting budget.
    ///
    /// [`Parser::descend`] bounds the parser's own recursion, but these
    /// loops consume no parse stack while still Box-nesting the tree one
    /// level per node. Without this charge, a flood of `NOT`s or `OR`s that
    /// fits every byte/token limit would build an AST too deep for its
    /// recursive consumers (drop glue, visitors, the printer) and abort the
    /// process when the tree is walked or destroyed. Together the two guards
    /// bound AST height by `max_depth × (FLAT_NODES_PER_DEPTH + 1)`.
    fn charge(&mut self, n: usize) -> Result<()> {
        self.flat += n;
        if self.flat > self.flat_cap {
            return Err(ParseError::limit(ParseLimit::Depth, self.offset()));
        }
        Ok(())
    }

    // ---- cursor helpers -------------------------------------------------

    fn at_eof(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token<'a>> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn peek_at(&self, n: usize) -> Option<&Token<'a>> {
        self.tokens.get(self.pos + n).map(|t| &t.token)
    }

    fn peek_kw(&self) -> Option<Keyword> {
        self.peek().and_then(Token::keyword)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|t| t.offset)
            .or_else(|| self.tokens.last().map(|t| t.offset + 1))
            .unwrap_or(0)
    }

    fn advance(&mut self) -> Option<&Token<'a>> {
        let t = self.tokens.get(self.pos).map(|t| &t.token);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, token: &Token<'a>) -> bool {
        if self.peek() == Some(token) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        if self.peek_kw() == Some(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &Token<'a>) -> Result<()> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {token}, found {}",
                self.describe_current()
            )))
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {}, found {}",
                kw.as_str(),
                self.describe_current()
            )))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.err(format!(
                "unexpected trailing input: {}",
                self.describe_current()
            )))
        }
    }

    fn skip_semicolons(&mut self) {
        while self.eat(&Token::Semicolon) {}
    }

    fn describe_current(&self) -> String {
        match self.peek() {
            Some(t) => format!("{t}"),
            None => "end of input".to_string(),
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(message, self.offset())
    }

    // ---- statements -----------------------------------------------------

    fn parse_statement(&mut self) -> Result<Statement> {
        // The flat-nesting budget is per statement, so one long (but legal)
        // statement cannot starve the rest of a `;`-separated batch.
        self.flat = 0;
        match self.peek_kw() {
            Some(Keyword::Select) => Ok(Statement::Select(Box::new(self.parse_query()?))),
            Some(Keyword::Insert) => self.skip_classified(StatementKind::Insert),
            Some(Keyword::Update) => self.skip_classified(StatementKind::Update),
            Some(Keyword::Delete) => self.skip_classified(StatementKind::Delete),
            Some(Keyword::Create | Keyword::Drop | Keyword::Alter | Keyword::Truncate) => {
                self.skip_classified(StatementKind::Ddl)
            }
            Some(Keyword::Exec | Keyword::Execute) => self.skip_classified(StatementKind::Exec),
            Some(
                Keyword::Declare | Keyword::Set | Keyword::Use | Keyword::Grant | Keyword::Revoke,
            ) => self.skip_classified(StatementKind::Other),
            Some(Keyword::With) => Err(self.err("common table expressions are not supported")),
            Some(_) | None => Err(self.err(format!(
                "expected a statement, found {}",
                self.describe_current()
            ))),
        }
    }

    /// Consumes tokens up to (not including) the next top-level `;`, keeping
    /// only the classification. Parentheses are balanced so that semicolons
    /// inside string literals / nested constructs do not end the statement
    /// early (strings are already atomic tokens; parens matter for `EXEC`).
    fn skip_classified(&mut self, kind: StatementKind) -> Result<Statement> {
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            match t {
                Token::Semicolon if depth == 0 => break,
                Token::LParen => depth += 1,
                Token::RParen => depth = depth.saturating_sub(1),
                _ => {}
            }
            self.pos += 1;
        }
        Ok(Statement::Other(kind))
    }

    // ---- queries ----------------------------------------------------------

    fn parse_query(&mut self) -> Result<Query> {
        self.descend()?;
        let q = self.parse_query_inner();
        self.ascend();
        q
    }

    fn parse_query_inner(&mut self) -> Result<Query> {
        let body = self.parse_select_body()?;
        let mut set_ops = Vec::new();
        loop {
            let op = match self.peek_kw() {
                Some(Keyword::Union) => SetOperator::Union,
                Some(Keyword::Except) => SetOperator::Except,
                Some(Keyword::Intersect) => SetOperator::Intersect,
                _ => break,
            };
            self.pos += 1;
            let all = self.eat_kw(Keyword::All);
            let next = self.parse_select_body()?;
            set_ops.push((op, all, next));
        }
        let order_by = if self.eat_kw(Keyword::Order) {
            self.expect_kw(Keyword::By)?;
            self.parse_order_by_list()?
        } else {
            Vec::new()
        };
        let limit = if self.eat_kw(Keyword::Limit) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Query {
            body,
            set_ops,
            order_by,
            limit,
        })
    }

    fn parse_order_by_list(&mut self) -> Result<Vec<OrderByItem>> {
        let mut items = Vec::new();
        loop {
            let expr = self.parse_expr()?;
            let asc = if self.eat_kw(Keyword::Asc) {
                Some(true)
            } else if self.eat_kw(Keyword::Desc) {
                Some(false)
            } else {
                None
            };
            items.push(OrderByItem { expr, asc });
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn parse_select_body(&mut self) -> Result<Select> {
        self.expect_kw(Keyword::Select)?;
        let distinct = if self.eat_kw(Keyword::Distinct) {
            true
        } else {
            self.eat_kw(Keyword::All);
            false
        };
        let (top, top_percent) = if self.eat_kw(Keyword::Top) {
            // `TOP n [PERCENT]` or `TOP (expr)`.
            let n = self.parse_primary()?;
            (Some(n), self.eat_kw(Keyword::Percent))
        } else {
            (None, false)
        };

        let mut projection = vec![self.parse_select_item()?];
        while self.eat(&Token::Comma) {
            projection.push(self.parse_select_item()?);
        }

        let into = if self.eat_kw(Keyword::Into) {
            Some(self.parse_object_name()?)
        } else {
            None
        };

        let from = if self.eat_kw(Keyword::From) {
            let mut from = vec![self.parse_table_ref()?];
            while self.eat(&Token::Comma) {
                from.push(self.parse_table_ref()?);
            }
            from
        } else {
            Vec::new()
        };

        let selection = if self.eat_kw(Keyword::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };

        let group_by = if self.eat_kw(Keyword::Group) {
            self.expect_kw(Keyword::By)?;
            let mut exprs = vec![self.parse_expr()?];
            while self.eat(&Token::Comma) {
                exprs.push(self.parse_expr()?);
            }
            exprs
        } else {
            Vec::new()
        };

        let having = if self.eat_kw(Keyword::Having) {
            Some(self.parse_expr()?)
        } else {
            None
        };

        Ok(Select {
            distinct,
            top,
            top_percent,
            projection,
            into,
            from,
            selection,
            group_by,
            having,
        })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.eat(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if let (Some(Token::Word { .. }), Some(Token::Dot), Some(Token::Star)) =
            (self.peek(), self.peek_at(1), self.peek_at(2))
        {
            let name = self.parse_object_name()?;
            self.expect(&Token::Dot).and(self.expect(&Token::Star))?;
            return Ok(SelectItem::QualifiedWildcard(name));
        }
        // Handle longer qualified wildcards like `db.t.*` by scanning ahead.
        if self.is_qualified_wildcard() {
            let name = self.parse_object_name()?;
            self.expect(&Token::Dot)?;
            self.expect(&Token::Star)?;
            return Ok(SelectItem::QualifiedWildcard(name));
        }
        let expr = self.parse_expr()?;
        let alias = self.parse_optional_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    /// Looks ahead for `word (. word)* . *`.
    fn is_qualified_wildcard(&self) -> bool {
        let mut i = 0;
        loop {
            match (self.peek_at(i), self.peek_at(i + 1)) {
                (Some(Token::Word { .. }), Some(Token::Dot)) => match self.peek_at(i + 2) {
                    Some(Token::Star) => return true,
                    Some(Token::Word { .. }) => i += 2,
                    _ => return false,
                },
                _ => return false,
            }
        }
    }

    /// `AS alias` or a bare non-reserved word.
    fn parse_optional_alias(&mut self) -> Result<Option<Ident>> {
        if self.eat_kw(Keyword::As) {
            match self.advance() {
                Some(Token::Word { value, .. }) => Ok(Some(Ident::new(*value))),
                Some(Token::String(s)) => Ok(Some(Ident::new(s.as_ref()))),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    Err(self.err("expected alias after AS"))
                }
            }
        } else {
            match self.peek() {
                Some(Token::Word {
                    value,
                    keyword: None,
                }) => {
                    let ident = Ident::new(*value);
                    self.pos += 1;
                    Ok(Some(ident))
                }
                _ => Ok(None),
            }
        }
    }

    fn parse_object_name(&mut self) -> Result<ObjectName> {
        let mut parts = Vec::new();
        loop {
            match self.peek() {
                Some(Token::Word { value, .. }) => {
                    parts.push(Ident::new(*value));
                    self.pos += 1;
                }
                _ => return Err(self.err("expected identifier")),
            }
            // Stop before `.*` so qualified wildcards can be handled above.
            if self.peek() == Some(&Token::Dot)
                && matches!(self.peek_at(1), Some(Token::Word { .. }))
            {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(ObjectName(parts))
    }

    // ---- FROM clause ------------------------------------------------------

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        self.descend()?;
        let t = self.parse_table_ref_inner();
        self.ascend();
        t
    }

    fn parse_table_ref_inner(&mut self) -> Result<TableRef> {
        let mut left = self.parse_table_primary()?;
        loop {
            let kind = if self.eat_kw(Keyword::Cross) {
                if self.eat_kw(Keyword::Apply) {
                    JoinKind::CrossApply
                } else {
                    self.expect_kw(Keyword::Join)?;
                    JoinKind::Cross
                }
            } else if self.peek_kw() == Some(Keyword::Outer)
                && self
                    .peek_at(1)
                    .is_some_and(|t| t.is_keyword(Keyword::Apply))
            {
                self.pos += 2;
                JoinKind::OuterApply
            } else if self.eat_kw(Keyword::Inner) {
                self.expect_kw(Keyword::Join)?;
                JoinKind::Inner
            } else if self.eat_kw(Keyword::Left) {
                self.eat_kw(Keyword::Outer);
                self.expect_kw(Keyword::Join)?;
                JoinKind::Left
            } else if self.eat_kw(Keyword::Right) {
                self.eat_kw(Keyword::Outer);
                self.expect_kw(Keyword::Join)?;
                JoinKind::Right
            } else if self.eat_kw(Keyword::Full) {
                self.eat_kw(Keyword::Outer);
                self.expect_kw(Keyword::Join)?;
                JoinKind::Full
            } else if self.eat_kw(Keyword::Join) {
                JoinKind::Inner
            } else {
                break;
            };
            self.charge(1)?;
            let right = self.parse_table_primary()?;
            let constraint = if matches!(
                kind,
                JoinKind::Cross | JoinKind::CrossApply | JoinKind::OuterApply
            ) {
                None
            } else if self.eat_kw(Keyword::On) {
                Some(self.parse_expr()?)
            } else {
                // Tolerate missing ON (some logged queries use WHERE joins).
                None
            };
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                constraint,
            };
        }
        Ok(left)
    }

    fn parse_table_primary(&mut self) -> Result<TableRef> {
        if self.eat(&Token::LParen) {
            if self.peek_kw() == Some(Keyword::Select) {
                let subquery = Box::new(self.parse_query()?);
                self.expect(&Token::RParen)?;
                let alias = self.parse_optional_alias()?;
                return Ok(TableRef::Derived { subquery, alias });
            }
            // Parenthesized join tree.
            let inner = self.parse_table_ref()?;
            self.expect(&Token::RParen)?;
            return Ok(inner);
        }
        let name = self.parse_object_name()?;
        if self.eat(&Token::LParen) {
            // Table-valued function.
            let mut args = Vec::new();
            if !self.eat(&Token::RParen) {
                loop {
                    args.push(self.parse_expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
            }
            let alias = self.parse_optional_alias()?;
            return Ok(TableRef::Function { name, args, alias });
        }
        let alias = self.parse_optional_alias()?;
        Ok(TableRef::Table { name, alias })
    }

    // ---- expressions --------------------------------------------------

    /// Full expression entry point (lowest precedence: OR).
    ///
    /// Every nested expression — parenthesized groups, subqueries, function
    /// arguments — re-enters here, so this single guard bounds the parser's
    /// recursion over arbitrarily hostile inputs. Operator *chains*
    /// (`NOT`/sign chains, left-deep binary chains) are parsed iteratively
    /// and instead charge the flat-nesting budget ([`Parser::charge`]),
    /// which bounds the depth of the AST they build.
    fn parse_expr(&mut self) -> Result<Expr> {
        self.descend()?;
        let e = self.parse_or();
        self.ascend();
        e
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_kw(Keyword::Or) {
            self.charge(1)?;
            let right = self.parse_and()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_kw(Keyword::And) {
            self.charge(1)?;
            let right = self.parse_not()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        // Iterative: a chain of `NOT NOT NOT ...` consumes no parse stack,
        // but every `NOT` still nests the AST one level, so the whole chain
        // is charged against the flat-nesting budget before any node is
        // built.
        let mut nots = 0usize;
        while self.peek_kw() == Some(Keyword::Not)
            && !matches!(
                self.peek_at(1).and_then(Token::keyword),
                Some(Keyword::In | Keyword::Between | Keyword::Like | Keyword::Exists)
            )
        {
            self.pos += 1;
            nots += 1;
        }
        self.charge(nots)?;
        let mut expr = self.parse_predicate()?;
        for _ in 0..nots {
            expr = Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(expr),
            };
        }
        Ok(expr)
    }

    fn parse_predicate(&mut self) -> Result<Expr> {
        let mut expr = self.parse_bitwise()?;
        loop {
            // `IS [NOT] NULL`
            if self.eat_kw(Keyword::Is) {
                self.charge(1)?;
                let negated = self.eat_kw(Keyword::Not);
                self.expect_kw(Keyword::Null)?;
                expr = Expr::IsNull {
                    expr: Box::new(expr),
                    negated,
                };
                continue;
            }
            // `[NOT] IN / BETWEEN / LIKE`
            let negated = if self.peek_kw() == Some(Keyword::Not)
                && matches!(
                    self.peek_at(1).and_then(Token::keyword),
                    Some(Keyword::In | Keyword::Between | Keyword::Like)
                ) {
                self.pos += 1;
                true
            } else {
                false
            };
            if self.eat_kw(Keyword::In) {
                self.charge(1)?;
                self.expect(&Token::LParen)?;
                if self.peek_kw() == Some(Keyword::Select) {
                    let subquery = Box::new(self.parse_query()?);
                    self.expect(&Token::RParen)?;
                    expr = Expr::InSubquery {
                        expr: Box::new(expr),
                        subquery,
                        negated,
                    };
                } else {
                    let mut list = Vec::new();
                    if !self.eat(&Token::RParen) {
                        loop {
                            list.push(self.parse_expr()?);
                            if !self.eat(&Token::Comma) {
                                break;
                            }
                        }
                        self.expect(&Token::RParen)?;
                    }
                    expr = Expr::InList {
                        expr: Box::new(expr),
                        list,
                        negated,
                    };
                }
                continue;
            }
            if self.eat_kw(Keyword::Between) {
                self.charge(1)?;
                let low = self.parse_bitwise()?;
                self.expect_kw(Keyword::And)?;
                let high = self.parse_bitwise()?;
                expr = Expr::Between {
                    expr: Box::new(expr),
                    low: Box::new(low),
                    high: Box::new(high),
                    negated,
                };
                continue;
            }
            if self.eat_kw(Keyword::Like) {
                self.charge(1)?;
                let pattern = self.parse_bitwise()?;
                expr = Expr::Like {
                    expr: Box::new(expr),
                    pattern: Box::new(pattern),
                    negated,
                };
                continue;
            }
            if negated {
                return Err(self.err("expected IN, BETWEEN or LIKE after NOT"));
            }
            // Plain comparisons.
            let op = match self.peek() {
                Some(Token::Eq) => BinaryOp::Eq,
                Some(Token::Neq) => BinaryOp::NotEq,
                Some(Token::Lt) => BinaryOp::Lt,
                Some(Token::LtEq) => BinaryOp::LtEq,
                Some(Token::Gt) => BinaryOp::Gt,
                Some(Token::GtEq) => BinaryOp::GtEq,
                _ => break,
            };
            self.pos += 1;
            self.charge(1)?;
            let right = self.parse_bitwise()?;
            expr = Expr::Binary {
                left: Box::new(expr),
                op,
                right: Box::new(right),
            };
        }
        Ok(expr)
    }

    /// Bitwise operators sit between comparisons and additive arithmetic
    /// (SkyServer filters on flag masks: `(flags & 0x10) = 0`).
    fn parse_bitwise(&mut self) -> Result<Expr> {
        let mut left = self.parse_additive()?;
        loop {
            let op = match self.peek() {
                Some(Token::Ampersand) => BinaryOp::BitAnd,
                Some(Token::Pipe) => BinaryOp::BitOr,
                Some(Token::Caret) => BinaryOp::BitXor,
                _ => break,
            };
            self.pos += 1;
            self.charge(1)?;
            let right = self.parse_additive()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOp::Plus,
                Some(Token::Minus) => BinaryOp::Minus,
                _ => break,
            };
            self.pos += 1;
            self.charge(1)?;
            let right = self.parse_multiplicative()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinaryOp::Multiply,
                Some(Token::Slash) => BinaryOp::Divide,
                Some(Token::Percent) => BinaryOp::Modulo,
                _ => break,
            };
            self.pos += 1;
            self.charge(1)?;
            let right = self.parse_unary()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        // Iterative for the same reason as `parse_not`: sign chains like
        // `- - - - x` must not consume parse stack proportional to their
        // length — and, like `NOT` chains, they pay for the AST levels they
        // build up front via the flat-nesting budget.
        let mut ops = Vec::new();
        loop {
            if self.eat(&Token::Minus) {
                ops.push(UnaryOp::Minus);
            } else if self.eat(&Token::Plus) {
                ops.push(UnaryOp::Plus);
            } else {
                break;
            }
        }
        self.charge(ops.len())?;
        let mut expr = self.parse_primary()?;
        for op in ops.into_iter().rev() {
            expr = Expr::Unary {
                op,
                expr: Box::new(expr),
            };
        }
        Ok(expr)
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek() {
            Some(Token::Number(_)) => {
                let Some(Token::Number(n)) = self.advance() else {
                    unreachable!()
                };
                Ok(Expr::Literal(Literal::Number((*n).to_string())))
            }
            Some(Token::String(_)) => {
                let Some(Token::String(s)) = self.advance() else {
                    unreachable!()
                };
                Ok(Expr::Literal(Literal::String(s.to_string())))
            }
            Some(Token::Variable(_)) => {
                let Some(Token::Variable(v)) = self.advance() else {
                    unreachable!()
                };
                Ok(Expr::Variable((*v).to_string()))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                if self.peek_kw() == Some(Keyword::Select) {
                    let q = Box::new(self.parse_query()?);
                    self.expect(&Token::RParen)?;
                    Ok(Expr::Subquery(q))
                } else {
                    let inner = self.parse_expr()?;
                    self.expect(&Token::RParen)?;
                    Ok(Expr::Nested(Box::new(inner)))
                }
            }
            Some(Token::Word { keyword, .. }) => match keyword {
                Some(Keyword::Null) => {
                    self.pos += 1;
                    Ok(Expr::Literal(Literal::Null))
                }
                Some(Keyword::True) => {
                    self.pos += 1;
                    Ok(Expr::Literal(Literal::Boolean(true)))
                }
                Some(Keyword::False) => {
                    self.pos += 1;
                    Ok(Expr::Literal(Literal::Boolean(false)))
                }
                Some(Keyword::Case) => self.parse_case(),
                Some(Keyword::Cast) => self.parse_cast(),
                Some(Keyword::Exists) => {
                    self.pos += 1;
                    self.expect(&Token::LParen)?;
                    let q = Box::new(self.parse_query()?);
                    self.expect(&Token::RParen)?;
                    Ok(Expr::Exists {
                        subquery: q,
                        negated: false,
                    })
                }
                Some(Keyword::Not)
                    if self
                        .peek_at(1)
                        .is_some_and(|t| t.is_keyword(Keyword::Exists)) =>
                {
                    self.pos += 2;
                    self.expect(&Token::LParen)?;
                    let q = Box::new(self.parse_query()?);
                    self.expect(&Token::RParen)?;
                    Ok(Expr::Exists {
                        subquery: q,
                        negated: true,
                    })
                }
                // Reserved keywords cannot start an expression — this is what
                // makes `SELECT FROM t` a syntax error. `LEFT`/`RIGHT` are
                // exempt because they double as string functions.
                Some(kw) if !matches!(kw, Keyword::Left | Keyword::Right) => {
                    Err(self.err(format!("unexpected keyword {} in expression", kw.as_str())))
                }
                _ => {
                    let name = self.parse_object_name()?;
                    if self.eat(&Token::LParen) {
                        let distinct = self.eat_kw(Keyword::Distinct);
                        let mut args = Vec::new();
                        if !self.eat(&Token::RParen) {
                            loop {
                                if self.peek() == Some(&Token::Star)
                                    && matches!(
                                        self.peek_at(1),
                                        Some(Token::RParen) | Some(Token::Comma)
                                    )
                                {
                                    self.pos += 1;
                                    args.push(Expr::Wildcard);
                                } else {
                                    args.push(self.parse_expr()?);
                                }
                                if !self.eat(&Token::Comma) {
                                    break;
                                }
                            }
                            self.expect(&Token::RParen)?;
                        }
                        Ok(Expr::Function {
                            name,
                            args,
                            distinct,
                        })
                    } else {
                        Ok(Expr::Column(name))
                    }
                }
            },
            _ => Err(self.err(format!(
                "expected expression, found {}",
                self.describe_current()
            ))),
        }
    }

    fn parse_case(&mut self) -> Result<Expr> {
        self.expect_kw(Keyword::Case)?;
        let operand = if self.peek_kw() != Some(Keyword::When) {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        let mut branches = Vec::new();
        while self.eat_kw(Keyword::When) {
            let when = self.parse_expr()?;
            self.expect_kw(Keyword::Then)?;
            let then = self.parse_expr()?;
            branches.push((when, then));
        }
        if branches.is_empty() {
            return Err(self.err("CASE requires at least one WHEN branch"));
        }
        let else_result = if self.eat_kw(Keyword::Else) {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_kw(Keyword::End)?;
        Ok(Expr::Case {
            operand,
            branches,
            else_result,
        })
    }

    fn parse_cast(&mut self) -> Result<Expr> {
        self.expect_kw(Keyword::Cast)?;
        self.expect(&Token::LParen)?;
        let expr = self.parse_expr()?;
        self.expect_kw(Keyword::As)?;
        // Type name: word plus optional `(n[,m])` size suffix.
        let mut ty = match self.advance() {
            Some(Token::Word { value, .. }) => (*value).to_string(),
            _ => return Err(self.err("expected type name in CAST")),
        };
        if self.eat(&Token::LParen) {
            ty.push('(');
            let mut first = true;
            loop {
                match self.advance() {
                    Some(Token::Number(n)) => {
                        if !first {
                            ty.push(',');
                        }
                        ty.push_str(n);
                        first = false;
                    }
                    _ => return Err(self.err("expected number in CAST type size")),
                }
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            ty.push(')');
        }
        self.expect(&Token::RParen)?;
        Ok(Expr::Cast {
            expr: Box::new(expr),
            ty,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> Query {
        match parse_statement(sql).unwrap() {
            Statement::Select(q) => *q,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn parses_minimal_select() {
        let q = sel("SELECT 1");
        assert_eq!(q.body.projection.len(), 1);
        assert!(q.body.from.is_empty());
    }

    #[test]
    fn parses_projection_aliases() {
        let q = sel("SELECT a AS x, b y, c FROM t");
        let aliases: Vec<_> = q
            .body
            .projection
            .iter()
            .map(|p| match p {
                SelectItem::Expr { alias, .. } => alias.as_ref().map(|a| a.value.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(
            aliases,
            vec![Some("x".to_string()), Some("y".to_string()), None]
        );
    }

    #[test]
    fn parses_wildcards() {
        let q = sel("SELECT *, p.*, count(*) FROM photoprimary p");
        assert!(matches!(q.body.projection[0], SelectItem::Wildcard));
        assert!(matches!(
            q.body.projection[1],
            SelectItem::QualifiedWildcard(_)
        ));
        match &q.body.projection[2] {
            SelectItem::Expr {
                expr: Expr::Function { args, .. },
                ..
            } => assert_eq!(args, &vec![Expr::Wildcard]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_joins() {
        let q = sel("SELECT g.objid FROM photoobjall AS g \
             JOIN fgetnearbyobjeq(@ra, @dec, @r) AS gn ON g.objid = gn.objid \
             LEFT OUTER JOIN specobj s ON s.bestobjid = gn.objid");
        let TableRef::Join { left, kind, .. } = &q.body.from[0] else {
            panic!("expected join");
        };
        assert_eq!(*kind, JoinKind::Left);
        let TableRef::Join { right, kind, .. } = left.as_ref() else {
            panic!("expected inner join");
        };
        assert_eq!(*kind, JoinKind::Inner);
        assert!(matches!(right.as_ref(), TableRef::Function { .. }));
    }

    #[test]
    fn parses_comma_joins_with_tvf() {
        let q = sel(
            "SELECT p.objid FROM fgetobjfromrect(@ra1,@dec1,@ra2,@dec2) n, photoprimary p \
             WHERE n.objid = p.objid AND r BETWEEN 10 AND 20",
        );
        assert_eq!(q.body.from.len(), 2);
        let conj = q.body.selection.as_ref().unwrap().conjuncts().len();
        assert_eq!(conj, 2);
    }

    #[test]
    fn parses_derived_table() {
        let q = sel("SELECT E.empId, O.oCount FROM Employees E INNER JOIN \
             (SELECT empId, count(orders) as oCount FROM Orders GROUP BY empId) O \
             ON O.empId = E.empId");
        let TableRef::Join { right, .. } = &q.body.from[0] else {
            panic!()
        };
        assert!(matches!(right.as_ref(), TableRef::Derived { .. }));
    }

    #[test]
    fn parses_in_list_and_subquery() {
        let q = sel("SELECT a FROM t WHERE a IN (1, 2, 3) AND b NOT IN (SELECT b FROM u)");
        let conj = q.body.selection.as_ref().unwrap().conjuncts();
        assert!(matches!(conj[0], Expr::InList { negated: false, .. }));
        assert!(matches!(conj[1], Expr::InSubquery { negated: true, .. }));
    }

    #[test]
    fn parses_between_like_isnull() {
        let q = sel(
            "SELECT a FROM t WHERE r BETWEEN 14 AND 16 AND name LIKE 'gal%' \
             AND x IS NOT NULL AND y IS NULL AND z NOT BETWEEN 1 AND 2",
        );
        let conj = q.body.selection.as_ref().unwrap().conjuncts();
        assert_eq!(conj.len(), 5);
        assert!(matches!(conj[2], Expr::IsNull { negated: true, .. }));
        assert!(matches!(conj[4], Expr::Between { negated: true, .. }));
    }

    #[test]
    fn parses_null_comparisons_for_snc() {
        // The SNC antipattern relies on `= NULL` parsing successfully.
        let q = sel("SELECT * FROM Bugs WHERE assigned_to = NULL");
        let Expr::Binary { right, op, .. } = q.body.selection.as_ref().unwrap() else {
            panic!()
        };
        assert_eq!(*op, BinaryOp::Eq);
        assert_eq!(**right, Expr::Literal(Literal::Null));
    }

    #[test]
    fn parses_top_and_order_by() {
        let q = sel("SELECT TOP 10 objid FROM photoprimary ORDER BY r DESC, g");
        assert!(q.body.top.is_some());
        assert_eq!(q.order_by.len(), 2);
        assert_eq!(q.order_by[0].asc, Some(false));
        assert_eq!(q.order_by[1].asc, None);
    }

    #[test]
    fn parses_group_by_having() {
        let q = sel("SELECT empId, count(*) FROM Orders GROUP BY empId HAVING count(*) > 3");
        assert_eq!(q.body.group_by.len(), 1);
        assert!(q.body.having.is_some());
    }

    #[test]
    fn parses_union() {
        let q = sel("SELECT a FROM t UNION ALL SELECT a FROM u UNION SELECT a FROM v");
        assert_eq!(q.set_ops.len(), 2);
        assert_eq!(q.set_ops[0].0, SetOperator::Union);
        assert!(q.set_ops[0].1);
        assert!(!q.set_ops[1].1);
    }

    #[test]
    fn parses_case_and_cast() {
        let q = sel("SELECT CASE WHEN r > 20 THEN 'faint' ELSE 'bright' END, \
             CAST(ra AS varchar(32)) FROM photoprimary");
        assert!(matches!(
            q.body.projection[0],
            SelectItem::Expr {
                expr: Expr::Case { .. },
                ..
            }
        ));
        match &q.body.projection[1] {
            SelectItem::Expr {
                expr: Expr::Cast { ty, .. },
                ..
            } => assert_eq!(ty, "varchar(32)"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_exists() {
        let q =
            sel("SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u) AND NOT EXISTS (SELECT 2 FROM v)");
        let conj = q.body.selection.as_ref().unwrap().conjuncts();
        assert!(matches!(conj[0], Expr::Exists { negated: false, .. }));
        assert!(matches!(conj[1], Expr::Exists { negated: true, .. }));
    }

    #[test]
    fn parses_arithmetic_precedence() {
        let q = sel("SELECT 1 + 2 * 3 FROM t");
        let SelectItem::Expr {
            expr: Expr::Binary { op, right, .. },
            ..
        } = &q.body.projection[0]
        else {
            panic!()
        };
        assert_eq!(*op, BinaryOp::Plus);
        assert!(matches!(
            right.as_ref(),
            Expr::Binary {
                op: BinaryOp::Multiply,
                ..
            }
        ));
    }

    #[test]
    fn not_binds_tighter_than_and() {
        let q = sel("SELECT a FROM t WHERE NOT a = 1 AND b = 2");
        let conj = q.body.selection.as_ref().unwrap().conjuncts();
        assert_eq!(conj.len(), 2);
        assert!(matches!(
            conj[0],
            Expr::Unary {
                op: UnaryOp::Not,
                ..
            }
        ));
    }

    #[test]
    fn classifies_non_select_statements() {
        assert_eq!(
            parse_statement("INSERT INTO t VALUES (1)").unwrap(),
            Statement::Other(StatementKind::Insert)
        );
        assert_eq!(
            parse_statement("UPDATE t SET a = 1 WHERE b = 2").unwrap(),
            Statement::Other(StatementKind::Update)
        );
        assert_eq!(
            parse_statement("DELETE FROM t WHERE a = 1").unwrap(),
            Statement::Other(StatementKind::Delete)
        );
        assert_eq!(
            parse_statement("CREATE TABLE t (a int)").unwrap(),
            Statement::Other(StatementKind::Ddl)
        );
        assert_eq!(
            parse_statement("EXEC spGetNeighbors 1, 2").unwrap(),
            Statement::Other(StatementKind::Exec)
        );
    }

    #[test]
    fn parses_statement_batches() {
        let stmts = parse_statements("SELECT 1; INSERT INTO t VALUES (2); SELECT 3;").unwrap();
        assert_eq!(stmts.len(), 3);
        assert!(matches!(stmts[0], Statement::Select(_)));
        assert!(matches!(stmts[1], Statement::Other(StatementKind::Insert)));
        assert!(matches!(stmts[2], Statement::Select(_)));
    }

    #[test]
    fn rejects_malformed_sql() {
        assert!(parse_statement("SELECT FROM t").is_err());
        assert!(parse_statement("SELECT a FROM").is_err());
        assert!(parse_statement("SELECT a FROM t WHERE").is_err());
        assert!(parse_statement("SELEC a FROM t").is_err());
        assert!(parse_statement("SELECT a FROM t GROUP a").is_err());
        assert!(parse_statement("").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_statement("SELECT a FROM t )").is_err());
    }

    #[test]
    fn rejects_ctes_as_unsupported() {
        assert!(parse_statement("WITH x AS (SELECT 1) SELECT * FROM x").is_err());
    }

    #[test]
    fn parses_skyserver_table6_shape() {
        let q = sel("SELECT rowc_g, colc_g FROM photoprimary WHERE objid=587722982829850899");
        assert_eq!(q.body.projection.len(), 2);
        let Expr::Binary { op, .. } = q.body.selection.as_ref().unwrap() else {
            panic!()
        };
        assert_eq!(*op, BinaryOp::Eq);
    }

    #[test]
    fn parses_scalar_function_calls_in_from_with_schema_prefix() {
        let q = sel("SELECT * FROM dbo.fGetNearestObjEq(145.38708,0.12532,0.1)");
        let TableRef::Function { name, args, .. } = &q.body.from[0] else {
            panic!()
        };
        assert_eq!(name.last().normalized(), "fgetnearestobjeq");
        assert_eq!(name.0.len(), 2);
        assert_eq!(args.len(), 3);
    }

    #[test]
    fn keywords_can_be_function_names() {
        // LEFT / RIGHT as string functions.
        let q = sel("SELECT LEFT(name, 3) FROM t");
        assert!(matches!(
            q.body.projection[0],
            SelectItem::Expr {
                expr: Expr::Function { .. },
                ..
            }
        ));
    }

    #[test]
    fn parses_cross_and_outer_apply() {
        let q = sel(
            "SELECT p.objid, n.distance FROM photoprimary p              CROSS APPLY fGetNearbyObjEq(p.ra, p.dec, 1.0) n",
        );
        let TableRef::Join {
            kind,
            right,
            constraint,
            ..
        } = &q.body.from[0]
        else {
            panic!("expected apply join");
        };
        assert_eq!(*kind, JoinKind::CrossApply);
        assert!(constraint.is_none());
        assert!(matches!(right.as_ref(), TableRef::Function { .. }));

        let q = sel("SELECT * FROM t OUTER APPLY f(t.x) AS a");
        let TableRef::Join { kind, .. } = &q.body.from[0] else {
            panic!()
        };
        assert_eq!(*kind, JoinKind::OuterApply);
    }

    #[test]
    fn parses_top_percent() {
        let q = sel("SELECT TOP 10 PERCENT objid FROM photoprimary ORDER BY r");
        assert!(q.body.top.is_some());
        assert!(q.body.top_percent);
        let q = sel("SELECT TOP 10 objid FROM photoprimary");
        assert!(!q.body.top_percent);
    }

    #[test]
    fn limit_clause() {
        let q = sel("SELECT a FROM t LIMIT 100");
        assert!(q.limit.is_some());
    }
}
