//! Hand-written SQL lexer.
//!
//! Supports the lexical quirks seen in real query logs:
//!
//! * `--` line comments and `/* ... */` block comments (nested blocks too,
//!   which some SkyServer tools emit),
//! * single-quoted strings with `''` escaping,
//! * `[bracket]`- and `"double"`-quoted identifiers (SQL Server style),
//! * `@variables`,
//! * integer / decimal / scientific-notation numbers,
//! * the two spellings of "not equal": `<>` and `!=`.

use crate::error::{ParseError, ParseLimit, Result};
use crate::limits::ParseLimits;
use crate::token::{Keyword, SpannedToken, Token};
use std::borrow::Cow;

/// Tokenizes `input` into a vector of spanned tokens with default limits.
///
/// Tokens borrow from `input` (see [`Token`]); the lexer allocates only for
/// string literals containing `''` escapes. Whitespace and comments are
/// skipped. Errors are reported with the byte offset of the offending
/// character.
pub fn tokenize(input: &str) -> Result<Vec<SpannedToken<'_>>> {
    tokenize_with(input, &ParseLimits::default())
}

/// Tokenizes `input`, enforcing the statement-length and token-budget
/// guards of `limits` (a violation is [`ParseError::LimitExceeded`]).
pub fn tokenize_with<'a>(input: &'a str, limits: &ParseLimits) -> Result<Vec<SpannedToken<'a>>> {
    if input.len() > limits.max_statement_bytes {
        return Err(ParseError::limit(ParseLimit::StatementBytes, 0));
    }
    Lexer::new(input, limits.max_tokens).run()
}

struct Lexer<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    max_tokens: usize,
    out: Vec<SpannedToken<'a>>,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str, max_tokens: usize) -> Self {
        Lexer {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            max_tokens,
            // A token every ~5 bytes is a good estimate for SQL text.
            out: Vec::with_capacity((input.len() / 5 + 4).min(1 << 20)),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn push(&mut self, token: Token<'a>, offset: usize) {
        self.out.push(SpannedToken { token, offset });
    }

    fn check_budget(&self) -> Result<()> {
        if self.out.len() > self.max_tokens {
            Err(ParseError::limit(ParseLimit::Tokens, self.pos))
        } else {
            Ok(())
        }
    }

    fn run(mut self) -> Result<Vec<SpannedToken<'a>>> {
        while let Some(b) = self.peek() {
            let start = self.pos;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' | 0x0b | 0x0c => {
                    self.pos += 1;
                }
                b'-' if self.peek2() == Some(b'-') => self.skip_line_comment(),
                b'/' if self.peek2() == Some(b'*') => self.skip_block_comment()?,
                b'\'' => self.lex_string()?,
                b'"' => self.lex_quoted_ident(b'"', b'"')?,
                b'[' => self.lex_quoted_ident(b'[', b']')?,
                b'@' => self.lex_variable()?,
                b'0'..=b'9' => self.lex_number(),
                b'.' if self.peek2().is_some_and(|c| c.is_ascii_digit()) => self.lex_number(),
                b',' => self.single(Token::Comma),
                b'.' => self.single(Token::Dot),
                b'(' => self.single(Token::LParen),
                b')' => self.single(Token::RParen),
                b';' => self.single(Token::Semicolon),
                b'*' => self.single(Token::Star),
                b'+' => self.single(Token::Plus),
                b'-' => self.single(Token::Minus),
                b'/' => self.single(Token::Slash),
                b'%' => self.single(Token::Percent),
                b'&' => self.single(Token::Ampersand),
                b'|' => self.single(Token::Pipe),
                b'^' => self.single(Token::Caret),
                b'=' => {
                    // Accept `==` leniently as `=` (seen in hand-typed logs).
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        self.pos += 1;
                    }
                    self.push(Token::Eq, start);
                }
                b'<' => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'=') => {
                            self.pos += 1;
                            self.push(Token::LtEq, start);
                        }
                        Some(b'>') => {
                            self.pos += 1;
                            self.push(Token::Neq, start);
                        }
                        _ => self.push(Token::Lt, start),
                    }
                }
                b'>' => {
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        self.pos += 1;
                        self.push(Token::GtEq, start);
                    } else {
                        self.push(Token::Gt, start);
                    }
                }
                b'!' => {
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        self.pos += 1;
                        self.push(Token::Neq, start);
                    } else {
                        return Err(ParseError::new("unexpected character '!'", start));
                    }
                }
                b'_' | b'a'..=b'z' | b'A'..=b'Z' | b'#' => self.lex_word(),
                _ if b >= 0x80 => {
                    // Allow non-ASCII letters in identifiers (UTF-8 safe:
                    // word continuation consumes whole multi-byte chars).
                    self.lex_word()
                }
                other => {
                    return Err(ParseError::new(
                        format!("unexpected character {:?}", other as char),
                        start,
                    ));
                }
            }
            self.check_budget()?;
        }
        Ok(self.out)
    }

    fn single(&mut self, token: Token<'a>) {
        let start = self.pos;
        self.pos += 1;
        self.push(token, start);
    }

    fn skip_line_comment(&mut self) {
        while let Some(b) = self.peek() {
            self.pos += 1;
            if b == b'\n' {
                break;
            }
        }
    }

    fn skip_block_comment(&mut self) -> Result<()> {
        let start = self.pos;
        self.pos += 2; // consume `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match self.peek() {
                Some(b'*') if self.peek2() == Some(b'/') => {
                    self.pos += 2;
                    depth -= 1;
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    self.pos += 2;
                    depth += 1;
                }
                Some(_) => self.pos += 1,
                None => return Err(ParseError::new("unterminated block comment", start)),
            }
        }
        Ok(())
    }

    fn lex_string(&mut self) -> Result<()> {
        let start = self.pos;
        self.pos += 1; // opening quote
        let content_start = self.pos;
        // Fast path: scan bytes to the closing quote and borrow the content
        // slice. Byte-wise scanning is UTF-8 safe — `'` cannot occur inside
        // a multi-byte sequence. Only a `''` escape forces an owned copy.
        loop {
            match self.bump() {
                Some(b'\'') => {
                    if self.peek() == Some(b'\'') {
                        return self.lex_string_escaped(start, content_start);
                    }
                    let value = &self.input[content_start..self.pos - 1];
                    self.push(Token::String(Cow::Borrowed(value)), start);
                    return Ok(());
                }
                Some(_) => {}
                None => return Err(ParseError::new("unterminated string literal", start)),
            }
        }
    }

    /// Slow path for strings with `''` escapes: folds each doubled quote
    /// while copying whole segments between escapes (never per character).
    /// On entry `pos` is just past the first quote of a `''` pair.
    fn lex_string_escaped(&mut self, start: usize, content_start: usize) -> Result<()> {
        let mut value = String::with_capacity(self.pos + 16 - content_start);
        // Include the first quote of the pair: the fold keeps one of the two.
        value.push_str(&self.input[content_start..self.pos]);
        self.pos += 1; // second quote of the pair
        let mut segment = self.pos;
        loop {
            match self.bump() {
                Some(b'\'') => {
                    if self.peek() == Some(b'\'') {
                        value.push_str(&self.input[segment..self.pos]);
                        self.pos += 1;
                        segment = self.pos;
                    } else {
                        value.push_str(&self.input[segment..self.pos - 1]);
                        self.push(Token::String(Cow::Owned(value)), start);
                        return Ok(());
                    }
                }
                Some(_) => {}
                None => return Err(ParseError::new("unterminated string literal", start)),
            }
        }
    }

    fn lex_quoted_ident(&mut self, open: u8, close: u8) -> Result<()> {
        let start = self.pos;
        debug_assert_eq!(self.peek(), Some(open));
        self.pos += 1;
        let ident_start = self.pos;
        while let Some(b) = self.peek() {
            if b == close {
                let value = &self.input[ident_start..self.pos];
                self.pos += 1;
                // Quoted identifiers never become keywords.
                self.push(
                    Token::Word {
                        value,
                        keyword: None,
                    },
                    start,
                );
                return Ok(());
            }
            self.pos += 1;
        }
        Err(ParseError::new("unterminated quoted identifier", start))
    }

    fn lex_variable(&mut self) -> Result<()> {
        let start = self.pos;
        self.pos += 1; // `@`
                       // SQL Server also has `@@rowcount`-style globals.
        if self.peek() == Some(b'@') {
            self.pos += 1;
        }
        let ident_start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'_' || b.is_ascii_alphanumeric() {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == ident_start {
            return Err(ParseError::new("expected variable name after '@'", start));
        }
        let name = &self.input[start + 1..self.pos];
        self.push(Token::Variable(name), start);
        Ok(())
    }

    fn lex_number(&mut self) {
        let start = self.pos;
        // Hex literals (SkyServer objids sometimes appear as 0x...).
        if self.peek() == Some(b'0')
            && matches!(self.peek2(), Some(b'x') | Some(b'X'))
            && self
                .bytes
                .get(self.pos + 2)
                .is_some_and(|b| b.is_ascii_hexdigit())
        {
            self.pos += 2;
            while self.peek().is_some_and(|b| b.is_ascii_hexdigit()) {
                self.pos += 1;
            }
            let text = &self.input[start..self.pos];
            self.push(Token::Number(text), start);
            return;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') && self.peek2().is_none_or(|b| b.is_ascii_digit()) {
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            // Only treat as exponent when followed by digits (or sign+digits);
            // otherwise `1e` would swallow a following identifier.
            let mut look = self.pos + 1;
            if matches!(self.bytes.get(look), Some(b'+') | Some(b'-')) {
                look += 1;
            }
            if self.bytes.get(look).is_some_and(|b| b.is_ascii_digit()) {
                self.pos = look;
                while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
        }
        let text = &self.input[start..self.pos];
        self.push(Token::Number(text), start);
    }

    fn lex_word(&mut self) {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'_' || b == b'#' || b == b'$' || b.is_ascii_alphanumeric() || b >= 0x80 {
                self.pos += 1;
            } else {
                break;
            }
        }
        // `pos` can land mid-char for multi-byte letters; advance to boundary.
        while self.pos < self.input.len() && !self.input.is_char_boundary(self.pos) {
            self.pos += 1;
        }
        let value = &self.input[start..self.pos];
        let keyword = Keyword::lookup(value);
        self.push(Token::Word { value, keyword }, start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(sql: &str) -> Vec<Token<'_>> {
        tokenize(sql)
            .unwrap()
            .into_iter()
            .map(|t| t.token)
            .collect()
    }

    #[test]
    fn lexes_simple_select() {
        let t = toks("SELECT a, b FROM t WHERE a = 1");
        assert_eq!(t.len(), 10);
        assert!(t[0].is_keyword(Keyword::Select));
        assert_eq!(
            t[1],
            Token::Word {
                value: "a",
                keyword: None
            }
        );
        assert_eq!(t[8], Token::Eq);
        assert_eq!(t[9], Token::Number("1"));
    }

    #[test]
    fn lexes_strings_with_escapes() {
        let t = toks("SELECT 'it''s'");
        assert_eq!(t[1], Token::String("it's".into()));
    }

    #[test]
    fn lexes_unicode_string_contents() {
        let t = toks("SELECT 'αβγ🌌'");
        assert_eq!(t[1], Token::String("αβγ🌌".into()));
    }

    #[test]
    fn lexes_bracket_and_double_quoted_identifiers() {
        let t = toks("SELECT [My Col], \"Other\" FROM [photo primary]");
        assert_eq!(
            t[1],
            Token::Word {
                value: "My Col",
                keyword: None
            }
        );
        assert_eq!(
            t[3],
            Token::Word {
                value: "Other",
                keyword: None
            }
        );
        assert_eq!(
            t[5],
            Token::Word {
                value: "photo primary",
                keyword: None
            }
        );
    }

    #[test]
    fn quoted_keyword_is_not_a_keyword() {
        let t = toks("[select]");
        assert_eq!(t[0].keyword(), None);
    }

    #[test]
    fn lexes_variables() {
        let t = toks("WHERE ra = @ra AND n = @@rowcount");
        assert_eq!(t[3], Token::Variable("ra"));
        assert_eq!(t[7], Token::Variable("@rowcount"));
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(toks("1")[0], Token::Number("1"));
        assert_eq!(toks("3.25")[0], Token::Number("3.25"));
        assert_eq!(toks(".5")[0], Token::Number(".5"));
        assert_eq!(toks("1e10")[0], Token::Number("1e10"));
        assert_eq!(toks("2.5E-3")[0], Token::Number("2.5E-3"));
        assert_eq!(toks("0x1AF")[0], Token::Number("0x1AF"));
        // `12.` style trailing-dot decimals.
        assert_eq!(toks("12.")[0], Token::Number("12."));
    }

    #[test]
    fn exponent_requires_digits() {
        // `1e` is a number `1` followed by identifier `e`.
        let t = toks("1e");
        assert_eq!(t[0], Token::Number("1"));
        assert_eq!(
            t[1],
            Token::Word {
                value: "e",
                keyword: None
            }
        );
    }

    #[test]
    fn lexes_comparison_operators() {
        let t = toks("a <> b != c <= d >= e < f > g = h");
        let ops: Vec<_> = t
            .iter()
            .filter(|t| {
                matches!(
                    t,
                    Token::Neq | Token::LtEq | Token::GtEq | Token::Lt | Token::Gt | Token::Eq
                )
            })
            .cloned()
            .collect();
        assert_eq!(
            ops,
            vec![
                Token::Neq,
                Token::Neq,
                Token::LtEq,
                Token::GtEq,
                Token::Lt,
                Token::Gt,
                Token::Eq
            ]
        );
    }

    #[test]
    fn skips_comments() {
        let t = toks("SELECT a -- trailing comment\nFROM /* block /* nested */ */ t");
        assert_eq!(t.len(), 4);
        assert!(t[2].is_keyword(Keyword::From));
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(tokenize("SELECT 'oops").is_err());
        assert!(tokenize("SELECT [oops").is_err());
        assert!(tokenize("SELECT /* oops").is_err());
    }

    #[test]
    fn rejects_stray_bang() {
        let err = tokenize("SELECT a ! b").unwrap_err();
        assert_eq!(err.offset(), 9);
    }

    #[test]
    fn offsets_point_at_token_starts() {
        let spanned = tokenize("SELECT  a").unwrap();
        assert_eq!(spanned[0].offset, 0);
        assert_eq!(spanned[1].offset, 8);
    }

    #[test]
    fn lexes_unicode_identifiers() {
        let t = toks("SELECT größe FROM tabelle");
        assert_eq!(
            t[1],
            Token::Word {
                value: "größe",
                keyword: None
            }
        );
    }
}
