//! Token model produced by the [`lexer`](crate::lexer).
//!
//! The lexer is deliberately permissive: anything that looks like a word
//! becomes a [`Token::Word`], and keyword recognition is case-insensitive so
//! that real-world logs (which mix `SELECT`, `select`, `Select`) normalize to
//! one token stream.
//!
//! Tokens are **zero-copy**: every payload borrows a span of the input
//! (`&'a str`), except string literals with `''` escapes, which need the
//! escapes folded and therefore own their text ([`std::borrow::Cow`]).
//! Owned `String`s materialize only when the parser builds AST nodes, so
//! the lexing hot path performs no per-token allocation.

use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::fmt;

/// SQL keywords recognized by the parser.
///
/// The set covers the SELECT-centric dialect observed in the SkyServer log
/// (SQL Server flavored: `TOP`, bracket quoting, `@variables`) plus the
/// leading keywords of DML/DDL statements, which the pipeline only needs to
/// *classify*, not to understand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    From,
    Where,
    Group,
    Order,
    By,
    Having,
    As,
    And,
    Or,
    Not,
    In,
    Is,
    Null,
    Like,
    Between,
    Exists,
    Distinct,
    All,
    Top,
    Limit,
    Offset,
    Asc,
    Desc,
    Join,
    Inner,
    Left,
    Right,
    Full,
    Outer,
    Cross,
    On,
    Union,
    Except,
    Intersect,
    Case,
    When,
    Then,
    Else,
    End,
    Cast,
    Into,
    True,
    False,
    Apply,
    Percent,
    // Leading keywords used only for statement classification.
    Insert,
    Update,
    Delete,
    Create,
    Drop,
    Alter,
    Truncate,
    Exec,
    Execute,
    Declare,
    Set,
    Use,
    Grant,
    Revoke,
    With,
}

impl Keyword {
    /// Looks up a keyword from a raw (arbitrarily cased) word.
    pub fn lookup(word: &str) -> Option<Keyword> {
        // Keywords are short; an ASCII uppercase copy on the stack would need
        // allocation for arbitrary input, so match case-insensitively instead.
        macro_rules! kw {
            ($($text:literal => $variant:ident),+ $(,)?) => {
                $(if word.eq_ignore_ascii_case($text) { return Some(Keyword::$variant); })+
            };
        }
        kw! {
            "SELECT" => Select, "FROM" => From, "WHERE" => Where, "GROUP" => Group,
            "ORDER" => Order, "BY" => By, "HAVING" => Having, "AS" => As,
            "AND" => And, "OR" => Or, "NOT" => Not, "IN" => In, "IS" => Is,
            "NULL" => Null, "LIKE" => Like, "BETWEEN" => Between, "EXISTS" => Exists,
            "DISTINCT" => Distinct, "ALL" => All, "TOP" => Top, "LIMIT" => Limit,
            "OFFSET" => Offset, "ASC" => Asc, "DESC" => Desc, "JOIN" => Join,
            "INNER" => Inner, "LEFT" => Left, "RIGHT" => Right, "FULL" => Full,
            "OUTER" => Outer, "CROSS" => Cross, "ON" => On, "UNION" => Union,
            "EXCEPT" => Except, "INTERSECT" => Intersect, "CASE" => Case,
            "WHEN" => When, "THEN" => Then, "ELSE" => Else, "END" => End,
            "CAST" => Cast, "INTO" => Into, "TRUE" => True, "FALSE" => False,
            "APPLY" => Apply, "PERCENT" => Percent,
            "INSERT" => Insert, "UPDATE" => Update, "DELETE" => Delete,
            "CREATE" => Create, "DROP" => Drop, "ALTER" => Alter,
            "TRUNCATE" => Truncate, "EXEC" => Exec, "EXECUTE" => Execute,
            "DECLARE" => Declare, "SET" => Set, "USE" => Use, "GRANT" => Grant,
            "REVOKE" => Revoke, "WITH" => With,
        }
        None
    }

    /// Canonical upper-case spelling, used by the printer.
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Select => "SELECT",
            Keyword::From => "FROM",
            Keyword::Where => "WHERE",
            Keyword::Group => "GROUP",
            Keyword::Order => "ORDER",
            Keyword::By => "BY",
            Keyword::Having => "HAVING",
            Keyword::As => "AS",
            Keyword::And => "AND",
            Keyword::Or => "OR",
            Keyword::Not => "NOT",
            Keyword::In => "IN",
            Keyword::Is => "IS",
            Keyword::Null => "NULL",
            Keyword::Like => "LIKE",
            Keyword::Between => "BETWEEN",
            Keyword::Exists => "EXISTS",
            Keyword::Distinct => "DISTINCT",
            Keyword::All => "ALL",
            Keyword::Top => "TOP",
            Keyword::Limit => "LIMIT",
            Keyword::Offset => "OFFSET",
            Keyword::Asc => "ASC",
            Keyword::Desc => "DESC",
            Keyword::Join => "JOIN",
            Keyword::Inner => "INNER",
            Keyword::Left => "LEFT",
            Keyword::Right => "RIGHT",
            Keyword::Full => "FULL",
            Keyword::Outer => "OUTER",
            Keyword::Cross => "CROSS",
            Keyword::On => "ON",
            Keyword::Union => "UNION",
            Keyword::Except => "EXCEPT",
            Keyword::Intersect => "INTERSECT",
            Keyword::Case => "CASE",
            Keyword::When => "WHEN",
            Keyword::Then => "THEN",
            Keyword::Else => "ELSE",
            Keyword::End => "END",
            Keyword::Cast => "CAST",
            Keyword::Into => "INTO",
            Keyword::True => "TRUE",
            Keyword::False => "FALSE",
            Keyword::Apply => "APPLY",
            Keyword::Percent => "PERCENT",
            Keyword::Insert => "INSERT",
            Keyword::Update => "UPDATE",
            Keyword::Delete => "DELETE",
            Keyword::Create => "CREATE",
            Keyword::Drop => "DROP",
            Keyword::Alter => "ALTER",
            Keyword::Truncate => "TRUNCATE",
            Keyword::Exec => "EXEC",
            Keyword::Execute => "EXECUTE",
            Keyword::Declare => "DECLARE",
            Keyword::Set => "SET",
            Keyword::Use => "USE",
            Keyword::Grant => "GRANT",
            Keyword::Revoke => "REVOKE",
            Keyword::With => "WITH",
        }
    }
}

/// One lexical token with its source span start (byte offset).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpannedToken<'a> {
    /// The token itself.
    pub token: Token<'a>,
    /// Byte offset of the first character of the token in the input.
    pub offset: usize,
}

/// Lexical token kinds, borrowing from the input text.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Token<'a> {
    /// A word: identifier or keyword. `keyword` is set when the word matches
    /// a known keyword (case-insensitively); the parser may still treat such
    /// a word as a plain identifier in non-reserved positions.
    Word {
        /// Raw text as written (quotes stripped for quoted identifiers).
        value: &'a str,
        /// Recognized keyword, if any. Always `None` for quoted identifiers.
        keyword: Option<Keyword>,
    },
    /// Numeric literal (integer, decimal or scientific notation), kept as
    /// written so no precision is lost.
    Number(&'a str),
    /// Single-quoted string literal, with `''` escapes already folded.
    /// Borrowed when the source contains no escape; owned otherwise.
    String(Cow<'a, str>),
    /// Host variable such as `@ra`.
    Variable(&'a str),
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&` (bitwise AND — SkyServer flag masks)
    Ampersand,
    /// `|` (bitwise OR)
    Pipe,
    /// `^` (bitwise XOR)
    Caret,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
}

impl Token<'_> {
    /// Returns the keyword if this token is an unquoted word matching one.
    pub fn keyword(&self) -> Option<Keyword> {
        match self {
            Token::Word { keyword, .. } => *keyword,
            _ => None,
        }
    }

    /// True if the token is the given keyword.
    pub fn is_keyword(&self, kw: Keyword) -> bool {
        self.keyword() == Some(kw)
    }
}

impl fmt::Display for Token<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Word { value, .. } => write!(f, "{value}"),
            Token::Number(n) => write!(f, "{n}"),
            Token::String(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Token::Variable(v) => write!(f, "@{v}"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Semicolon => write!(f, ";"),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Ampersand => write!(f, "&"),
            Token::Pipe => write!(f, "|"),
            Token::Caret => write!(f, "^"),
            Token::Eq => write!(f, "="),
            Token::Neq => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::LtEq => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::GtEq => write!(f, ">="),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_is_case_insensitive() {
        assert_eq!(Keyword::lookup("select"), Some(Keyword::Select));
        assert_eq!(Keyword::lookup("SeLeCt"), Some(Keyword::Select));
        assert_eq!(Keyword::lookup("BETWEEN"), Some(Keyword::Between));
        assert_eq!(Keyword::lookup("objid"), None);
    }

    #[test]
    fn keyword_round_trips_through_as_str() {
        for kw in [
            Keyword::Select,
            Keyword::Between,
            Keyword::Intersect,
            Keyword::Revoke,
            Keyword::With,
        ] {
            assert_eq!(Keyword::lookup(kw.as_str()), Some(kw));
        }
    }

    #[test]
    fn token_display_escapes_strings() {
        assert_eq!(Token::String("O'Neil".into()).to_string(), "'O''Neil'");
    }

    #[test]
    fn token_keyword_accessor() {
        let t = Token::Word {
            value: "FROM",
            keyword: Some(Keyword::From),
        };
        assert!(t.is_keyword(Keyword::From));
        assert!(!t.is_keyword(Keyword::Select));
        assert_eq!(Token::Comma.keyword(), None);
    }
}
