//! # sqlog-sql — SQL lexer, parser, AST and printer
//!
//! A from-scratch SQL front end for query-log analysis, covering the
//! SELECT-centric dialect found in public scientific database logs (the
//! SkyServer dialect in particular: SQL Server flavored `TOP`, bracket
//! quoting, `@variables`, table-valued functions).
//!
//! This crate is the bottom-most substrate of the `sqlog` workspace — the
//! reproduction of *"Cleaning Antipatterns in an SQL Query Log"*
//! (Arzamasova, Schäler, Böhm, 2018). The paper's framework parses every
//! statement of a log into a syntax tree (§5.3); everything downstream
//! (skeletons, templates, patterns, antipattern detection and solving)
//! operates on the [`ast`] defined here.
//!
//! ## Quick example
//!
//! ```
//! use sqlog_sql::{parse_statement, Statement};
//!
//! let stmt = parse_statement(
//!     "SELECT name, surname FROM Employees WHERE id = 12",
//! ).unwrap();
//! let Statement::Select(query) = stmt else { unreachable!() };
//! assert_eq!(query.body.projection.len(), 2);
//! // The printer produces canonical SQL:
//! assert_eq!(
//!     query.to_string(),
//!     "SELECT name, surname FROM Employees WHERE id = 12",
//! );
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod limits;
pub mod parser;
pub mod printer;
pub mod token;

pub use ast::{
    BinaryOp, Expr, Ident, JoinKind, Literal, ObjectName, OrderByItem, Query, Select, SelectItem,
    SetOperator, Statement, StatementKind, TableRef, UnaryOp,
};
pub use error::{ParseError, ParseLimit, Result};
pub use lexer::{tokenize, tokenize_with};
pub use limits::ParseLimits;
pub use parser::{
    parse_query, parse_query_with, parse_statement, parse_statement_with, parse_statements,
    parse_statements_with,
};
pub use token::{Keyword, Token};
