//! Canonical SQL rendering of the AST.
//!
//! `Display` impls produce a normalized single-line form: keywords upper-case,
//! single spaces, identifiers as written. The *clean log* the pipeline emits
//! is made of strings produced here, and the property tests rely on
//! `parse(print(ast)) == ast` (modulo nothing — the printer is exact).

use crate::ast::*;
use std::fmt;

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Re-quote identifiers that would not survive lexing as a single word.
        let needs_quoting = self.value.is_empty()
            || self
                .value
                .chars()
                .any(|c| !(c.is_alphanumeric() || c == '_' || c == '#' || c == '$'))
            || self
                .value
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_digit())
            || crate::token::Keyword::lookup(&self.value).is_some();
        if needs_quoting {
            write!(f, "[{}]", self.value)
        } else {
            write!(f, "{}", self.value)
        }
    }
}

impl fmt::Display for ObjectName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, part) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{part}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(q) => write!(f, "{q}"),
            Statement::Other(kind) => write!(f, "-- <{kind:?} statement>"),
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.body)?;
        for (op, all, body) in &self.set_ops {
            let op = match op {
                SetOperator::Union => "UNION",
                SetOperator::Except => "EXCEPT",
                SetOperator::Intersect => "INTERSECT",
            };
            write!(f, " {op}")?;
            if *all {
                write!(f, " ALL")?;
            }
            write!(f, " {body}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, item) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", item.expr)?;
                match item.asc {
                    Some(true) => write!(f, " ASC")?,
                    Some(false) => write!(f, " DESC")?,
                    None => {}
                }
            }
        }
        if let Some(limit) = &self.limit {
            write!(f, " LIMIT {limit}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT")?;
        if self.distinct {
            write!(f, " DISTINCT")?;
        }
        if let Some(top) = &self.top {
            write!(f, " TOP {top}")?;
            if self.top_percent {
                write!(f, " PERCENT")?;
            }
        }
        for (i, item) in self.projection.iter().enumerate() {
            write!(f, "{}", if i == 0 { " " } else { ", " })?;
            write!(f, "{item}")?;
        }
        if let Some(into) = &self.into {
            write!(f, " INTO {into}")?;
        }
        if !self.from.is_empty() {
            write!(f, " FROM ")?;
            for (i, t) in self.from.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}")?;
            }
        }
        if let Some(w) = &self.selection {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, e) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{e}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => write!(f, "*"),
            SelectItem::QualifiedWildcard(name) => write!(f, "{name}.*"),
            SelectItem::Expr { expr, alias } => {
                write!(f, "{expr}")?;
                if let Some(alias) = alias {
                    write!(f, " AS {alias}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableRef::Table { name, alias } => {
                write!(f, "{name}")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
            TableRef::Function { name, args, alias } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
            TableRef::Derived { subquery, alias } => {
                write!(f, "({subquery})")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
            TableRef::Join {
                left,
                right,
                kind,
                constraint,
            } => {
                let kw = match kind {
                    JoinKind::Inner => "INNER JOIN",
                    JoinKind::Left => "LEFT OUTER JOIN",
                    JoinKind::Right => "RIGHT OUTER JOIN",
                    JoinKind::Full => "FULL OUTER JOIN",
                    JoinKind::Cross => "CROSS JOIN",
                    JoinKind::CrossApply => "CROSS APPLY",
                    JoinKind::OuterApply => "OUTER APPLY",
                };
                // The parser builds left-deep join trees; a join on the right
                // side must be parenthesized to re-parse with the same shape.
                if matches!(right.as_ref(), TableRef::Join { .. }) {
                    write!(f, "{left} {kw} ({right})")?;
                } else {
                    write!(f, "{left} {kw} {right}")?;
                }
                if let Some(on) = constraint {
                    write!(f, " ON {on}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::Plus => "+",
            BinaryOp::Minus => "-",
            BinaryOp::Multiply => "*",
            BinaryOp::Divide => "/",
            BinaryOp::Modulo => "%",
            BinaryOp::BitAnd => "&",
            BinaryOp::BitOr => "|",
            BinaryOp::BitXor => "^",
        };
        write!(f, "{s}")
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Number(n) => write!(f, "{n}"),
            Literal::String(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Null => write!(f, "NULL"),
            Literal::Boolean(true) => write!(f, "TRUE"),
            Literal::Boolean(false) => write!(f, "FALSE"),
        }
    }
}

/// Precedence used only to decide where the printer must parenthesize so the
/// output re-parses to the same tree. Mirrors the parser's levels.
fn precedence(e: &Expr) -> u8 {
    match e {
        Expr::Binary { op, .. } => match op {
            BinaryOp::Or => 1,
            BinaryOp::And => 2,
            op if op.is_comparison() => 4,
            BinaryOp::BitAnd | BinaryOp::BitOr | BinaryOp::BitXor => 5,
            BinaryOp::Plus | BinaryOp::Minus => 6,
            _ => 7,
        },
        Expr::Unary {
            op: UnaryOp::Not, ..
        } => 3,
        Expr::IsNull { .. }
        | Expr::InList { .. }
        | Expr::InSubquery { .. }
        | Expr::Between { .. }
        | Expr::Like { .. } => 4,
        Expr::Unary { .. } => 8,
        _ => 9,
    }
}

/// Writes `child`, parenthesizing when its precedence is lower than the
/// context requires.
fn write_child(f: &mut fmt::Formatter<'_>, child: &Expr, min: u8) -> fmt::Result {
    if precedence(child) < min {
        write!(f, "({child})")
    } else {
        write!(f, "{child}")
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(name) => write!(f, "{name}"),
            Expr::Literal(lit) => write!(f, "{lit}"),
            Expr::Variable(v) => write!(f, "@{v}"),
            Expr::Binary { left, op, right } => {
                let prec = precedence(self);
                write_child(f, left, prec)?;
                write!(f, " {op} ")?;
                // Right child needs strictly higher precedence for
                // non-associative re-parse fidelity (parser is left-assoc).
                write_child(f, right, prec + 1)?;
                Ok(())
            }
            Expr::Unary { op, expr } => {
                match op {
                    UnaryOp::Not => write!(f, "NOT ")?,
                    UnaryOp::Minus => write!(f, "-")?,
                    UnaryOp::Plus => write!(f, "+")?,
                }
                write_child(f, expr, precedence(self))
            }
            Expr::Function {
                name,
                args,
                distinct,
            } => {
                write!(f, "{name}(")?;
                if *distinct {
                    write!(f, "DISTINCT ")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Wildcard => write!(f, "*"),
            Expr::IsNull { expr, negated } => {
                write_child(f, expr, 4)?;
                if *negated {
                    write!(f, " IS NOT NULL")
                } else {
                    write!(f, " IS NULL")
                }
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write_child(f, expr, 4)?;
                write!(f, "{} (", if *negated { " NOT IN" } else { " IN" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::InSubquery {
                expr,
                subquery,
                negated,
            } => {
                write_child(f, expr, 4)?;
                write!(
                    f,
                    "{} ({subquery})",
                    if *negated { " NOT IN" } else { " IN" }
                )
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                write_child(f, expr, 4)?;
                write!(f, "{} ", if *negated { " NOT BETWEEN" } else { " BETWEEN" })?;
                write_child(f, low, 5)?;
                write!(f, " AND ")?;
                write_child(f, high, 5)
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                write_child(f, expr, 4)?;
                write!(f, "{} ", if *negated { " NOT LIKE" } else { " LIKE" })?;
                write_child(f, pattern, 5)
            }
            Expr::Nested(inner) => write!(f, "({inner})"),
            Expr::Subquery(q) => write!(f, "({q})"),
            Expr::Exists { subquery, negated } => {
                if *negated {
                    write!(f, "NOT EXISTS ({subquery})")
                } else {
                    write!(f, "EXISTS ({subquery})")
                }
            }
            Expr::Case {
                operand,
                branches,
                else_result,
            } => {
                write!(f, "CASE")?;
                if let Some(op) = operand {
                    write!(f, " {op}")?;
                }
                for (w, t) in branches {
                    write!(f, " WHEN {w} THEN {t}")?;
                }
                if let Some(e) = else_result {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            Expr::Cast { expr, ty } => write!(f, "CAST({expr} AS {ty})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::ast::Statement;
    use crate::parser::{parse_query, parse_statement};

    /// Parse → print → parse must be the identity on the AST.
    fn round_trip(sql: &str) {
        let q1 = parse_query(sql).unwrap();
        let printed = q1.to_string();
        let q2 =
            parse_query(&printed).unwrap_or_else(|e| panic!("re-parse of {printed:?} failed: {e}"));
        assert_eq!(q1, q2, "round trip changed the AST for {printed:?}");
    }

    #[test]
    fn round_trips_paper_examples() {
        // Table 1 of the paper.
        round_trip("SELECT E.empId FROM Employees E WHERE E.department = 'sales'");
        round_trip("SELECT E.name, E.surname FROM Employees E WHERE E.id = 12");
        round_trip("SELECT count(orders) FROM Orders O WHERE O.empId = 12");
        // Example 10 (DW solving solution).
        round_trip("SELECT empId, name FROM Employee WHERE empId IN (8, 1)");
        // Example 14 (DF solving solution).
        round_trip(
            "SELECT E.name, EI.address FROM Employee AS E INNER JOIN EmployeeInfo AS EI \
             ON E.empId = EI.empId WHERE E.empId = 8",
        );
        // Intro rewrite with derived table.
        round_trip(
            "SELECT E.empId, E.name, O.oCount FROM Employees E INNER JOIN \
             (SELECT empId, count(orders) AS oCount FROM Orders GROUP BY empId) O \
             ON O.empId = E.empId",
        );
    }

    #[test]
    fn round_trips_skyserver_shapes() {
        round_trip(
            "SELECT g.objid FROM photoobjall AS g INNER JOIN \
             fgetnearbyobjeq(@ra, @dec, @r) AS gn ON g.objid = gn.objid \
             LEFT OUTER JOIN specobj AS s ON s.bestobjid = gn.objid",
        );
        round_trip("SELECT count(*) FROM photoprimary WHERE htmid >= @htm1 AND htmid <= @htm2");
        round_trip("SELECT * FROM dbo.fGetNearestObjEq(145.38708, 0.12532, 0.1)");
        round_trip("SELECT TOP 10 objid, ra, [dec] FROM photoprimary ORDER BY r DESC");
    }

    #[test]
    fn round_trips_operator_precedence_edge_cases() {
        round_trip("SELECT a FROM t WHERE (a = 1 OR b = 2) AND c = 3");
        round_trip("SELECT (1 + 2) * 3 FROM t");
        round_trip("SELECT -(1 + 2) FROM t");
        round_trip("SELECT a FROM t WHERE NOT (a = 1 AND b = 2)");
        round_trip("SELECT 1 - (2 - 3) FROM t");
        round_trip("SELECT a FROM t WHERE x NOT LIKE 'a%' AND y NOT BETWEEN 1 AND 2");
    }

    #[test]
    fn reserved_identifiers_are_requoted() {
        // `dec` (declination!) collides with the DECLARE-family keywords in
        // some dialects; our printer quotes any identifier matching a keyword.
        let q = parse_query("SELECT [select] FROM [from]").unwrap();
        let printed = q.to_string();
        assert_eq!(printed, "SELECT [select] FROM [from]");
        round_trip("SELECT [select] FROM [from]");
    }

    #[test]
    fn prints_union_and_order() {
        let q = parse_query("SELECT a FROM t UNION ALL SELECT b FROM u ORDER BY 1 DESC").unwrap();
        assert_eq!(
            q.to_string(),
            "SELECT a FROM t UNION ALL SELECT b FROM u ORDER BY 1 DESC"
        );
    }

    #[test]
    fn non_select_prints_as_comment() {
        let s = parse_statement("DELETE FROM t WHERE a = 1").unwrap();
        assert!(matches!(s, Statement::Other(_)));
        assert!(s.to_string().starts_with("--"));
    }

    #[test]
    fn round_trips_apply_and_top_percent() {
        round_trip(
            "SELECT p.objid FROM photoprimary AS p              CROSS APPLY fGetNearbyObjEq(p.ra, p.dec, 1.0) AS n",
        );
        round_trip("SELECT * FROM t OUTER APPLY f(t.x) AS a");
        round_trip("SELECT TOP 5 PERCENT objid FROM photoprimary ORDER BY r DESC");
    }

    #[test]
    fn round_trips_case_cast_exists() {
        round_trip(
            "SELECT CASE WHEN r > 20 THEN 'f' ELSE 'b' END FROM p \
             WHERE EXISTS (SELECT 1 FROM s) AND CAST(ra AS varchar(32)) LIKE '1%'",
        );
        round_trip("SELECT CASE x WHEN 1 THEN 'a' WHEN 2 THEN 'b' END FROM t");
    }
}
