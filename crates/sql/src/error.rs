//! Error types for lexing and parsing.

use std::fmt;

/// An error produced while lexing or parsing a statement.
///
/// Carries the byte offset into the original input so that callers (and the
/// pipeline's per-statement error statistics) can point at the failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
}

impl ParseError {
    /// Creates a new error at the given byte offset.
    pub fn new(message: impl Into<String>, offset: usize) -> Self {
        ParseError {
            message: message.into(),
            offset,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "syntax error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset_and_message() {
        let e = ParseError::new("unexpected token", 17);
        assert_eq!(e.to_string(), "syntax error at byte 17: unexpected token");
    }
}
