//! Error types for lexing and parsing.

use std::fmt;

/// Which parser resource limit was exceeded.
///
/// Limit violations are *not* syntax errors: the statement may well be valid
/// SQL, but parsing it to completion would risk exhausting process resources
/// (stack, memory, time). Query-log cleaning must survive adversarial inputs
/// — a depth-bomb of 10 000 nested parentheses must be rejected with a typed
/// error, never crash the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParseLimit {
    /// Expression / subquery nesting exceeded [`crate::ParseLimits::max_depth`].
    Depth,
    /// Input longer than [`crate::ParseLimits::max_statement_bytes`].
    StatementBytes,
    /// More tokens than [`crate::ParseLimits::max_tokens`].
    Tokens,
}

impl ParseLimit {
    /// Human-readable name of the limit.
    pub fn as_str(self) -> &'static str {
        match self {
            ParseLimit::Depth => "nesting depth",
            ParseLimit::StatementBytes => "statement length",
            ParseLimit::Tokens => "token count",
        }
    }
}

/// An error produced while lexing or parsing a statement.
///
/// Carries the byte offset into the original input so that callers (and the
/// pipeline's per-statement error statistics) can point at the failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The input is not valid SQL (in the supported dialect).
    Syntax {
        /// Human-readable description of what went wrong.
        message: String,
        /// Byte offset in the input where the error was detected.
        offset: usize,
    },
    /// A resource guard tripped before the input could be fully parsed.
    LimitExceeded {
        /// Which limit was exceeded.
        limit: ParseLimit,
        /// Byte offset in the input where the guard tripped.
        offset: usize,
    },
}

impl ParseError {
    /// Creates a new syntax error at the given byte offset.
    pub fn new(message: impl Into<String>, offset: usize) -> Self {
        ParseError::Syntax {
            message: message.into(),
            offset,
        }
    }

    /// Creates a limit-exceeded error at the given byte offset.
    pub fn limit(limit: ParseLimit, offset: usize) -> Self {
        ParseError::LimitExceeded { limit, offset }
    }

    /// Byte offset in the input where the error was detected.
    pub fn offset(&self) -> usize {
        match self {
            ParseError::Syntax { offset, .. } | ParseError::LimitExceeded { offset, .. } => *offset,
        }
    }

    /// True when this error is a tripped resource guard rather than a
    /// genuine syntax problem.
    pub fn is_limit(&self) -> bool {
        matches!(self, ParseError::LimitExceeded { .. })
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax { message, offset } => {
                write!(f, "syntax error at byte {offset}: {message}")
            }
            ParseError::LimitExceeded { limit, offset } => {
                write!(f, "limit exceeded at byte {offset}: {}", limit.as_str())
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset_and_message() {
        let e = ParseError::new("unexpected token", 17);
        assert_eq!(e.to_string(), "syntax error at byte 17: unexpected token");
        assert!(!e.is_limit());
    }

    #[test]
    fn limit_errors_are_typed() {
        let e = ParseError::limit(ParseLimit::Depth, 42);
        assert!(e.is_limit());
        assert_eq!(e.offset(), 42);
        assert_eq!(e.to_string(), "limit exceeded at byte 42: nesting depth");
    }
}
