//! Abstract syntax tree for the SELECT-centric SQL dialect.
//!
//! The AST is the common currency of the whole workspace: the skeleton crate
//! walks it to build skeleton trees (literals → placeholders), the cleaning
//! framework rewrites it to *solve* antipatterns, the mini database executes
//! it, and the clustering crate extracts accessed data regions from it.
//!
//! Statements that are not `SELECT` (DML/DDL/procedural) are classified but
//! not modeled further — the paper's pipeline drops them right after parsing
//! (§5.3), and keeping them opaque keeps the grammar honest about what the
//! downstream analyses actually consume.

use serde::{Deserialize, Serialize};

/// A dot-separated, possibly-qualified name such as `dbo.fGetNearestObjEq`
/// or `p.objid`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectName(pub Vec<Ident>);

impl ObjectName {
    /// Single-part name.
    pub fn simple(name: impl Into<String>) -> Self {
        ObjectName(vec![Ident::new(name)])
    }

    /// The final (unqualified) part of the name.
    pub fn last(&self) -> &Ident {
        self.0.last().expect("ObjectName is never empty")
    }

    /// The qualifier parts (everything but the last), if any.
    pub fn qualifier(&self) -> &[Ident] {
        &self.0[..self.0.len() - 1]
    }
}

/// An identifier. Comparison and hashing are case-insensitive, matching SQL
/// semantics: `PhotoPrimary` and `photoprimary` refer to the same table, and
/// the paper's skeleton equality must treat them identically.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ident {
    /// The identifier as written in the query.
    pub value: String,
}

impl Ident {
    /// Creates an identifier.
    pub fn new(value: impl Into<String>) -> Self {
        Ident {
            value: value.into(),
        }
    }

    /// Lower-cased form used for comparisons and fingerprints.
    pub fn normalized(&self) -> String {
        self.value.to_ascii_lowercase()
    }

    /// Case-insensitive equality against a plain string.
    pub fn eq_ignore_case(&self, other: &str) -> bool {
        self.value.eq_ignore_ascii_case(other)
    }
}

impl PartialEq for Ident {
    fn eq(&self, other: &Self) -> bool {
        self.value.eq_ignore_ascii_case(&other.value)
    }
}

impl Eq for Ident {}

impl std::hash::Hash for Ident {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        for b in self.value.bytes() {
            state.write_u8(b.to_ascii_lowercase());
        }
    }
}

impl PartialOrd for Ident {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ident {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.value
            .bytes()
            .map(|b| b.to_ascii_lowercase())
            .cmp(other.value.bytes().map(|b| b.to_ascii_lowercase()))
    }
}

/// Classification of a parsed statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Statement {
    /// A `SELECT` query — the only kind analyzed further.
    Select(Box<Query>),
    /// Any other recognized statement, kept only as a classification.
    Other(StatementKind),
}

impl Statement {
    /// Returns the query if this is a `SELECT`.
    pub fn as_select(&self) -> Option<&Query> {
        match self {
            Statement::Select(q) => Some(q),
            Statement::Other(_) => None,
        }
    }
}

/// Coarse classification of non-SELECT statements, used by the pipeline's
/// filtering statistics (the paper keeps only SELECTs: 95.9 % of SkyServer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum StatementKind {
    Insert,
    Update,
    Delete,
    Ddl,
    Exec,
    Other,
}

/// A full query: one or more `SELECT` bodies combined with set operators,
/// plus an optional `ORDER BY` / `LIMIT` tail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// The first (or only) SELECT body.
    pub body: Select,
    /// Further bodies combined with `UNION`/`EXCEPT`/`INTERSECT`.
    pub set_ops: Vec<(SetOperator, bool, Select)>,
    /// `ORDER BY` items (applies to the whole query).
    pub order_by: Vec<OrderByItem>,
    /// `LIMIT n` (MySQL/Postgres spelling; SkyServer uses TOP instead).
    pub limit: Option<Expr>,
}

impl Query {
    /// Wraps a single SELECT body with no set operations or tail.
    pub fn simple(body: Select) -> Self {
        Query {
            body,
            set_ops: Vec::new(),
            order_by: Vec::new(),
            limit: None,
        }
    }

    /// True if the query is a single SELECT body (no set operators).
    pub fn is_simple(&self) -> bool {
        self.set_ops.is_empty()
    }
}

/// Set operators combining SELECT bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum SetOperator {
    Union,
    Except,
    Intersect,
}

/// One `SELECT ... FROM ... WHERE ...` body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Select {
    /// `DISTINCT` flag.
    pub distinct: bool,
    /// `TOP n` (SQL Server), e.g. `SELECT TOP 10 ...`.
    pub top: Option<Expr>,
    /// `TOP n PERCENT` variant.
    pub top_percent: bool,
    /// The projection list (`SELECT` clause, Def. 3's SC).
    pub projection: Vec<SelectItem>,
    /// `INTO table` (SQL Server); rare in logs but present.
    pub into: Option<ObjectName>,
    /// The `FROM` clause (Def. 3's FC): comma-separated table references,
    /// each possibly a join tree.
    pub from: Vec<TableRef>,
    /// The `WHERE` clause (Def. 3's WC).
    pub selection: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
}

impl Select {
    /// An empty SELECT body; useful as a builder seed in tests and rewrites.
    pub fn empty() -> Self {
        Select {
            distinct: false,
            top: None,
            top_percent: false,
            projection: Vec::new(),
            into: None,
            from: Vec::new(),
            selection: None,
            group_by: Vec::new(),
            having: None,
        }
    }
}

/// One item of the projection list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(ObjectName),
    /// An expression with an optional alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// `AS alias`, if present.
        alias: Option<Ident>,
    },
}

impl SelectItem {
    /// Plain unaliased column reference.
    pub fn column(name: ObjectName) -> Self {
        SelectItem::Expr {
            expr: Expr::Column(name),
            alias: None,
        }
    }
}

/// A table reference in the FROM clause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TableRef {
    /// A base table, optionally aliased.
    Table {
        /// Table name (possibly qualified).
        name: ObjectName,
        /// `AS alias`.
        alias: Option<Ident>,
    },
    /// A table-valued function call such as `fGetNearbyObjEq(@ra,@dec,@r)`.
    Function {
        /// Function name.
        name: ObjectName,
        /// Call arguments.
        args: Vec<Expr>,
        /// `AS alias`.
        alias: Option<Ident>,
    },
    /// A parenthesized subquery used as a table.
    Derived {
        /// The inner query.
        subquery: Box<Query>,
        /// `AS alias`.
        alias: Option<Ident>,
    },
    /// A join of two table references.
    Join {
        /// Left operand.
        left: Box<TableRef>,
        /// Right operand.
        right: Box<TableRef>,
        /// Kind of join.
        kind: JoinKind,
        /// `ON` condition (`None` for CROSS joins).
        constraint: Option<Expr>,
    },
}

impl TableRef {
    /// Convenience constructor for an aliased base table.
    pub fn table(name: impl Into<String>, alias: Option<&str>) -> Self {
        TableRef::Table {
            name: ObjectName::simple(name),
            alias: alias.map(Ident::new),
        }
    }

    /// Visits every base-table / function name mentioned in this reference.
    pub fn visit_names<'a>(&'a self, f: &mut impl FnMut(&'a ObjectName)) {
        match self {
            TableRef::Table { name, .. } | TableRef::Function { name, .. } => f(name),
            TableRef::Derived { subquery, .. } => {
                for t in &subquery.body.from {
                    t.visit_names(f);
                }
            }
            TableRef::Join { left, right, .. } => {
                left.visit_names(f);
                right.visit_names(f);
            }
        }
    }
}

/// Join kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum JoinKind {
    Inner,
    Left,
    Right,
    Full,
    Cross,
    /// SQL Server `CROSS APPLY` — a lateral join against a table-valued
    /// function (SkyServer: `photoprimary p CROSS APPLY fGetNearbyObjEq(...)`).
    CrossApply,
    /// SQL Server `OUTER APPLY` (lateral left join).
    OuterApply,
}

/// One `ORDER BY` item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderByItem {
    /// Sort expression.
    pub expr: Expr,
    /// `ASC` (true) or `DESC` (false); `None` if unspecified.
    pub asc: Option<bool>,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum BinaryOp {
    And,
    Or,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Plus,
    Minus,
    Multiply,
    Divide,
    Modulo,
    BitAnd,
    BitOr,
    BitXor,
}

impl BinaryOp {
    /// True for `=`, `<>`, `<`, `<=`, `>`, `>=`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum UnaryOp {
    Not,
    Minus,
    Plus,
}

/// Literal values. Numbers keep their textual form (SkyServer objids exceed
/// `f64` precision) together with a parsed numeric value for range analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Literal {
    /// Numeric literal: original text.
    Number(String),
    /// String literal (unescaped contents).
    String(String),
    /// `NULL`.
    Null,
    /// `TRUE` / `FALSE`.
    Boolean(bool),
}

impl Literal {
    /// Numeric value if this literal is a number (hex supported).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Literal::Number(text) => {
                if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
                    u64::from_str_radix(hex, 16).ok().map(|v| v as f64)
                } else {
                    text.parse().ok()
                }
            }
            Literal::Boolean(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Column reference (possibly qualified).
    Column(ObjectName),
    /// A literal constant — the *parameters* that skeletons replace.
    Literal(Literal),
    /// Host variable `@x`.
    Variable(String),
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Function call, e.g. `count(*)`, `str(p.ra, 10, 4)`.
    Function {
        /// Function name.
        name: ObjectName,
        /// Arguments.
        args: Vec<Expr>,
        /// `DISTINCT` inside an aggregate call.
        distinct: bool,
    },
    /// `*` as a function argument (`count(*)`).
    Wildcard,
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr [NOT] IN (e1, e2, ...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// List members.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] IN (subquery)`.
    InSubquery {
        /// Tested expression.
        expr: Box<Expr>,
        /// The subquery.
        subquery: Box<Query>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound.
        low: Box<Expr>,
        /// Upper bound.
        high: Box<Expr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern`.
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern expression.
        pattern: Box<Expr>,
        /// True for `NOT LIKE`.
        negated: bool,
    },
    /// Parenthesized expression (kept so the printer round-trips shape).
    Nested(Box<Expr>),
    /// Scalar subquery `(SELECT ...)`.
    Subquery(Box<Query>),
    /// `[NOT] EXISTS (subquery)`.
    Exists {
        /// The subquery.
        subquery: Box<Query>,
        /// True for `NOT EXISTS`.
        negated: bool,
    },
    /// `CASE [operand] WHEN .. THEN .. [ELSE ..] END`.
    Case {
        /// Optional operand of a simple CASE.
        operand: Option<Box<Expr>>,
        /// `(WHEN, THEN)` pairs.
        branches: Vec<(Expr, Expr)>,
        /// `ELSE` result.
        else_result: Option<Box<Expr>>,
    },
    /// `CAST(expr AS type)`.
    Cast {
        /// The cast operand.
        expr: Box<Expr>,
        /// Target type name, kept as written (e.g. `varchar(32)` → "varchar(32)").
        ty: String,
    },
}

impl Expr {
    /// Convenience: equality comparison between a column and a literal.
    pub fn eq_lit(column: ObjectName, lit: Literal) -> Expr {
        Expr::Binary {
            left: Box::new(Expr::Column(column)),
            op: BinaryOp::Eq,
            right: Box::new(Expr::Literal(lit)),
        }
    }

    /// Conjunction of two expressions.
    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op: BinaryOp::And,
            right: Box::new(right),
        }
    }

    /// Splits a predicate tree into its top-level conjuncts.
    ///
    /// `a = 1 AND b > 2 AND c = 3` yields `[a = 1, b > 2, c = 3]`.
    /// Parenthesized sub-expressions are looked through: the paper's CP
    /// ("count of predicates", Def. 11) counts logical conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::Binary {
                    op: BinaryOp::And,
                    left,
                    right,
                } => {
                    walk(left, out);
                    walk(right, out);
                }
                Expr::Nested(inner) => walk(inner, out),
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Visits every node of the expression tree, depth-first, pre-order.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            Expr::Unary { expr, .. } => expr.visit(f),
            Expr::Function { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            Expr::IsNull { expr, .. } => expr.visit(f),
            Expr::InList { expr, list, .. } => {
                expr.visit(f);
                for e in list {
                    e.visit(f);
                }
            }
            Expr::InSubquery { expr, .. } => expr.visit(f),
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.visit(f);
                low.visit(f);
                high.visit(f);
            }
            Expr::Like { expr, pattern, .. } => {
                expr.visit(f);
                pattern.visit(f);
            }
            Expr::Nested(e) => e.visit(f),
            Expr::Case {
                operand,
                branches,
                else_result,
            } => {
                if let Some(op) = operand {
                    op.visit(f);
                }
                for (w, t) in branches {
                    w.visit(f);
                    t.visit(f);
                }
                if let Some(e) = else_result {
                    e.visit(f);
                }
            }
            Expr::Cast { expr, .. } => expr.visit(f),
            Expr::Column(_)
            | Expr::Literal(_)
            | Expr::Variable(_)
            | Expr::Wildcard
            | Expr::Subquery(_)
            | Expr::Exists { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_equality_is_case_insensitive() {
        assert_eq!(Ident::new("PhotoPrimary"), Ident::new("photoprimary"));
        let mut set = std::collections::HashSet::new();
        set.insert(Ident::new("ObjID"));
        assert!(set.contains(&Ident::new("objid")));
    }

    #[test]
    fn ident_ordering_is_case_insensitive() {
        assert!(Ident::new("abc") < Ident::new("ABD"));
        assert_eq!(
            Ident::new("X").cmp(&Ident::new("x")),
            std::cmp::Ordering::Equal
        );
    }

    #[test]
    fn conjuncts_flatten_and_trees() {
        let e = Expr::and(
            Expr::eq_lit(ObjectName::simple("a"), Literal::Number("1".into())),
            Expr::and(
                Expr::Nested(Box::new(Expr::eq_lit(
                    ObjectName::simple("b"),
                    Literal::Number("2".into()),
                ))),
                Expr::eq_lit(ObjectName::simple("c"), Literal::Number("3".into())),
            ),
        );
        assert_eq!(e.conjuncts().len(), 3);
    }

    #[test]
    fn or_is_a_single_conjunct() {
        let e = Expr::Binary {
            left: Box::new(Expr::eq_lit(
                ObjectName::simple("a"),
                Literal::Number("1".into()),
            )),
            op: BinaryOp::Or,
            right: Box::new(Expr::eq_lit(
                ObjectName::simple("b"),
                Literal::Number("2".into()),
            )),
        };
        assert_eq!(e.conjuncts().len(), 1);
    }

    #[test]
    fn literal_numeric_values() {
        assert_eq!(Literal::Number("3.5".into()).as_f64(), Some(3.5));
        assert_eq!(Literal::Number("0x10".into()).as_f64(), Some(16.0));
        assert_eq!(Literal::String("x".into()).as_f64(), None);
        assert_eq!(Literal::Boolean(true).as_f64(), Some(1.0));
    }

    #[test]
    fn visit_reaches_nested_nodes() {
        let e = Expr::Between {
            expr: Box::new(Expr::Column(ObjectName::simple("r"))),
            low: Box::new(Expr::Literal(Literal::Number("1".into()))),
            high: Box::new(Expr::Literal(Literal::Number("2".into()))),
            negated: false,
        };
        let mut literals = 0;
        e.visit(&mut |node| {
            if matches!(node, Expr::Literal(_)) {
                literals += 1;
            }
        });
        assert_eq!(literals, 2);
    }

    #[test]
    fn table_ref_visit_names_recurses_joins_and_derived() {
        let inner = Query::simple(Select {
            from: vec![TableRef::table("orders", None)],
            ..Select::empty()
        });
        let t = TableRef::Join {
            left: Box::new(TableRef::table("employees", Some("e"))),
            right: Box::new(TableRef::Derived {
                subquery: Box::new(inner),
                alias: Some(Ident::new("o")),
            }),
            kind: JoinKind::Inner,
            constraint: None,
        };
        let mut names = Vec::new();
        t.visit_names(&mut |n| names.push(n.last().normalized()));
        assert_eq!(names, vec!["employees", "orders"]);
    }
}
