//! Property tests: for every AST we can generate, `parse(print(ast)) == ast`.
//!
//! This pins down the printer/parser pair: the clean log the pipeline emits
//! is printed SQL, and it must mean exactly what the rewriter built.

use proptest::prelude::*;
use sqlog_sql::ast::*;
use sqlog_sql::parse_query;

/// Removes `Expr::Nested` wrappers everywhere in a query.
///
/// The printer inserts parentheses wherever re-parsing would otherwise change
/// the tree; the parser records those parentheses as `Nested` nodes. The
/// round-trip property therefore holds *modulo* `Nested`: parenthesization is
/// exactly the information the printer is allowed to add.
fn strip_query(q: Query) -> Query {
    Query {
        body: strip_select(q.body),
        set_ops: q
            .set_ops
            .into_iter()
            .map(|(op, all, s)| (op, all, strip_select(s)))
            .collect(),
        order_by: q
            .order_by
            .into_iter()
            .map(|o| OrderByItem {
                expr: strip_expr(o.expr),
                asc: o.asc,
            })
            .collect(),
        limit: q.limit.map(strip_expr),
    }
}

fn strip_select(s: Select) -> Select {
    Select {
        distinct: s.distinct,
        top: s.top.map(strip_expr),
        top_percent: s.top_percent,
        projection: s
            .projection
            .into_iter()
            .map(|p| match p {
                SelectItem::Expr { expr, alias } => SelectItem::Expr {
                    expr: strip_expr(expr),
                    alias,
                },
                other => other,
            })
            .collect(),
        into: s.into,
        from: s.from.into_iter().map(strip_table).collect(),
        selection: s.selection.map(strip_expr),
        group_by: s.group_by.into_iter().map(strip_expr).collect(),
        having: s.having.map(strip_expr),
    }
}

fn strip_table(t: TableRef) -> TableRef {
    match t {
        TableRef::Table { .. } => t,
        TableRef::Function { name, args, alias } => TableRef::Function {
            name,
            args: args.into_iter().map(strip_expr).collect(),
            alias,
        },
        TableRef::Derived { subquery, alias } => TableRef::Derived {
            subquery: Box::new(strip_query(*subquery)),
            alias,
        },
        TableRef::Join {
            left,
            right,
            kind,
            constraint,
        } => TableRef::Join {
            left: Box::new(strip_table(*left)),
            right: Box::new(strip_table(*right)),
            kind,
            constraint: constraint.map(strip_expr),
        },
    }
}

fn strip_expr(e: Expr) -> Expr {
    match e {
        Expr::Nested(inner) => strip_expr(*inner),
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(strip_expr(*left)),
            op,
            right: Box::new(strip_expr(*right)),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op,
            expr: Box::new(strip_expr(*expr)),
        },
        Expr::Function {
            name,
            args,
            distinct,
        } => Expr::Function {
            name,
            args: args.into_iter().map(strip_expr).collect(),
            distinct,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(strip_expr(*expr)),
            negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(strip_expr(*expr)),
            list: list.into_iter().map(strip_expr).collect(),
            negated,
        },
        Expr::InSubquery {
            expr,
            subquery,
            negated,
        } => Expr::InSubquery {
            expr: Box::new(strip_expr(*expr)),
            subquery: Box::new(strip_query(*subquery)),
            negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(strip_expr(*expr)),
            low: Box::new(strip_expr(*low)),
            high: Box::new(strip_expr(*high)),
            negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(strip_expr(*expr)),
            pattern: Box::new(strip_expr(*pattern)),
            negated,
        },
        Expr::Subquery(q) => Expr::Subquery(Box::new(strip_query(*q))),
        Expr::Exists { subquery, negated } => Expr::Exists {
            subquery: Box::new(strip_query(*subquery)),
            negated,
        },
        Expr::Case {
            operand,
            branches,
            else_result,
        } => Expr::Case {
            operand: operand.map(|o| Box::new(strip_expr(*o))),
            branches: branches
                .into_iter()
                .map(|(w, t)| (strip_expr(w), strip_expr(t)))
                .collect(),
            else_result: else_result.map(|e| Box::new(strip_expr(*e))),
        },
        Expr::Cast { expr, ty } => Expr::Cast {
            expr: Box::new(strip_expr(*expr)),
            ty,
        },
        leaf @ (Expr::Column(_) | Expr::Literal(_) | Expr::Variable(_) | Expr::Wildcard) => leaf,
    }
}

/// Identifiers that survive printing without quoting and are not keywords.
fn ident_strategy() -> impl Strategy<Value = Ident> {
    prop_oneof![
        Just("objid"),
        Just("ra"),
        Just("name"),
        Just("photoprimary"),
        Just("rowc_g"),
        Just("colc_g"),
        Just("empId"),
        Just("T1"),
        Just("x_9"),
    ]
    .prop_map(Ident::new)
}

fn object_name_strategy() -> impl Strategy<Value = ObjectName> {
    prop::collection::vec(ident_strategy(), 1..3).prop_map(ObjectName)
}

fn literal_strategy() -> impl Strategy<Value = Literal> {
    prop_oneof![
        (0u64..=u64::MAX).prop_map(|n| Literal::Number(n.to_string())),
        // The lexer only ever produces unsigned number tokens (a leading `-`
        // is a separate Minus token), so generate strictly non-negative,
        // non-signed-zero numbers here.
        (any::<f32>().prop_filter("finite, sign-positive", |f| f.is_finite()
            && f.is_sign_positive()))
        .prop_map(|f| Literal::Number(format!("{f:?}"))),
        "[a-z '%_]{0,12}".prop_map(Literal::String),
        Just(Literal::Null),
        any::<bool>().prop_map(Literal::Boolean),
    ]
}

fn binop_strategy() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::And),
        Just(BinaryOp::Or),
        Just(BinaryOp::Eq),
        Just(BinaryOp::NotEq),
        Just(BinaryOp::Lt),
        Just(BinaryOp::LtEq),
        Just(BinaryOp::Gt),
        Just(BinaryOp::GtEq),
        Just(BinaryOp::Plus),
        Just(BinaryOp::Minus),
        Just(BinaryOp::Multiply),
        Just(BinaryOp::Divide),
        Just(BinaryOp::Modulo),
    ]
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        object_name_strategy().prop_map(Expr::Column),
        literal_strategy().prop_map(Expr::Literal),
        "[a-z][a-z0-9]{0,5}".prop_map(Expr::Variable),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), binop_strategy(), inner.clone()).prop_map(|(l, op, r)| {
                Expr::Binary {
                    left: Box::new(l),
                    op,
                    right: Box::new(r),
                }
            }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e),
            }),
            (inner.clone(), any::<bool>()).prop_map(|(e, negated)| Expr::IsNull {
                expr: Box::new(e),
                negated,
            }),
            (
                inner.clone(),
                prop::collection::vec(literal_strategy().prop_map(Expr::Literal), 1..4),
                any::<bool>()
            )
                .prop_map(|(e, list, negated)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated,
                }),
            (inner.clone(), inner.clone(), inner.clone(), any::<bool>()).prop_map(
                |(e, lo, hi, negated)| Expr::Between {
                    expr: Box::new(e),
                    low: Box::new(lo),
                    high: Box::new(hi),
                    negated,
                }
            ),
            (
                object_name_strategy(),
                prop::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(name, args)| Expr::Function {
                    name,
                    args,
                    distinct: false,
                }),
        ]
    })
}

fn select_item_strategy() -> impl Strategy<Value = SelectItem> {
    prop_oneof![
        Just(SelectItem::Wildcard),
        object_name_strategy().prop_map(SelectItem::QualifiedWildcard),
        (expr_strategy(), prop::option::of(ident_strategy()))
            .prop_map(|(expr, alias)| SelectItem::Expr { expr, alias }),
    ]
}

fn table_ref_strategy() -> impl Strategy<Value = TableRef> {
    let base = prop_oneof![
        (object_name_strategy(), prop::option::of(ident_strategy()))
            .prop_map(|(name, alias)| TableRef::Table { name, alias }),
        (
            object_name_strategy(),
            prop::collection::vec(literal_strategy().prop_map(Expr::Literal), 0..3),
            prop::option::of(ident_strategy()),
        )
            .prop_map(|(name, args, alias)| TableRef::Function { name, args, alias }),
    ];
    base.prop_recursive(2, 6, 2, |inner| {
        (
            inner.clone(),
            inner,
            prop_oneof![
                Just(JoinKind::Inner),
                Just(JoinKind::Left),
                Just(JoinKind::Right),
                Just(JoinKind::Full),
            ],
            prop::option::of(expr_strategy()),
        )
            .prop_map(|(l, r, kind, constraint)| TableRef::Join {
                left: Box::new(l),
                right: Box::new(r),
                kind,
                constraint,
            })
    })
}

fn query_strategy() -> impl Strategy<Value = Query> {
    (
        any::<bool>(),
        prop::collection::vec(select_item_strategy(), 1..4),
        prop::collection::vec(table_ref_strategy(), 0..3),
        prop::option::of(expr_strategy()),
        prop::collection::vec(expr_strategy(), 0..2),
        prop::collection::vec(
            (expr_strategy(), prop::option::of(any::<bool>()))
                .prop_map(|(expr, asc)| OrderByItem { expr, asc }),
            0..2,
        ),
    )
        .prop_map(
            |(distinct, projection, from, selection, group_by, order_by)| Query {
                body: Select {
                    distinct,
                    top: None,
                    top_percent: false,
                    projection,
                    into: None,
                    from,
                    selection,
                    group_by,
                    having: None,
                },
                set_ops: Vec::new(),
                order_by,
                limit: None,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_round_trip(q in query_strategy()) {
        let printed = q.to_string();
        let reparsed = parse_query(&printed)
            .unwrap_or_else(|e| panic!("failed to re-parse {printed:?}: {e}"));
        prop_assert_eq!(
            strip_query(q),
            strip_query(reparsed),
            "printed form: {}",
            printed
        );
    }

    /// A second print after one round trip must be byte-identical: printing
    /// reaches a fixpoint after at most one normalization pass.
    #[test]
    fn printing_reaches_fixpoint(q in query_strategy()) {
        let once = q.to_string();
        let reparsed = parse_query(&once)
            .unwrap_or_else(|e| panic!("failed to re-parse {once:?}: {e}"));
        let twice = reparsed.to_string();
        let reparsed2 = parse_query(&twice)
            .unwrap_or_else(|e| panic!("failed to re-parse {twice:?}: {e}"));
        prop_assert_eq!(twice, reparsed2.to_string());
    }

    #[test]
    fn printing_is_deterministic(q in query_strategy()) {
        prop_assert_eq!(q.to_string(), q.to_string());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The parser never panics — arbitrary input yields Ok or Err.
    #[test]
    fn parser_total_on_arbitrary_input(input in ".{0,200}") {
        let _ = sqlog_sql::parse_statement(&input);
        let _ = sqlog_sql::parse_statements(&input);
        let _ = sqlog_sql::tokenize(&input);
    }

    /// SQL-looking fragments with random mutations never panic either.
    #[test]
    fn parser_total_on_mutated_sql(
        head in "(SELECT|select|SeLeCt) [a-z, *]{0,20}",
        middle in "(FROM [a-z]{1,8})?",
        tail in ".{0,60}",
    ) {
        let sql = format!("{head} {middle} {tail}");
        let _ = sqlog_sql::parse_statement(&sql);
    }
}
