//! Parser corpus: a battery of SkyServer-style statements collected from the
//! query shapes the paper and the SkyServer documentation show. Every entry
//! must parse, print, and re-parse to the same canonical form.

use sqlog_sql::{parse_statement, parse_statements, Statement};

/// Statements that must parse as SELECTs.
const SELECT_CORPUS: &[&str] = &[
    // Paper Table 1 / Table 2.
    "SELECT E.empId FROM Employees E WHERE E.department = 'sales'",
    "SELECT E.name, E.surname FROM Employees E WHERE E.id = 12",
    "SELECT E.birthday, E.phone FROM Employees E WHERE E.id = 12",
    "SELECT count(orders) FROM Orders O WHERE O.empId = 12",
    // Paper intro rewrite.
    "SELECT E.empId, E.name, E.surname, E.birthday, E.phone, O.oCount \
     FROM Employees E INNER JOIN \
     (SELECT empId, count(orders) as oCount FROM Orders GROUP BY empId) O \
     ON O.empId = E.empId",
    // Paper Examples 5–14.
    "SELECT * FROM T WHERE Id = 5",
    "SELECT name FROM Employee WHERE empId = 8",
    "SELECT empId, name FROM Employee WHERE empId IN (8, 1)",
    "SELECT name, address, phoneNumber FROM Employee WHERE empId = 8",
    "SELECT address FROM EmployeeInfo WHERE empId = 8",
    "SELECT E.name, EI.address FROM Employee as E INNER JOIN EmployeeInfo as EI \
     ON E.empId = EI.empId WHERE E.empId = 8",
    // Paper SNC examples.
    "SELECT * FROM Bugs WHERE assigned_to = NULL",
    "SELECT * FROM Bugs WHERE assigned_to <> NULL",
    "SELECT * FROM Bugs WHERE assigned_to IS NULL",
    "SELECT * FROM Bugs WHERE assigned_to IS NOT NULL",
    // Paper Tables 6/7 skeleton shapes with constants.
    "SELECT rowc_g, colc_g FROM photoprimary WHERE objid=587722982829850899",
    "SELECT rowc_r, colc_r FROM photoprimary WHERE objid=587722982829850900",
    "SELECT g.objid, g.ra, g.dec FROM photoobjall as g \
     JOIN fgetnearbyobjeq(180.5, 2.1, 3.0) as gn on g.objid=gn.objid \
     left outer join specobj s on s.bestobjid=gn.objid",
    "SELECT p.objid FROM fgetobjfromrect(180.0, 1.0, 180.1, 1.1) n, photoprimary p \
     WHERE n.objid=p.objid and r between 14 and 16",
    "SELECT count(*) FROM photoprimary WHERE htmid>=14000000000 and htmid<=14000099999",
    // Paper Tables 9/10.
    "SELECT name, type FROM DBObjects WHERE type='U' AND name NOT IN \
     ('LoadEvents', 'QueryResults') ORDER BY name",
    "SELECT description FROM DBObjects WHERE name='Galaxy'",
    "SELECT * FROM dbo.fGetNearestObjEq(145.38708,0.12532,0.1)",
    "SELECT plate, fiberID, mjd, SpecObjID FROM SpecObjAll WHERE SpecObjID=75094094447116288",
    "SELECT text FROM DBObjects WHERE name='photoobjall'",
    // SkyServer sample-query idioms (docs / SQL tutorial shapes).
    "SELECT TOP 10 ra, [dec], objid FROM photoprimary WHERE type = 6 ORDER BY r",
    "SELECT TOP 10 PERCENT objid FROM galaxy WHERE r < 17.5 ORDER BY r DESC",
    "SELECT objID, ra, [dec], u, g, r, i, z FROM PhotoObjAll \
     WHERE ra BETWEEN 179.5 AND 182.3 AND [dec] BETWEEN -1.0 AND 1.8",
    "SELECT p.objid, s.z AS redshift FROM photoobjall p \
     JOIN specobjall s ON s.bestobjid = p.objid WHERE s.z BETWEEN 0.03 AND 0.1",
    "SELECT count(*) AS n, type FROM photoprimary GROUP BY type HAVING count(*) > 1000",
    "SELECT u - g AS ug, g - r AS gr FROM star WHERE u - g < 0.4 AND g - r < 0.7",
    "SELECT p.objid FROM photoprimary p CROSS APPLY dbo.fGetNearbyObjEq(p.ra, p.dec, 0.5) n",
    "SELECT objid FROM galaxy WHERE (flags & 0x10000000) = 0 OR r > 20",
    "SELECT DISTINCT run, camcol, field FROM photoobjall WHERE run = 756",
    "SELECT s.plate, s.mjd, s.fiberid FROM specobjall s \
     WHERE s.specclass = 3 AND s.zerr < 0.01 ORDER BY s.plate ASC, s.mjd DESC",
    "SELECT objid, str(ra, 10, 4) AS ra_text FROM photoprimary WHERE objid = 1237650000000000000",
    "SELECT CASE WHEN z < 0.1 THEN 'near' WHEN z < 0.3 THEN 'mid' ELSE 'far' END AS bucket, \
     count(*) FROM specobjall GROUP BY CASE WHEN z < 0.1 THEN 'near' WHEN z < 0.3 THEN 'mid' \
     ELSE 'far' END",
    "SELECT a.objid FROM photoprimary a WHERE EXISTS \
     (SELECT 1 FROM specobjall s WHERE s.bestobjid = a.objid)",
    "SELECT objid FROM photoprimary WHERE objid NOT IN \
     (SELECT bestobjid FROM specobjall WHERE bestobjid IS NOT NULL)",
    "SELECT TOP 100 * FROM photoprimary WHERE r BETWEEN 15 AND 16 \
     AND (type = 3 OR type = 6)",
    "SELECT cast(ra AS varchar(32)) FROM photoprimary WHERE objid = 42",
    "SELECT 1",
    "SELECT @rowlimit",
    // A bare word after an expression is an alias — this is `objid AS
    // photoprimary` with no FROM, syntactically valid.
    "SELECT objid photoprimary",
    // Comments, odd whitespace, semicolons.
    "SELECT objid -- the identifier\nFROM photoprimary /* primary only */ WHERE objid = 7;",
    // Set operations.
    "SELECT objid FROM galaxy WHERE r < 16 UNION SELECT objid FROM star WHERE r < 16",
    "SELECT objid FROM galaxy EXCEPT SELECT objid FROM star",
];

/// Statements that must classify as non-SELECT.
const OTHER_CORPUS: &[&str] = &[
    "INSERT INTO mydb.results SELECT objid FROM photoprimary WHERE r < 15",
    "UPDATE mydb.flags SET checked = 1 WHERE objid = 5",
    "DELETE FROM mydb.scratch",
    "CREATE TABLE mydb.scratch (objid bigint)",
    "DROP TABLE mydb.scratch",
    "EXEC spGetNeighbors 180.0, 1.0",
    "DECLARE @x int",
];

/// Statements that must be rejected.
const ERROR_CORPUS: &[&str] = &[
    "",
    "SELECT",
    "SELECT FROM photoprimary",
    "SELECT objid FROM",
    "SELECT objid FROM photoprimary WHERE",
    "SELECT objid FROM photoprimary WHERE ra > 'unterminated",
    "SELECT objid FROM photoprimary WHERE (ra > 1",
    "FROBNICATE THE DATABASE",
    "WITH cte AS (SELECT 1) SELECT * FROM cte",
];

#[test]
fn select_corpus_parses_and_round_trips() {
    for sql in SELECT_CORPUS {
        let stmt = parse_statement(sql).unwrap_or_else(|e| panic!("{sql:?}: {e}"));
        let Statement::Select(q) = &stmt else {
            panic!("not classified as SELECT: {sql}");
        };
        // Canonical printing re-parses to the same canonical form.
        let printed = q.to_string();
        let reparsed =
            parse_statement(&printed).unwrap_or_else(|e| panic!("re-parse of {printed:?}: {e}"));
        let Statement::Select(q2) = &reparsed else {
            panic!("re-parse changed the classification: {printed}");
        };
        assert_eq!(
            printed,
            q2.to_string(),
            "printing is not a fixpoint for {sql}"
        );
    }
}

#[test]
fn other_corpus_classifies() {
    for sql in OTHER_CORPUS {
        let stmt = parse_statement(sql).unwrap_or_else(|e| panic!("{sql:?}: {e}"));
        assert!(
            matches!(stmt, Statement::Other(_)),
            "misclassified as SELECT: {sql}"
        );
    }
}

#[test]
fn error_corpus_rejects() {
    for sql in ERROR_CORPUS {
        assert!(
            parse_statement(sql).is_err(),
            "unexpectedly parsed: {sql:?}"
        );
    }
}

#[test]
fn batches_of_corpus_statements_parse() {
    let batch = format!(
        "{}; {}; {}",
        SELECT_CORPUS[0], OTHER_CORPUS[0], SELECT_CORPUS[1]
    );
    let stmts = parse_statements(&batch).unwrap();
    assert_eq!(stmts.len(), 3);
}
