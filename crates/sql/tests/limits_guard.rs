//! Parser resource guards survive adversarial inputs.
//!
//! A query-log cleaner parses millions of untrusted statements; a single
//! depth-bomb must produce a typed [`ParseError::LimitExceeded`], never a
//! stack overflow or abort. These tests are the regression suite for the
//! recursion-depth, statement-length and token-budget guards.

use sqlog_sql::{
    parse_query, parse_statement, parse_statement_with, parse_statements_with, ParseError,
    ParseLimit, ParseLimits,
};

fn assert_limit(result: Result<impl std::fmt::Debug, ParseError>, expected: ParseLimit) {
    match result {
        Err(ParseError::LimitExceeded { limit, .. }) => assert_eq!(limit, expected),
        other => panic!("expected LimitExceeded({expected:?}), got {other:?}"),
    }
}

#[test]
fn paren_depth_bomb_returns_limit_error() {
    // 10 000 nested parentheses around a literal: without the guard this
    // recurses once per paren and overflows the stack.
    let sql = format!("SELECT {}1{}", "(".repeat(10_000), ")".repeat(10_000));
    assert_limit(parse_statement(&sql), ParseLimit::Depth);
}

#[test]
fn nested_subquery_bomb_returns_limit_error() {
    // 5 000-way nested scalar subqueries: `SELECT (SELECT (SELECT ... 1))`.
    let sql = format!("{}1{}", "SELECT (".repeat(5_000), ")".repeat(4_999));
    assert_limit(parse_statement(&sql), ParseLimit::Depth);
}

#[test]
fn nested_from_subquery_bomb_returns_limit_error() {
    // Derived-table nesting: `SELECT a FROM (SELECT a FROM (... t))`.
    let sql = format!("{}t{}", "SELECT a FROM (".repeat(5_000), ")".repeat(4_999));
    assert_limit(parse_statement(&sql), ParseLimit::Depth);
}

#[test]
fn parenthesized_join_tree_bomb_returns_limit_error() {
    let sql = format!(
        "SELECT a FROM {}t{}",
        "(".repeat(10_000),
        ")".repeat(10_000)
    );
    assert_limit(parse_statement(&sql), ParseLimit::Depth);
}

#[test]
fn not_and_sign_chains_are_stack_free() {
    // Unary chains are parsed iteratively, so a chain far longer than the
    // recursion-depth limit still parses; only the (much larger)
    // flat-nesting budget bounds their length.
    let not_chain = format!("SELECT {}1", "NOT ".repeat(500));
    parse_statement(&not_chain).expect("NOT chain parses");
    let sign_chain = format!("SELECT {}1", "- ".repeat(500));
    parse_statement(&sign_chain).expect("sign chain parses");
}

#[test]
fn flat_not_chain_bomb_returns_limit_error() {
    // 200 000 `NOT`s fit every byte/token limit and consume no parse stack,
    // but would build a 200 000-deep AST whose recursive drop glue aborts
    // the process (uncatchably) — the flat-nesting budget must reject the
    // statement before any such tree exists.
    let sql = format!("SELECT {}1 FROM t", "NOT ".repeat(200_000));
    assert_limit(parse_statement(&sql), ParseLimit::Depth);
}

#[test]
fn flat_sign_chain_bomb_returns_limit_error() {
    let sql = format!("SELECT {}1", "- ".repeat(200_000));
    assert_limit(parse_statement(&sql), ParseLimit::Depth);
}

#[test]
fn flat_binary_chain_bombs_return_limit_error() {
    // Left-deep chains: every term nests one `Expr::Binary` level.
    let or_bomb = format!("SELECT 1 FROM t WHERE 1 = 1{}", " OR 1 = 1".repeat(50_000));
    assert_limit(parse_statement(&or_bomb), ParseLimit::Depth);
    let add_bomb = format!("SELECT 1{}", " + 1".repeat(120_000));
    assert_limit(parse_statement(&add_bomb), ParseLimit::Depth);
}

#[test]
fn flat_join_chain_bomb_returns_limit_error() {
    // `JOIN` chains nest `TableRef::Join` one level per join.
    let sql = format!("SELECT a FROM t{}", " JOIN u".repeat(100_000));
    assert_limit(parse_statement(&sql), ParseLimit::Depth);
}

#[test]
fn flat_budget_is_per_statement_and_generous() {
    // Real queries sit far below the budget (32 × max_depth = 2048 by
    // default): a 500-conjunct filter parses...
    let chain = " AND x = 0".repeat(499);
    let sql = format!("SELECT a FROM t WHERE x = 0{chain}");
    parse_statement(&sql).expect("500-conjunct chain parses");
    // ...and the budget resets between statements of a batch, so a long
    // statement cannot starve its successors.
    let batch = format!("SELECT a FROM t WHERE x = 0{chain}; SELECT b FROM u WHERE y = 1{chain}");
    let stmts = parse_statements_with(&batch, &ParseLimits::default()).expect("batch parses");
    assert_eq!(stmts.len(), 2);
}

#[test]
fn statement_length_guard() {
    let limits = ParseLimits {
        max_statement_bytes: 64,
        ..ParseLimits::default()
    };
    let sql = format!("SELECT a FROM t WHERE x = '{}'", "y".repeat(100));
    assert_limit(
        parse_statement_with(&sql, &limits),
        ParseLimit::StatementBytes,
    );
    // Under the cap, the same shape parses.
    parse_statement_with("SELECT a FROM t WHERE x = 'y'", &limits).expect("short statement");
}

#[test]
fn token_budget_guard() {
    let limits = ParseLimits {
        max_tokens: 32,
        ..ParseLimits::default()
    };
    let sql = format!(
        "SELECT a FROM t WHERE x IN ({})",
        (0..100)
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    assert_limit(parse_statements_with(&sql, &limits), ParseLimit::Tokens);
}

#[test]
fn limit_errors_are_distinguishable_from_syntax_errors() {
    let deep = format!("SELECT {}1{}", "(".repeat(10_000), ")".repeat(10_000));
    assert!(parse_statement(&deep).unwrap_err().is_limit());
    assert!(!parse_statement("SELECT FROM WHERE").unwrap_err().is_limit());
}

#[test]
fn realistic_nesting_is_untouched_by_defaults() {
    // A plausibly hairy real-world query: a few nested subqueries and
    // parenthesized predicates must stay well inside the default limits.
    let sql = "SELECT p.objid, (SELECT count(*) FROM neighbors n WHERE n.objid = p.objid) \
               FROM photoprimary p \
               WHERE ((p.ra > 1 AND p.ra < 2) OR (p.dec > -1 AND p.dec < 1)) \
                 AND p.objid IN (SELECT objid FROM specobj WHERE z > 0.1)";
    parse_query(sql).expect("realistic query parses");
}
