//! Relational schema metadata.
//!
//! Definition 11's third axiom ("filCol₁ … filColₙ are key attributes")
//! distinguishes Stifles from ordinary repeated filters, and the DF-Stifle
//! solver needs to know on which column two tables join. Both need a schema
//! catalog. The catalog is deliberately small: names, types, primary keys
//! and foreign keys — what the detectors and solvers consume, nothing more.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Column types, as coarse as the analyses need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    /// 64-bit integer (SkyServer objids).
    BigInt,
    /// Double-precision float (coordinates, magnitudes).
    Float,
    /// Text.
    Text,
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Lower-cased column name.
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

/// A foreign-key edge.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForeignKey {
    /// Referencing column (in this table).
    pub column: String,
    /// Referenced table.
    pub ref_table: String,
    /// Referenced column.
    pub ref_column: String,
}

/// A table definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Lower-cased table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<Column>,
    /// Primary-key column names.
    pub primary_key: Vec<String>,
    /// Foreign keys.
    pub foreign_keys: Vec<ForeignKey>,
}

impl Table {
    /// Looks up a column by (case-insensitive) name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// True if `column` is part of the primary key or a foreign key.
    pub fn is_key(&self, column: &str) -> bool {
        self.primary_key
            .iter()
            .any(|k| k.eq_ignore_ascii_case(column))
            || self
                .foreign_keys
                .iter()
                .any(|fk| fk.column.eq_ignore_ascii_case(column))
    }
}

/// The schema catalog.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    tables: HashMap<String, Table>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Adds (or replaces) a table.
    pub fn add_table(&mut self, table: Table) {
        self.tables.insert(table.name.to_ascii_lowercase(), table);
    }

    /// Looks up a table by (case-insensitive) name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when the catalog has no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Iterates over all tables.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// The key test of Definition 11. When the query's base table is known,
    /// the column is checked against that table; otherwise (joins, unknown
    /// tables, empty catalog) the check falls back to "is a key in *some*
    /// table". The fallback keeps the framework usable without a schema —
    /// at the cost of potential false positives, exactly the trade-off the
    /// paper discusses after Def. 11.
    pub fn is_key_attribute(&self, table: Option<&str>, column: &str) -> bool {
        if self.is_empty() {
            // No schema at all: every filter column passes (the paper's
            // "we could have omitted the third axiom" mode).
            return true;
        }
        match table.and_then(|t| self.table(t)) {
            Some(t) => t.is_key(column),
            None => self.tables.values().any(|t| t.is_key(column)),
        }
    }

    /// Finds a join column between two tables: a column that is a key in
    /// both, preferring a foreign key from one to the other. Used by the
    /// DF-Stifle solver to build the `INNER JOIN ... ON` rewrite.
    pub fn join_column(&self, left: &str, right: &str) -> Option<String> {
        let lt = self.table(left)?;
        let rt = self.table(right)?;
        // Foreign key in either direction.
        for (a, b) in [(lt, rt), (rt, lt)] {
            if let Some(fk) = a
                .foreign_keys
                .iter()
                .find(|fk| fk.ref_table.eq_ignore_ascii_case(&b.name))
            {
                return Some(fk.column.clone());
            }
        }
        // Shared primary-key column name.
        lt.primary_key
            .iter()
            .find(|k| rt.primary_key.iter().any(|rk| rk.eq_ignore_ascii_case(k)))
            .cloned()
    }
}

/// Fluent builder for tables.
#[derive(Debug, Clone)]
pub struct TableBuilder {
    table: Table,
}

impl TableBuilder {
    /// Starts a table with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        TableBuilder {
            table: Table {
                name: name.into().to_ascii_lowercase(),
                columns: Vec::new(),
                primary_key: Vec::new(),
                foreign_keys: Vec::new(),
            },
        }
    }

    /// Adds a column.
    pub fn column(mut self, name: &str, ty: ColumnType) -> Self {
        self.table.columns.push(Column {
            name: name.to_ascii_lowercase(),
            ty,
        });
        self
    }

    /// Declares (part of) the primary key; the column must already exist.
    pub fn primary_key(mut self, name: &str) -> Self {
        let name = name.to_ascii_lowercase();
        debug_assert!(self.table.column(&name).is_some(), "unknown PK column");
        self.table.primary_key.push(name);
        self
    }

    /// Declares a foreign key; the column must already exist.
    pub fn foreign_key(mut self, column: &str, ref_table: &str, ref_column: &str) -> Self {
        let column = column.to_ascii_lowercase();
        debug_assert!(self.table.column(&column).is_some(), "unknown FK column");
        self.table.foreign_keys.push(ForeignKey {
            column,
            ref_table: ref_table.to_ascii_lowercase(),
            ref_column: ref_column.to_ascii_lowercase(),
        });
        self
    }

    /// Finishes the table.
    pub fn build(self) -> Table {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            TableBuilder::new("Employees")
                .column("empId", ColumnType::BigInt)
                .column("name", ColumnType::Text)
                .column("department", ColumnType::Text)
                .primary_key("empId")
                .build(),
        );
        c.add_table(
            TableBuilder::new("Orders")
                .column("orderId", ColumnType::BigInt)
                .column("empId", ColumnType::BigInt)
                .primary_key("orderId")
                .foreign_key("empId", "Employees", "empId")
                .build(),
        );
        c
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let c = catalog();
        assert!(c.table("EMPLOYEES").is_some());
        assert!(c.table("employees").unwrap().column("EmpID").is_some());
    }

    #[test]
    fn key_attribute_checks() {
        let c = catalog();
        // PK.
        assert!(c.is_key_attribute(Some("employees"), "empid"));
        // FK.
        assert!(c.is_key_attribute(Some("orders"), "empid"));
        // Non-key.
        assert!(!c.is_key_attribute(Some("employees"), "department"));
        // Unknown table: falls back to any-table check.
        assert!(c.is_key_attribute(None, "empid"));
        assert!(!c.is_key_attribute(None, "department"));
        // Missing table name behaves like None? No: a *named but unknown*
        // table also falls back.
        assert!(c.is_key_attribute(Some("nonexistent"), "orderid"));
    }

    #[test]
    fn empty_catalog_accepts_everything() {
        let c = Catalog::new();
        assert!(c.is_key_attribute(Some("t"), "anything"));
    }

    #[test]
    fn join_column_prefers_foreign_keys() {
        let c = catalog();
        assert_eq!(
            c.join_column("orders", "employees").as_deref(),
            Some("empid")
        );
        assert_eq!(
            c.join_column("employees", "orders").as_deref(),
            Some("empid")
        );
        assert_eq!(c.join_column("employees", "nonexistent"), None);
    }

    #[test]
    fn shared_pk_is_a_join_column() {
        let mut c = Catalog::new();
        c.add_table(
            TableBuilder::new("a")
                .column("id", ColumnType::BigInt)
                .primary_key("id")
                .build(),
        );
        c.add_table(
            TableBuilder::new("b")
                .column("id", ColumnType::BigInt)
                .primary_key("id")
                .build(),
        );
        assert_eq!(c.join_column("a", "b").as_deref(), Some("id"));
    }
}
