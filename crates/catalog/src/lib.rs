//! # sqlog-catalog — schema catalog with key metadata
//!
//! The antipattern definitions consult a relational schema: Definition 11
//! requires Stifle filter columns to be *key attributes*, and the DF-Stifle
//! solver joins tables on a shared key. This crate provides a small catalog
//! model (tables, columns, primary/foreign keys), a fluent builder, and a
//! built-in SkyServer-like schema used by the case-study reproduction.

#![warn(missing_docs)]

pub mod builder;
pub mod schema;
pub mod skyserver;

pub use builder::{parse_schema, SchemaParseError};
pub use schema::{Catalog, Column, ColumnType, ForeignKey, Table, TableBuilder};
pub use skyserver::skyserver_catalog;
