//! A small text format for user-defined schemas.
//!
//! One table per line:
//!
//! ```text
//! # comment
//! employees: empid:bigint:pk, name:text, department:text
//! orders:    orderid:bigint:pk, empid:bigint:fk=employees.empid
//! ```
//!
//! Column syntax: `name:type[:pk | :fk=table.column]` with types `bigint`,
//! `float`, `text`. This keeps Def. 11's key metadata expressible without
//! writing Rust.

use crate::schema::{Catalog, ColumnType, TableBuilder};
use std::fmt;

/// Error from parsing the schema text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SchemaParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schema line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SchemaParseError {}

/// Parses the schema text into a catalog.
pub fn parse_schema(text: &str) -> Result<Catalog, SchemaParseError> {
    let mut catalog = Catalog::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let (table_name, columns) = content.split_once(':').ok_or_else(|| SchemaParseError {
            line,
            message: "expected `table: col:type, ...`".into(),
        })?;
        let table_name = table_name.trim();
        if table_name.is_empty() {
            return Err(SchemaParseError {
                line,
                message: "empty table name".into(),
            });
        }
        let mut builder = TableBuilder::new(table_name);
        for col_spec in columns.split(',') {
            let col_spec = col_spec.trim();
            if col_spec.is_empty() {
                continue;
            }
            let mut parts = col_spec.split(':');
            let name = parts.next().unwrap_or("").trim();
            let ty = parts.next().unwrap_or("").trim();
            let flag = parts.next().map(str::trim);
            if parts.next().is_some() {
                return Err(SchemaParseError {
                    line,
                    message: format!("too many `:` in column spec {col_spec:?}"),
                });
            }
            if name.is_empty() {
                return Err(SchemaParseError {
                    line,
                    message: "empty column name".into(),
                });
            }
            let ty = match ty.to_ascii_lowercase().as_str() {
                "bigint" | "int" | "integer" => ColumnType::BigInt,
                "float" | "real" | "double" => ColumnType::Float,
                "text" | "varchar" | "string" => ColumnType::Text,
                other => {
                    return Err(SchemaParseError {
                        line,
                        message: format!("unknown type {other:?} for column {name}"),
                    })
                }
            };
            builder = builder.column(name, ty);
            match flag {
                None => {}
                Some("pk") => builder = builder.primary_key(name),
                Some(fk) if fk.starts_with("fk=") => {
                    let target = &fk[3..];
                    let (ref_table, ref_column) =
                        target.split_once('.').ok_or_else(|| SchemaParseError {
                            line,
                            message: format!("fk target must be table.column, got {target:?}"),
                        })?;
                    builder = builder.foreign_key(name, ref_table, ref_column);
                }
                Some(other) => {
                    return Err(SchemaParseError {
                        line,
                        message: format!("unknown column flag {other:?}"),
                    })
                }
            }
        }
        catalog.add_table(builder.build());
    }
    Ok(catalog)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
        # the paper's running example\n\
        employees: empid:bigint:pk, id:bigint:pk, name:text, department:text\n\
        orders: orderid:bigint:pk, empid:bigint:fk=employees.empid, orders:int\n\
        \n\
        measurements: ts:float, value:float   # keyless table\n";

    #[test]
    fn parses_the_sample() {
        let c = parse_schema(SAMPLE).unwrap();
        assert_eq!(c.len(), 3);
        assert!(c.is_key_attribute(Some("employees"), "empid"));
        assert!(c.is_key_attribute(Some("employees"), "ID"));
        assert!(c.is_key_attribute(Some("orders"), "empid")); // FK
        assert!(!c.is_key_attribute(Some("employees"), "name"));
        assert!(!c.is_key_attribute(Some("measurements"), "value"));
        assert_eq!(
            c.join_column("orders", "employees").as_deref(),
            Some("empid")
        );
    }

    #[test]
    fn reports_errors_with_line_numbers() {
        let err = parse_schema("t: a:bogus").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("bogus"));

        let err = parse_schema("# ok\nbroken line without colon").unwrap_err();
        assert_eq!(err.line, 2);

        let err = parse_schema("t: a:int:fk=missing_dot").unwrap_err();
        assert!(err.message.contains("table.column"));

        let err = parse_schema("t: a:int:sparkly").unwrap_err();
        assert!(err.message.contains("sparkly"));

        let err = parse_schema("t: a:int:pk:extra").unwrap_err();
        assert!(err.message.contains("too many"));
    }

    #[test]
    fn blank_lines_and_comments_are_skipped() {
        let c = parse_schema("\n  # nothing\n\n").unwrap();
        assert!(c.is_empty());
    }
}
