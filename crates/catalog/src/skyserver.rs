//! A SkyServer-like schema.
//!
//! A compact model of the SDSS SkyServer tables that actually appear in the
//! paper's tables and figures: `photoprimary`/`photoobjall` (photometry,
//! keyed by `objid`), `specobjall`/`specobj` (spectra, keyed by `specobjid`,
//! FK `bestobjid` → photometry), `dbobjects` (the schema-browser metadata
//! table of CTH candidate 1), plus the `galaxy`/`star` views and the
//! employees/orders toy schema of the paper's running example.

use crate::schema::{Catalog, ColumnType, TableBuilder};

/// Photometric measurement columns shared by the photo tables. `rowc_*` /
/// `colc_*` are the CCD pixel coordinates filtered by the Table-6
/// antipatterns.
const PHOTO_COLUMNS: &[(&str, ColumnType)] = &[
    ("objid", ColumnType::BigInt),
    ("ra", ColumnType::Float),
    ("dec", ColumnType::Float),
    ("u", ColumnType::Float),
    ("g", ColumnType::Float),
    ("r", ColumnType::Float),
    ("i", ColumnType::Float),
    ("z", ColumnType::Float),
    ("rowc_g", ColumnType::Float),
    ("colc_g", ColumnType::Float),
    ("rowc_r", ColumnType::Float),
    ("colc_r", ColumnType::Float),
    ("rowc_i", ColumnType::Float),
    ("colc_i", ColumnType::Float),
    ("htmid", ColumnType::BigInt),
    ("run", ColumnType::BigInt),
    ("camcol", ColumnType::BigInt),
    ("field", ColumnType::BigInt),
    ("type", ColumnType::BigInt),
    ("flags", ColumnType::BigInt),
];

fn photo_table(name: &str) -> TableBuilder {
    let mut b = TableBuilder::new(name);
    for (col, ty) in PHOTO_COLUMNS {
        b = b.column(col, *ty);
    }
    b.primary_key("objid")
}

/// Builds the SkyServer-like catalog.
pub fn skyserver_catalog() -> Catalog {
    let mut c = Catalog::new();

    c.add_table(photo_table("photoprimary").build());
    c.add_table(photo_table("photoobjall").build());
    c.add_table(photo_table("galaxy").build());
    c.add_table(photo_table("star").build());

    for name in ["specobjall", "specobj"] {
        c.add_table(
            TableBuilder::new(name)
                .column("specobjid", ColumnType::BigInt)
                .column("bestobjid", ColumnType::BigInt)
                .column("plate", ColumnType::BigInt)
                .column("fiberid", ColumnType::BigInt)
                .column("mjd", ColumnType::BigInt)
                .column("ra", ColumnType::Float)
                .column("dec", ColumnType::Float)
                .column("z", ColumnType::Float)
                .column("zerr", ColumnType::Float)
                .column("specclass", ColumnType::BigInt)
                .primary_key("specobjid")
                .foreign_key("bestobjid", "photoobjall", "objid")
                .build(),
        );
    }

    // The schema-browser metadata table (CTH candidate 1, Table 9).
    c.add_table(
        TableBuilder::new("dbobjects")
            .column("name", ColumnType::Text)
            .column("type", ColumnType::Text)
            .column("access", ColumnType::Text)
            .column("description", ColumnType::Text)
            .column("text", ColumnType::Text)
            .column("rank", ColumnType::BigInt)
            .primary_key("name")
            .build(),
    );

    // The paper's running example (Table 1).
    c.add_table(
        TableBuilder::new("employees")
            .column("empid", ColumnType::BigInt)
            .column("id", ColumnType::BigInt)
            .column("name", ColumnType::Text)
            .column("surname", ColumnType::Text)
            .column("birthday", ColumnType::Text)
            .column("phone", ColumnType::Text)
            .column("department", ColumnType::Text)
            .primary_key("empid")
            .primary_key("id")
            .build(),
    );
    c.add_table(
        TableBuilder::new("employee")
            .column("empid", ColumnType::BigInt)
            .column("name", ColumnType::Text)
            .column("address", ColumnType::Text)
            .column("phone", ColumnType::Text)
            .primary_key("empid")
            .build(),
    );
    c.add_table(
        TableBuilder::new("employeeinfo")
            .column("empid", ColumnType::BigInt)
            .column("address", ColumnType::Text)
            .column("phone", ColumnType::Text)
            .primary_key("empid")
            .foreign_key("empid", "employee", "empid")
            .build(),
    );
    c.add_table(
        TableBuilder::new("orders")
            .column("orderid", ColumnType::BigInt)
            .column("empid", ColumnType::BigInt)
            .column("orders", ColumnType::BigInt)
            .primary_key("orderid")
            .foreign_key("empid", "employees", "empid")
            .build(),
    );

    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objid_is_a_key_of_the_photo_tables() {
        let c = skyserver_catalog();
        for t in ["photoprimary", "photoobjall", "galaxy", "star"] {
            assert!(c.is_key_attribute(Some(t), "objid"), "{t}");
        }
        // Table-6 antipatterns filter photoprimary by objid: must qualify.
        assert!(c.is_key_attribute(Some("photoprimary"), "OBJID"));
        // But `r` (a magnitude) is not a key.
        assert!(!c.is_key_attribute(Some("photoprimary"), "r"));
    }

    #[test]
    fn specobj_links_to_photoobjall() {
        let c = skyserver_catalog();
        assert!(c.is_key_attribute(Some("specobjall"), "specobjid"));
        assert!(c.is_key_attribute(Some("specobjall"), "bestobjid"));
        assert_eq!(
            c.join_column("specobjall", "photoobjall").as_deref(),
            Some("bestobjid")
        );
    }

    #[test]
    fn dbobjects_name_is_key() {
        let c = skyserver_catalog();
        // CTH candidate 1's second query filters dbobjects by name.
        assert!(c.is_key_attribute(Some("dbobjects"), "name"));
    }

    #[test]
    fn paper_running_example_schema() {
        let c = skyserver_catalog();
        assert!(c.is_key_attribute(Some("employees"), "id"));
        assert!(c.is_key_attribute(Some("employees"), "empid"));
        assert!(c.is_key_attribute(Some("orders"), "empid"));
        assert_eq!(
            c.join_column("employee", "employeeinfo").as_deref(),
            Some("empid")
        );
    }

    #[test]
    fn catalog_is_reasonably_sized() {
        assert!(skyserver_catalog().len() >= 10);
    }
}
