//! # sqlog-gen — synthetic SkyServer-like query-log generator
//!
//! The paper's case study runs on the public SkyServer SQL log (42 M
//! queries, 2003–2008). That log is not available offline, so this crate
//! generates a *shape-faithful* substitute: the same query templates the
//! paper reports (Table 6 antipatterns, Table 7 top patterns, the Table 9/10
//! CTH candidates), emitted by simulated populations — stifle crawlers, CTH
//! bots, sliding-window-search robots, web-UI sessions, human scientists,
//! and noise (duplicates, DML, syntax errors, `= NULL` misuse).
//!
//! Every entry carries a [`sqlog_log::GroundTruth`] label, so experiments
//! can score the detectors against known intent — in particular the CTH
//! true/false split that the paper obtained from domain experts (§6.6).
//!
//! Generation is deterministic in the seed.
//!
//! ```
//! use sqlog_gen::{generate, GenConfig};
//! let log = generate(&GenConfig::with_scale(1_000, 42));
//! assert!(log.len() >= 800);
//! assert!(log.is_time_sorted());
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod generator;
pub mod profiles;
pub mod stream;
pub mod truth;

pub use config::{GenConfig, WorkloadMix};
pub use generator::generate;
pub use truth::{expected_class, PlantedInstance, TruthSidecar};
