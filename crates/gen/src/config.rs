//! Generator configuration: scale, seed, time span and workload mix.

use serde::{Deserialize, Serialize};
use sqlog_log::Timestamp;

/// Fractions of the generated log attributed to each workload family.
///
/// Defaults are calibrated against the SkyServer case study (§6.3, Table 5):
/// after removing DML/malformed statements (~4 %) and duplicates (~4 %), the
/// solvable Stifles should cover ≈ 19–20 % of the log, the top-5
/// spatial-search patterns ≈ 30 %, and CTH sequences ≈ 1 %.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadMix {
    /// DW-Stifle crawler queries (Table 6 rows 1–3 plus a long tail).
    pub stifle_dw: f64,
    /// DS-Stifle crawler queries (Table 6 rows 4–5 plus a long tail).
    pub stifle_ds: f64,
    /// DF-Stifle crawler queries.
    pub stifle_df: f64,
    /// Truly dependent CTH sequences (source + follow-ups).
    pub cth_real: f64,
    /// CTH-shaped but independent sequences (the detector's false positives).
    pub cth_false: f64,
    /// Sliding-window-search robot downloads (the Table-7 top patterns).
    pub sws: f64,
    /// Web-UI browsing sessions (DBObjects, form reloads).
    pub webui: f64,
    /// Human scientists: varied ad-hoc queries, many users.
    pub human: f64,
    /// DML/DDL statements (dropped by the parse step).
    pub non_select: f64,
    /// Syntactically broken statements.
    pub malformed: f64,
    /// `= NULL` misuse (SNC antipattern, §5.4 extension).
    pub snc: f64,
    /// Probability that a human/web-UI statement is immediately resubmitted
    /// (form reload) — the duplicate population of §5.2.
    pub duplicate_prob: f64,
}

impl Default for WorkloadMix {
    fn default() -> Self {
        WorkloadMix {
            stifle_dw: 0.16,
            stifle_ds: 0.035,
            stifle_df: 0.007,
            cth_real: 0.008,
            cth_false: 0.004,
            sws: 0.295,
            webui: 0.05,
            human: 0.36,
            non_select: 0.028,
            malformed: 0.015,
            snc: 0.002,
            duplicate_prob: 0.075,
        }
    }
}

impl WorkloadMix {
    /// Sum of all statement-producing fractions (excludes `duplicate_prob`,
    /// which is multiplicative).
    pub fn total(&self) -> f64 {
        self.stifle_dw
            + self.stifle_ds
            + self.stifle_df
            + self.cth_real
            + self.cth_false
            + self.sws
            + self.webui
            + self.human
            + self.non_select
            + self.malformed
            + self.snc
    }
}

/// Full generator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenConfig {
    /// Master RNG seed; the generated log is a pure function of the config.
    pub seed: u64,
    /// Approximate number of statements to generate (the exact count varies
    /// by a few percent because instances are emitted whole).
    pub target_queries: usize,
    /// Start of the simulated time span.
    pub start: Timestamp,
    /// Length of the simulated span in seconds. Long spans keep concurrent
    /// user sessions mostly disjoint, which is what lets pattern mining work
    /// without user information (§6.8).
    pub span_secs: u64,
    /// Workload mix.
    pub mix: WorkloadMix,
    /// Number of distinct minor DW-Stifle templates (long tail; the paper
    /// found 1 018 distinct DW-Stifles at 38 M queries).
    pub minor_dw_templates: usize,
    /// Number of distinct minor DS-Stifle templates (paper: 6 562).
    pub minor_ds_templates: usize,
    /// Number of distinct minor DF-Stifle templates (paper: 487).
    pub minor_df_templates: usize,
    /// Distinct real CTH shapes (paper: 28).
    pub cth_real_shapes: usize,
    /// Distinct false CTH shapes (paper: 22).
    pub cth_false_shapes: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            seed: 0x5d55_0001_c0de_cafe,
            target_queries: 100_000,
            start: Timestamp::from_civil(2003, 1, 1, 0, 0, 0),
            // Five years, matching the 2003–2008 study window.
            span_secs: 5 * 365 * 86_400,
            mix: WorkloadMix::default(),
            minor_dw_templates: 40,
            minor_ds_templates: 120,
            minor_df_templates: 20,
            cth_real_shapes: 14,
            cth_false_shapes: 11,
        }
    }
}

impl GenConfig {
    /// Checks the configuration for nonsensical values. Returns a list of
    /// problems (empty = fine); `generate` tolerates unusual mixes, so this
    /// is advisory, for tools that accept user-supplied configs.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let m = &self.mix;
        for (name, v) in [
            ("stifle_dw", m.stifle_dw),
            ("stifle_ds", m.stifle_ds),
            ("stifle_df", m.stifle_df),
            ("cth_real", m.cth_real),
            ("cth_false", m.cth_false),
            ("sws", m.sws),
            ("webui", m.webui),
            ("human", m.human),
            ("non_select", m.non_select),
            ("malformed", m.malformed),
            ("snc", m.snc),
        ] {
            if !(0.0..=1.0).contains(&v) || !v.is_finite() {
                problems.push(format!("mix.{name} = {v} is outside [0, 1]"));
            }
        }
        if !(0.0..=1.0).contains(&m.duplicate_prob) {
            problems.push(format!(
                "mix.duplicate_prob = {} is outside [0, 1]",
                m.duplicate_prob
            ));
        }
        if m.total() <= 0.0 || !m.total().is_finite() {
            problems.push("mix totals to a non-positive value".into());
        }
        if self.target_queries == 0 {
            problems.push("target_queries is 0".into());
        }
        if self.span_secs == 0 {
            problems.push("span_secs is 0".into());
        }
        problems
    }

    /// Convenience: a config with the given scale and seed.
    pub fn with_scale(target_queries: usize, seed: u64) -> Self {
        GenConfig {
            target_queries,
            seed,
            ..GenConfig::default()
        }
    }

    /// Statement quota for a mix fraction.
    pub(crate) fn quota(&self, fraction: f64) -> usize {
        ((self.target_queries as f64) * fraction / self.mix.total()).round() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mix_sums_to_about_one() {
        let total = WorkloadMix::default().total();
        assert!((0.95..=1.05).contains(&total), "total = {total}");
    }

    #[test]
    fn validate_flags_bad_configs() {
        assert!(GenConfig::default().validate().is_empty());
        let mut bad = GenConfig::with_scale(0, 1);
        bad.mix.human = -0.5;
        bad.mix.duplicate_prob = 2.0;
        bad.span_secs = 0;
        let problems = bad.validate();
        assert!(problems.iter().any(|p| p.contains("human")));
        assert!(problems.iter().any(|p| p.contains("duplicate_prob")));
        assert!(problems.iter().any(|p| p.contains("target_queries")));
        assert!(problems.iter().any(|p| p.contains("span_secs")));
    }

    #[test]
    fn quotas_scale_with_target() {
        let c = GenConfig::with_scale(10_000, 1);
        let q = c.quota(c.mix.stifle_dw);
        assert!((1_300..=1_900).contains(&q), "q = {q}");
        let all: usize = [
            c.mix.stifle_dw,
            c.mix.stifle_ds,
            c.mix.stifle_df,
            c.mix.cth_real,
            c.mix.cth_false,
            c.mix.sws,
            c.mix.webui,
            c.mix.human,
            c.mix.non_select,
            c.mix.malformed,
            c.mix.snc,
        ]
        .iter()
        .map(|f| c.quota(*f))
        .sum();
        let target = c.target_queries;
        assert!(all.abs_diff(target) < target / 20, "all = {all}");
    }
}
