//! Ground-truth sidecar: the generator's planted instances as a scoring key.
//!
//! Every generated entry already carries a per-statement
//! [`sqlog_log::GroundTruth`] label (intent kind + instance group id). This
//! module aggregates those labels into *planted instances* — one record per
//! group id, listing the entry ids the group covers and the antipattern
//! class the detector is expected to report for it — so a harness can score
//! detection **recall** against known truth instead of only checking that
//! the pipeline survives (see `sqlog-conformance`).
//!
//! The sidecar has a stable one-line-per-instance TSV text form
//! ([`TruthSidecar::render`] / [`TruthSidecar::parse`]) written by
//! `genlog --truth PATH` next to the log itself.

use sqlog_log::{IntentKind, QueryLog};
use std::collections::BTreeMap;

/// The detector class a planted group is expected to surface as. The labels
/// match `sqlog_core::AntipatternClass::label()` exactly, so the harness can
/// join without depending on `sqlog-core` from here.
pub fn expected_class(kind: IntentKind) -> Option<&'static str> {
    match kind {
        IntentKind::StifleDw => Some("DW-Stifle"),
        IntentKind::StifleDs => Some("DS-Stifle"),
        IntentKind::StifleDf => Some("DF-Stifle"),
        // Both truly dependent sequences and coincidental look-alikes are
        // *candidates* by Def. 14 — the detector is expected to flag both;
        // the kind records which ones a §6.6-style precision study would
        // count as false positives.
        IntentKind::CthSource | IntentKind::CthFollowUp | IntentKind::CthCoincidental => {
            Some("CTH")
        }
        IntentKind::Snc => Some("SNC"),
        _ => None,
    }
}

/// One planted antipattern instance (a generator group).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlantedInstance {
    /// The generator's group id (unique across the whole log).
    pub group: u64,
    /// The intent kind that defines the group. Mixed CTH groups (source +
    /// follow-ups) report [`IntentKind::CthSource`].
    pub kind: IntentKind,
    /// Expected detector class label, if the group should be detected.
    pub expected: Option<&'static str>,
    /// Entry ids of the group's statements, in log order.
    pub entry_ids: Vec<u64>,
}

/// The full scoring key for one generated log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TruthSidecar {
    /// Planted instances in ascending group order.
    pub instances: Vec<PlantedInstance>,
}

impl TruthSidecar {
    /// Derives the sidecar from a labeled log.
    ///
    /// Entries without a truth label are ignored; a group whose expected
    /// class needs a *sequence* (Stifle runs, CTH pairs) but that ended up
    /// with a single surviving entry is kept with `expected = None` — it is
    /// not a detectable instance, so it must not count against recall.
    pub fn derive(log: &QueryLog) -> Self {
        let mut by_group: BTreeMap<u64, PlantedInstance> = BTreeMap::new();
        for e in &log.entries {
            let Some(truth) = e.truth else { continue };
            let inst = by_group
                .entry(truth.group)
                .or_insert_with(|| PlantedInstance {
                    group: truth.group,
                    kind: truth.kind,
                    expected: None,
                    entry_ids: Vec::new(),
                });
            inst.entry_ids.push(e.id);
            // A CTH group mixes CthSource and CthFollowUp labels; the source
            // kind defines it.
            if truth.kind == IntentKind::CthSource {
                inst.kind = truth.kind;
            }
        }
        let mut instances: Vec<PlantedInstance> = by_group.into_values().collect();
        for inst in &mut instances {
            let expected = expected_class(inst.kind);
            // Everything except SNC is a sequence antipattern: one entry
            // alone (e.g. a CTH source whose follow-ups were deduplicated
            // away) cannot be detected.
            let min_len = match inst.kind {
                IntentKind::Snc => 1,
                _ => 2,
            };
            if inst.entry_ids.len() >= min_len {
                inst.expected = expected;
            }
        }
        TruthSidecar { instances }
    }

    /// The planted instances the detector is expected to find.
    pub fn expected(&self) -> impl Iterator<Item = &PlantedInstance> {
        self.instances.iter().filter(|i| i.expected.is_some())
    }

    /// Renders the stable TSV text form:
    ///
    /// ```text
    /// # sqlog-truth v1
    /// <group>\t<kind>\t<expected-or-dash>\t<id,id,...>
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::from("# sqlog-truth v1\n");
        for inst in &self.instances {
            let ids: Vec<String> = inst.entry_ids.iter().map(|id| id.to_string()).collect();
            out.push_str(&format!(
                "{}\t{:?}\t{}\t{}\n",
                inst.group,
                inst.kind,
                inst.expected.unwrap_or("-"),
                ids.join(",")
            ));
        }
        out
    }

    /// Parses the TSV text form back. The inverse of [`TruthSidecar::render`].
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut instances = Vec::new();
        for (ln, line) in text.lines().enumerate() {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            if fields.len() != 4 {
                return Err(format!("line {}: expected 4 fields", ln + 1));
            }
            let group: u64 = fields[0]
                .parse()
                .map_err(|e| format!("line {}: bad group: {e}", ln + 1))?;
            let kind = parse_kind(fields[1])
                .ok_or_else(|| format!("line {}: unknown intent kind {:?}", ln + 1, fields[1]))?;
            let expected = match fields[2] {
                "-" => None,
                label => Some(
                    ["DW-Stifle", "DS-Stifle", "DF-Stifle", "CTH", "SNC"]
                        .into_iter()
                        .find(|l| *l == label)
                        .ok_or_else(|| format!("line {}: unknown class {label:?}", ln + 1))?,
                ),
            };
            let entry_ids = fields[3]
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|s| {
                    s.parse::<u64>()
                        .map_err(|e| format!("line {}: bad entry id: {e}", ln + 1))
                })
                .collect::<Result<Vec<u64>, String>>()?;
            instances.push(PlantedInstance {
                group,
                kind,
                expected,
                entry_ids,
            });
        }
        Ok(TruthSidecar { instances })
    }
}

fn parse_kind(s: &str) -> Option<IntentKind> {
    Some(match s {
        "Human" => IntentKind::Human,
        "WebUi" => IntentKind::WebUi,
        "StifleDw" => IntentKind::StifleDw,
        "StifleDs" => IntentKind::StifleDs,
        "StifleDf" => IntentKind::StifleDf,
        "CthSource" => IntentKind::CthSource,
        "CthFollowUp" => IntentKind::CthFollowUp,
        "CthCoincidental" => IntentKind::CthCoincidental,
        "Sws" => IntentKind::Sws,
        "Duplicate" => IntentKind::Duplicate,
        "NonSelect" => IntentKind::NonSelect,
        "Malformed" => IntentKind::Malformed,
        "Snc" => IntentKind::Snc,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, GenConfig};

    #[test]
    fn derive_groups_cover_all_labeled_entries() {
        let log = generate(&GenConfig::with_scale(3_000, 9));
        let truth = TruthSidecar::derive(&log);
        let covered: usize = truth.instances.iter().map(|i| i.entry_ids.len()).sum();
        let labeled = log.entries.iter().filter(|e| e.truth.is_some()).count();
        assert_eq!(covered, labeled);
        // Group ids are unique and ascending.
        for w in truth.instances.windows(2) {
            assert!(w[0].group < w[1].group);
        }
    }

    #[test]
    fn stifle_and_snc_groups_are_expected() {
        let log = generate(&GenConfig::with_scale(5_000, 10));
        let truth = TruthSidecar::derive(&log);
        let mut saw = std::collections::HashSet::new();
        for inst in truth.expected() {
            saw.insert(inst.expected.unwrap());
            // Sequence classes really have sequences.
            if inst.expected != Some("SNC") {
                assert!(inst.entry_ids.len() >= 2, "{inst:?}");
            }
        }
        for class in ["DW-Stifle", "DS-Stifle", "DF-Stifle", "CTH", "SNC"] {
            assert!(saw.contains(class), "no expected {class} group");
        }
    }

    #[test]
    fn noise_groups_are_not_expected() {
        let log = generate(&GenConfig::with_scale(5_000, 11));
        let truth = TruthSidecar::derive(&log);
        for inst in &truth.instances {
            if matches!(
                inst.kind,
                IntentKind::Human
                    | IntentKind::WebUi
                    | IntentKind::Sws
                    | IntentKind::Duplicate
                    | IntentKind::NonSelect
                    | IntentKind::Malformed
            ) {
                assert_eq!(inst.expected, None, "{inst:?}");
            }
        }
    }

    #[test]
    fn render_parse_round_trips() {
        let log = generate(&GenConfig::with_scale(2_000, 12));
        let truth = TruthSidecar::derive(&log);
        let text = truth.render();
        let back = TruthSidecar::parse(&text).expect("parses");
        assert_eq!(truth, back);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(TruthSidecar::parse("1\tStifleDw\tDW-Stifle").is_err());
        assert!(TruthSidecar::parse("x\tStifleDw\tDW-Stifle\t1").is_err());
        assert!(TruthSidecar::parse("1\tNope\tDW-Stifle\t1").is_err());
        assert!(TruthSidecar::parse("1\tStifleDw\tNope\t1").is_err());
        assert!(TruthSidecar::parse("1\tStifleDw\tDW-Stifle\t1,x").is_err());
    }
}
