//! Per-user emission streams.
//!
//! Each simulated user emits statements along its own time cursor. Streams
//! are generated independently, then merged and sorted by the orchestrator.
//! Session windows are placed uniformly in a multi-year span, so concurrent
//! sessions rarely interleave at second granularity — the property that lets
//! the pipeline recover patterns even without user metadata (§6.8).

use crate::config::GenConfig;
use rand::rngs::SmallRng;
use rand::Rng;
use sqlog_log::{IntentKind, LogEntry, Timestamp};

/// A user's emission stream with a moving time cursor.
#[derive(Debug)]
pub struct UserStream {
    /// User identity (synthetic IP address).
    pub user: String,
    /// Current time cursor.
    pub t: Timestamp,
    /// Emitted entries (ids are assigned later by the orchestrator).
    pub entries: Vec<LogEntry>,
}

impl UserStream {
    /// Starts a stream at a random offset inside the configured span.
    pub fn new(user: impl Into<String>, cfg: &GenConfig, rng: &mut SmallRng) -> Self {
        let offset_ms = rng.random_range(0..cfg.span_secs.saturating_mul(1000).max(1)) as i64;
        UserStream {
            user: user.into(),
            t: cfg.start.offset_millis(offset_ms),
            entries: Vec::new(),
        }
    }

    /// Emits one statement at the current cursor.
    pub fn emit(&mut self, statement: String, rows: u64, kind: IntentKind, group: u64) {
        self.entries.push(
            LogEntry::minimal(0, statement, self.t)
                .with_user(self.user.clone())
                .with_rows(rows)
                .with_truth(kind, group),
        );
    }

    /// Advances the cursor by a uniform random gap in `[lo_ms, hi_ms]`.
    pub fn gap(&mut self, rng: &mut SmallRng, lo_ms: u64, hi_ms: u64) {
        let ms = if hi_ms > lo_ms {
            rng.random_range(lo_ms..=hi_ms)
        } else {
            lo_ms
        };
        self.t = self.t.offset_millis(ms as i64);
    }

    /// Jumps the cursor to a fresh random position (new session) in the span.
    pub fn new_session(&mut self, cfg: &GenConfig, rng: &mut SmallRng) {
        let offset_ms = rng.random_range(0..cfg.span_secs.saturating_mul(1000).max(1)) as i64;
        self.t = cfg.start.offset_millis(offset_ms);
    }
}

/// Synthetic IPv4 address from a stream index (stable across runs).
pub fn ip(index: u64) -> String {
    format!(
        "{}.{}.{}.{}",
        10 + ((index >> 24) & 0x7f),
        (index >> 16) & 0xff,
        (index >> 8) & 0xff,
        index & 0xff
    )
}

/// Hands out fresh instance-group ids.
#[derive(Debug, Default)]
pub struct GroupCounter(u64);

impl GroupCounter {
    /// Hands out the next fresh group id.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.0 += 1;
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn stream_emits_in_time_order() {
        let cfg = GenConfig::with_scale(10, 1);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut s = UserStream::new("10.0.0.1", &cfg, &mut rng);
        s.emit("SELECT 1".into(), 1, IntentKind::Human, 1);
        s.gap(&mut rng, 1000, 2000);
        s.emit("SELECT 2".into(), 1, IntentKind::Human, 1);
        assert!(s.entries[0].timestamp < s.entries[1].timestamp);
        assert!(s.entries[1].timestamp.abs_diff(s.entries[0].timestamp) >= 1000);
    }

    #[test]
    fn ip_is_deterministic_and_distinct() {
        assert_eq!(ip(1), ip(1));
        assert_ne!(ip(1), ip(2));
        assert_ne!(ip(256), ip(512));
    }

    #[test]
    fn group_counter_is_monotonic() {
        let mut g = GroupCounter::default();
        let a = g.next();
        let b = g.next();
        assert!(b > a);
    }
}
