//! `genlog` — writes a synthetic SkyServer-like query log to disk in the
//! `sqlog-log` TSV format.
//!
//! ```text
//! genlog [--scale N] [--seed S] [--out PATH]
//! ```

use sqlog_gen::{generate, GenConfig};
use sqlog_log::write_log_file;

fn main() {
    let mut scale = 100_000usize;
    let mut seed = 42u64;
    let mut out = "sqlog.tsv".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match arg.as_str() {
            "--scale" => scale = value("--scale").parse().expect("bad --scale"),
            "--seed" => seed = value("--seed").parse().expect("bad --seed"),
            "--out" => out = value("--out"),
            other => {
                eprintln!("unknown option {other}");
                eprintln!("usage: genlog [--scale N] [--seed S] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    eprintln!("generating {scale} statements (seed {seed})…");
    let log = generate(&GenConfig::with_scale(scale, seed));
    write_log_file(&log, &out).expect("write log file");
    eprintln!("wrote {} entries to {out}", log.len());
}
