//! `genlog` — writes a synthetic SkyServer-like query log to disk in the
//! `sqlog-log` TSV format.
//!
//! ```text
//! genlog [--scale N] [--seed S] [--out PATH] [--truth PATH]
//! ```
//!
//! `--truth PATH` also writes the ground-truth sidecar (planted instance
//! groups + expected detections, see `sqlog_gen::truth`) so a harness can
//! score detection recall against the generated log.

use sqlog_gen::{generate, GenConfig, TruthSidecar};
use sqlog_log::write_log_file;

fn main() {
    let mut scale = 100_000usize;
    let mut seed = 42u64;
    let mut out = "sqlog.tsv".to_string();
    let mut truth_out: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match arg.as_str() {
            "--scale" => scale = value("--scale").parse().expect("bad --scale"),
            "--seed" => seed = value("--seed").parse().expect("bad --seed"),
            "--out" => out = value("--out"),
            "--truth" => truth_out = Some(value("--truth")),
            other => {
                eprintln!("unknown option {other}");
                eprintln!("usage: genlog [--scale N] [--seed S] [--out PATH] [--truth PATH]");
                std::process::exit(2);
            }
        }
    }
    eprintln!("generating {scale} statements (seed {seed})…");
    let log = generate(&GenConfig::with_scale(scale, seed));
    write_log_file(&log, &out).expect("write log file");
    eprintln!("wrote {} entries to {out}", log.len());
    if let Some(path) = truth_out {
        let truth = TruthSidecar::derive(&log);
        std::fs::write(&path, truth.render()).expect("write truth sidecar");
        eprintln!(
            "wrote truth sidecar ({} planted instances, {} expected detections) to {path}",
            truth.instances.len(),
            truth.expected().count()
        );
    }
}
