//! Web-UI browsing sessions.
//!
//! The SkyServer web interface fires schema-metadata queries (`DBObjects`)
//! as users click through the schema browser. Opening the same table's
//! `description` and `text` in quick succession creates exactly the
//! DS-Stifle-shaped pairs the paper found dominating the DS clusters of the
//! §6.9 experiment — and page reloads create duplicates.

use crate::config::GenConfig;
use crate::stream::{ip, GroupCounter, UserStream};
use rand::rngs::SmallRng;
use rand::Rng;
use sqlog_log::{IntentKind, LogEntry};

const TABLES: &[&str] = &[
    "photoobjall",
    "photoprimary",
    "specobjall",
    "galaxy",
    "star",
    "field",
    "neighbors",
    "platex",
];

/// Emits the web-UI traffic.
pub fn webui(cfg: &GenConfig, rng: &mut SmallRng, groups: &mut GroupCounter) -> Vec<LogEntry> {
    let quota = cfg.quota(cfg.mix.webui);
    let mut out = Vec::with_capacity(quota);
    let mut user_seq = 200_000u64;
    let mut emitted = 0usize;
    while emitted < quota {
        user_seq += 1;
        let mut stream = UserStream::new(ip(user_seq), cfg, rng);
        let group = groups.next();
        // Landing page: list the schema.
        stream.emit(
            "SELECT name, type FROM DBObjects WHERE type='U' ORDER BY name".to_string(),
            rng.random_range(40..90),
            IntentKind::WebUi,
            group,
        );
        emitted += 1;
        stream.gap(rng, 3_000, 30_000);
        // Click through a few distinct tables (a user rarely reopens the
        // page they just read; re-reads would be duplicates).
        let clicks = rng.random_range(1..6usize);
        let start = rng.random_range(0..TABLES.len());
        for c in 0..clicks {
            let table = TABLES[(start + c) % TABLES.len()];
            let pair = [
                format!("SELECT description FROM DBObjects WHERE name='{table}'"),
                format!("SELECT text FROM DBObjects WHERE name='{table}'"),
            ];
            for stmt in pair {
                stream.emit(stmt.clone(), 1, IntentKind::WebUi, group);
                emitted += 1;
                if rng.random_bool(cfg.mix.duplicate_prob) {
                    stream.gap(rng, 50, 900);
                    stream.emit(stmt, 1, IntentKind::Duplicate, group);
                    emitted += 1;
                }
                stream.gap(rng, 500, 2_000);
            }
            stream.gap(rng, 5_000, 40_000);
        }
        out.append(&mut stream.entries);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sqlog_sql::parse_statement;

    #[test]
    fn webui_statements_parse() {
        let cfg = GenConfig::with_scale(2_000, 21);
        let mut rng = SmallRng::seed_from_u64(21);
        for e in webui(&cfg, &mut rng, &mut GroupCounter::default()) {
            parse_statement(&e.statement).unwrap_or_else(|err| panic!("{:?}: {err}", e.statement));
        }
    }

    #[test]
    fn description_text_pairs_share_the_table() {
        let cfg = GenConfig::with_scale(5_000, 22);
        let mut rng = SmallRng::seed_from_u64(22);
        let entries = webui(&cfg, &mut rng, &mut GroupCounter::default());
        let mut pairs = 0;
        for w in entries.windows(2) {
            if w[0].statement.starts_with("SELECT description")
                && w[1].statement.starts_with("SELECT text")
            {
                let ta = w[0].statement.rsplit('=').next().unwrap();
                let tb = w[1].statement.rsplit('=').next().unwrap();
                assert_eq!(ta, tb);
                pairs += 1;
            }
        }
        assert!(pairs > 10);
    }
}
