//! Circuitous-Treasure-Hunt profiles: truly dependent sequences and
//! CTH-*shaped* coincidences.
//!
//! A real CTH (Table 10 of the paper) is a query whose result feeds the next
//! query's equality filter, issued back-to-back by software. A false
//! candidate (Table 9) merely *looks* dependent — e.g. a user browsing the
//! schema, pausing to think between queries. The generator knows which is
//! which and labels entries accordingly, standing in for the paper's domain
//! experts (who judged 28 of 50 candidates real, §6.6).

use crate::config::GenConfig;
use crate::stream::{ip, GroupCounter, UserStream};
use rand::rngs::SmallRng;
use rand::Rng;
use sqlog_log::{IntentKind, LogEntry};

/// Follow-up projections for real CTH shapes. Each distinct (source,
/// follow-up) combination is one distinct CTH pattern for the detector.
const SPEC_FOLLOWUPS: &[&str] = &[
    "plate, fiberid, mjd, specobjid",
    "z, zerr",
    "plate, mjd",
    "specobjid, z",
    "ra, dec, z",
    "specclass, z",
    "fiberid, plate, specclass",
];

const PHOTO_FOLLOWUPS: &[&str] = &[
    "u, g, r, i, z",
    "ra, dec",
    "rowc_g, colc_g",
    "run, camcol, field",
    "type, flags",
    "g, r",
    "ra, dec, r",
];

/// Deterministic fake "result value": what the database would have returned
/// for the source query. This *is* the dependency — the follow-up constant is
/// a function of the source's parameters.
fn fake_result_id(ra: f64, dec: f64, salt: u64) -> u64 {
    let bits = ra.to_bits() ^ dec.to_bits().rotate_left(17) ^ salt.wrapping_mul(0x9e37);
    75_094_000_000_000_000 + bits % 900_000_000_000
}

/// Emits truly dependent CTH sequences.
pub fn real(cfg: &GenConfig, rng: &mut SmallRng, groups: &mut GroupCounter) -> Vec<LogEntry> {
    let quota = cfg.quota(cfg.mix.cth_real);
    let mut out = Vec::with_capacity(quota);
    let shapes = cfg.cth_real_shapes.max(1);
    let per_shape = (quota / shapes).max(3);
    let mut user_seq = 40_000u64;

    for shape in 0..shapes {
        user_seq += 1;
        let mut stream = UserStream::new(ip(user_seq), cfg, rng);
        // Half of the shapes chase spectra, half photometry.
        let spec = shape % 2 == 0;
        let followup_cols = if spec {
            SPEC_FOLLOWUPS[shape / 2 % SPEC_FOLLOWUPS.len()]
        } else {
            PHOTO_FOLLOWUPS[shape / 2 % PHOTO_FOLLOWUPS.len()]
        };
        let mut emitted = 0usize;
        while emitted < per_shape {
            let group = groups.next();
            let ra = rng.random_range(0.0..360.0f64);
            let dec = rng.random_range(-20.0..80.0f64);
            let radius = [0.05, 0.1, 0.2][shape % 3];
            stream.emit(
                format!("SELECT * FROM dbo.fGetNearestObjEq({ra:.5},{dec:.5},{radius})"),
                1,
                IntentKind::CthSource,
                group,
            );
            // Follow-ups fire instantly: software, not a human.
            let followups = rng.random_range(1..=3usize);
            for k in 0..followups {
                stream.gap(rng, 0, 400);
                let value = fake_result_id(ra, dec, k as u64);
                let stmt = if spec {
                    format!("SELECT {followup_cols} FROM SpecObjAll WHERE SpecObjID = {value}")
                } else {
                    format!("SELECT {followup_cols} FROM photoobjall WHERE objid = {value}")
                };
                stream.emit(stmt, 1, IntentKind::CthFollowUp, group);
            }
            emitted += 1 + followups;
            stream.gap(rng, 1000, 8000);
        }
        out.append(&mut stream.entries);
    }
    out
}

/// Tables a schema browser visits.
const BROWSE_TABLES: &[&str] = &[
    "Galaxy",
    "Star",
    "PhotoObjAll",
    "SpecObjAll",
    "photoprimary",
    "Neighbors",
    "Field",
];

/// Emits CTH-shaped but independent sequences (detector false positives).
pub fn coincidental(
    cfg: &GenConfig,
    rng: &mut SmallRng,
    groups: &mut GroupCounter,
) -> Vec<LogEntry> {
    let quota = cfg.quota(cfg.mix.cth_false);
    let mut out = Vec::with_capacity(quota);
    let shapes = cfg.cth_false_shapes.max(1);
    let per_shape = (quota / shapes).max(2);
    let mut user_seq = 50_000u64;

    for shape in 0..shapes {
        user_seq += 1;
        let mut stream = UserStream::new(ip(user_seq), cfg, rng);
        let detail_col = ["description", "text", "access", "rank"][shape % 4];
        let mut emitted = 0usize;
        while emitted < per_shape {
            let group = groups.next();
            if shape % 2 == 0 {
                // Table 9: list the schema, reflect, then open one table.
                stream.emit(
                    "SELECT name, type FROM DBObjects WHERE type='U' AND name NOT IN \
                     ('LoadEvents', 'QueryResults') ORDER BY name"
                        .to_string(),
                    rng.random_range(40..90),
                    IntentKind::CthCoincidental,
                    group,
                );
                // A human pauses for tens of seconds — the tell the paper's
                // experts used to call candidate 1 *not* a real CTH.
                stream.gap(rng, 15_000, 60_000);
                let table = BROWSE_TABLES[rng.random_range(0..BROWSE_TABLES.len())];
                stream.emit(
                    format!("SELECT {detail_col} FROM DBObjects WHERE name='{table}'"),
                    1,
                    IntentKind::CthCoincidental,
                    group,
                );
                emitted += 2;
            } else {
                // A field listing followed by an unrelated object fetch: the
                // constant does NOT come from the first result.
                let run = rng.random_range(100..7000u64);
                stream.emit(
                    format!("SELECT objid, ra, dec FROM photoprimary WHERE run = {run}"),
                    rng.random_range(10..2000),
                    IntentKind::CthCoincidental,
                    group,
                );
                stream.gap(rng, 20_000, 90_000);
                let unrelated = 587_722_982_000_000_000u64 + rng.random_range(0..900_000_000);
                stream.emit(
                    format!(
                        "SELECT {} FROM photoprimary WHERE objid = {unrelated}",
                        ["psfmag_r, psfmag_g", "petror50_r", "fibermag_z"][shape % 3]
                    ),
                    1,
                    IntentKind::CthCoincidental,
                    group,
                );
                emitted += 2;
            }
            stream.gap(rng, 30_000, 200_000);
        }
        out.append(&mut stream.entries);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sqlog_sql::parse_statement;

    #[test]
    fn real_cth_follow_ups_are_instant_and_labeled() {
        let cfg = GenConfig::with_scale(20_000, 5);
        let mut rng = SmallRng::seed_from_u64(5);
        let entries = real(&cfg, &mut rng, &mut GroupCounter::default());
        assert!(!entries.is_empty());
        let mut saw_followup = false;
        for pair in entries.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            if a.truth.unwrap().kind == IntentKind::CthSource
                && b.truth.unwrap().kind == IntentKind::CthFollowUp
            {
                assert!(b.timestamp.abs_diff(a.timestamp) <= 1200);
                assert_eq!(a.truth.unwrap().group, b.truth.unwrap().group);
                saw_followup = true;
            }
        }
        assert!(saw_followup);
    }

    #[test]
    fn follow_up_value_depends_on_source() {
        assert_ne!(fake_result_id(1.0, 2.0, 0), fake_result_id(1.5, 2.0, 0));
        assert_eq!(fake_result_id(1.0, 2.0, 0), fake_result_id(1.0, 2.0, 0));
    }

    #[test]
    fn coincidental_pairs_have_human_scale_gaps() {
        let cfg = GenConfig::with_scale(20_000, 6);
        let mut rng = SmallRng::seed_from_u64(6);
        let entries = coincidental(&cfg, &mut rng, &mut GroupCounter::default());
        let mut checked = 0;
        for pair in entries.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            if a.truth.unwrap().group == b.truth.unwrap().group && a.timestamp < b.timestamp {
                assert!(b.timestamp.abs_diff(a.timestamp) >= 15_000);
                checked += 1;
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn all_cth_statements_parse() {
        let cfg = GenConfig::with_scale(5_000, 7);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut groups = GroupCounter::default();
        for e in real(&cfg, &mut rng, &mut groups)
            .iter()
            .chain(coincidental(&cfg, &mut rng, &mut groups).iter())
        {
            parse_statement(&e.statement).unwrap_or_else(|err| panic!("{:?}: {err}", e.statement));
        }
    }
}
