//! Noise profiles: DML/DDL statements, syntax errors and SNC misuse.
//!
//! The raw SkyServer log contained ~4 % statements that the parse step drops
//! (DML/DDL and syntax errors, §6.3); the SNC (`= NULL`) extension of §5.4
//! needs a small population of misuse queries to solve.

use crate::config::GenConfig;
use crate::stream::{ip, GroupCounter, UserStream};
use rand::rngs::SmallRng;
use rand::Rng;
use sqlog_log::{IntentKind, LogEntry};

/// Emits DML/DDL statements (classified, then dropped by the pipeline).
pub fn non_select(cfg: &GenConfig, rng: &mut SmallRng, groups: &mut GroupCounter) -> Vec<LogEntry> {
    let quota = cfg.quota(cfg.mix.non_select);
    let mut out = Vec::with_capacity(quota);
    let mut user_seq = 300_000u64;
    let mut emitted = 0usize;
    while emitted < quota {
        user_seq += 1;
        let mut stream = UserStream::new(ip(user_seq), cfg, rng);
        let burst = rng.random_range(1..20usize).min(quota - emitted).max(1);
        let group = groups.next();
        for _ in 0..burst {
            let stmt = match rng.random_range(0..5u32) {
                0 => format!(
                    "INSERT INTO mydb.results (objid, ra) VALUES ({}, {:.4})",
                    rng.random_range(0..10_000_000u64),
                    rng.random_range(0.0..360.0f64)
                ),
                1 => format!(
                    "UPDATE mydb.flags SET checked = 1 WHERE objid = {}",
                    rng.random_range(0..10_000_000u64)
                ),
                2 => "CREATE TABLE mydb.scratch (objid bigint, note varchar(64))".to_string(),
                3 => format!(
                    "DELETE FROM mydb.scratch WHERE objid = {}",
                    rng.random_range(0..10_000_000u64)
                ),
                _ => "DROP TABLE mydb.scratch".to_string(),
            };
            stream.emit(stmt, 0, IntentKind::NonSelect, group);
            stream.gap(rng, 2_000, 60_000);
            emitted += 1;
        }
        out.append(&mut stream.entries);
    }
    out
}

/// Emits syntactically broken statements.
pub fn malformed(cfg: &GenConfig, rng: &mut SmallRng, groups: &mut GroupCounter) -> Vec<LogEntry> {
    let quota = cfg.quota(cfg.mix.malformed);
    let mut out = Vec::with_capacity(quota);
    let mut user_seq = 400_000u64;
    let broken = [
        "SELECT FROM photoprimary WHERE objid = 5",
        "SELEC objid FROM photoprimary",
        "SELECT objid FROM photoprimary WHERE",
        "SELECT objid FROM photoprimary WHERE ra > 'unterminated",
        "SELECT objid FROM photoprimary WHERE (ra > 1",
        "SELECT objid photoprimary WHERE AND",
        "SELECT TOP FROM galaxy",
        "WITH x AS (SELECT 1) SELECT * FROM x", // unsupported CTE → error bucket
    ];
    let mut emitted = 0usize;
    while emitted < quota {
        user_seq += 1;
        let mut stream = UserStream::new(ip(user_seq), cfg, rng);
        let burst = rng.random_range(1..6usize).min(quota - emitted).max(1);
        let group = groups.next();
        for _ in 0..burst {
            let stmt = broken[rng.random_range(0..broken.len())].to_string();
            stream.emit(stmt, 0, IntentKind::Malformed, group);
            stream.gap(rng, 2_000, 40_000);
            emitted += 1;
        }
        out.append(&mut stream.entries);
    }
    out
}

/// Emits SNC queries: `= NULL` / `<> NULL` comparisons that always return
/// no rows (Def. 16 of the paper; the solvable extension antipattern).
pub fn snc(cfg: &GenConfig, rng: &mut SmallRng, groups: &mut GroupCounter) -> Vec<LogEntry> {
    let quota = cfg.quota(cfg.mix.snc);
    let mut out = Vec::with_capacity(quota);
    let mut user_seq = 500_000u64;
    let mut emitted = 0usize;
    while emitted < quota {
        user_seq += 1;
        let mut stream = UserStream::new(ip(user_seq), cfg, rng);
        let burst = rng.random_range(1..4usize).min(quota - emitted).max(1);
        let group = groups.next();
        for _ in 0..burst {
            let (col, op) = match rng.random_range(0..4u32) {
                0 => ("flags", "="),
                1 => ("flags", "<>"),
                2 => ("specclass", "="),
                _ => ("zerr", "<>"),
            };
            let table = if col == "flags" {
                "photoprimary"
            } else {
                "specobjall"
            };
            stream.emit(
                format!("SELECT * FROM {table} WHERE {col} {op} NULL"),
                0,
                IntentKind::Snc,
                group,
            );
            stream.gap(rng, 3_000, 50_000);
            emitted += 1;
        }
        out.append(&mut stream.entries);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sqlog_sql::{parse_statement, Statement};

    #[test]
    fn non_select_classified_not_select() {
        let cfg = GenConfig::with_scale(2_000, 31);
        let mut rng = SmallRng::seed_from_u64(31);
        for e in non_select(&cfg, &mut rng, &mut GroupCounter::default()) {
            match parse_statement(&e.statement) {
                Ok(Statement::Other(_)) => {}
                other => panic!("expected non-select classification, got {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_statements_fail_to_parse() {
        let cfg = GenConfig::with_scale(2_000, 32);
        let mut rng = SmallRng::seed_from_u64(32);
        for e in malformed(&cfg, &mut rng, &mut GroupCounter::default()) {
            assert!(
                parse_statement(&e.statement).is_err(),
                "unexpectedly parsed: {}",
                e.statement
            );
        }
    }

    #[test]
    fn snc_statements_parse_with_null_comparison() {
        let cfg = GenConfig::with_scale(5_000, 33);
        let mut rng = SmallRng::seed_from_u64(33);
        let entries = snc(&cfg, &mut rng, &mut GroupCounter::default());
        assert!(!entries.is_empty());
        for e in &entries {
            let stmt = parse_statement(&e.statement).unwrap();
            let q = stmt.as_select().unwrap();
            let p = sqlog_skeleton::PredicateProfile::of_select(&q.body);
            assert_eq!(p.null_comparisons().len(), 1, "{}", e.statement);
        }
    }
}
