//! Human scientists: the long tail of genuine ad-hoc queries.
//!
//! Many users, few queries each, varied shapes, human-scale think time.
//! Constants are quantized to canonical values (half-magnitude cuts, known
//! plates, famous coordinates): different scientists ask about the same
//! things, which is precisely what makes the §6.9 clusters interpretable as
//! user interests.
//! With probability `duplicate_prob` a statement is immediately resubmitted
//! (web-form reload) — the duplicate population that §5.2's first pipeline
//! step removes.

use crate::config::GenConfig;
use crate::stream::{ip, GroupCounter, UserStream};
use rand::rngs::SmallRng;
use rand::Rng;
use sqlog_log::{IntentKind, LogEntry};

/// Published coordinates of well-known objects (M31, M51, …-style): the
/// hotspots of genuine user interest.
const FAMOUS_TARGETS: &[(f64, f64)] = &[
    (10.6847, 41.2690),
    (202.4696, 47.1952),
    (148.9689, 69.6797),
    (83.8221, -5.3911),
    (201.3651, -43.0191),
    (187.7059, 12.3911),
    (210.8023, 54.3489),
    (40.6698, 0.0131),
    (114.8254, 21.5681),
    (9.8104, 40.8654),
    (161.9576, 11.8193),
    (185.7289, 15.8224),
    (184.7401, 47.3040),
    (230.1708, 52.9022),
    (13.1583, -9.3411),
    (24.1740, 15.7836),
    (49.9507, 41.5117),
    (56.7045, 24.1133),
    (83.6331, 22.0145),
    (308.7180, 60.1536),
    (350.8502, 58.8153),
    (10.0947, -9.5342),
    (114.2700, 65.5928),
    (139.5250, 34.4389),
    (168.6850, 55.2670),
    (189.9977, -11.6231),
    (243.5861, 22.9670),
    (250.4235, 36.4613),
    (259.8079, 43.1353),
    (279.2347, 38.7836),
    (288.8500, 33.0290),
    (299.9003, 40.7339),
    (322.4930, 12.1661),
    (337.9500, 34.4156),
    (344.4110, 15.8211),
    (9.2425, 50.7153),
    (37.9545, 89.2641),
    (69.6823, 16.5093),
    (101.2872, -16.7161),
    (113.6500, 31.8883),
];

/// Renders one random ad-hoc statement. Shapes are numerous on purpose: a
/// single scientist idiom must not rival the machine downloads in frequency
/// (in the paper, the web-form templates rank 12 and 17, not top-5).
fn ad_hoc(rng: &mut SmallRng) -> (String, u64) {
    match rng.random_range(0..12u32) {
        0 => {
            // Magnitude cuts are quantized to half-magnitude steps: many
            // scientists use the same canonical cuts, so these queries
            // overlap in the data space and form user-interest clusters
            // (§6.9: "most clusters refer to certain locations/cuts").
            let lo = 12.0 + 0.5 * rng.random_range(0..12u32) as f64;
            let hi = lo + 0.5 * rng.random_range(1..5u32) as f64;
            let color = 0.25 * rng.random_range(1..5u32) as f64;
            (
                format!(
                    "SELECT objid, ra, dec FROM galaxy WHERE r BETWEEN {lo:.1} AND {hi:.1} \
                     AND g - r > {color:.2}"
                ),
                rng.random_range(100..20_000),
            )
        }
        1 => {
            let imax = 15.0 + 0.5 * rng.random_range(0..12u32) as f64;
            (
                format!(
                    "SELECT TOP 100 objid, u, g, r, i, z FROM star WHERE i < {imax:.2} \
                     ORDER BY i"
                ),
                100,
            )
        }
        2 => {
            let z = 0.05 * rng.random_range(0..8u32) as f64 + 0.01;
            (
                format!(
                    "SELECT p.objid, s.z FROM photoobjall p JOIN specobjall s \
                     ON s.bestobjid = p.objid WHERE s.z > {z:.3}"
                ),
                rng.random_range(500..50_000),
            )
        }
        3 => {
            // Two constants so that independent sessions rarely produce the
            // byte-identical statement (which would read as a duplicate
            // under an unrestricted threshold).
            let ty = rng.random_range(0..9u32);
            let run = rng.random_range(94..8000u32);
            (
                format!("SELECT count(*) FROM photoprimary WHERE type = {ty} AND run = {run}"),
                1,
            )
        }
        4 => {
            // Cone searches around famous targets: everyone types the same
            // published coordinates, so these exact queries recur across
            // users — the hotspots the clustering analysis should find.
            // (Distinct projection from the SWS robots' template.)
            let (ra, dec) = FAMOUS_TARGETS[rng.random_range(0..FAMOUS_TARGETS.len())];
            (
                format!(
                    "SELECT p.objid, p.ra, p.dec \
                     FROM fgetnearbyobjeq({ra:.4}, {dec:.4}, 2.0) n, photoprimary p \
                     WHERE n.objid=p.objid"
                ),
                rng.random_range(10..3_000),
            )
        }
        5 => {
            let plate = 266 + 7 * rng.random_range(0..60u32);
            (
                format!(
                    "SELECT specobjid, z, zerr FROM specobjall WHERE plate = {plate} \
                     AND zerr < 0.01"
                ),
                rng.random_range(100..640),
            )
        }
        6 => {
            let field = 11 + 25 * rng.random_range(0..30u32);
            let run = 94 + 125 * rng.random_range(0..40u32);
            (
                format!(
                    "SELECT objid, ra, dec, flags FROM photoprimary \
                     WHERE run = {run} AND field = {field} AND type = 3"
                ),
                rng.random_range(0..800),
            )
        }
        7 => {
            let lo = 0.1 * rng.random_range(1..10u32) as f64;
            (
                format!(
                    "SELECT TOP 50 p.objid, p.u - p.g AS ug FROM photoprimary p \
                     WHERE p.g - p.r BETWEEN {lo:.2} AND {:.2} ORDER BY ug DESC",
                    lo + 0.4
                ),
                50,
            )
        }
        8 => {
            let u_g = 0.25 * rng.random_range(0..8u32) as f64;
            let g_r = 0.25 * rng.random_range(0..6u32) as f64;
            (
                format!("SELECT objid FROM star WHERE u - g < {u_g:.2} AND g - r < {g_r:.2}"),
                rng.random_range(100..40_000),
            )
        }
        9 => {
            let z = 0.02 * rng.random_range(1..15u32) as f64;
            (
                format!(
                    "SELECT z, zerr FROM specobjall WHERE z BETWEEN {z:.3} AND {:.3} \
                     AND zerr < 0.005",
                    z + 0.05
                ),
                rng.random_range(50..5_000),
            )
        }
        10 => {
            let mjd = 51_000 + 75 * rng.random_range(0..40u32);
            (
                format!(
                    "SELECT plate, fiberid FROM specobjall WHERE mjd = {mjd} \
                     ORDER BY plate"
                ),
                rng.random_range(0..640),
            )
        }
        _ => {
            let htm = 1_000_000_000u64 + 20_000_000 * rng.random_range(0..50u64);
            (
                format!("SELECT objid, ra, dec FROM photoobjall WHERE htmid = {htm}"),
                rng.random_range(0..5),
            )
        }
    }
}

/// Emits the human-scientist traffic.
pub fn human(cfg: &GenConfig, rng: &mut SmallRng, groups: &mut GroupCounter) -> Vec<LogEntry> {
    let quota = cfg.quota(cfg.mix.human);
    let mut out = Vec::with_capacity(quota);
    let mut user_seq = 100_000u64;
    let mut emitted = 0usize;
    while emitted < quota {
        user_seq += 1;
        let mut stream = UserStream::new(ip(user_seq), cfg, rng);
        let session_len = rng.random_range(3..60usize).min(quota - emitted).max(1);
        let group = groups.next();
        for _ in 0..session_len {
            let (stmt, rows) = ad_hoc(rng);
            stream.emit(stmt.clone(), rows, IntentKind::Human, group);
            emitted += 1;
            if rng.random_bool(cfg.mix.duplicate_prob) {
                // Reload: the same statement again within a second.
                stream.gap(rng, 50, 950);
                stream.emit(stmt, rows, IntentKind::Duplicate, group);
                emitted += 1;
            }
            // Human think time.
            stream.gap(rng, 4_000, 180_000);
        }
        out.append(&mut stream.entries);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sqlog_sql::parse_statement;

    #[test]
    fn human_statements_parse() {
        let cfg = GenConfig::with_scale(3_000, 13);
        let mut rng = SmallRng::seed_from_u64(13);
        for e in human(&cfg, &mut rng, &mut GroupCounter::default()) {
            parse_statement(&e.statement).unwrap_or_else(|err| panic!("{:?}: {err}", e.statement));
        }
    }

    #[test]
    fn duplicates_are_identical_and_sub_second() {
        let cfg = GenConfig::with_scale(10_000, 14);
        let mut rng = SmallRng::seed_from_u64(14);
        let entries = human(&cfg, &mut rng, &mut GroupCounter::default());
        let mut dups = 0;
        for pair in entries.windows(2) {
            if pair[1].truth.unwrap().kind == IntentKind::Duplicate {
                assert_eq!(pair[0].statement, pair[1].statement);
                assert!(pair[1].timestamp.abs_diff(pair[0].timestamp) < 1000);
                dups += 1;
            }
        }
        let rate = dups as f64 / entries.len() as f64;
        // duplicate_prob 0.075 → roughly 7 % of entries are the dup copies.
        assert!((0.03..=0.12).contains(&rate), "rate = {rate}");
    }

    #[test]
    fn many_distinct_users() {
        let cfg = GenConfig::with_scale(10_000, 15);
        let mut rng = SmallRng::seed_from_u64(15);
        let entries = human(&cfg, &mut rng, &mut GroupCounter::default());
        let users: std::collections::HashSet<_> =
            entries.iter().map(|e| e.user.clone().unwrap()).collect();
        assert!(users.len() > 50, "users = {}", users.len());
    }
}
