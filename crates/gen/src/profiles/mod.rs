//! Workload profiles, one per population of the SkyServer-like log.

pub mod cth;
pub mod human;
pub mod noise;
pub mod stifle;
pub mod sws;
pub mod webui;
