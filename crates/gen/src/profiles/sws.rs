//! Sliding-window-search robots: the Table-7 top patterns.
//!
//! The paper's most frequent patterns are *machine downloads*: one user (one
//! IP) walks a spatial grid with consecutive, disjoint filter windows,
//! copying a slice of the database piece by piece (§6.5). These are patterns
//! — not antipatterns — but their frequency/userPopularity signature (huge
//! frequency, 1–2 users) is what the SWS classifier keys on (Table 8).

use crate::config::GenConfig;
use crate::stream::{ip, GroupCounter, UserStream};
use rand::rngs::SmallRng;
use rand::Rng;
use sqlog_log::{IntentKind, LogEntry};

/// The five Table-7 families: (relative weight, distinct IPs).
/// Weights are the paper's coverage percentages 8.69 / 8.0 / 5.65 / 5.44 / 1.75.
const FAMILIES: &[(f64, u64)] = &[(8.69, 1), (8.0, 19), (5.65, 1), (5.44, 1), (1.75, 1)];

/// Renders the `k`-th statement of family `fam` for a grid walker at
/// position `pos`. Consecutive positions yield disjoint windows.
fn statement(fam: usize, pos: u64, rng: &mut SmallRng) -> String {
    match fam {
        // Pattern 1: objects within @r arcmin of an equatorial point, with
        // spectra outer-joined.
        0 => {
            let ra = (pos as f64 * 0.05) % 360.0;
            let dec = ((pos / 7200) as f64) * 0.05 - 20.0;
            format!(
                "SELECT g.objid, g.ra, g.dec, g.u, g.g, g.r, g.i, g.z, s.specobjid \
                 FROM photoobjall as g JOIN fgetnearbyobjeq({ra:.4}, {dec:.4}, 1.0) as gn \
                 on g.objid=gn.objid left outer join specobj s on s.bestobjid=gn.objid"
            )
        }
        // Pattern 2: rectangle scan with an r-magnitude band.
        1 => {
            let ra1 = (pos as f64 * 0.1) % 359.0;
            let dec1 = ((pos / 3600) as f64) * 0.1 - 15.0;
            let (rlo, rhi) = (14 + (pos % 4), 16 + (pos % 4));
            format!(
                "SELECT p.objid, p.ra, p.dec, p.r \
                 FROM fgetobjfromrect({ra1:.4}, {dec1:.4}, {:.4}, {:.4}) n, photoprimary p \
                 WHERE n.objid=p.objid and r between {rlo} and {rhi}",
                ra1 + 0.1,
                dec1 + 0.1,
            )
        }
        // Pattern 3: count over an HTM-id range (disjoint windows).
        2 => {
            let base = 1_000_000_000u64 + pos * 10_000;
            format!(
                "SELECT count(*) FROM photoprimary WHERE htmid>={base} and htmid<={}",
                base + 9_999
            )
        }
        // Pattern 4: cone search on photoprimary.
        3 => {
            let ra = (pos as f64 * 0.08) % 360.0;
            let dec = ((pos / 4500) as f64) * 0.08 - 10.0;
            format!(
                "SELECT p.objId, p.ra, p.dec, p.type \
                 FROM fgetnearbyobjeq({ra:.4}, {dec:.4}, 2.0) n, photoprimary p \
                 WHERE n.objid=p.objid"
            )
        }
        // Pattern 5: scan-strip fraction search.
        _ => {
            let ra = (pos as f64 * 0.02) % 360.0;
            let dec = rng.random_range(-1.25..1.25f64);
            format!(
                "SELECT ra, dec, u, g, r, i, z \
                 FROM fgetnearbyobjeq({ra:.4}, {dec:.4}, 0.5) n, photoprimary p \
                 WHERE n.objid=p.objid"
            )
        }
    }
}

/// Columns used to build the minor window-scan long tail.
const MINOR_COLS: &[&str] = &[
    "objid, u",
    "objid, g",
    "objid, r",
    "objid, i",
    "objid, z",
    "ra, dec",
    "objid, ra",
    "objid, dec",
    "u, g, r",
    "g, r, i",
    "r, i, z",
    "objid, run",
    "objid, field",
    "objid, flags",
    "ra, dec, r",
    "objid, htmid",
];

/// Number of minor single-user scan families (each a distinct template of
/// medium frequency — the population that makes Table 8's coverage grow as
/// the frequency threshold drops).
const MINOR_FAMILIES: usize = 16;

/// Share of the SWS quota that goes to the minor long tail.
const MINOR_SHARE: f64 = 0.25;

/// Emits the SWS robot traffic.
pub fn sws(cfg: &GenConfig, rng: &mut SmallRng, groups: &mut GroupCounter) -> Vec<LogEntry> {
    let total_quota = cfg.quota(cfg.mix.sws);
    let minor_quota = (total_quota as f64 * MINOR_SHARE) as usize;
    let quota = total_quota - minor_quota;
    let weight_sum: f64 = FAMILIES.iter().map(|f| f.0).sum();
    let mut out = Vec::with_capacity(total_quota);
    let mut user_seq = 60_000u64;

    for (fam, (weight, ips)) in FAMILIES.iter().enumerate() {
        let fam_quota = (quota as f64 * weight / weight_sum) as usize;
        let per_ip = (fam_quota / *ips as usize).max(1);
        for _ in 0..*ips {
            user_seq += 1;
            let mut stream = UserStream::new(ip(user_seq), cfg, rng);
            // All IPs of a family start at the same grid origin: a window
            // recurs across IPs (multi-IP families cluster, §6.9) but never
            // within one IP's walk — per §6.5, the queries of one SWS
            // pattern access *disjoint* regions.
            let mut pos: u64 = 0;
            let mut emitted = 0usize;
            while emitted < per_ip {
                let burst = rng.random_range(200..1500).min(per_ip - emitted).max(1);
                let group = groups.next();
                for _ in 0..burst {
                    let stmt = statement(fam, pos, rng);
                    let rows = match fam {
                        2 => 1, // count(*)
                        _ => rng.random_range(50..5_000),
                    };
                    stream.emit(stmt, rows, IntentKind::Sws, group);
                    pos += 1;
                    stream.gap(rng, 500, 2500);
                }
                emitted += burst;
                stream.new_session(cfg, rng);
            }
            out.append(&mut stream.entries);
        }
    }

    // Minor long tail: each family is one user scanning disjoint htmid
    // windows with its own projection (distinct template). Frequencies are
    // geometric, so coverage keeps growing as the Table-8 frequency
    // threshold is lowered.
    let mut remaining = minor_quota;
    for fam in 0..MINOR_FAMILIES {
        let fam_quota = (remaining / 2).max(8).min(remaining);
        if fam_quota == 0 {
            break;
        }
        remaining -= fam_quota;
        user_seq += 1;
        let mut stream = UserStream::new(ip(user_seq), cfg, rng);
        let cols = MINOR_COLS[fam % MINOR_COLS.len()];
        let table = ["photoobjall", "photoprimary"][fam % 2];
        let mut pos: u64 = 0;
        let mut emitted = 0usize;
        while emitted < fam_quota {
            let burst = rng.random_range(50..400).min(fam_quota - emitted).max(1);
            let group = groups.next();
            for _ in 0..burst {
                let base = 2_000_000_000u64 + pos * 10_000;
                stream.emit(
                    format!(
                        "SELECT {cols} FROM {table} WHERE htmid>={base} and htmid<={}",
                        base + 9_999
                    ),
                    rng.random_range(10..2_000),
                    IntentKind::Sws,
                    group,
                );
                pos += 1;
                stream.gap(rng, 500, 2500);
            }
            emitted += burst;
            stream.new_session(cfg, rng);
        }
        out.append(&mut stream.entries);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sqlog_skeleton::QueryTemplate;
    use sqlog_sql::parse_statement;

    #[test]
    fn sws_statements_parse_into_five_major_templates() {
        let cfg = GenConfig::with_scale(20_000, 9);
        let mut rng = SmallRng::seed_from_u64(9);
        let entries = sws(&cfg, &mut rng, &mut GroupCounter::default());
        assert!(!entries.is_empty());
        let mut fps = std::collections::HashSet::new();
        for e in &entries {
            let stmt = parse_statement(&e.statement)
                .unwrap_or_else(|err| panic!("{:?}: {err}", e.statement));
            let q = stmt.as_select().unwrap();
            fps.insert(QueryTemplate::of_query(q).fingerprint);
        }
        // 5 major templates plus the minor long-tail families.
        assert!(
            fps.len() <= 8 + MINOR_FAMILIES,
            "got {} fingerprints",
            fps.len()
        );
        assert!(fps.len() >= 10);
    }

    #[test]
    fn consecutive_windows_are_disjoint() {
        let mut rng = SmallRng::seed_from_u64(3);
        let a = statement(2, 100, &mut rng);
        let b = statement(2, 101, &mut rng);
        assert_ne!(a, b);
        // HTM windows do not overlap.
        assert!(a.contains("htmid>=1001000000 and htmid<=1001009999"));
        assert!(b.contains("htmid>=1001010000 and htmid<=1001019999"));
    }

    #[test]
    fn family_weights_respected() {
        let cfg = GenConfig::with_scale(50_000, 11);
        let mut rng = SmallRng::seed_from_u64(11);
        let entries = sws(&cfg, &mut rng, &mut GroupCounter::default());
        let count_f3 = entries
            .iter()
            .filter(|e| e.statement.starts_with("SELECT count(*)"))
            .count();
        let share = count_f3 as f64 / entries.len() as f64;
        // Family 3 weight: 5.65 / 29.53 ≈ 0.19.
        assert!((0.10..=0.30).contains(&share), "share = {share}");
    }
}
