//! Stifle-emitting crawler profiles.
//!
//! These reproduce the proprietary bot software the paper inferred behind
//! the Table-6 antipatterns: object-at-a-time crawlers that fetch pixel
//! coordinates of photometric objects one `objid` at a time. The three
//! major DW templates and the two major DS templates mirror Table 6
//! (frequencies 1.45 : 1.41 : 1.04 : 0.56 : 0.56, distinct IPs 2/3/1/2/2);
//! a long tail of minor templates reproduces the paper's distinct-template
//! counts (1 018 DW / 6 562 DS / 487 DF, scaled).

use crate::config::GenConfig;
use crate::stream::{ip, GroupCounter, UserStream};
use rand::rngs::SmallRng;
use rand::Rng;
use sqlog_log::{IntentKind, LogEntry};

/// Column pairs of the three major DW templates (Table 6 rows 1–3).
const MAJOR_DW: &[(&str, &str, usize, f64)] = &[
    // (select columns, ..., distinct IPs, relative weight)
    ("rowc_g", "colc_g", 2, 1.454),
    ("rowc_r", "colc_r", 3, 1.411),
    ("rowc_i", "colc_i", 1, 1.045),
];

/// Column sets used to build minor-template long tails.
const PHOTO_COLS: &[&str] = &[
    "ra", "dec", "u", "g", "r", "i", "z", "rowc_g", "colc_g", "rowc_r", "colc_r", "rowc_i",
    "colc_i", "run", "camcol", "field", "flags",
];

const PHOTO_TABLES: &[&str] = &["photoprimary", "photoobjall", "galaxy", "star"];

/// The `seq`-th objid of the crawled catalog. Crawlers enumerate a shared
/// object catalog sequentially: different bots visit the *same* objids (so
/// stifle queries form the "many small clusters" of the §6.9 experiment),
/// while one bot never revisits an objid (so an unrestricted duplicate
/// threshold stays close to the 1-second one, Table 4). The ×1000 spacing
/// matches `sqlog-minidb`'s data generator, so point queries hit rows.
fn catalog_objid(seq: u64) -> u64 {
    // SkyServer objids are ~19-digit integers.
    587_722_982_000_000_000 + seq * 1_000
}

fn pick_cols<'a>(rng: &mut SmallRng, n: usize) -> Vec<&'a str> {
    let mut cols: Vec<&str> = Vec::with_capacity(n);
    while cols.len() < n {
        let c = PHOTO_COLS[rng.random_range(0..PHOTO_COLS.len())];
        if !cols.contains(&c) {
            cols.push(c);
        }
    }
    cols
}

/// Emits DW-Stifle traffic: runs of identical-skeleton queries differing
/// only in the `objid` constant.
pub fn dw(cfg: &GenConfig, rng: &mut SmallRng, groups: &mut GroupCounter) -> Vec<LogEntry> {
    let quota = cfg.quota(cfg.mix.stifle_dw);
    let mut out = Vec::with_capacity(quota);
    let major_quota = (quota as f64 * 0.85) as usize;
    let weight_sum: f64 = MAJOR_DW.iter().map(|m| m.3).sum();

    let mut user_seq = 10_000u64;
    for (c1, c2, ips, weight) in MAJOR_DW {
        let tpl_quota = (major_quota as f64 * weight / weight_sum) as usize;
        for _ in 0..*ips {
            user_seq += 1;
            let mut stream = UserStream::new(ip(user_seq), cfg, rng);
            let mut emitted = 0usize;
            // Every IP of a family crawls the same catalog from the start.
            let mut seq = 0u64;
            let per_ip = tpl_quota / ips;
            while emitted < per_ip {
                // One crawl session = one DW-Stifle instance. Run lengths
                // average ≈ 45, calibrated against §6.3's 40× statement
                // reduction (10 222 stifle queries → 254 rewrites).
                let run = rng.random_range(20..80).min(per_ip - emitted).max(2);
                let group = groups.next();
                for _ in 0..run {
                    let stmt = format!(
                        "SELECT {c1}, {c2} FROM photoprimary WHERE objid={}",
                        catalog_objid(seq)
                    );
                    seq += 1;
                    stream.emit(stmt, 1, IntentKind::StifleDw, group);
                    stream.gap(rng, 800, 3000);
                }
                emitted += run;
                stream.new_session(cfg, rng);
            }
            out.append(&mut stream.entries);
        }
    }

    // Long tail of minor DW templates: distinct column/table combinations,
    // each crawled briefly by its own user.
    let minor_quota = quota.saturating_sub(out.len());
    let per_tpl = (minor_quota / cfg.minor_dw_templates.max(1)).max(2);
    for k in 0..cfg.minor_dw_templates {
        user_seq += 1;
        let mut stream = UserStream::new(ip(user_seq), cfg, rng);
        let ncols = rng.random_range(1..=3);
        let cols = pick_cols(rng, ncols).join(", ");
        let table = PHOTO_TABLES[k % PHOTO_TABLES.len()];
        // Long minor crawls are split into run-sized instances too. Minor
        // crawlers enumerate the same catalog, so their objids overlap with
        // the majors' (clusters), never with their own past (duplicates).
        let mut left = per_tpl;
        let mut seq = 0u64;
        while left > 0 {
            let run = rng.random_range(20..60).min(left).max(1);
            let group = groups.next();
            for _ in 0..run {
                let stmt = format!(
                    "SELECT {cols} FROM {table} WHERE objid={}",
                    catalog_objid(seq)
                );
                seq += 1;
                stream.emit(stmt, 1, IntentKind::StifleDw, group);
                stream.gap(rng, 900, 2500);
            }
            left -= run;
            stream.new_session(cfg, rng);
        }
        out.append(&mut stream.entries);
    }
    out
}

/// Emits DS-Stifle traffic: per object, several queries with the same
/// FROM + WHERE but different SELECT lists (Table 6 rows 4–5).
pub fn ds(cfg: &GenConfig, rng: &mut SmallRng, groups: &mut GroupCounter) -> Vec<LogEntry> {
    let quota = cfg.quota(cfg.mix.stifle_ds);
    let mut out = Vec::with_capacity(quota);
    let major_quota = (quota as f64 * 0.6) as usize;

    // Major: the (rowc_r,colc_r) / (rowc_g,colc_g) alternation, 2 IPs.
    let mut user_seq = 20_000u64;
    for _ in 0..2 {
        user_seq += 1;
        let mut stream = UserStream::new(ip(user_seq), cfg, rng);
        let mut emitted = 0usize;
        let mut seq = 0u64;
        let per_ip = major_quota / 2;
        while emitted < per_ip {
            let pairs = rng
                .random_range(20..150)
                .min((per_ip - emitted).max(2) / 2)
                .max(1);
            let group = groups.next();
            for _ in 0..pairs {
                let objid = catalog_objid(seq);
                seq += 1;
                stream.emit(
                    format!("SELECT rowc_r, colc_r FROM photoprimary WHERE objid={objid}"),
                    1,
                    IntentKind::StifleDs,
                    group,
                );
                stream.gap(rng, 300, 1200);
                stream.emit(
                    format!("SELECT rowc_g, colc_g FROM photoprimary WHERE objid={objid}"),
                    1,
                    IntentKind::StifleDs,
                    group,
                );
                stream.gap(rng, 300, 1200);
            }
            emitted += pairs * 2;
            stream.new_session(cfg, rng);
        }
        out.append(&mut stream.entries);
    }

    // Minor tail: random distinct projection pairs on a random photo table.
    let minor_quota = quota.saturating_sub(out.len());
    let per_tpl = (minor_quota / cfg.minor_ds_templates.max(1)).max(2);
    for k in 0..cfg.minor_ds_templates {
        user_seq += 1;
        let mut stream = UserStream::new(ip(user_seq), cfg, rng);
        let table = PHOTO_TABLES[k % PHOTO_TABLES.len()];
        let na = rng.random_range(1..=2);
        let nb = rng.random_range(1..=2);
        let cols_a = pick_cols(rng, na).join(", ");
        let cols_b = pick_cols(rng, nb).join(", ");
        if cols_a == cols_b {
            continue;
        }
        let group = groups.next();
        for seq in 0..(per_tpl / 2) as u64 {
            let objid = catalog_objid(seq);
            stream.emit(
                format!("SELECT {cols_a} FROM {table} WHERE objid={objid}"),
                1,
                IntentKind::StifleDs,
                group,
            );
            stream.gap(rng, 300, 1500);
            stream.emit(
                format!("SELECT {cols_b} FROM {table} WHERE objid={objid}"),
                1,
                IntentKind::StifleDs,
                group,
            );
            stream.gap(rng, 300, 1500);
        }
        out.append(&mut stream.entries);
    }
    out
}

/// Emits DF-Stifle traffic: the same WHERE clause fired at *different*
/// tables (redundant design, Example 13 of the paper).
pub fn df(cfg: &GenConfig, rng: &mut SmallRng, groups: &mut GroupCounter) -> Vec<LogEntry> {
    let quota = cfg.quota(cfg.mix.stifle_df);
    let mut out = Vec::with_capacity(quota);
    let per_tpl = (quota / cfg.minor_df_templates.max(1)).max(2);
    let mut user_seq = 30_000u64;
    for k in 0..cfg.minor_df_templates {
        user_seq += 1;
        let mut stream = UserStream::new(ip(user_seq), cfg, rng);
        // Pick two different photo tables; objid is a key of both.
        let t1 = PHOTO_TABLES[k % PHOTO_TABLES.len()];
        let t2 = PHOTO_TABLES[(k + 1) % PHOTO_TABLES.len()];
        let n = rng.random_range(1..=2);
        let cols = pick_cols(rng, n).join(", ");
        let group = groups.next();
        for seq in 0..(per_tpl / 2) as u64 {
            let objid = catalog_objid(seq);
            stream.emit(
                format!("SELECT {cols} FROM {t1} WHERE objid={objid}"),
                1,
                IntentKind::StifleDf,
                group,
            );
            stream.gap(rng, 300, 1500);
            stream.emit(
                format!("SELECT {cols} FROM {t2} WHERE objid={objid}"),
                1,
                IntentKind::StifleDf,
                group,
            );
            stream.gap(rng, 300, 1500);
        }
        out.append(&mut stream.entries);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sqlog_sql::parse_statement;

    fn cfg() -> GenConfig {
        GenConfig::with_scale(5_000, 42)
    }

    #[test]
    fn dw_queries_parse_and_have_single_equality() {
        let cfg = cfg();
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut groups = GroupCounter::default();
        let entries = dw(&cfg, &mut rng, &mut groups);
        assert!(!entries.is_empty());
        for e in entries.iter().take(50) {
            let stmt = parse_statement(&e.statement).expect("dw statement parses");
            let q = stmt.as_select().expect("dw is a select");
            let profile = sqlog_skeleton::PredicateProfile::of_select(&q.body);
            let (col, _) = profile.single_equality().expect("single equality");
            assert_eq!(col, "objid");
        }
    }

    #[test]
    fn dw_quota_roughly_met() {
        let cfg = cfg();
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let entries = dw(&cfg, &mut rng, &mut GroupCounter::default());
        let quota = cfg.quota(cfg.mix.stifle_dw);
        assert!(
            entries.len() as f64 > quota as f64 * 0.7
                && (entries.len() as f64) < quota as f64 * 1.3,
            "emitted {} for quota {quota}",
            entries.len()
        );
    }

    #[test]
    fn ds_pairs_share_objid() {
        let cfg = cfg();
        let mut rng = SmallRng::seed_from_u64(1);
        let entries = ds(&cfg, &mut rng, &mut GroupCounter::default());
        // The first two entries of each major stream form a pair on one objid.
        let a = &entries[0].statement;
        let b = &entries[1].statement;
        let objid_a = a.rsplit('=').next().unwrap();
        let objid_b = b.rsplit('=').next().unwrap();
        assert_eq!(objid_a, objid_b);
        assert_ne!(a.split("FROM").next(), b.split("FROM").next());
    }

    #[test]
    fn df_pairs_differ_in_table_only() {
        let cfg = cfg();
        let mut rng = SmallRng::seed_from_u64(2);
        let entries = df(&cfg, &mut rng, &mut GroupCounter::default());
        assert!(!entries.is_empty());
        let a = parse_statement(&entries[0].statement).unwrap();
        let b = parse_statement(&entries[1].statement).unwrap();
        let ta = sqlog_skeleton::primary_table(&a.as_select().unwrap().body).unwrap();
        let tb = sqlog_skeleton::primary_table(&b.as_select().unwrap().body).unwrap();
        assert_ne!(ta, tb);
    }

    #[test]
    fn all_stifle_entries_are_labeled() {
        let cfg = cfg();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut groups = GroupCounter::default();
        for e in dw(&cfg, &mut rng, &mut groups) {
            assert_eq!(e.truth.unwrap().kind, IntentKind::StifleDw);
        }
    }
}
