//! Orchestrates the workload profiles into one merged, time-sorted log.

use crate::config::GenConfig;
use crate::profiles;
use crate::stream::GroupCounter;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sqlog_log::QueryLog;

/// Generates a synthetic SkyServer-like query log.
///
/// The result is a pure function of the configuration: every profile draws
/// from its own seeded RNG stream. Entries are merged, sorted by time and
/// assigned sequential ids (log order).
pub fn generate(cfg: &GenConfig) -> QueryLog {
    // Stable per-profile RNG streams: adding a profile or changing one
    // profile's draw count does not perturb the others.
    let rng_for = |salt: u64| SmallRng::seed_from_u64(cfg.seed.wrapping_add(salt));
    let mut groups = GroupCounter::default();

    let mut entries = Vec::with_capacity(cfg.target_queries + cfg.target_queries / 8);
    entries.extend(profiles::stifle::dw(cfg, &mut rng_for(1), &mut groups));
    entries.extend(profiles::stifle::ds(cfg, &mut rng_for(2), &mut groups));
    entries.extend(profiles::stifle::df(cfg, &mut rng_for(3), &mut groups));
    entries.extend(profiles::cth::real(cfg, &mut rng_for(4), &mut groups));
    entries.extend(profiles::cth::coincidental(
        cfg,
        &mut rng_for(5),
        &mut groups,
    ));
    entries.extend(profiles::sws::sws(cfg, &mut rng_for(6), &mut groups));
    entries.extend(profiles::webui::webui(cfg, &mut rng_for(7), &mut groups));
    entries.extend(profiles::human::human(cfg, &mut rng_for(8), &mut groups));
    entries.extend(profiles::noise::non_select(
        cfg,
        &mut rng_for(9),
        &mut groups,
    ));
    entries.extend(profiles::noise::malformed(
        cfg,
        &mut rng_for(10),
        &mut groups,
    ));
    entries.extend(profiles::noise::snc(cfg, &mut rng_for(11), &mut groups));

    let mut log = QueryLog::from_entries(entries);
    log.sort_by_time();
    for (i, e) in log.entries.iter_mut().enumerate() {
        e.id = i as u64;
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlog_log::IntentKind;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::with_scale(5_000, 77);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GenConfig::with_scale(2_000, 1));
        let b = generate(&GenConfig::with_scale(2_000, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn log_is_sorted_with_sequential_ids() {
        let log = generate(&GenConfig::with_scale(5_000, 3));
        assert!(log.is_time_sorted());
        for (i, e) in log.entries.iter().enumerate() {
            assert_eq!(e.id, i as u64);
        }
    }

    #[test]
    fn size_is_near_target() {
        let cfg = GenConfig::with_scale(20_000, 4);
        let log = generate(&cfg);
        let n = log.len() as f64;
        let t = cfg.target_queries as f64;
        assert!((t * 0.8..t * 1.25).contains(&n), "n = {n}");
    }

    #[test]
    fn mix_shares_are_plausible() {
        let log = generate(&GenConfig::with_scale(30_000, 5));
        let share = |kind: IntentKind| {
            log.entries
                .iter()
                .filter(|e| e.truth.map(|t| t.kind) == Some(kind))
                .count() as f64
                / log.len() as f64
        };
        // Headline shares from Table 5 / §6.3, with generous tolerances.
        let dw = share(IntentKind::StifleDw);
        assert!((0.10..=0.22).contains(&dw), "dw = {dw}");
        let sws = share(IntentKind::Sws);
        assert!((0.20..=0.40).contains(&sws), "sws = {sws}");
        let dup = share(IntentKind::Duplicate);
        assert!((0.015..=0.07).contains(&dup), "dup = {dup}");
        let bad = share(IntentKind::Malformed) + share(IntentKind::NonSelect);
        assert!((0.02..=0.07).contains(&bad), "bad = {bad}");
    }

    #[test]
    fn many_distinct_users_overall() {
        let log = generate(&GenConfig::with_scale(20_000, 6));
        assert!(log.distinct_users() > 100);
    }
}
