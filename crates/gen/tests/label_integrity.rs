//! Ground-truth label integrity: the labels the experiments rely on must be
//! internally consistent.

use sqlog_gen::{generate, GenConfig};
use sqlog_log::IntentKind;
use std::collections::HashMap;

#[test]
fn every_entry_is_labeled_with_a_group() {
    let log = generate(&GenConfig::with_scale(8_000, 555));
    for e in &log.entries {
        let t = e.truth.expect("synthetic entries carry ground truth");
        assert!(t.group > 0, "group ids start at 1");
        assert!(e.user.is_some(), "synthetic entries carry a user");
    }
}

#[test]
fn cth_followups_share_a_group_with_their_source() {
    let log = generate(&GenConfig::with_scale(20_000, 556));
    // group → kinds present.
    let mut groups: HashMap<u64, Vec<IntentKind>> = HashMap::new();
    for e in &log.entries {
        let t = e.truth.unwrap();
        groups.entry(t.group).or_default().push(t.kind);
    }
    let mut followup_groups = 0;
    for kinds in groups.values() {
        if kinds.contains(&IntentKind::CthFollowUp) {
            followup_groups += 1;
            assert!(
                kinds.contains(&IntentKind::CthSource),
                "follow-up without a source in its group"
            );
        }
    }
    assert!(
        followup_groups > 10,
        "too few CTH groups: {followup_groups}"
    );
}

#[test]
fn duplicates_follow_an_identical_statement_by_the_same_user() {
    let log = generate(&GenConfig::with_scale(20_000, 557));
    // Index entries per user in time order.
    let mut per_user: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, e) in log.entries.iter().enumerate() {
        per_user.entry(e.user_key()).or_default().push(i);
    }
    let mut dups = 0;
    for stream in per_user.values() {
        for w in stream.windows(2) {
            let (prev, cur) = (&log.entries[w[0]], &log.entries[w[1]]);
            if cur.truth.unwrap().kind == IntentKind::Duplicate {
                assert_eq!(prev.statement, cur.statement, "duplicate differs");
                assert!(
                    cur.timestamp.abs_diff(prev.timestamp) < 1_000,
                    "duplicate arrived too late"
                );
                dups += 1;
            }
        }
    }
    assert!(dups > 100, "too few duplicates: {dups}");
}

#[test]
fn stifle_groups_are_single_user_runs() {
    let log = generate(&GenConfig::with_scale(15_000, 558));
    let mut group_users: HashMap<u64, &str> = HashMap::new();
    for e in &log.entries {
        let t = e.truth.unwrap();
        if matches!(
            t.kind,
            IntentKind::StifleDw | IntentKind::StifleDs | IntentKind::StifleDf
        ) {
            let user = e.user_key();
            let prev = group_users.insert(t.group, user);
            if let Some(prev) = prev {
                assert_eq!(prev, user, "stifle group {} spans users", t.group);
            }
        }
    }
    assert!(group_users.len() > 50);
}

#[test]
fn malformed_entries_really_are_malformed() {
    let log = generate(&GenConfig::with_scale(10_000, 559));
    for e in &log.entries {
        if e.truth.unwrap().kind == IntentKind::Malformed {
            assert!(
                sqlog_sql::parse_statement(&e.statement).is_err(),
                "labeled malformed but parses: {}",
                e.statement
            );
        }
    }
}
