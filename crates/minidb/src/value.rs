//! Runtime values.

use std::cmp::Ordering;
use std::fmt;

/// A cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// Double-precision float.
    Float(f64),
    /// Text.
    Str(String),
    /// SQL NULL.
    Null,
}

impl Value {
    /// Three-valued-logic comparison: `None` when either side is NULL or the
    /// types are incomparable.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// SQL equality (NULL never equals anything).
    pub fn sql_eq(&self, other: &Value) -> bool {
        self.compare(other) == Some(Ordering::Equal)
    }

    /// True when NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_incomparable() {
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(Value::Null.is_null());
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(
            Value::Int(2).compare(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert!(Value::Float(2.0).sql_eq(&Value::Int(2)));
    }

    #[test]
    fn strings_compare_lexicographically() {
        assert_eq!(
            Value::from("abc").compare(&Value::from("abd")),
            Some(Ordering::Less)
        );
        assert_eq!(Value::from("a").compare(&Value::Int(1)), None);
    }
}
