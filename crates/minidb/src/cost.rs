//! The round-trip cost model.
//!
//! The §6.3 runtime experiment is dominated by per-statement overhead:
//! 10 222 stifle queries took 4 450 s (≈ 435 ms each) against the authors'
//! SQL Server — network round trip, session handling, parse/plan — while the
//! 254 rewritten statements took 152 s. This model makes that overhead an
//! explicit, accounted quantity (no sleeping involved): simulated time =
//! per-statement overhead + per-scanned-row work + per-result-row transfer.

use crate::exec::ExecResult;
use crate::ops::OpStats;
use serde::{Deserialize, Serialize};

/// Cost-model parameters (milliseconds / microseconds of simulated time).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Fixed per-statement overhead in ms (network round trip, parse, plan).
    pub per_statement_ms: f64,
    /// Per scanned row, in µs.
    pub per_scanned_row_us: f64,
    /// Per result row (serialization + transfer), in µs.
    pub per_result_row_us: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Calibrated so the §6.3 shape reproduces: overhead >> row work for
        // point queries, and the merged query pays once.
        CostModel {
            per_statement_ms: 400.0,
            per_scanned_row_us: 2.0,
            per_result_row_us: 40.0,
        }
    }
}

impl CostModel {
    /// Simulated time of one executed statement, in milliseconds, billing
    /// scanned rows from the flat [`ExecResult::scanned_rows`] counter.
    pub fn simulated_ms(&self, result: &ExecResult) -> f64 {
        self.ms_for(result.scanned_rows, result.rows.len())
    }

    /// Simulated time of one executed statement, in milliseconds, billing
    /// scanned rows from the operator tree: only rows touched by storage
    /// operators (`SeqScan` / `IndexScan`) count, so an index seek is charged
    /// for the rows it probed rather than the table it avoided.
    pub fn simulated_ms_ops(&self, result: &ExecResult, ops: &OpStats) -> f64 {
        self.ms_for(ops.storage_scanned() as usize, result.rows.len())
    }

    fn ms_for(&self, scanned: usize, produced: usize) -> f64 {
        self.per_statement_ms
            + (scanned as f64 * self.per_scanned_row_us + produced as f64 * self.per_result_row_us)
                / 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn result(scanned: usize, rows: usize) -> ExecResult {
        ExecResult {
            columns: vec!["a".into()],
            rows: vec![vec![Value::Int(0)]; rows],
            scanned_rows: scanned,
            used_index: true,
        }
    }

    #[test]
    fn overhead_dominates_point_queries() {
        let m = CostModel::default();
        let point = m.simulated_ms(&result(1, 1));
        assert!((point - 400.0).abs() < 1.0);
    }

    #[test]
    fn merged_query_amortizes_overhead() {
        let m = CostModel::default();
        // 40 point queries vs one merged query scanning 40 rows.
        let points = 40.0 * m.simulated_ms(&result(1, 1));
        let merged = m.simulated_ms(&result(40, 40));
        assert!(points / merged > 25.0, "ratio = {}", points / merged);
    }
}
