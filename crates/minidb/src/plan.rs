//! The cost-based planner.
//!
//! [`plan_query`] turns a parsed query plus [ANALYZE-style stats](crate::stats)
//! into an explicit operator tree that the Volcano executor
//! ([`crate::ops`]) pulls rows through. Access-path choice is where the cost
//! model earns its keep: for every base-table source the planner enumerates
//! the applicable candidates —
//!
//! * **PkSeek** — equality / `IN` probe on the declared primary key,
//! * **IndexSeek** — equality / `IN` probe on any hash-indexed column,
//! * **IndexRangeSeek** — bounds on an ordered (range) index, including
//!   point equality as a degenerate `[v, v]` range,
//! * **FullScan** — always applicable,
//!
//! costs each one deterministically from the table's row count, per-column
//! distinct counts and min/max range, and keeps the cheapest (ties broken by
//! the order above). The losing candidates stay on the plan as
//! `alternatives`, so `explain()` output — and the conformance oracle's
//! plan assertions — can distinguish "the planner chose a full scan" from
//! "no index was available".
//!
//! Plans are purely descriptive: planning never executes a subquery and
//! never touches row data, so `explain()` is cheap at any table size.

use crate::exec::ExecError;
use crate::stats::TableStats;
use crate::table::Table;
use crate::value::Value;
use sqlog_obs::Json;
use sqlog_sql::ast::*;
use std::collections::HashMap;

/// Cost of one hash-index probe. Cheaper than examining a single row so a
/// selective seek beats a full scan even on tiny tables — mirroring the
/// naive executor, which always seeks when an index matches.
const COST_PROBE: f64 = 0.5;
/// Cost of positioning a range scan (B-tree descent).
const COST_RANGE_DESCENT: f64 = 8.0;
/// Cost of examining one candidate row.
const COST_ROW: f64 = 1.0;

/// Access-path choice for one base-table scan.
#[derive(Debug, Clone, PartialEq)]
pub enum Access {
    /// Equality / IN probe on the primary key.
    PkSeek {
        /// Probed column.
        column: String,
        /// Probe keys (IN lists carry several).
        keys: Vec<Value>,
    },
    /// Equality / IN probe on a hash-indexed column.
    IndexSeek {
        /// Probed column.
        column: String,
        /// Probe keys.
        keys: Vec<Value>,
    },
    /// Bounded scan of an ordered index.
    IndexRangeSeek {
        /// Scanned column.
        column: String,
        /// Inclusive lower bound.
        lo: Option<i64>,
        /// Inclusive upper bound.
        hi: Option<i64>,
    },
    /// Examine every row.
    FullScan,
}

impl Access {
    /// Stable name of the access-path variant.
    pub fn variant(&self) -> &'static str {
        match self {
            Access::PkSeek { .. } => "PkSeek",
            Access::IndexSeek { .. } => "IndexSeek",
            Access::IndexRangeSeek { .. } => "IndexRangeSeek",
            Access::FullScan => "FullScan",
        }
    }

    /// True for any index-backed path.
    pub fn is_seek(&self) -> bool {
        !matches!(self, Access::FullScan)
    }

    /// The probed/scanned column, if any.
    pub fn column(&self) -> Option<&str> {
        match self {
            Access::PkSeek { column, .. }
            | Access::IndexSeek { column, .. }
            | Access::IndexRangeSeek { column, .. } => Some(column),
            Access::FullScan => None,
        }
    }

    /// Tie-break rank: lower is preferred at equal cost.
    fn rank(&self) -> u8 {
        match self {
            Access::PkSeek { .. } => 0,
            Access::IndexSeek { .. } => 1,
            Access::IndexRangeSeek { .. } => 2,
            Access::FullScan => 3,
        }
    }
}

/// A considered access path: the chosen one plus the rejected alternatives.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessChoice {
    /// The access path.
    pub access: Access,
    /// Estimated rows the path enumerates.
    pub est_rows: f64,
    /// Estimated cost (probe + row units).
    pub est_cost: f64,
}

/// One base-table (or derived-table) scan.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanPlan {
    /// Scanned table name (derived tables use their binding).
    pub table: String,
    /// FROM-clause binding (alias or table name).
    pub binding: String,
    /// Chosen access path.
    pub access: Access,
    /// Estimated rows enumerated.
    pub est_rows: f64,
    /// Estimated cost.
    pub est_cost: f64,
    /// Rejected candidates, cheapest first.
    pub alternatives: Vec<AccessChoice>,
    /// Plan of the subquery when this scans a derived table.
    pub derived: Option<Box<QueryPlan>>,
}

/// A node of the plan tree. The shape mirrors execution order exactly:
/// `Limit(Distinct(Project|Aggregate(Sort(Filter(Scan|Join)))))`.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Base or derived table scan.
    Scan(ScanPlan),
    /// Two-way nested-loop inner join; the inner side re-scans (or is
    /// probed through an equi-join hash index) per outer row.
    NestedLoopJoin {
        /// Outer (driving) scan.
        outer: Box<PlanNode>,
        /// Inner scan.
        inner: Box<PlanNode>,
        /// `outer.col = inner.col` probe through the inner hash index.
        probe: Option<(String, String)>,
        /// Estimated joined rows.
        est_rows: f64,
        /// Estimated cost.
        est_cost: f64,
    },
    /// Residual-predicate filter.
    Filter {
        /// Input node.
        input: Box<PlanNode>,
        /// Rendered predicate (explain only).
        predicate: String,
    },
    /// Sort of matched source rows (pre-projection, as SQL requires for
    /// sorting on non-projected columns).
    Sort {
        /// Input node.
        input: Box<PlanNode>,
        /// Rendered sort keys with direction.
        keys: Vec<String>,
    },
    /// Grouped / aggregate evaluation (includes HAVING, the group-level
    /// ORDER BY, and the aggregate projection).
    Aggregate {
        /// Input node.
        input: Box<PlanNode>,
        /// Rendered GROUP BY expressions.
        group_by: Vec<String>,
        /// HAVING present?
        having: bool,
    },
    /// Scalar projection.
    Project {
        /// Input node.
        input: Box<PlanNode>,
        /// Rendered output columns.
        columns: Vec<String>,
    },
    /// `DISTINCT` duplicate elimination.
    Distinct {
        /// Input node.
        input: Box<PlanNode>,
    },
    /// `TOP` / `LIMIT`.
    Limit {
        /// Input node.
        input: Box<PlanNode>,
        /// Row cap, when it is a plain literal.
        n: Option<usize>,
    },
    /// Constant query without FROM (`SELECT 1`).
    Values,
}

impl PlanNode {
    /// Stable operator name.
    pub fn name(&self) -> &'static str {
        match self {
            PlanNode::Scan(s) => {
                if s.access.is_seek() {
                    "IndexScan"
                } else {
                    "SeqScan"
                }
            }
            PlanNode::NestedLoopJoin { .. } => "NestedLoopJoin",
            PlanNode::Filter { .. } => "Filter",
            PlanNode::Sort { .. } => "Sort",
            PlanNode::Aggregate { .. } => "Aggregate",
            PlanNode::Project { .. } => "Project",
            PlanNode::Distinct { .. } => "Distinct",
            PlanNode::Limit { .. } => "Limit",
            PlanNode::Values => "Values",
        }
    }

    /// Input node, if any.
    pub fn input(&self) -> Option<&PlanNode> {
        match self {
            PlanNode::Filter { input, .. }
            | PlanNode::Sort { input, .. }
            | PlanNode::Aggregate { input, .. }
            | PlanNode::Project { input, .. }
            | PlanNode::Distinct { input }
            | PlanNode::Limit { input, .. } => Some(input),
            _ => None,
        }
    }
}

/// A complete plan.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// Root node.
    pub root: PlanNode,
    /// Estimated output rows.
    pub est_rows: f64,
    /// Estimated total cost (access paths dominate).
    pub est_cost: f64,
}

impl QueryPlan {
    /// The scan at the bottom of the tree (the outer scan for joins):
    /// the access path the oracle's plan assertions inspect.
    pub fn primary_scan(&self) -> Option<&ScanPlan> {
        fn descend(node: &PlanNode) -> Option<&ScanPlan> {
            match node {
                PlanNode::Scan(s) => Some(s),
                PlanNode::NestedLoopJoin { outer, .. } => descend(outer),
                other => other.input().and_then(descend),
            }
        }
        descend(&self.root)
    }

    /// Every scan in the tree, outer-before-inner, derived subplans
    /// included.
    pub fn scans(&self) -> Vec<&ScanPlan> {
        fn descend<'a>(node: &'a PlanNode, out: &mut Vec<&'a ScanPlan>) {
            match node {
                PlanNode::Scan(s) => {
                    out.push(s);
                    if let Some(d) = &s.derived {
                        descend(&d.root, out);
                    }
                }
                PlanNode::NestedLoopJoin { outer, inner, .. } => {
                    descend(outer, out);
                    descend(inner, out);
                }
                other => {
                    if let Some(input) = other.input() {
                        descend(input, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        descend(&self.root, &mut out);
        out
    }

    /// True when any scan in the tree had an applicable seek candidate
    /// (chosen or rejected) — i.e. an index was *available*.
    pub fn seek_was_available(&self) -> bool {
        self.scans()
            .iter()
            .any(|s| s.access.is_seek() || s.alternatives.iter().any(|a| a.access.is_seek()))
    }

    /// Serializes the plan as a stable JSON tree (see DESIGN.md for the
    /// schema). Costs are rounded to 3 decimals so snapshots stay tidy.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("est_rows", round_json(self.est_rows)),
            ("est_cost", round_json(self.est_cost)),
            ("root", node_json(&self.root)),
        ])
    }
}

fn round_json(x: f64) -> Json {
    let r = (x * 1_000.0).round() / 1_000.0;
    if r >= 0.0 && r.fract() == 0.0 && r <= u64::MAX as f64 {
        Json::U64(r as u64)
    } else {
        Json::F64(r)
    }
}

/// Key list for explain: full when short, truncated with a count when long
/// (DW rewrites can carry hundreds of IN constants).
fn keys_json(keys: &[Value]) -> Json {
    const SHOWN: usize = 8;
    let mut arr: Vec<Json> = keys
        .iter()
        .take(SHOWN)
        .map(|v| Json::Str(v.to_string()))
        .collect();
    if keys.len() > SHOWN {
        arr.push(Json::Str(format!("…+{}", keys.len() - SHOWN)));
    }
    Json::Arr(arr)
}

fn access_json(access: &Access) -> Json {
    let mut pairs = vec![("path", Json::Str(access.variant().to_string()))];
    match access {
        Access::PkSeek { column, keys } | Access::IndexSeek { column, keys } => {
            pairs.push(("column", Json::Str(column.clone())));
            pairs.push(("keys", keys_json(keys)));
        }
        Access::IndexRangeSeek { column, lo, hi } => {
            pairs.push(("column", Json::Str(column.clone())));
            pairs.push(("lo", lo.map_or(Json::Null, json_i64)));
            pairs.push(("hi", hi.map_or(Json::Null, json_i64)));
        }
        Access::FullScan => {}
    }
    Json::obj(pairs)
}

fn node_json(node: &PlanNode) -> Json {
    let mut pairs = vec![("op", Json::Str(node.name().to_string()))];
    match node {
        PlanNode::Scan(s) => {
            pairs.push(("table", Json::Str(s.table.clone())));
            if s.binding != s.table {
                pairs.push(("binding", Json::Str(s.binding.clone())));
            }
            pairs.push(("access", access_json(&s.access)));
            pairs.push(("est_rows", round_json(s.est_rows)));
            pairs.push(("est_cost", round_json(s.est_cost)));
            if !s.alternatives.is_empty() {
                pairs.push((
                    "alternatives",
                    Json::Arr(
                        s.alternatives
                            .iter()
                            .map(|a| {
                                Json::obj(vec![
                                    ("access", access_json(&a.access)),
                                    ("est_cost", round_json(a.est_cost)),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            if let Some(d) = &s.derived {
                pairs.push(("subplan", d.to_json()));
            }
        }
        PlanNode::NestedLoopJoin {
            outer,
            inner,
            probe,
            est_rows,
            est_cost,
        } => {
            if let Some((o, i)) = probe {
                pairs.push((
                    "probe",
                    Json::obj(vec![
                        ("outer", Json::Str(o.clone())),
                        ("inner", Json::Str(i.clone())),
                    ]),
                ));
            }
            pairs.push(("est_rows", round_json(*est_rows)));
            pairs.push(("est_cost", round_json(*est_cost)));
            pairs.push(("outer", node_json(outer)));
            pairs.push(("inner", node_json(inner)));
        }
        PlanNode::Filter { input, predicate } => {
            pairs.push(("predicate", Json::Str(predicate.clone())));
            pairs.push(("input", node_json(input)));
        }
        PlanNode::Sort { input, keys } => {
            pairs.push((
                "keys",
                Json::Arr(keys.iter().map(|k| Json::Str(k.clone())).collect()),
            ));
            pairs.push(("input", node_json(input)));
        }
        PlanNode::Aggregate {
            input,
            group_by,
            having,
        } => {
            pairs.push((
                "group_by",
                Json::Arr(group_by.iter().map(|g| Json::Str(g.clone())).collect()),
            ));
            pairs.push(("having", Json::Bool(*having)));
            pairs.push(("input", node_json(input)));
        }
        PlanNode::Project { input, columns } => {
            pairs.push((
                "columns",
                Json::Arr(columns.iter().map(|c| Json::Str(c.clone())).collect()),
            ));
            pairs.push(("input", node_json(input)));
        }
        PlanNode::Distinct { input } => {
            pairs.push(("input", node_json(input)));
        }
        PlanNode::Limit { input, n } => {
            pairs.push(("n", n.map_or(Json::Null, |n| Json::U64(n as u64))));
            pairs.push(("input", node_json(input)));
        }
        PlanNode::Values => {}
    }
    Json::obj(pairs)
}

/// `i64` into the exact-integer Json model.
fn json_i64(v: i64) -> Json {
    if v >= 0 {
        Json::U64(v as u64)
    } else {
        Json::I64(v)
    }
}

/// One bound FROM source as the planner sees it (no row data touched).
struct PlanSource<'a> {
    binding: String,
    table_name: String,
    /// `None` for derived tables.
    table: Option<&'a Table>,
    stats: Option<&'a TableStats>,
    /// Row-count estimate (stats, actual table size, or subplan estimate).
    rows: f64,
    derived: Option<QueryPlan>,
}

impl PlanSource<'_> {
    /// Does an (optionally qualified) column reference bind to this source?
    /// Mirrors the executor's resolution: alias or table name, ASCII
    /// case-insensitive.
    fn binds(&self, qualifier: Option<&str>) -> bool {
        qualifier.is_none_or(|q| {
            self.binding.eq_ignore_ascii_case(q) || self.table_name.eq_ignore_ascii_case(q)
        })
    }
}

/// Does a column reference *safely* resolve to `sources[si]` for access-path
/// purposes? Qualified references follow binding/table-name matching. An
/// unqualified reference resolves to the first source whose table has the
/// column — and is only usable when every earlier source is a base table
/// known not to carry it (a derived table's columns are unknown at plan
/// time, so the planner stays conservative and refuses the seek).
fn resolves_to(sources: &[PlanSource<'_>], si: usize, qualifier: Option<&str>, col: &str) -> bool {
    if let Some(q) = qualifier {
        return sources[si].binds(Some(q));
    }
    for (i, s) in sources.iter().enumerate() {
        match s.table {
            Some(t) => {
                if t.column(col).is_some() {
                    return i == si;
                }
            }
            None => return false,
        }
    }
    false
}

/// Plans a query against tables + stats. Statements outside the executor's
/// SQL subset fail with the same [`ExecError::Unsupported`] refusals the
/// executor raises, so planning never hides an execution error class.
pub fn plan_query(
    query: &Query,
    tables: &HashMap<String, Table>,
    stats: &HashMap<String, TableStats>,
) -> Result<QueryPlan, ExecError> {
    if !query.is_simple() {
        return Err(ExecError::Unsupported("set operations".into()));
    }
    let body = &query.body;

    // Bind the FROM clause (planning derived subqueries recursively).
    let mut sources: Vec<PlanSource<'_>> = Vec::new();
    let mut join_on: Vec<&Expr> = Vec::new();
    let mut derived_count = 0usize;
    for t in &body.from {
        bind_plan_source(
            t,
            tables,
            stats,
            &mut derived_count,
            &mut sources,
            &mut join_on,
        )?;
    }

    // Constant-only query.
    if sources.is_empty() {
        let columns = projection_names(&body.projection);
        return Ok(QueryPlan {
            root: PlanNode::Project {
                input: Box::new(PlanNode::Values),
                columns,
            },
            est_rows: 1.0,
            est_cost: 0.0,
        });
    }
    if sources.len() > 2 {
        return Err(ExecError::Unsupported(">2-way joins".into()));
    }

    // Combined predicate: WHERE plus JOIN ... ON, exactly as executed.
    let mut predicate = body.selection.clone();
    for on in join_on {
        predicate = Some(match predicate {
            Some(p) => Expr::and(p, on.clone()),
            None => on.clone(),
        });
    }

    // Access selection per source.
    let choices: Vec<(AccessChoice, Vec<AccessChoice>)> = (0..sources.len())
        .map(|si| choose_access(predicate.as_ref(), &sources, si))
        .collect();

    let (base, mut est_rows, mut est_cost) = if sources.len() == 1 {
        let (chosen, alts) = &choices[0];
        let scan = scan_plan(&sources[0], chosen, alts);
        let (r, c) = (scan.est_rows, scan.est_cost);
        (PlanNode::Scan(scan), r, c)
    } else {
        // Nested-loop join: outer drives; inner is probed through an
        // equi-join hash index when one exists, else re-enumerated per
        // outer row via its own best access path.
        let probe = predicate
            .as_ref()
            .and_then(|p| find_equi_probe(p, &sources));
        let (outer_choice, outer_alts) = &choices[0];
        let outer = scan_plan(&sources[0], outer_choice, outer_alts);
        let (inner_choice, inner_alts) = &choices[1];
        let inner = scan_plan(&sources[1], inner_choice, inner_alts);
        let inner_rows_per_outer = match &probe {
            Some((_, icol)) => sources[1]
                .stats
                .and_then(|st| st.column(icol))
                .map_or(1.0, |c| c.rows_per_key(sources[1].rows as usize)),
            None => inner.est_rows,
        };
        let inner_cost_per_outer = match &probe {
            Some(_) => COST_PROBE + inner_rows_per_outer * COST_ROW,
            None => inner.est_cost,
        };
        let est_rows = outer.est_rows * inner_rows_per_outer;
        let est_cost = outer.est_cost + outer.est_rows * inner_cost_per_outer;
        (
            PlanNode::NestedLoopJoin {
                outer: Box::new(PlanNode::Scan(outer)),
                inner: Box::new(PlanNode::Scan(inner)),
                probe,
                est_rows,
                est_cost,
            },
            est_rows,
            est_cost,
        )
    };

    // Residual filter.
    let mut node = base;
    if let Some(p) = &predicate {
        node = PlanNode::Filter {
            input: Box::new(node),
            predicate: p.to_string(),
        };
        est_cost += est_rows * COST_ROW;
    }

    // Sort of matched source rows.
    if !query.order_by.is_empty() {
        let keys = query
            .order_by
            .iter()
            .map(|o| {
                format!(
                    "{} {}",
                    o.expr,
                    if o.asc.unwrap_or(true) { "ASC" } else { "DESC" }
                )
            })
            .collect();
        node = PlanNode::Sort {
            input: Box::new(node),
            keys,
        };
    }

    // Aggregate or scalar projection.
    let grouped = !body.group_by.is_empty()
        || body.having.is_some()
        || crate::aggregate::projection_has_aggregate(&body.projection);
    if grouped {
        node = PlanNode::Aggregate {
            input: Box::new(node),
            group_by: body.group_by.iter().map(|e| e.to_string()).collect(),
            having: body.having.is_some(),
        };
        if !body.group_by.is_empty() {
            // Groups can't outnumber inputs; no better estimate without
            // multi-column distinct stats.
            est_rows = est_rows.max(1.0);
        } else {
            est_rows = 1.0;
        }
    } else {
        node = PlanNode::Project {
            input: Box::new(node),
            columns: projection_names(&body.projection),
        };
    }

    if body.distinct {
        node = PlanNode::Distinct {
            input: Box::new(node),
        };
    }

    if let Some(e) = body.top.as_ref().or(query.limit.as_ref()) {
        let n = limit_literal(e);
        if let Some(n) = n {
            est_rows = est_rows.min(n as f64);
        }
        node = PlanNode::Limit {
            input: Box::new(node),
            n,
        };
    }

    Ok(QueryPlan {
        root: node,
        est_rows,
        est_cost,
    })
}

/// Rendered projection column names (alias, else the printed expression) —
/// the names `ExecResult.columns` will carry, wildcards shown as-is.
fn projection_names(projection: &[SelectItem]) -> Vec<String> {
    projection
        .iter()
        .map(|item| match item {
            SelectItem::Wildcard => "*".to_string(),
            SelectItem::QualifiedWildcard(q) => format!("{q}.*"),
            SelectItem::Expr { expr, alias } => alias
                .as_ref()
                .map_or_else(|| expr.to_string(), |a| a.value.clone()),
        })
        .collect()
}

/// The literal row cap, when the TOP/LIMIT expression is a plain (possibly
/// parenthesized) number.
fn limit_literal(e: &Expr) -> Option<usize> {
    match e {
        Expr::Literal(Literal::Number(n)) => n.parse().ok(),
        Expr::Nested(inner) => limit_literal(inner),
        _ => None,
    }
}

fn scan_plan(
    source: &PlanSource<'_>,
    chosen: &AccessChoice,
    alternatives: &[AccessChoice],
) -> ScanPlan {
    ScanPlan {
        table: source.table_name.clone(),
        binding: source.binding.clone(),
        access: chosen.access.clone(),
        est_rows: chosen.est_rows,
        est_cost: chosen.est_cost,
        alternatives: alternatives.to_vec(),
        derived: source.derived.clone().map(Box::new),
    }
}

fn bind_plan_source<'a>(
    t: &'a TableRef,
    tables: &'a HashMap<String, Table>,
    stats: &'a HashMap<String, TableStats>,
    derived_count: &mut usize,
    sources: &mut Vec<PlanSource<'a>>,
    join_on: &mut Vec<&'a Expr>,
) -> Result<(), ExecError> {
    match t {
        TableRef::Table { name, alias } => {
            let tname = name.last().normalized();
            let table = tables
                .get(&tname)
                .ok_or_else(|| ExecError::UnknownTable(tname.clone()))?;
            let table_stats = stats.get(&tname);
            sources.push(PlanSource {
                binding: alias
                    .as_ref()
                    .map_or_else(|| tname.clone(), |a| a.normalized()),
                table_name: tname,
                table: Some(table),
                stats: table_stats,
                rows: table_stats.map_or(table.rows() as f64, |s| s.row_count as f64),
                derived: None,
            });
            Ok(())
        }
        TableRef::Join {
            left,
            right,
            kind: JoinKind::Inner,
            constraint,
        } => {
            bind_plan_source(left, tables, stats, derived_count, sources, join_on)?;
            bind_plan_source(right, tables, stats, derived_count, sources, join_on)?;
            if let Some(on) = constraint {
                join_on.push(on);
            }
            Ok(())
        }
        TableRef::Join { .. } => Err(ExecError::Unsupported("non-inner join".into())),
        TableRef::Function { name, .. } => Err(ExecError::Unsupported(format!(
            "table-valued function {name}"
        ))),
        TableRef::Derived { subquery, alias } => {
            let sub = plan_query(subquery, tables, stats)?;
            // Same fallback name the executor's materializer assigns:
            // "derived<n>" counting derived tables in traversal order.
            let binding = alias
                .as_ref()
                .map_or_else(|| format!("derived{derived_count}"), |a| a.normalized());
            *derived_count += 1;
            sources.push(PlanSource {
                binding: binding.clone(),
                table_name: binding,
                table: None,
                stats: None,
                rows: sub.est_rows,
                derived: Some(sub),
            });
            Ok(())
        }
    }
}

/// Enumerates and costs every applicable access path for one source, and
/// returns the winner plus the (cheapest-first) rejected alternatives.
fn choose_access(
    predicate: Option<&Expr>,
    sources: &[PlanSource<'_>],
    si: usize,
) -> (AccessChoice, Vec<AccessChoice>) {
    let source = &sources[si];
    let rows = source.rows;
    let mut candidates: Vec<AccessChoice> = vec![AccessChoice {
        access: Access::FullScan,
        est_rows: rows,
        est_cost: rows * COST_ROW,
    }];
    if let (Some(table), Some(pred)) = (source.table, predicate) {
        point_candidates(pred, sources, si, table, &mut candidates);
        range_candidates(pred, sources, si, table, &mut candidates);
    }
    // Deterministic winner: cheapest, ties to the lower rank.
    candidates.sort_by(|a, b| {
        a.est_cost
            .total_cmp(&b.est_cost)
            .then(a.access.rank().cmp(&b.access.rank()))
    });
    let chosen = candidates.remove(0);
    (chosen, candidates)
}

/// Equality / IN candidates over hash indexes (and degenerate point ranges
/// over ordered indexes).
fn point_candidates(
    predicate: &Expr,
    sources: &[PlanSource<'_>],
    si: usize,
    table: &Table,
    out: &mut Vec<AccessChoice>,
) {
    let source = &sources[si];
    let rows = source.rows;
    for conj in predicate.conjuncts() {
        let (name, values) = match conj {
            Expr::Binary {
                left,
                op: BinaryOp::Eq,
                right,
            } => match (left.as_ref(), right.as_ref()) {
                (Expr::Column(c), Expr::Literal(l)) | (Expr::Literal(l), Expr::Column(c)) => {
                    (c, vec![crate::exec::literal_value(l)])
                }
                _ => continue,
            },
            Expr::InList {
                expr,
                list,
                negated: false,
            } => match expr.as_ref() {
                Expr::Column(c) if list.iter().all(|e| matches!(e, Expr::Literal(_))) => (
                    c,
                    list.iter()
                        .filter_map(|e| match e {
                            Expr::Literal(l) => Some(crate::exec::literal_value(l)),
                            _ => None,
                        })
                        .collect(),
                ),
                _ => continue,
            },
            _ => continue,
        };
        let col = name.last().normalized();
        let qualifier = name.qualifier().last().map(|q| q.normalized());
        if !resolves_to(sources, si, qualifier.as_deref(), &col) {
            continue;
        }
        let rows_per_key = source
            .stats
            .and_then(|s| s.column(&col))
            .map_or(1.0, |c| c.rows_per_key(rows as usize));
        if table.indexes.contains_key(&col) {
            let est_rows = values.len() as f64 * rows_per_key;
            let est_cost = values.len() as f64 * COST_PROBE + est_rows * COST_ROW;
            let access = if table.primary_key.as_deref() == Some(col.as_str()) {
                Access::PkSeek {
                    column: col.clone(),
                    keys: values.clone(),
                }
            } else {
                Access::IndexSeek {
                    column: col.clone(),
                    keys: values.clone(),
                }
            };
            out.push(AccessChoice {
                access,
                est_rows,
                est_cost,
            });
        }
        // A single integer key can also ride the ordered index as a
        // degenerate [v, v] range — this is what rescues point queries on
        // range-indexed-only columns (e.g. htmid) from full scans.
        if values.len() == 1 && table.range_indexes.contains_key(&col) {
            if let Value::Int(v) = values[0] {
                let est_rows = rows_per_key;
                out.push(AccessChoice {
                    access: Access::IndexRangeSeek {
                        column: col,
                        lo: Some(v),
                        hi: Some(v),
                    },
                    est_rows,
                    est_cost: COST_RANGE_DESCENT + est_rows * COST_ROW,
                });
            }
        }
    }
}

/// Range candidates: integer bounds merged across conjuncts, one candidate
/// per bounded range-indexed column.
fn range_candidates(
    predicate: &Expr,
    sources: &[PlanSource<'_>],
    si: usize,
    table: &Table,
    out: &mut Vec<AccessChoice>,
) {
    let source = &sources[si];
    fn int_lit(e: &Expr) -> Option<i64> {
        match e {
            Expr::Literal(Literal::Number(n)) => n.parse().ok(),
            Expr::Nested(inner) => int_lit(inner),
            _ => None,
        }
    }
    let mut bounds: HashMap<String, (Option<i64>, Option<i64>)> = HashMap::new();
    let mut order: Vec<String> = Vec::new(); // deterministic candidate order
    let resolve = |name: &ObjectName| -> Option<String> {
        let col = name.last().normalized();
        let qualifier = name.qualifier().last().map(|q| q.normalized());
        (resolves_to(sources, si, qualifier.as_deref(), &col)
            && table.range_indexes.contains_key(&col))
        .then_some(col)
    };
    let mut tighten = |order: &mut Vec<String>, col: String, lo: Option<i64>, hi: Option<i64>| {
        if !bounds.contains_key(&col) {
            order.push(col.clone());
        }
        let e = bounds.entry(col).or_insert((None, None));
        if let Some(lo) = lo {
            e.0 = Some(e.0.map_or(lo, |old: i64| old.max(lo)));
        }
        if let Some(hi) = hi {
            e.1 = Some(e.1.map_or(hi, |old: i64| old.min(hi)));
        }
    };
    for conj in predicate.conjuncts() {
        match conj {
            Expr::Binary { left, op, right } if op.is_comparison() => {
                let (col, v, op) = match (left.as_ref(), right.as_ref()) {
                    (Expr::Column(c), e) => match int_lit(e) {
                        Some(v) => (c, v, *op),
                        None => continue,
                    },
                    (e, Expr::Column(c)) => match int_lit(e) {
                        Some(v) => (
                            c,
                            v,
                            match op {
                                BinaryOp::Lt => BinaryOp::Gt,
                                BinaryOp::LtEq => BinaryOp::GtEq,
                                BinaryOp::Gt => BinaryOp::Lt,
                                BinaryOp::GtEq => BinaryOp::LtEq,
                                other => *other,
                            },
                        ),
                        None => continue,
                    },
                    _ => continue,
                };
                let Some(col) = resolve(col) else { continue };
                match op {
                    BinaryOp::GtEq => tighten(&mut order, col, Some(v), None),
                    BinaryOp::Gt => tighten(&mut order, col, Some(v.saturating_add(1)), None),
                    BinaryOp::LtEq => tighten(&mut order, col, None, Some(v)),
                    BinaryOp::Lt => tighten(&mut order, col, None, Some(v.saturating_sub(1))),
                    _ => {}
                }
            }
            Expr::Between {
                expr,
                low,
                high,
                negated: false,
            } => {
                let Expr::Column(c) = expr.as_ref() else {
                    continue;
                };
                let (Some(lo), Some(hi)) = (int_lit(low), int_lit(high)) else {
                    continue;
                };
                let Some(col) = resolve(c) else { continue };
                tighten(&mut order, col, Some(lo), Some(hi));
            }
            _ => {}
        }
    }
    for col in order {
        let (lo, hi) = bounds[&col];
        let sel = source
            .stats
            .and_then(|s| s.column(&col))
            .map_or(1.0, |c| c.range_selectivity(lo, hi));
        let est_rows = source.rows * sel;
        out.push(AccessChoice {
            access: Access::IndexRangeSeek {
                column: col,
                lo,
                hi,
            },
            est_rows,
            est_cost: COST_RANGE_DESCENT + est_rows * COST_ROW,
        });
    }
}

/// Finds an `outer.col = inner.col` equi-join conjunct where the inner
/// side's column is hash-indexed; returns (outer column, inner column).
fn find_equi_probe(predicate: &Expr, sources: &[PlanSource<'_>]) -> Option<(String, String)> {
    if sources.len() != 2 {
        return None;
    }
    let inner_table = sources[1].table?;
    for conj in predicate.conjuncts() {
        if let Expr::Binary {
            left,
            op: BinaryOp::Eq,
            right,
        } = conj
        {
            if let (Expr::Column(a), Expr::Column(b)) = (left.as_ref(), right.as_ref()) {
                let (ca, cb) = (a.last().normalized(), b.last().normalized());
                let qa = a.qualifier().last().map(|q| q.normalized());
                let qb = b.qualifier().last().map(|q| q.normalized());
                let is_left = |q: &Option<String>| sources[0].binds(q.as_deref());
                let is_right =
                    |q: &Option<String>| q.as_deref().is_some_and(|q| sources[1].binds(Some(q)));
                if is_left(&qa) && is_right(&qb) && inner_table.indexes.contains_key(&cb) {
                    return Some((ca, cb));
                }
                if is_left(&qb) && is_right(&qa) && inner_table.indexes.contains_key(&ca) {
                    return Some((cb, ca));
                }
            }
        }
    }
    None
}
