//! Query execution.
//!
//! The executor covers the query shapes the experiments run: single-table
//! scans and index seeks with conjunctive predicates, `IN` lists, `BETWEEN`,
//! `LIKE`, `IS NULL`, inner equi-joins of base tables, `count(*)`, `TOP`/
//! `LIMIT` and `ORDER BY` on plain columns. Anything else returns
//! [`ExecError::Unsupported`] — honest refusal beats silent wrong answers.

use crate::table::Table;
use crate::value::Value;
use sqlog_sql::ast::*;
use std::collections::HashMap;
use std::fmt;

/// Execution errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// FROM references a table the database does not have.
    UnknownTable(String),
    /// A column could not be resolved.
    UnknownColumn(String),
    /// The query uses a shape the executor does not implement.
    Unsupported(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownTable(t) => write!(f, "unknown table {t}"),
            ExecError::UnknownColumn(c) => write!(f, "unknown column {c}"),
            ExecError::Unsupported(w) => write!(f, "unsupported query shape: {w}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
    /// Rows examined (candidate rows after index pruning).
    pub scanned_rows: usize,
    /// Whether an index pruned the scan.
    pub used_index: bool,
}

/// One bound source in the FROM clause.
pub(crate) struct Source<'a> {
    /// Binding name: alias if given, else the table name.
    pub(crate) binding: String,
    pub(crate) table: &'a Table,
}

/// A row under evaluation: one row id per source. Exposed crate-wide so the
/// aggregate module can evaluate expressions per group member.
pub struct RowCtxView<'a, 'b> {
    sources: &'b [Source<'a>],
    rows: &'b [usize],
}

/// Crate-internal constructor for the Volcano operators.
pub(crate) fn row_ctx<'a, 'b>(sources: &'b [Source<'a>], rows: &'b [usize]) -> RowCtxView<'a, 'b> {
    RowCtxView { sources, rows }
}

impl RowCtxView<'_, '_> {
    fn resolve(&self, name: &ObjectName) -> Result<Value, ExecError> {
        let col = name.last().normalized();
        if let Some(qualifier) = name.qualifier().last() {
            for (si, s) in self.sources.iter().enumerate() {
                if s.binding.eq_ignore_ascii_case(&qualifier.value)
                    || s.table.name.eq_ignore_ascii_case(&qualifier.value)
                {
                    let c = s
                        .table
                        .column(&col)
                        .ok_or_else(|| ExecError::UnknownColumn(name.to_string()))?;
                    return Ok(c.data.get(self.rows[si]));
                }
            }
            return Err(ExecError::UnknownColumn(name.to_string()));
        }
        for (si, s) in self.sources.iter().enumerate() {
            if let Some(c) = s.table.column(&col) {
                return Ok(c.data.get(self.rows[si]));
            }
        }
        Err(ExecError::UnknownColumn(name.to_string()))
    }
}

pub(crate) fn literal_value(lit: &Literal) -> Value {
    match lit {
        Literal::Number(text) => {
            if let Ok(i) = text.parse::<i64>() {
                Value::Int(i)
            } else if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
                i64::from_str_radix(hex, 16).map_or(Value::Null, Value::Int)
            } else {
                text.parse::<f64>().map_or(Value::Null, Value::Float)
            }
        }
        Literal::String(s) => Value::Str(s.clone()),
        Literal::Null => Value::Null,
        Literal::Boolean(b) => Value::Int(i64::from(*b)),
    }
}

/// Scalar evaluation.
fn eval_scalar(expr: &Expr, ctx: &RowCtxView<'_, '_>) -> Result<Value, ExecError> {
    match expr {
        Expr::Column(name) => ctx.resolve(name),
        Expr::Literal(lit) => Ok(literal_value(lit)),
        Expr::Nested(inner) => eval_scalar(inner, ctx),
        Expr::Unary {
            op: UnaryOp::Minus,
            expr,
        } => match eval_scalar(expr, ctx)? {
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            _ => Ok(Value::Null),
        },
        Expr::Unary {
            op: UnaryOp::Plus,
            expr,
        } => eval_scalar(expr, ctx),
        Expr::Binary { left, op, right }
            if matches!(op, BinaryOp::BitAnd | BinaryOp::BitOr | BinaryOp::BitXor) =>
        {
            let (a, b) = (eval_scalar(left, ctx)?, eval_scalar(right, ctx)?);
            match (a, b) {
                (Value::Int(a), Value::Int(b)) => Ok(Value::Int(match op {
                    BinaryOp::BitAnd => a & b,
                    BinaryOp::BitOr => a | b,
                    _ => a ^ b,
                })),
                _ => Ok(Value::Null),
            }
        }
        Expr::Binary { left, op, right }
            if matches!(
                op,
                BinaryOp::Plus | BinaryOp::Minus | BinaryOp::Multiply | BinaryOp::Divide
            ) =>
        {
            let (a, b) = (eval_scalar(left, ctx)?, eval_scalar(right, ctx)?);
            let (a, b) = match (a, b) {
                (Value::Int(a), Value::Int(b)) => (a as f64, b as f64),
                (Value::Float(a), Value::Float(b)) => (a, b),
                (Value::Int(a), Value::Float(b)) => (a as f64, b),
                (Value::Float(a), Value::Int(b)) => (a, b as f64),
                _ => return Ok(Value::Null),
            };
            let r = match op {
                BinaryOp::Plus => a + b,
                BinaryOp::Minus => a - b,
                BinaryOp::Multiply => a * b,
                _ => {
                    if b == 0.0 {
                        return Ok(Value::Null);
                    }
                    a / b
                }
            };
            Ok(Value::Float(r))
        }
        Expr::Function {
            name,
            args,
            distinct: false,
        } => {
            let fname = name.last().normalized();
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_scalar(a, ctx)?);
            }
            scalar_function(&fname, &vals)
        }
        other => Err(ExecError::Unsupported(format!(
            "scalar expression {other:?}"
        ))),
    }
}

/// Built-in scalar functions: the numeric/string helpers that show up in
/// logged SkyServer queries (`abs`, `floor`, `ceiling`, `sqrt`, `power`,
/// `round`, `str`, `upper`, `lower`, `len`).
fn scalar_function(name: &str, args: &[Value]) -> Result<Value, ExecError> {
    let num = |v: &Value| -> Option<f64> {
        match v {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    };
    let unary_num = |f: fn(f64) -> f64| -> Result<Value, ExecError> {
        match args {
            [v] => Ok(num(v).map_or(Value::Null, |x| Value::Float(f(x)))),
            _ => Err(ExecError::Unsupported(format!("{name} takes one argument"))),
        }
    };
    match name {
        "abs" => match args {
            [Value::Int(i)] => Ok(Value::Int(i.abs())),
            [v] => Ok(num(v).map_or(Value::Null, |x| Value::Float(x.abs()))),
            _ => Err(ExecError::Unsupported("abs takes one argument".into())),
        },
        "floor" => unary_num(f64::floor),
        "ceiling" | "ceil" => unary_num(f64::ceil),
        "sqrt" => unary_num(f64::sqrt),
        "round" => match args {
            [v] => Ok(num(v).map_or(Value::Null, |x| Value::Float(x.round()))),
            [v, d] => {
                let (Some(x), Some(d)) = (num(v), num(d)) else {
                    return Ok(Value::Null);
                };
                let m = 10f64.powi(d as i32);
                Ok(Value::Float((x * m).round() / m))
            }
            _ => Err(ExecError::Unsupported("round takes 1–2 arguments".into())),
        },
        "power" => match args {
            [a, b] => match (num(a), num(b)) {
                (Some(x), Some(y)) => Ok(Value::Float(x.powf(y))),
                _ => Ok(Value::Null),
            },
            _ => Err(ExecError::Unsupported("power takes two arguments".into())),
        },
        // SQL Server's `str(float [, length [, decimals]])`.
        "str" => match args {
            [] => Err(ExecError::Unsupported("str takes 1–3 arguments".into())),
            [v, rest @ ..] if rest.len() <= 2 => {
                let Some(x) = num(v) else {
                    return Ok(Value::Null);
                };
                let decimals = rest.get(1).and_then(num).unwrap_or(0.0) as usize;
                Ok(Value::Str(format!("{x:.decimals$}")))
            }
            _ => Err(ExecError::Unsupported("str takes 1–3 arguments".into())),
        },
        "upper" => match args {
            [Value::Str(s)] => Ok(Value::Str(s.to_uppercase())),
            [Value::Null] => Ok(Value::Null),
            _ => Err(ExecError::Unsupported("upper takes one string".into())),
        },
        "lower" => match args {
            [Value::Str(s)] => Ok(Value::Str(s.to_lowercase())),
            [Value::Null] => Ok(Value::Null),
            _ => Err(ExecError::Unsupported("lower takes one string".into())),
        },
        "len" | "length" => match args {
            [Value::Str(s)] => Ok(Value::Int(s.chars().count() as i64)),
            [Value::Null] => Ok(Value::Null),
            _ => Err(ExecError::Unsupported("len takes one string".into())),
        },
        other => Err(ExecError::Unsupported(format!("function {other}"))),
    }
}

/// Crate-internal re-export of scalar evaluation for the aggregate module.
pub(crate) fn eval_scalar_pub(expr: &Expr, ctx: &RowCtxView<'_, '_>) -> Result<Value, ExecError> {
    eval_scalar(expr, ctx)
}

/// Crate-internal re-export of predicate evaluation for the Volcano filter.
pub(crate) fn eval_pred_pub(
    expr: &Expr,
    ctx: &RowCtxView<'_, '_>,
) -> Result<Option<bool>, ExecError> {
    eval_pred(expr, ctx)
}

/// SQL LIKE with `%` and `_`.
fn like_match(text: &str, pattern: &str) -> bool {
    fn rec(t: &[u8], p: &[u8]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some(b'%') => (0..=t.len()).any(|k| rec(&t[k..], &p[1..])),
            Some(b'_') => !t.is_empty() && rec(&t[1..], &p[1..]),
            Some(&c) => !t.is_empty() && t[0].eq_ignore_ascii_case(&c) && rec(&t[1..], &p[1..]),
        }
    }
    rec(text.as_bytes(), pattern.as_bytes())
}

/// Three-valued predicate evaluation (`None` = unknown).
fn eval_pred(expr: &Expr, ctx: &RowCtxView<'_, '_>) -> Result<Option<bool>, ExecError> {
    match expr {
        Expr::Binary {
            left,
            op: BinaryOp::And,
            right,
        } => {
            let (a, b) = (eval_pred(left, ctx)?, eval_pred(right, ctx)?);
            Ok(match (a, b) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            })
        }
        Expr::Binary {
            left,
            op: BinaryOp::Or,
            right,
        } => {
            let (a, b) = (eval_pred(left, ctx)?, eval_pred(right, ctx)?);
            Ok(match (a, b) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            })
        }
        Expr::Unary {
            op: UnaryOp::Not,
            expr,
        } => Ok(eval_pred(expr, ctx)?.map(|b| !b)),
        Expr::Binary { left, op, right } if op.is_comparison() => {
            let (a, b) = (eval_scalar(left, ctx)?, eval_scalar(right, ctx)?);
            let Some(ord) = a.compare(&b) else {
                return Ok(None);
            };
            Ok(Some(match op {
                BinaryOp::Eq => ord.is_eq(),
                BinaryOp::NotEq => !ord.is_eq(),
                BinaryOp::Lt => ord.is_lt(),
                BinaryOp::LtEq => ord.is_le(),
                BinaryOp::Gt => ord.is_gt(),
                BinaryOp::GtEq => ord.is_ge(),
                _ => unreachable!(),
            }))
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval_scalar(expr, ctx)?;
            let (lo, hi) = (eval_scalar(low, ctx)?, eval_scalar(high, ctx)?);
            let (Some(a), Some(b)) = (v.compare(&lo), v.compare(&hi)) else {
                return Ok(None);
            };
            let inside = a.is_ge() && b.is_le();
            Ok(Some(inside != *negated))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval_scalar(expr, ctx)?;
            if v.is_null() {
                return Ok(None);
            }
            let mut saw_null = false;
            for item in list {
                let w = eval_scalar(item, ctx)?;
                if w.is_null() {
                    saw_null = true;
                } else if v.sql_eq(&w) {
                    return Ok(Some(!*negated));
                }
            }
            if saw_null {
                Ok(None)
            } else {
                Ok(Some(*negated))
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval_scalar(expr, ctx)?;
            Ok(Some(v.is_null() != *negated))
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let (v, p) = (eval_scalar(expr, ctx)?, eval_scalar(pattern, ctx)?);
            match (v, p) {
                (Value::Str(t), Value::Str(p)) => Ok(Some(like_match(&t, &p) != *negated)),
                (Value::Null, _) | (_, Value::Null) => Ok(None),
                _ => Ok(Some(*negated)),
            }
        }
        Expr::Nested(inner) => eval_pred(inner, ctx),
        other => Err(ExecError::Unsupported(format!("predicate {other:?}"))),
    }
}

/// Index probe extracted from a WHERE clause: an equality or IN on a column.
struct Probe {
    binding: String,
    column: String,
    values: Vec<Value>,
}

/// Range probe: integer bounds on a range-indexed column.
struct RangeProbe {
    binding: String,
    column: String,
    lo: Option<i64>,
    hi: Option<i64>,
}

/// Either kind of index access plan.
enum ProbePlan {
    Point(Probe),
    Range(RangeProbe),
}

/// Finds integer bounds on a range-indexed column among the conjuncts
/// (`h >= a AND h <= b`, `h BETWEEN a AND b`, one-sided comparisons).
fn find_range_probe(selection: &Expr, sources: &[Source<'_>]) -> Option<RangeProbe> {
    fn int_lit(e: &Expr) -> Option<i64> {
        match e {
            Expr::Literal(Literal::Number(n)) => n.parse().ok(),
            Expr::Nested(inner) => int_lit(inner),
            _ => None,
        }
    }
    // (source index, column) → bounds, merged across conjuncts.
    let mut bounds: HashMap<(usize, String), (Option<i64>, Option<i64>)> = HashMap::new();
    let resolve = |name: &ObjectName| -> Option<(usize, String)> {
        let col = name.last().normalized();
        let qualifier = name.qualifier().last().map(|q| q.normalized());
        sources
            .iter()
            .position(|s| {
                qualifier
                    .as_deref()
                    .is_none_or(|q| s.binding.eq_ignore_ascii_case(q) || s.table.name == q)
                    && s.table.range_indexes.contains_key(&col)
            })
            .map(|si| (si, col))
    };
    let mut tighten = |key: (usize, String), lo: Option<i64>, hi: Option<i64>| {
        let e = bounds.entry(key).or_insert((None, None));
        if let Some(lo) = lo {
            e.0 = Some(e.0.map_or(lo, |old: i64| old.max(lo)));
        }
        if let Some(hi) = hi {
            e.1 = Some(e.1.map_or(hi, |old: i64| old.min(hi)));
        }
    };
    for conj in selection.conjuncts() {
        match conj {
            Expr::Binary { left, op, right } if op.is_comparison() => {
                // Normalize to column-on-the-left.
                let (col, v, op) = match (left.as_ref(), right.as_ref()) {
                    (Expr::Column(c), e) => match int_lit(e) {
                        Some(v) => (c, v, *op),
                        None => continue,
                    },
                    (e, Expr::Column(c)) => match int_lit(e) {
                        Some(v) => (
                            c,
                            v,
                            match op {
                                BinaryOp::Lt => BinaryOp::Gt,
                                BinaryOp::LtEq => BinaryOp::GtEq,
                                BinaryOp::Gt => BinaryOp::Lt,
                                BinaryOp::GtEq => BinaryOp::LtEq,
                                other => *other,
                            },
                        ),
                        None => continue,
                    },
                    _ => continue,
                };
                let Some(key) = resolve(col) else { continue };
                match op {
                    BinaryOp::GtEq => tighten(key, Some(v), None),
                    BinaryOp::Gt => tighten(key, Some(v.saturating_add(1)), None),
                    BinaryOp::LtEq => tighten(key, None, Some(v)),
                    BinaryOp::Lt => tighten(key, None, Some(v.saturating_sub(1))),
                    _ => {}
                }
            }
            Expr::Between {
                expr,
                low,
                high,
                negated: false,
            } => {
                let Expr::Column(c) = expr.as_ref() else {
                    continue;
                };
                let (Some(lo), Some(hi)) = (int_lit(low), int_lit(high)) else {
                    continue;
                };
                let Some(key) = resolve(c) else { continue };
                tighten(key, Some(lo), Some(hi));
            }
            _ => {}
        }
    }
    // Prefer the tightest two-sided range; any bounded column qualifies.
    type Bounds = (Option<i64>, Option<i64>);
    let mut best: Option<((usize, String), Bounds)> = None;
    for (key, b) in bounds {
        let score = usize::from(b.0.is_some()) + usize::from(b.1.is_some());
        let best_score = best.as_ref().map_or(0, |(_, b)| {
            usize::from(b.0.is_some()) + usize::from(b.1.is_some())
        });
        if score > best_score {
            best = Some((key, b));
        }
    }
    best.map(|((si, column), (lo, hi))| RangeProbe {
        binding: sources[si].binding.clone(),
        column,
        lo,
        hi,
    })
}

/// Finds an indexable conjunct for any of the sources.
fn find_probe(selection: &Expr, sources: &[Source<'_>]) -> Option<Probe> {
    for conj in selection.conjuncts() {
        let (name, values) = match conj {
            Expr::Binary {
                left,
                op: BinaryOp::Eq,
                right,
            } => match (left.as_ref(), right.as_ref()) {
                (Expr::Column(c), Expr::Literal(l)) | (Expr::Literal(l), Expr::Column(c)) => {
                    (c, vec![literal_value(l)])
                }
                _ => continue,
            },
            Expr::InList {
                expr,
                list,
                negated: false,
            } => match expr.as_ref() {
                Expr::Column(c) if list.iter().all(|e| matches!(e, Expr::Literal(_))) => (
                    c,
                    list.iter()
                        .map(|e| match e {
                            Expr::Literal(l) => literal_value(l),
                            _ => unreachable!(),
                        })
                        .collect(),
                ),
                _ => continue,
            },
            _ => continue,
        };
        let col = name.last().normalized();
        let qualifier = name.qualifier().last().map(|q| q.normalized());
        for s in sources {
            let matches_binding = qualifier
                .as_deref()
                .is_none_or(|q| s.binding.eq_ignore_ascii_case(q) || s.table.name == q);
            if matches_binding && s.table.indexes.contains_key(&col) {
                return Some(Probe {
                    binding: s.binding.clone(),
                    column: col,
                    values,
                });
            }
        }
    }
    None
}

/// Executes a query against a set of tables through the cost-based planner
/// and the Volcano executor (see [`crate::plan`] and [`crate::ops`]). Table
/// statistics are computed on the fly; callers that execute repeatedly
/// against the same tables should go through [`crate::MiniDb`], which caches
/// them.
pub fn execute(query: &Query, tables: &HashMap<String, Table>) -> Result<ExecResult, ExecError> {
    crate::ops::execute_planned(query, tables).map(|p| p.result)
}

/// Executes a query with the retained naive reference executor: one pass,
/// first-indexable-conjunct access choice, no planner. This is the
/// differential-testing baseline the Volcano executor is checked against —
/// both paths share the projection/aggregation/ordering tails, so result
/// rows must match bit-for-bit.
pub fn execute_naive(
    query: &Query,
    tables: &HashMap<String, Table>,
) -> Result<ExecResult, ExecError> {
    if !query.is_simple() {
        return Err(ExecError::Unsupported("set operations".into()));
    }
    let body = &query.body;

    // Materialize derived tables (inner queries run first, recursively).
    let mut arena: Vec<Table> = Vec::new();
    for t in &body.from {
        collect_derived(t, tables, &mut arena)?;
    }

    // Bind the FROM clause.
    let mut sources: Vec<Source<'_>> = Vec::new();
    let mut join_on: Vec<Expr> = Vec::new();
    let mut derived_cursor = 0usize;
    for t in &body.from {
        bind_table_ref(
            t,
            tables,
            &arena,
            &mut derived_cursor,
            &mut sources,
            &mut join_on,
        )?;
    }

    // Constant-only query (`SELECT 1`).
    if sources.is_empty() {
        return constant_result(body);
    }
    if sources.len() > 2 {
        return Err(ExecError::Unsupported(">2-way joins".into()));
    }

    // Combined predicate: WHERE plus any JOIN ... ON conditions.
    let mut predicate = body.selection.clone();
    for on in join_on {
        predicate = Some(match predicate {
            Some(p) => Expr::and(p, on),
            None => on,
        });
    }

    // Candidate rows via an index probe: point (hash) first, else range
    // (ordered) — the access paths behind the §6.3 cost asymmetry.
    let plan = predicate.as_ref().and_then(|p| {
        find_probe(p, &sources)
            .map(ProbePlan::Point)
            .or_else(|| find_range_probe(p, &sources).map(ProbePlan::Range))
    });
    let mut scanned = 0usize;
    let used_index;

    // Enumerate candidate row combinations.
    #[allow(unused_mut)]
    let mut matches: Vec<Vec<usize>> = Vec::new();
    let enumerate_rows = |s: &Source<'_>, plan: &Option<ProbePlan>| -> (Vec<usize>, bool) {
        match plan {
            Some(ProbePlan::Point(p)) if p.binding == s.binding => {
                let mut rows = Vec::new();
                for v in &p.values {
                    if let Some(ids) = s.table.index_lookup(&p.column, v) {
                        rows.extend(ids.iter().map(|&r| r as usize));
                    }
                }
                rows.sort_unstable();
                rows.dedup();
                (rows, true)
            }
            Some(ProbePlan::Range(p)) if p.binding == s.binding => {
                match s.table.range_lookup(&p.column, p.lo, p.hi) {
                    Some(rows) => (rows.into_iter().map(|r| r as usize).collect(), true),
                    None => ((0..s.table.rows()).collect(), false),
                }
            }
            _ => ((0..s.table.rows()).collect(), false),
        }
    };

    match sources.len() {
        1 => {
            let (rows, via_index) = enumerate_rows(&sources[0], &plan);
            used_index = via_index;
            scanned += rows.len();
            for r in rows {
                let ctx = RowCtxView {
                    sources: &sources,
                    rows: &[r],
                };
                let keep = match &predicate {
                    Some(p) => eval_pred(p, &ctx)? == Some(true),
                    None => true,
                };
                if keep {
                    matches.push(vec![r]);
                }
            }
        }
        _ => {
            // Two-way nested-loop join with index probing on either side.
            let (left_rows, left_idx) = enumerate_rows(&sources[0], &plan);
            used_index = left_idx;
            // Try to accelerate the inner side with an equi-join index:
            // find `a.col = b.col` in the predicate.
            let join_cols = predicate
                .as_ref()
                .map(|p| find_equi_join(p, &sources))
                .unwrap_or_default();
            for lr in left_rows {
                scanned += 1;
                let inner: Vec<usize> = if let Some((lcol, rcol)) = &join_cols {
                    let lval = sources[0]
                        .table
                        .column(lcol)
                        .map(|c| c.data.get(lr))
                        .unwrap_or(Value::Null);
                    match sources[1].table.index_lookup(rcol, &lval) {
                        Some(ids) => ids.iter().map(|&r| r as usize).collect(),
                        None => (0..sources[1].table.rows()).collect(),
                    }
                } else {
                    (0..sources[1].table.rows()).collect()
                };
                for rr in inner {
                    scanned += 1;
                    let ctx = RowCtxView {
                        sources: &sources,
                        rows: &[lr, rr],
                    };
                    let keep = match &predicate {
                        Some(p) => eval_pred(p, &ctx)? == Some(true),
                        None => true,
                    };
                    if keep {
                        matches.push(vec![lr, rr]);
                    }
                }
            }
        }
    }

    finish_rows(query, &sources, matches, scanned, used_index).map(|(r, _)| r)
}

/// Evaluates a FROM-less projection (`SELECT 1`). Shared by both executors.
pub(crate) fn constant_result(body: &Select) -> Result<ExecResult, ExecError> {
    let ctx = RowCtxView {
        sources: &[],
        rows: &[],
    };
    let mut row = Vec::new();
    let mut names = Vec::new();
    for item in &body.projection {
        match item {
            SelectItem::Expr { expr, alias } => {
                row.push(eval_scalar(expr, &ctx)?);
                names.push(
                    alias
                        .as_ref()
                        .map_or_else(|| expr.to_string(), |a| a.value.clone()),
                );
            }
            _ => return Err(ExecError::Unsupported("wildcard without FROM".into())),
        }
    }
    Ok(ExecResult {
        columns: names,
        rows: vec![row],
        scanned_rows: 0,
        used_index: false,
    })
}

/// Row counts through the result tail, for operator-level reporting:
/// `matches → (sort) → project/aggregate → distinct → limit`.
pub(crate) struct TailCounts {
    /// Rows after projection (or surviving groups), before DISTINCT.
    pub(crate) pre_distinct: usize,
    /// Rows after DISTINCT, before TOP/LIMIT.
    pub(crate) pre_limit: usize,
}

/// The shared result tail: ORDER BY over matched source rows, then the
/// grouped or scalar projection, DISTINCT and TOP/LIMIT. Both the naive
/// reference executor and the Volcano executor end here, which is what
/// makes their result rows comparable bit-for-bit.
pub(crate) fn finish_rows(
    query: &Query,
    sources: &[Source<'_>],
    mut matches: Vec<Vec<usize>>,
    scanned: usize,
    used_index: bool,
) -> Result<(ExecResult, TailCounts), ExecError> {
    let body = &query.body;

    // ORDER BY: sort the matched source rows, so non-projected columns are
    // valid sort keys. Projection aliases are resolved to their expressions
    // (`SELECT u - g AS ug ... ORDER BY ug`).
    if !query.order_by.is_empty() {
        let alias_of = |name: &ObjectName| -> Option<&Expr> {
            if !name.qualifier().is_empty() {
                return None;
            }
            body.projection.iter().find_map(|item| match item {
                SelectItem::Expr {
                    expr,
                    alias: Some(a),
                } if a == name.last() => Some(expr),
                _ => None,
            })
        };
        let sort_exprs: Vec<&Expr> = query
            .order_by
            .iter()
            .map(|item| match &item.expr {
                Expr::Column(name) => alias_of(name).unwrap_or(&item.expr),
                other => other,
            })
            .collect();
        let mut keyed: Vec<(Vec<Value>, Vec<usize>)> = Vec::with_capacity(matches.len());
        for m in matches {
            let ctx = RowCtxView { sources, rows: &m };
            let mut keys = Vec::with_capacity(sort_exprs.len());
            for expr in &sort_exprs {
                keys.push(eval_scalar(expr, &ctx)?);
            }
            keyed.push((keys, m));
        }
        let dirs: Vec<bool> = query
            .order_by
            .iter()
            .map(|o| o.asc.unwrap_or(true))
            .collect();
        keyed.sort_by(|a, b| {
            for (i, &asc) in dirs.iter().enumerate() {
                let ord = a.0[i].compare(&b.0[i]).unwrap_or(std::cmp::Ordering::Equal);
                let ord = if asc { ord } else { ord.reverse() };
                if !ord.is_eq() {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        matches = keyed.into_iter().map(|(_, m)| m).collect();
    }

    // Grouped / aggregate path (GROUP BY, HAVING, or aggregate projection).
    if !body.group_by.is_empty()
        || body.having.is_some()
        || crate::aggregate::projection_has_aggregate(&body.projection)
    {
        return execute_grouped(query, sources, &matches, scanned, used_index);
    }

    // Projection.
    let mut columns: Vec<String> = Vec::new();
    let mut projected: Vec<Vec<Value>> = Vec::with_capacity(matches.len());
    for (mi, m) in matches.iter().enumerate() {
        let ctx = RowCtxView { sources, rows: m };
        let mut row = Vec::new();
        for item in &body.projection {
            match item {
                SelectItem::Wildcard => {
                    for (si, s) in sources.iter().enumerate() {
                        for c in &s.table.columns {
                            if mi == 0 {
                                columns.push(c.name.clone());
                            }
                            row.push(c.data.get(m[si]));
                        }
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let binding = q.last().normalized();
                    let Some((si, s)) = sources.iter().enumerate().find(|(_, s)| {
                        s.binding.eq_ignore_ascii_case(&binding) || s.table.name == binding
                    }) else {
                        return Err(ExecError::UnknownTable(binding));
                    };
                    for c in &s.table.columns {
                        if mi == 0 {
                            columns.push(c.name.clone());
                        }
                        row.push(c.data.get(m[si]));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    if mi == 0 {
                        columns.push(
                            alias
                                .as_ref()
                                .map_or_else(|| expr.to_string(), |a| a.value.clone()),
                        );
                    }
                    row.push(eval_scalar(expr, &ctx)?);
                }
            }
        }
        projected.push(row);
    }
    if matches.is_empty() {
        // Still produce column names for an empty result.
        for item in &body.projection {
            match item {
                SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {
                    for s in sources {
                        for c in &s.table.columns {
                            columns.push(c.name.clone());
                        }
                    }
                }
                SelectItem::Expr { expr, alias } => columns.push(
                    alias
                        .as_ref()
                        .map_or_else(|| expr.to_string(), |a| a.value.clone()),
                ),
            }
        }
    }

    // DISTINCT: drop later duplicates, keeping (sorted) order.
    let pre_distinct = projected.len();
    if body.distinct {
        dedup_rows(&mut projected);
    }
    let pre_limit = projected.len();

    // TOP / LIMIT.
    let limit = body
        .top
        .as_ref()
        .or(query.limit.as_ref())
        .and_then(|e| match e {
            Expr::Literal(Literal::Number(n)) => n.parse::<usize>().ok(),
            Expr::Nested(inner) => match inner.as_ref() {
                Expr::Literal(Literal::Number(n)) => n.parse::<usize>().ok(),
                _ => None,
            },
            _ => None,
        });
    if let Some(n) = limit {
        projected.truncate(n);
    }

    Ok((
        ExecResult {
            columns,
            rows: projected,
            scanned_rows: scanned,
            used_index,
        },
        TailCounts {
            pre_distinct,
            pre_limit,
        },
    ))
}

/// Finds an `a.col = b.col` equi-join conjunct where `b`'s column is indexed.
fn find_equi_join(predicate: &Expr, sources: &[Source<'_>]) -> Option<(String, String)> {
    if sources.len() != 2 {
        return None;
    }
    for conj in predicate.conjuncts() {
        if let Expr::Binary {
            left,
            op: BinaryOp::Eq,
            right,
        } = conj
        {
            if let (Expr::Column(a), Expr::Column(b)) = (left.as_ref(), right.as_ref()) {
                let (ca, cb) = (a.last().normalized(), b.last().normalized());
                // Either orientation; want (left source column, right source column).
                let qa = a.qualifier().last().map(|q| q.normalized());
                let qb = b.qualifier().last().map(|q| q.normalized());
                let is_left = |q: &Option<String>| {
                    q.as_deref().is_none_or(|q| {
                        sources[0].binding.eq_ignore_ascii_case(q) || sources[0].table.name == q
                    })
                };
                let is_right = |q: &Option<String>| {
                    q.as_deref().is_some_and(|q| {
                        sources[1].binding.eq_ignore_ascii_case(q) || sources[1].table.name == q
                    })
                };
                if is_left(&qa) && is_right(&qb) && sources[1].table.indexes.contains_key(&cb) {
                    return Some((ca, cb));
                }
                if is_left(&qb) && is_right(&qa) && sources[1].table.indexes.contains_key(&ca) {
                    return Some((cb, ca));
                }
            }
        }
    }
    None
}

pub(crate) fn bind_table_ref<'a>(
    t: &TableRef,
    tables: &'a HashMap<String, Table>,
    arena: &'a [Table],
    derived_cursor: &mut usize,
    sources: &mut Vec<Source<'a>>,
    join_on: &mut Vec<Expr>,
) -> Result<(), ExecError> {
    match t {
        TableRef::Table { name, alias } => {
            let tname = name.last().normalized();
            let table = tables
                .get(&tname)
                .ok_or_else(|| ExecError::UnknownTable(tname.clone()))?;
            sources.push(Source {
                binding: alias
                    .as_ref()
                    .map_or_else(|| tname.clone(), |a| a.normalized()),
                table,
            });
            Ok(())
        }
        TableRef::Join {
            left,
            right,
            kind: JoinKind::Inner,
            constraint,
        } => {
            bind_table_ref(left, tables, arena, derived_cursor, sources, join_on)?;
            bind_table_ref(right, tables, arena, derived_cursor, sources, join_on)?;
            if let Some(on) = constraint {
                join_on.push(on.clone());
            }
            Ok(())
        }
        TableRef::Join { .. } => Err(ExecError::Unsupported("non-inner join".into())),
        TableRef::Function { name, .. } => Err(ExecError::Unsupported(format!(
            "table-valued function {name}"
        ))),
        TableRef::Derived { alias, .. } => {
            // Materialized earlier by `collect_derived`, in traversal order.
            let table = arena
                .get(*derived_cursor)
                .expect("derived table materialized");
            *derived_cursor += 1;
            sources.push(Source {
                binding: alias
                    .as_ref()
                    .map_or_else(|| table.name.clone(), |a| a.normalized()),
                table,
            });
            Ok(())
        }
    }
}

/// Removes duplicate rows, keeping first occurrences (SQL `DISTINCT`;
/// NULLs compare equal for this purpose, as in SQL's grouping semantics).
fn dedup_rows(rows: &mut Vec<Vec<Value>>) {
    let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
    rows.retain(|row| {
        use std::fmt::Write as _;
        let mut key = String::new();
        for v in row {
            let _ = write!(key, "{v:?}\u{1f}");
        }
        seen.insert(key)
    });
}

/// Depth-first materialization of derived tables, in the same traversal
/// order `bind_table_ref` uses.
fn collect_derived(
    t: &TableRef,
    tables: &HashMap<String, Table>,
    arena: &mut Vec<Table>,
) -> Result<(), ExecError> {
    match t {
        TableRef::Derived { subquery, alias } => {
            let result = execute_naive(subquery, tables)?;
            let name = alias
                .as_ref()
                .map_or_else(|| format!("derived{}", arena.len()), |a| a.normalized());
            arena.push(materialize(&name, &result));
            Ok(())
        }
        TableRef::Join { left, right, .. } => {
            collect_derived(left, tables, arena)?;
            collect_derived(right, tables, arena)
        }
        _ => Ok(()),
    }
}

/// Turns an execution result into an in-memory table. Column types are
/// inferred from the first non-NULL value of each column.
pub(crate) fn materialize(name: &str, result: &ExecResult) -> Table {
    let mut table = Table::new(name);
    for (ci, col_name) in result.columns.iter().enumerate() {
        let first = result.rows.iter().map(|r| &r[ci]).find(|v| !v.is_null());
        let data = match first {
            Some(Value::Int(_)) | None => crate::table::ColumnData::Int(
                result
                    .rows
                    .iter()
                    .map(|r| match &r[ci] {
                        Value::Int(i) => Some(*i),
                        _ => None,
                    })
                    .collect(),
            ),
            Some(Value::Float(_)) => crate::table::ColumnData::Float(
                result
                    .rows
                    .iter()
                    .map(|r| match &r[ci] {
                        Value::Float(f) => Some(*f),
                        Value::Int(i) => Some(*i as f64),
                        _ => None,
                    })
                    .collect(),
            ),
            _ => crate::table::ColumnData::Str(
                result
                    .rows
                    .iter()
                    .map(|r| match &r[ci] {
                        Value::Null => None,
                        v => Some(v.to_string()),
                    })
                    .collect(),
            ),
        };
        // Derived columns may repeat names (e.g. two unaliased expressions);
        // keep the first occurrence, which is the one unqualified resolution
        // would find anyway.
        if table.column(col_name).is_none() {
            table.add_column(col_name.clone(), data);
        }
    }
    table
}

/// Executes the grouped / aggregate path over the matched rows.
fn execute_grouped(
    query: &Query,
    sources: &[Source<'_>],
    matches: &[Vec<usize>],
    scanned: usize,
    used_index: bool,
) -> Result<(ExecResult, TailCounts), ExecError> {
    use crate::aggregate::{eval_group_pred, eval_group_scalar};
    let body = &query.body;

    // Per-match row contexts.
    let ctxs: Vec<RowCtxView<'_, '_>> = matches
        .iter()
        .map(|m| RowCtxView { sources, rows: m })
        .collect();

    // Partition into groups by the rendered GROUP BY key (empty GROUP BY →
    // one global group, present even with zero input rows, so that
    // `SELECT count(*) ...` over an empty match set yields a single 0 row).
    let mut order: Vec<String> = Vec::new();
    let mut groups: HashMap<String, Vec<&RowCtxView<'_, '_>>> = HashMap::new();
    if body.group_by.is_empty() {
        order.push(String::new());
        groups.insert(String::new(), ctxs.iter().collect());
    } else {
        for ctx in &ctxs {
            let mut key = String::new();
            for e in &body.group_by {
                use std::fmt::Write as _;
                let _ = write!(key, "{}\u{1f}", eval_scalar(e, ctx)?);
            }
            if !groups.contains_key(&key) {
                order.push(key.clone());
            }
            groups.entry(key).or_default().push(ctx);
        }
    }

    // Project each surviving group.
    let mut columns: Vec<String> = Vec::new();
    for item in &body.projection {
        match item {
            SelectItem::Expr { expr, alias } => columns.push(
                alias
                    .as_ref()
                    .map_or_else(|| expr.to_string(), |a| a.value.clone()),
            ),
            _ => {
                return Err(ExecError::Unsupported(
                    "wildcard projection in a grouped query".into(),
                ))
            }
        }
    }
    let mut rows: Vec<Vec<Value>> = Vec::with_capacity(order.len());
    let mut sort_keys: Vec<Vec<Value>> = Vec::new();
    for key in &order {
        let group = &groups[key];
        if let Some(h) = &body.having {
            if eval_group_pred(h, group)? != Some(true) {
                continue;
            }
        }
        let mut row = Vec::with_capacity(body.projection.len());
        for item in &body.projection {
            let SelectItem::Expr { expr, .. } = item else {
                unreachable!()
            };
            row.push(eval_group_scalar(expr, group)?);
        }
        if !query.order_by.is_empty() {
            let mut keys = Vec::with_capacity(query.order_by.len());
            for o in &query.order_by {
                keys.push(eval_group_scalar(&o.expr, group)?);
            }
            sort_keys.push(keys);
        }
        rows.push(row);
    }

    // ORDER BY over group-level keys.
    if !query.order_by.is_empty() {
        let dirs: Vec<bool> = query
            .order_by
            .iter()
            .map(|o| o.asc.unwrap_or(true))
            .collect();
        let mut keyed: Vec<(Vec<Value>, Vec<Value>)> = sort_keys.into_iter().zip(rows).collect();
        keyed.sort_by(|a, b| {
            for (i, &asc) in dirs.iter().enumerate() {
                let ord = a.0[i].compare(&b.0[i]).unwrap_or(std::cmp::Ordering::Equal);
                let ord = if asc { ord } else { ord.reverse() };
                if !ord.is_eq() {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        rows = keyed.into_iter().map(|(_, r)| r).collect();
    }

    // DISTINCT over the grouped output.
    let pre_distinct = rows.len();
    if body.distinct {
        dedup_rows(&mut rows);
    }
    let pre_limit = rows.len();

    // TOP / LIMIT.
    let limit = body
        .top
        .as_ref()
        .or(query.limit.as_ref())
        .and_then(|e| match e {
            Expr::Literal(Literal::Number(n)) => n.parse::<usize>().ok(),
            _ => None,
        });
    if let Some(n) = limit {
        rows.truncate(n);
    }

    Ok((
        ExecResult {
            columns,
            rows,
            scanned_rows: scanned,
            used_index,
        },
        TailCounts {
            pre_distinct,
            pre_limit,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::ColumnData;
    use sqlog_sql::parse_query;

    fn db() -> HashMap<String, Table> {
        let mut employee = Table::new("Employee");
        employee.add_column(
            "empid",
            ColumnData::Int(vec![Some(1), Some(2), Some(8), Some(9)]),
        );
        employee.add_column(
            "name",
            ColumnData::Str(vec![
                Some("ann".into()),
                Some("bob".into()),
                Some("joe".into()),
                None,
            ]),
        );
        employee.add_column(
            "salary",
            ColumnData::Float(vec![Some(10.0), Some(20.0), Some(30.0), None]),
        );
        employee.build_index("empid");

        let mut info = Table::new("EmployeeInfo");
        info.add_column("empid", ColumnData::Int(vec![Some(1), Some(8)]));
        info.add_column(
            "address",
            ColumnData::Str(vec![Some("x st".into()), Some("y st".into())]),
        );
        info.build_index("empid");

        let mut map = HashMap::new();
        map.insert("employee".to_string(), employee);
        map.insert("employeeinfo".to_string(), info);
        map
    }

    fn run(sql: &str) -> ExecResult {
        execute(&parse_query(sql).unwrap(), &db()).unwrap()
    }

    #[test]
    fn point_lookup_uses_index() {
        let r = run("SELECT name FROM Employee WHERE empId = 8");
        assert!(r.used_index);
        assert_eq!(r.scanned_rows, 1);
        assert_eq!(r.rows, vec![vec![Value::from("joe")]]);
    }

    #[test]
    fn in_list_uses_index() {
        let r = run("SELECT empId, name FROM Employee WHERE empId IN (8, 1)");
        assert!(r.used_index);
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.scanned_rows, 2);
    }

    #[test]
    fn full_scan_on_non_indexed_column() {
        let r = run("SELECT empId FROM Employee WHERE name = 'bob'");
        assert!(!r.used_index);
        assert_eq!(r.scanned_rows, 4);
        assert_eq!(r.rows, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn between_and_comparison() {
        let r = run("SELECT empId FROM Employee WHERE salary BETWEEN 15 AND 35");
        assert_eq!(r.rows.len(), 2);
        let r = run("SELECT empId FROM Employee WHERE salary > 25");
        assert_eq!(r.rows, vec![vec![Value::Int(8)]]);
    }

    #[test]
    fn null_semantics() {
        // NULL never compares equal; IS NULL finds it.
        let r = run("SELECT empId FROM Employee WHERE name = NULL");
        assert!(r.rows.is_empty());
        let r = run("SELECT empId FROM Employee WHERE name IS NULL");
        assert_eq!(r.rows, vec![vec![Value::Int(9)]]);
        let r = run("SELECT empId FROM Employee WHERE name IS NOT NULL");
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn like_matching() {
        let r = run("SELECT empId FROM Employee WHERE name LIKE 'b%'");
        assert_eq!(r.rows, vec![vec![Value::Int(2)]]);
        let r = run("SELECT empId FROM Employee WHERE name LIKE '_o_'");
        assert_eq!(r.rows.len(), 2); // bob, joe
        let r = run("SELECT empId FROM Employee WHERE name NOT LIKE '%o%'");
        assert_eq!(r.rows, vec![vec![Value::Int(1)]]);
    }

    #[test]
    fn count_star() {
        let r = run("SELECT count(*) FROM Employee WHERE salary >= 10");
        assert_eq!(r.rows, vec![vec![Value::Int(3)]]);
        assert_eq!(r.columns, vec!["count(*)"]);
        // Aliased aggregate names the output column.
        let r = run("SELECT count(*) AS n FROM Employee");
        assert_eq!(r.columns, vec!["n"]);
        assert_eq!(r.rows, vec![vec![Value::Int(4)]]);
        // Empty match set still yields one zero row.
        let r = run("SELECT count(*) FROM Employee WHERE empId = 999");
        assert_eq!(r.rows, vec![vec![Value::Int(0)]]);
    }

    #[test]
    fn group_by_with_aggregates() {
        // Two employees share empid? No — group by a derived bucket: use
        // salary presence. Group by name IS NULL-ness is unsupported; group
        // by empid parity via arithmetic is unsupported too, so group by a
        // plain column with duplicates: build on the info table instead.
        let r = run("SELECT empId, count(*) AS c FROM Employee GROUP BY empId ORDER BY empId");
        assert_eq!(r.rows.len(), 4);
        assert!(r.rows.iter().all(|row| row[1] == Value::Int(1)));
        assert_eq!(r.columns, vec!["empId", "c"]);
    }

    #[test]
    fn aggregate_functions() {
        let r = run("SELECT min(salary), max(salary), avg(salary), sum(salary) FROM Employee");
        assert_eq!(
            r.rows,
            vec![vec![
                Value::Float(10.0),
                Value::Float(30.0),
                Value::Float(20.0),
                Value::Float(60.0),
            ]]
        );
        // count(expr) skips NULLs; count(*) does not.
        let r = run("SELECT count(name), count(*) FROM Employee");
        assert_eq!(r.rows, vec![vec![Value::Int(3), Value::Int(4)]]);
    }

    #[test]
    fn having_filters_groups() {
        let r = run("SELECT empId, count(*) FROM Employee GROUP BY empId HAVING count(*) > 1");
        assert!(r.rows.is_empty());
        let r = run("SELECT empId, count(*) FROM Employee GROUP BY empId HAVING count(*) >= 1");
        assert_eq!(r.rows.len(), 4);
    }

    #[test]
    fn derived_table_with_group_by() {
        // The shape of the paper's introduction rewrite: join a base table
        // against a grouped derived table.
        let r = run(
            "SELECT E.name, O.c FROM Employee AS E INNER JOIN              (SELECT empId, count(*) AS c FROM EmployeeInfo GROUP BY empId) O              ON O.empId = E.empId WHERE E.empId = 8",
        );
        assert_eq!(r.rows, vec![vec![Value::from("joe"), Value::Int(1)]]);
    }

    #[test]
    fn plain_derived_table() {
        let r = run(
            "SELECT d.name FROM (SELECT name, empId FROM Employee WHERE salary > 15) AS d              WHERE d.empId = 8",
        );
        assert_eq!(r.rows, vec![vec![Value::from("joe")]]);
    }

    #[test]
    fn inner_join_with_on() {
        let r = run(
            "SELECT E.name, EI.address FROM Employee AS E INNER JOIN EmployeeInfo AS EI \
             ON E.empId = EI.empId WHERE E.empId = 8",
        );
        assert_eq!(r.rows, vec![vec![Value::from("joe"), Value::from("y st")]]);
    }

    #[test]
    fn order_by_and_top() {
        let r = run("SELECT TOP 2 empId FROM Employee ORDER BY empId DESC");
        assert_eq!(r.rows, vec![vec![Value::Int(9)], vec![Value::Int(8)]]);
        let r = run("SELECT empId FROM Employee ORDER BY salary ASC LIMIT 1");
        // NULL salary sorts as equal; ordering among NULLs unspecified but
        // limit applies.
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn distinct_removes_duplicate_rows() {
        let mut t = Table::new("d");
        t.add_column(
            "x",
            ColumnData::Int(vec![Some(1), Some(1), Some(2), None, None]),
        );
        let mut map = HashMap::new();
        map.insert("d".to_string(), t);
        let q = parse_query("SELECT DISTINCT x FROM d").unwrap();
        let r = execute(&q, &map).unwrap();
        assert_eq!(
            r.rows,
            vec![vec![Value::Int(1)], vec![Value::Int(2)], vec![Value::Null]]
        );
        // Without DISTINCT all five rows come back.
        let q = parse_query("SELECT x FROM d").unwrap();
        assert_eq!(execute(&q, &map).unwrap().rows.len(), 5);
    }

    #[test]
    fn wildcard_projection() {
        let r = run("SELECT * FROM Employee WHERE empId = 1");
        assert_eq!(r.columns, vec!["empid", "name", "salary"]);
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn constant_select() {
        let r = run("SELECT 1 + 2");
        assert_eq!(r.rows, vec![vec![Value::Float(3.0)]]);
    }

    #[test]
    fn range_probe_uses_the_ordered_index() {
        let mut t = Table::new("scan");
        t.add_column("h", ColumnData::Int((0..1_000).map(Some).collect()));
        t.add_column(
            "v",
            ColumnData::Int((0..1_000).map(|i| Some(i * 2)).collect()),
        );
        t.build_range_index("h");
        let mut map = HashMap::new();
        map.insert("scan".to_string(), t);

        let q = parse_query("SELECT v FROM scan WHERE h >= 100 AND h <= 109").unwrap();
        let r = execute(&q, &map).unwrap();
        assert!(r.used_index);
        assert_eq!(r.scanned_rows, 10);
        assert_eq!(r.rows.len(), 10);

        let q = parse_query("SELECT v FROM scan WHERE h BETWEEN 990 AND 2000").unwrap();
        let r = execute(&q, &map).unwrap();
        assert!(r.used_index);
        assert_eq!(r.rows.len(), 10);

        // Strict bounds narrow correctly.
        let q = parse_query("SELECT v FROM scan WHERE h > 997").unwrap();
        let r = execute(&q, &map).unwrap();
        assert!(r.used_index);
        assert_eq!(r.rows.len(), 2);

        // Without a range index the same query full-scans.
        let q = parse_query("SELECT h FROM scan WHERE v BETWEEN 0 AND 2").unwrap();
        let r = execute(&q, &map).unwrap();
        assert!(!r.used_index);
        assert_eq!(r.scanned_rows, 1_000);
    }

    #[test]
    fn scalar_functions() {
        let r = run("SELECT abs(0 - 2), floor(2.7), ceiling(2.1), sqrt(16)");
        assert_eq!(
            r.rows,
            vec![vec![
                Value::Float(2.0),
                Value::Float(2.0),
                Value::Float(3.0),
                Value::Float(4.0),
            ]]
        );
        let r = run("SELECT round(2.71828, 2), power(2, 10), str(2.5, 6, 1)");
        assert_eq!(
            r.rows,
            vec![vec![
                Value::Float(2.72),
                Value::Float(1024.0),
                Value::Str("2.5".into()),
            ]]
        );
        let r = run("SELECT upper(name), len(name) FROM Employee WHERE empId = 2");
        assert_eq!(r.rows, vec![vec![Value::from("BOB"), Value::Int(3)]]);
        // Unknown functions are honest errors.
        let q = parse_query("SELECT frobnicate(1) FROM Employee").unwrap();
        assert!(matches!(execute(&q, &db()), Err(ExecError::Unsupported(_))));
    }

    #[test]
    fn functions_in_predicates() {
        let r = run("SELECT empId FROM Employee WHERE abs(salary - 20) < 1");
        assert_eq!(r.rows, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn errors_are_reported() {
        let q = parse_query("SELECT a FROM nosuch").unwrap();
        assert!(matches!(
            execute(&q, &db()),
            Err(ExecError::UnknownTable(_))
        ));
        let q = parse_query("SELECT nosuch FROM Employee").unwrap();
        assert!(matches!(
            execute(&q, &db()),
            Err(ExecError::UnknownColumn(_))
        ));
        let q = parse_query("SELECT a FROM t1 UNION SELECT a FROM t2").unwrap();
        assert!(matches!(execute(&q, &db()), Err(ExecError::Unsupported(_))));
    }

    #[test]
    fn dw_rewrite_equals_union_of_originals() {
        // The semantic check behind the DW solver: the merged IN query
        // returns exactly the union of the original point queries.
        let a = run("SELECT empId, name FROM Employee WHERE empId = 8");
        let b = run("SELECT empId, name FROM Employee WHERE empId = 1");
        let merged = run("SELECT empId, name FROM Employee WHERE empId IN (8, 1)");
        assert_eq!(merged.rows.len(), a.rows.len() + b.rows.len());
        for row in a.rows.iter().chain(&b.rows) {
            assert!(merged.rows.contains(row));
        }
    }
}
