//! Grouped / aggregate execution: `GROUP BY`, `HAVING`, and the aggregate
//! functions `count`, `sum`, `avg`, `min`, `max`.
//!
//! This is the engine piece behind the paper's own rewrite target — the
//! introduction's merged query ends in
//! `(SELECT empId, count(orders) AS oCount FROM Orders GROUP BY empId)`.

use crate::exec::{ExecError, RowCtxView};
use crate::value::Value;
use sqlog_sql::ast::*;

/// True if the expression tree contains an aggregate function call.
pub fn contains_aggregate(e: &Expr) -> bool {
    let mut found = false;
    e.visit(&mut |node| {
        if let Expr::Function { name, .. } = node {
            if is_aggregate_name(&name.last().normalized()) {
                found = true;
            }
        }
    });
    found
}

/// True if any projection item uses an aggregate.
pub fn projection_has_aggregate(projection: &[SelectItem]) -> bool {
    projection.iter().any(|item| match item {
        SelectItem::Expr { expr, .. } => contains_aggregate(expr),
        _ => false,
    })
}

fn is_aggregate_name(name: &str) -> bool {
    matches!(name, "count" | "sum" | "avg" | "min" | "max")
}

/// Computes one aggregate call over the rows of a group.
fn eval_aggregate(
    name: &str,
    args: &[Expr],
    distinct: bool,
    group: &[&RowCtxView<'_, '_>],
) -> Result<Value, ExecError> {
    // Collect the argument values (None for `count(*)`).
    let arg = match args {
        [Expr::Wildcard] | [] => None,
        [e] => Some(e),
        _ => {
            return Err(ExecError::Unsupported(format!(
                "aggregate {name} with {} arguments",
                args.len()
            )))
        }
    };
    let mut values: Vec<Value> = Vec::with_capacity(group.len());
    for ctx in group {
        match arg {
            None => values.push(Value::Int(1)),
            Some(e) => values.push(crate::exec::eval_scalar_pub(e, ctx)?),
        }
    }
    if arg.is_some() {
        // SQL aggregates skip NULLs.
        values.retain(|v| !v.is_null());
    }
    if distinct {
        let mut seen: Vec<Value> = Vec::new();
        values.retain(|v| {
            if seen.iter().any(|s| s.sql_eq(v)) {
                false
            } else {
                seen.push(v.clone());
                true
            }
        });
    }
    let numeric = |v: &Value| -> Option<f64> {
        match v {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    };
    Ok(match name {
        "count" => Value::Int(values.len() as i64),
        "sum" => {
            let mut acc = 0.0;
            for v in &values {
                acc += numeric(v)
                    .ok_or_else(|| ExecError::Unsupported("SUM over non-numeric values".into()))?;
            }
            Value::Float(acc)
        }
        "avg" => {
            if values.is_empty() {
                Value::Null
            } else {
                let mut acc = 0.0;
                for v in &values {
                    acc += numeric(v).ok_or_else(|| {
                        ExecError::Unsupported("AVG over non-numeric values".into())
                    })?;
                }
                Value::Float(acc / values.len() as f64)
            }
        }
        "min" | "max" => {
            let mut best: Option<Value> = None;
            for v in values {
                best = Some(match best {
                    None => v,
                    Some(b) => match v.compare(&b) {
                        Some(std::cmp::Ordering::Less) if name == "min" => v,
                        Some(std::cmp::Ordering::Greater) if name == "max" => v,
                        _ => b,
                    },
                });
            }
            best.unwrap_or(Value::Null)
        }
        other => return Err(ExecError::Unsupported(format!("aggregate {other}"))),
    })
}

/// Evaluates an expression in group context: aggregate calls range over the
/// whole group; everything else is evaluated on the group's first row
/// (i.e. must be group-constant, which GROUP BY columns are).
pub fn eval_group_scalar(e: &Expr, group: &[&RowCtxView<'_, '_>]) -> Result<Value, ExecError> {
    match e {
        Expr::Function {
            name,
            args,
            distinct,
        } if is_aggregate_name(&name.last().normalized()) => {
            eval_aggregate(&name.last().normalized(), args, *distinct, group)
        }
        Expr::Binary { left, op, right }
            if matches!(
                op,
                BinaryOp::Plus | BinaryOp::Minus | BinaryOp::Multiply | BinaryOp::Divide
            ) =>
        {
            let (a, b) = (
                eval_group_scalar(left, group)?,
                eval_group_scalar(right, group)?,
            );
            let (x, y) = match (a, b) {
                (Value::Int(a), Value::Int(b)) => (a as f64, b as f64),
                (Value::Float(a), Value::Float(b)) => (a, b),
                (Value::Int(a), Value::Float(b)) => (a as f64, b),
                (Value::Float(a), Value::Int(b)) => (a, b as f64),
                _ => return Ok(Value::Null),
            };
            Ok(match op {
                BinaryOp::Plus => Value::Float(x + y),
                BinaryOp::Minus => Value::Float(x - y),
                BinaryOp::Multiply => Value::Float(x * y),
                _ => {
                    if y == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(x / y)
                    }
                }
            })
        }
        Expr::Nested(inner) => eval_group_scalar(inner, group),
        other => {
            let first = group
                .first()
                .ok_or_else(|| ExecError::Unsupported("empty group".into()))?;
            crate::exec::eval_scalar_pub(other, first)
        }
    }
}

/// Evaluates a HAVING predicate over a group (three-valued; `None` = drop).
pub fn eval_group_pred(e: &Expr, group: &[&RowCtxView<'_, '_>]) -> Result<Option<bool>, ExecError> {
    match e {
        Expr::Binary {
            left,
            op: BinaryOp::And,
            right,
        } => {
            let (a, b) = (
                eval_group_pred(left, group)?,
                eval_group_pred(right, group)?,
            );
            Ok(match (a, b) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            })
        }
        Expr::Binary {
            left,
            op: BinaryOp::Or,
            right,
        } => {
            let (a, b) = (
                eval_group_pred(left, group)?,
                eval_group_pred(right, group)?,
            );
            Ok(match (a, b) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            })
        }
        Expr::Unary {
            op: UnaryOp::Not,
            expr,
        } => Ok(eval_group_pred(expr, group)?.map(|b| !b)),
        Expr::Binary { left, op, right } if op.is_comparison() => {
            let (a, b) = (
                eval_group_scalar(left, group)?,
                eval_group_scalar(right, group)?,
            );
            let Some(ord) = a.compare(&b) else {
                return Ok(None);
            };
            Ok(Some(match op {
                BinaryOp::Eq => ord.is_eq(),
                BinaryOp::NotEq => !ord.is_eq(),
                BinaryOp::Lt => ord.is_lt(),
                BinaryOp::LtEq => ord.is_le(),
                BinaryOp::Gt => ord.is_gt(),
                BinaryOp::GtEq => ord.is_ge(),
                _ => unreachable!(),
            }))
        }
        Expr::Nested(inner) => eval_group_pred(inner, group),
        other => Err(ExecError::Unsupported(format!(
            "HAVING predicate {other:?}"
        ))),
    }
}
