//! Columnar in-memory tables with optional hash indexes.

use crate::value::Value;
use std::collections::{BTreeMap, HashMap};

/// Typed column storage.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// 64-bit integers with a null mask (None = NULL).
    Int(Vec<Option<i64>>),
    /// Floats with a null mask.
    Float(Vec<Option<f64>>),
    /// Strings with a null mask.
    Str(Vec<Option<String>>),
}

impl ColumnData {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at a row.
    pub fn get(&self, row: usize) -> Value {
        match self {
            ColumnData::Int(v) => v[row].map_or(Value::Null, Value::Int),
            ColumnData::Float(v) => v[row].map_or(Value::Null, Value::Float),
            ColumnData::Str(v) => v[row]
                .as_ref()
                .map_or(Value::Null, |s| Value::Str(s.clone())),
        }
    }
}

/// A named column.
#[derive(Debug, Clone)]
pub struct Column {
    /// Lower-cased name.
    pub name: String,
    /// The data.
    pub data: ColumnData,
}

/// Key type for hash indexes: integers index directly, strings by value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IndexKey {
    /// Integer key.
    Int(i64),
    /// String key.
    Str(String),
}

impl IndexKey {
    /// Builds an index key from a value (floats and NULLs are not indexable).
    pub fn of_value(v: &Value) -> Option<IndexKey> {
        match v {
            Value::Int(i) => Some(IndexKey::Int(*i)),
            Value::Str(s) => Some(IndexKey::Str(s.clone())),
            _ => None,
        }
    }
}

/// A table: columns plus optional per-column hash indexes.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Lower-cased table name.
    pub name: String,
    /// Columns.
    pub columns: Vec<Column>,
    /// Hash indexes: column name → key → row ids.
    pub indexes: HashMap<String, HashMap<IndexKey, Vec<u32>>>,
    /// Ordered (range) indexes over integer columns: column → value → rows.
    pub range_indexes: HashMap<String, BTreeMap<i64, Vec<u32>>>,
    /// Primary-key column, if declared (lower-cased). A primary key always
    /// has a hash index; the planner plans equality probes on it as
    /// `PkSeek` (≤ 1 row per key) rather than a generic `IndexSeek`.
    pub primary_key: Option<String>,
}

impl Table {
    /// An empty table.
    pub fn new(name: impl Into<String>) -> Self {
        Table {
            name: name.into().to_ascii_lowercase(),
            columns: Vec::new(),
            indexes: HashMap::new(),
            range_indexes: HashMap::new(),
            primary_key: None,
        }
    }

    /// Adds a column (all columns must have equal length).
    pub fn add_column(&mut self, name: impl Into<String>, data: ColumnData) {
        let name = name.into().to_ascii_lowercase();
        debug_assert!(
            self.columns.is_empty() || self.columns[0].data.len() == data.len(),
            "column length mismatch"
        );
        self.columns.push(Column { name, data });
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, |c| c.data.len())
    }

    /// Finds a column by (case-insensitive) name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Builds a hash index over a column.
    pub fn build_index(&mut self, column: &str) {
        let Some(col) = self.column(column) else {
            return;
        };
        let mut index: HashMap<IndexKey, Vec<u32>> = HashMap::new();
        for row in 0..col.data.len() {
            if let Some(key) = IndexKey::of_value(&col.data.get(row)) {
                index.entry(key).or_default().push(row as u32);
            }
        }
        self.indexes.insert(column.to_ascii_lowercase(), index);
    }

    /// Declares `column` the primary key and builds its hash index.
    pub fn build_pk(&mut self, column: &str) {
        self.build_index(column);
        if self.indexes.contains_key(&column.to_ascii_lowercase()) {
            self.primary_key = Some(column.to_ascii_lowercase());
        }
    }

    /// Builds an ordered index over an integer column, enabling range scans.
    pub fn build_range_index(&mut self, column: &str) {
        let Some(col) = self.column(column) else {
            return;
        };
        let ColumnData::Int(values) = &col.data else {
            return; // range indexes cover integer columns only
        };
        let mut index: BTreeMap<i64, Vec<u32>> = BTreeMap::new();
        for (row, v) in values.iter().enumerate() {
            if let Some(v) = v {
                index.entry(*v).or_default().push(row as u32);
            }
        }
        self.range_indexes
            .insert(column.to_ascii_lowercase(), index);
    }

    /// Rows whose indexed integer value lies in `[lo, hi]` (either bound
    /// optional), if a range index exists on the column.
    pub fn range_lookup(&self, column: &str, lo: Option<i64>, hi: Option<i64>) -> Option<Vec<u32>> {
        let index = self.range_indexes.get(&column.to_ascii_lowercase())?;
        use std::ops::Bound;
        let lower = lo.map_or(Bound::Unbounded, Bound::Included);
        let upper = hi.map_or(Bound::Unbounded, Bound::Included);
        let mut rows: Vec<u32> = index
            .range((lower, upper))
            .flat_map(|(_, r)| r.iter().copied())
            .collect();
        rows.sort_unstable();
        Some(rows)
    }

    /// Looks up rows by an indexed key, if an index exists.
    pub fn index_lookup(&self, column: &str, value: &Value) -> Option<&[u32]> {
        let index = self.indexes.get(&column.to_ascii_lowercase())?;
        let key = IndexKey::of_value(value)?;
        Some(index.get(&key).map_or(&[][..], Vec::as_slice))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("T");
        t.add_column("id", ColumnData::Int(vec![Some(1), Some(2), Some(2), None]));
        t.add_column(
            "name",
            ColumnData::Str(vec![
                Some("a".into()),
                Some("b".into()),
                Some("c".into()),
                None,
            ]),
        );
        t
    }

    #[test]
    fn rows_and_lookup() {
        let t = table();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.column("ID").unwrap().data.get(1), Value::Int(2));
        assert_eq!(t.column("name").unwrap().data.get(3), Value::Null);
    }

    #[test]
    fn index_lookup_finds_all_matches() {
        let mut t = table();
        t.build_index("id");
        assert_eq!(t.index_lookup("id", &Value::Int(2)).unwrap(), &[1, 2]);
        assert_eq!(
            t.index_lookup("id", &Value::Int(99)).unwrap(),
            &[] as &[u32]
        );
        // NULLs are not indexed.
        assert_eq!(t.index_lookup("id", &Value::Null), None);
        // No index on name.
        assert!(t.index_lookup("name", &Value::from("a")).is_none());
    }

    #[test]
    fn range_index_lookup() {
        let mut t = table();
        t.build_range_index("id");
        assert_eq!(t.range_lookup("id", Some(2), Some(9)).unwrap(), vec![1, 2]);
        assert_eq!(t.range_lookup("id", None, Some(1)).unwrap(), vec![0]);
        assert_eq!(
            t.range_lookup("id", Some(3), None).unwrap(),
            Vec::<u32>::new()
        );
        // No range index on strings.
        t.build_range_index("name");
        assert!(t.range_lookup("name", Some(0), None).is_none());
    }

    #[test]
    fn string_index() {
        let mut t = table();
        t.build_index("name");
        assert_eq!(t.index_lookup("name", &Value::from("b")).unwrap(), &[1]);
    }
}
