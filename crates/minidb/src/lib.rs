//! # sqlog-minidb — in-memory SQL engine with a round-trip cost model
//!
//! The substrate for the paper's §6.3 runtime experiment (re-running 10 222
//! stifle queries vs the 254 rewritten ones, 29× faster). The authors ran
//! against their SkyServer SQL Server; this crate substitutes a columnar
//! in-memory engine whose **cost model makes the per-statement round-trip
//! overhead explicit**, preserving the experiment's shape: per-statement
//! overhead dominates point queries, and the merged rewrites pay it once.
//!
//! ```
//! use sqlog_minidb::datagen::skyserver_db;
//!
//! let db = skyserver_db(1_000, 42);
//! let (result, cost_ms) = db.execute_sql(
//!     "SELECT count(*) FROM photoprimary WHERE type = 3").unwrap();
//! assert_eq!(result.rows.len(), 1);
//! assert!(cost_ms >= db.cost.per_statement_ms);
//! ```

#![warn(missing_docs)]

pub mod aggregate;
pub mod cost;
pub mod datagen;
pub mod engine;
pub mod exec;
pub mod ops;
pub mod plan;
pub mod stats;
pub mod table;
pub mod value;

pub use cost::CostModel;
pub use engine::MiniDb;
pub use exec::{execute, execute_naive, ExecError, ExecResult};
pub use ops::{execute_planned, OpStats, PlannedExec};
pub use plan::{plan_query, Access, PlanNode, QueryPlan};
pub use stats::{analyze, ColumnStats, TableStats};
pub use table::{Column, ColumnData, IndexKey, Table};
pub use value::Value;
