//! The Volcano-style executor: pull-based operators driven by a
//! [`QueryPlan`].
//!
//! Each operator exposes `next()` and counts the rows it scans and
//! produces; [`execute_planned_with_stats`] assembles the pipeline the plan
//! describes (scan → join → filter), drains it, and hands the matched rows
//! to the same projection/aggregation/ordering tail the naive reference
//! executor uses (`exec::finish_rows`). Sharing the tail is deliberate: the
//! two executors can differ in *how many rows they touch* (that is the
//! planner's whole point) but never in *which rows they return*, which is
//! what the differential tests pin.
//!
//! The per-operator counters come back as an [`OpStats`] tree mirroring the
//! plan shape. `OpStats::storage_scanned` sums the rows the scan leaves
//! actually examined — the quantity the cost model bills (a seek touching 3
//! rows of a million-row table is billed as 3, not 1 000 000).

use crate::exec::{
    bind_table_ref, constant_result, eval_pred_pub, materialize, row_ctx, ExecError, ExecResult,
    Source,
};
use crate::plan::{plan_query, Access, PlanNode, QueryPlan, ScanPlan};
use crate::stats::{analyze, TableStats};
use crate::table::Table;
use crate::value::Value;
use sqlog_obs::Json;
use sqlog_sql::ast::{Expr, Query, TableRef};
use std::collections::HashMap;

/// Per-operator execution counters, shaped like the plan tree.
#[derive(Debug, Clone, PartialEq)]
pub struct OpStats {
    /// Operator name (`SeqScan`, `IndexScan`, `Filter`, …).
    pub op: &'static str,
    /// Human-readable detail (table + access path, probe columns, …).
    pub detail: String,
    /// Rows this operator examined (for scans: storage rows enumerated).
    pub rows_scanned: u64,
    /// Rows this operator emitted upward.
    pub rows_produced: u64,
    /// Child operators.
    pub children: Vec<OpStats>,
}

impl OpStats {
    /// Total storage rows examined by the scan leaves — the operator-level
    /// scanned-row count the cost model consumes.
    pub fn storage_scanned(&self) -> u64 {
        let own = if matches!(self.op, "SeqScan" | "IndexScan") {
            self.rows_scanned
        } else {
            0
        };
        own + self
            .children
            .iter()
            .map(OpStats::storage_scanned)
            .sum::<u64>()
    }

    /// First operator with the given name, depth-first.
    pub fn find(&self, op: &str) -> Option<&OpStats> {
        if self.op == op {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(op))
    }

    /// Stable JSON form (one object per operator, children nested).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![("op", Json::Str(self.op.to_string()))];
        if !self.detail.is_empty() {
            pairs.push(("detail", Json::Str(self.detail.clone())));
        }
        pairs.push(("rows_scanned", Json::U64(self.rows_scanned)));
        pairs.push(("rows_produced", Json::U64(self.rows_produced)));
        if !self.children.is_empty() {
            pairs.push((
                "children",
                Json::Arr(self.children.iter().map(OpStats::to_json).collect()),
            ));
        }
        Json::obj(pairs)
    }

    /// Indented one-line-per-operator rendering for reports.
    pub fn render(&self) -> String {
        fn rec(s: &OpStats, depth: usize, out: &mut String) {
            let pad = "  ".repeat(depth);
            let detail = if s.detail.is_empty() {
                String::new()
            } else {
                format!(" {}", s.detail)
            };
            out.push_str(&format!(
                "{pad}{}{detail}  scanned={} produced={}\n",
                s.op, s.rows_scanned, s.rows_produced
            ));
            for c in &s.children {
                rec(c, depth + 1, out);
            }
        }
        let mut out = String::new();
        rec(self, 0, &mut out);
        out
    }
}

/// A planned execution: the byte-compatible result, the plan that produced
/// it, and the operator counters observed while running it.
#[derive(Debug, Clone)]
pub struct PlannedExec {
    /// The result, identical in shape to the naive executor's.
    pub result: ExecResult,
    /// The plan that was executed.
    pub plan: QueryPlan,
    /// Observed per-operator counters.
    pub ops: OpStats,
}

/// Plans and executes with freshly computed stats for every table. Use
/// [`execute_planned_with_stats`] (or [`crate::MiniDb`], which caches) when
/// executing repeatedly against the same tables.
pub fn execute_planned(
    query: &Query,
    tables: &HashMap<String, Table>,
) -> Result<PlannedExec, ExecError> {
    let stats: HashMap<String, TableStats> = tables
        .iter()
        .map(|(name, t)| (name.clone(), analyze(t)))
        .collect();
    execute_planned_with_stats(query, tables, &stats)
}

/// Plans and executes a query through the Volcano pipeline.
pub fn execute_planned_with_stats(
    query: &Query,
    tables: &HashMap<String, Table>,
    stats: &HashMap<String, TableStats>,
) -> Result<PlannedExec, ExecError> {
    let plan = plan_query(query, tables, stats)?;
    let body = &query.body;

    // Materialize derived tables (planned recursively, same traversal order
    // the binder uses).
    let mut arena: Vec<Table> = Vec::new();
    for t in &body.from {
        collect_derived_planned(t, tables, stats, &mut arena)?;
    }

    // Bind the FROM clause.
    let mut sources: Vec<Source<'_>> = Vec::new();
    let mut join_on: Vec<Expr> = Vec::new();
    let mut derived_cursor = 0usize;
    for t in &body.from {
        bind_table_ref(
            t,
            tables,
            &arena,
            &mut derived_cursor,
            &mut sources,
            &mut join_on,
        )?;
    }

    // Constant-only query.
    if sources.is_empty() {
        let result = constant_result(body)?;
        let ops = OpStats {
            op: "Project",
            detail: String::new(),
            rows_scanned: 1,
            rows_produced: result.rows.len() as u64,
            children: vec![OpStats {
                op: "Values",
                detail: String::new(),
                rows_scanned: 0,
                rows_produced: 1,
                children: Vec::new(),
            }],
        };
        return Ok(PlannedExec { result, plan, ops });
    }

    // Combined predicate, exactly as the naive executor builds it.
    let mut predicate = body.selection.clone();
    for on in join_on {
        predicate = Some(match predicate {
            Some(p) => Expr::and(p, on),
            None => on,
        });
    }

    // Assemble the pipeline from the plan's scan topology and drain it.
    let counters;
    let matches;
    let used_index;
    {
        let base = base_of(&plan.root);
        let input = match base {
            PlanNode::Scan(sp) => {
                used_index = sp.access.is_seek();
                BaseOp::Single(ScanOp::new(scan_candidates(sources[0].table, &sp.access)))
            }
            PlanNode::NestedLoopJoin {
                outer,
                inner,
                probe,
                ..
            } => {
                let (PlanNode::Scan(osp), PlanNode::Scan(isp)) = (outer.as_ref(), inner.as_ref())
                else {
                    return Err(ExecError::Unsupported("join of non-scans".into()));
                };
                used_index = osp.access.is_seek() || probe.is_some() || isp.access.is_seek();
                BaseOp::Join {
                    outer: ScanOp::new(scan_candidates(sources[0].table, &osp.access)),
                    outer_table: sources[0].table,
                    inner_table: sources[1].table,
                    probe: probe.as_ref(),
                    // With no equi-join probe the inner side re-enumerates
                    // its (fixed) best access path per outer row.
                    inner_base: if probe.is_none() {
                        Some(scan_candidates(sources[1].table, &isp.access))
                    } else {
                        None
                    },
                    cur_outer: 0,
                    inner: Vec::new().into_iter(),
                    inner_count: 0,
                    produced: 0,
                }
            }
            _ => return Err(ExecError::Unsupported("plan without a scan".into())),
        };
        let mut filter = FilterOp {
            input,
            predicate: predicate.as_ref(),
            sources: &sources,
            consumed: 0,
            produced: 0,
        };
        let mut out: Vec<Vec<usize>> = Vec::new();
        while let Some(m) = filter.next()? {
            out.push(m);
        }
        let (outer_scanned, inner_scanned, tuples) = match filter.input {
            BaseOp::Single(s) => (s.count, 0, filter.consumed),
            BaseOp::Join {
                outer, inner_count, ..
            } => (outer.count, inner_count, filter.consumed),
        };
        counters = Counters {
            outer_scanned,
            inner_scanned,
            tuples,
            matched: filter.produced,
            pre_distinct: 0,
            pre_limit: 0,
            out: 0,
        };
        matches = out;
    }

    let scanned = (counters.outer_scanned + counters.inner_scanned) as usize;
    let (result, tail) = crate::exec::finish_rows(query, &sources, matches, scanned, used_index)?;
    let counters = Counters {
        pre_distinct: tail.pre_distinct as u64,
        pre_limit: tail.pre_limit as u64,
        out: result.rows.len() as u64,
        ..counters
    };
    let ops = op_stats_tree(&plan.root, &counters);
    Ok(PlannedExec { result, plan, ops })
}

/// Depth-first materialization of derived tables through the planned
/// executor (mirrors `exec::collect_derived`, which stays naive-recursive).
fn collect_derived_planned(
    t: &TableRef,
    tables: &HashMap<String, Table>,
    stats: &HashMap<String, TableStats>,
    arena: &mut Vec<Table>,
) -> Result<(), ExecError> {
    match t {
        TableRef::Derived { subquery, alias } => {
            let planned = execute_planned_with_stats(subquery, tables, stats)?;
            let name = alias
                .as_ref()
                .map_or_else(|| format!("derived{}", arena.len()), |a| a.normalized());
            arena.push(materialize(&name, &planned.result));
            Ok(())
        }
        TableRef::Join { left, right, .. } => {
            collect_derived_planned(left, tables, stats, arena)?;
            collect_derived_planned(right, tables, stats, arena)
        }
        _ => Ok(()),
    }
}

/// The scan topology at the bottom of a plan chain.
fn base_of(root: &PlanNode) -> &PlanNode {
    let mut n = root;
    loop {
        match n {
            PlanNode::Scan(_) | PlanNode::NestedLoopJoin { .. } | PlanNode::Values => return n,
            other => n = other.input().expect("plan tail chain ends at a scan"),
        }
    }
}

/// Candidate row ids for an access path, in ascending row-id order — the
/// same order every naive access path produces, which keeps planned and
/// naive result rows identical even without ORDER BY.
fn scan_candidates(table: &Table, access: &Access) -> Vec<usize> {
    match access {
        Access::PkSeek { column, keys } | Access::IndexSeek { column, keys } => {
            let mut rows = Vec::new();
            for v in keys {
                if let Some(ids) = table.index_lookup(column, v) {
                    rows.extend(ids.iter().map(|&r| r as usize));
                }
            }
            rows.sort_unstable();
            rows.dedup();
            rows
        }
        Access::IndexRangeSeek { column, lo, hi } => match table.range_lookup(column, *lo, *hi) {
            Some(rows) => rows.into_iter().map(|r| r as usize).collect(),
            None => (0..table.rows()).collect(),
        },
        Access::FullScan => (0..table.rows()).collect(),
    }
}

/// Leaf scan operator: yields precomputed candidate row ids, counting them.
struct ScanOp {
    ids: std::vec::IntoIter<usize>,
    count: u64,
}

impl ScanOp {
    fn new(ids: Vec<usize>) -> Self {
        ScanOp {
            ids: ids.into_iter(),
            count: 0,
        }
    }

    fn next(&mut self) -> Option<usize> {
        let r = self.ids.next();
        if r.is_some() {
            self.count += 1;
        }
        r
    }
}

/// The enumeration half of the pipeline: a single scan or a two-way
/// nested-loop join. Emits fixed-arity row-id tuples.
enum BaseOp<'a, 'p> {
    Single(ScanOp),
    Join {
        outer: ScanOp,
        outer_table: &'a Table,
        inner_table: &'a Table,
        /// `outer.col = inner.col` probed through the inner hash index.
        probe: Option<&'p (String, String)>,
        /// Fixed inner candidate list when there is no probe.
        inner_base: Option<Vec<usize>>,
        cur_outer: usize,
        inner: std::vec::IntoIter<usize>,
        inner_count: u64,
        produced: u64,
    },
}

impl BaseOp<'_, '_> {
    /// Next row-id tuple: `([ids; 2], arity)`.
    fn next(&mut self) -> Option<([usize; 2], usize)> {
        match self {
            BaseOp::Single(s) => s.next().map(|r| ([r, 0], 1)),
            BaseOp::Join {
                outer,
                outer_table,
                inner_table,
                probe,
                inner_base,
                cur_outer,
                inner,
                inner_count,
                produced,
            } => loop {
                if let Some(rr) = inner.next() {
                    *inner_count += 1;
                    *produced += 1;
                    return Some(([*cur_outer, rr], 2));
                }
                let lr = outer.next()?;
                *cur_outer = lr;
                let ids: Vec<usize> = if let Some((lcol, rcol)) = probe {
                    // Probe the inner hash index with the outer row's value;
                    // an unindexable value (NULL) falls back to a full pass,
                    // exactly as the naive join does.
                    let lval = outer_table
                        .column(lcol)
                        .map(|c| c.data.get(lr))
                        .unwrap_or(Value::Null);
                    match inner_table.index_lookup(rcol, &lval) {
                        Some(ids) => ids.iter().map(|&r| r as usize).collect(),
                        None => (0..inner_table.rows()).collect(),
                    }
                } else {
                    inner_base.clone().unwrap_or_default()
                };
                *inner = ids.into_iter();
            },
        }
    }
}

/// Residual-predicate filter over row-id tuples.
struct FilterOp<'a, 'b> {
    input: BaseOp<'a, 'b>,
    predicate: Option<&'b Expr>,
    sources: &'b [Source<'a>],
    consumed: u64,
    produced: u64,
}

impl FilterOp<'_, '_> {
    fn next(&mut self) -> Result<Option<Vec<usize>>, ExecError> {
        loop {
            let Some((ids, arity)) = self.input.next() else {
                return Ok(None);
            };
            self.consumed += 1;
            let keep = match self.predicate {
                Some(p) => eval_pred_pub(p, &row_ctx(self.sources, &ids[..arity]))? == Some(true),
                None => true,
            };
            if keep {
                self.produced += 1;
                return Ok(Some(ids[..arity].to_vec()));
            }
        }
    }
}

/// Observed row counts, used to fill in the OpStats tree after the run.
struct Counters {
    outer_scanned: u64,
    inner_scanned: u64,
    /// Tuples entering the filter (candidates, or joined pairs).
    tuples: u64,
    /// Tuples surviving the filter.
    matched: u64,
    pre_distinct: u64,
    pre_limit: u64,
    out: u64,
}

fn access_detail(sp: &ScanPlan) -> String {
    let access = match &sp.access {
        Access::PkSeek { column, keys } => format!("PkSeek({column} ×{})", keys.len()),
        Access::IndexSeek { column, keys } => format!("IndexSeek({column} ×{})", keys.len()),
        Access::IndexRangeSeek { column, lo, hi } => {
            let b = |v: &Option<i64>| v.map_or("∅".to_string(), |v| v.to_string());
            format!("IndexRangeSeek({column} [{}, {}])", b(lo), b(hi))
        }
        Access::FullScan => "FullScan".to_string(),
    };
    format!("{} {access}", sp.table)
}

fn scan_stats(sp: &ScanPlan, scanned: u64) -> OpStats {
    OpStats {
        op: if sp.access.is_seek() {
            "IndexScan"
        } else {
            "SeqScan"
        },
        detail: access_detail(sp),
        rows_scanned: scanned,
        rows_produced: scanned,
        children: Vec::new(),
    }
}

/// Builds the OpStats tree shaped like the plan, filled with the observed
/// counters.
fn op_stats_tree(node: &PlanNode, c: &Counters) -> OpStats {
    let wrap =
        |op: &'static str, detail: String, scanned: u64, produced: u64, input: &PlanNode| OpStats {
            op,
            detail,
            rows_scanned: scanned,
            rows_produced: produced,
            children: vec![op_stats_tree(input, c)],
        };
    match node {
        PlanNode::Limit { input, n } => wrap(
            "Limit",
            n.map_or(String::new(), |n| format!("n={n}")),
            c.pre_limit,
            c.out,
            input,
        ),
        PlanNode::Distinct { input } => wrap(
            "Distinct",
            String::new(),
            c.pre_distinct,
            c.pre_limit,
            input,
        ),
        PlanNode::Project { input, .. } => {
            wrap("Project", String::new(), c.matched, c.pre_distinct, input)
        }
        PlanNode::Aggregate {
            input, group_by, ..
        } => wrap(
            "Aggregate",
            if group_by.is_empty() {
                String::new()
            } else {
                format!("group_by={}", group_by.join(", "))
            },
            c.matched,
            c.pre_distinct,
            input,
        ),
        PlanNode::Sort { input, keys } => wrap(
            "Sort",
            format!("keys={}", keys.join(", ")),
            c.matched,
            c.matched,
            input,
        ),
        PlanNode::Filter { input, predicate } => {
            wrap("Filter", predicate.clone(), c.tuples, c.matched, input)
        }
        PlanNode::NestedLoopJoin {
            outer,
            inner,
            probe,
            ..
        } => {
            let (outer_stats, inner_stats) = match (outer.as_ref(), inner.as_ref()) {
                (PlanNode::Scan(o), PlanNode::Scan(i)) => (
                    scan_stats(o, c.outer_scanned),
                    scan_stats(i, c.inner_scanned),
                ),
                _ => unreachable!("joins join scans"),
            };
            OpStats {
                op: "NestedLoopJoin",
                detail: probe
                    .as_ref()
                    .map_or(String::new(), |(o, i)| format!("probe {o} = {i}")),
                rows_scanned: 0,
                rows_produced: c.tuples,
                children: vec![outer_stats, inner_stats],
            }
        }
        PlanNode::Scan(sp) => scan_stats(sp, c.outer_scanned),
        PlanNode::Values => OpStats {
            op: "Values",
            detail: String::new(),
            rows_scanned: 0,
            rows_produced: 1,
            children: Vec::new(),
        },
    }
}
