//! The database engine: tables + stats + planner/executor + cost accounting.
//!
//! [`MiniDb`] keeps ANALYZE-style statistics for every table it holds
//! (recomputed on `add_table`), plans queries through [`crate::plan`], and
//! executes them with the Volcano pipeline in [`crate::ops`]. The simulated
//! cost of [`MiniDb::execute_sql`] is billed from the operator tree — an
//! index seek is charged for the rows it actually touched, not for the
//! table it avoided scanning.

use crate::cost::CostModel;
use crate::exec::{execute_naive, ExecError, ExecResult};
use crate::ops::{execute_planned_with_stats, PlannedExec};
use crate::plan::{plan_query, QueryPlan};
use crate::stats::{analyze, TableStats};
use crate::table::Table;
use sqlog_obs::Json;
use sqlog_sql::ast::{Query, Statement};
use sqlog_sql::parse_statement;
use std::collections::HashMap;

/// An in-memory database with a round-trip cost model.
#[derive(Debug, Default)]
pub struct MiniDb {
    tables: HashMap<String, Table>,
    /// Cached ANALYZE stats, refreshed whenever a table is (re)added.
    stats: HashMap<String, TableStats>,
    /// The cost model used by [`MiniDb::execute_sql`].
    pub cost: CostModel,
}

impl MiniDb {
    /// An empty database with the default cost model.
    pub fn new() -> Self {
        MiniDb {
            tables: HashMap::new(),
            stats: HashMap::new(),
            cost: CostModel::default(),
        }
    }

    /// Adds (or replaces) a table, analyzing it for the planner.
    pub fn add_table(&mut self, table: Table) {
        self.stats.insert(table.name.clone(), analyze(&table));
        self.tables.insert(table.name.clone(), table);
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// ANALYZE stats for a table.
    pub fn table_stats(&self, name: &str) -> Option<&TableStats> {
        self.stats.get(&name.to_ascii_lowercase())
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Plans a query without executing it.
    pub fn plan(&self, query: &Query) -> Result<QueryPlan, ExecError> {
        plan_query(query, &self.tables, &self.stats)
    }

    /// The plan of a query as a stable JSON tree (`EXPLAIN`).
    pub fn explain(&self, query: &Query) -> Result<Json, ExecError> {
        self.plan(query).map(|p| p.to_json())
    }

    /// Parses one SELECT and returns its `EXPLAIN` tree.
    pub fn explain_sql(&self, sql: &str) -> Result<Json, ExecError> {
        self.explain(&parse_select(sql)?)
    }

    /// Executes a parsed query through the planner + Volcano executor.
    pub fn execute_query(&self, query: &Query) -> Result<ExecResult, ExecError> {
        self.execute_query_planned(query).map(|p| p.result)
    }

    /// Executes a parsed query, returning the plan and operator counters
    /// alongside the result.
    pub fn execute_query_planned(&self, query: &Query) -> Result<PlannedExec, ExecError> {
        execute_planned_with_stats(query, &self.tables, &self.stats)
    }

    /// Executes a parsed query with the naive reference executor (the
    /// differential-testing baseline; no planner involved).
    pub fn execute_query_naive(&self, query: &Query) -> Result<ExecResult, ExecError> {
        execute_naive(query, &self.tables)
    }

    /// Parses and executes one SQL statement, returning the result and its
    /// simulated cost in milliseconds (billed from the operator tree).
    pub fn execute_sql(&self, sql: &str) -> Result<(ExecResult, f64), ExecError> {
        let (planned, cost) = self.execute_sql_planned(sql)?;
        Ok((planned.result, cost))
    }

    /// Parses and executes one SQL statement, returning the full planned
    /// execution (result + plan + operator counters) and its simulated cost.
    pub fn execute_sql_planned(&self, sql: &str) -> Result<(PlannedExec, f64), ExecError> {
        let planned = self.execute_query_planned(&parse_select(sql)?)?;
        let cost = self.cost.simulated_ms_ops(&planned.result, &planned.ops);
        Ok((planned, cost))
    }
}

fn parse_select(sql: &str) -> Result<Query, ExecError> {
    let stmt =
        parse_statement(sql).map_err(|e| ExecError::Unsupported(format!("parse error: {e}")))?;
    let Statement::Select(q) = stmt else {
        return Err(ExecError::Unsupported("non-SELECT statement".into()));
    };
    Ok(*q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::ColumnData;

    fn db() -> MiniDb {
        let mut t = Table::new("t");
        t.add_column("id", ColumnData::Int((0..100).map(Some).collect()));
        t.add_column(
            "v",
            ColumnData::Float((0..100).map(|i| Some(i as f64 / 10.0)).collect()),
        );
        t.build_pk("id");
        let mut db = MiniDb::new();
        db.add_table(t);
        db
    }

    #[test]
    fn execute_sql_returns_cost() {
        let db = db();
        let (result, cost) = db.execute_sql("SELECT v FROM t WHERE id = 7").unwrap();
        assert_eq!(result.rows.len(), 1);
        assert!(cost >= db.cost.per_statement_ms);
    }

    #[test]
    fn non_select_rejected() {
        let db = db();
        assert!(db.execute_sql("DELETE FROM t WHERE id = 1").is_err());
        assert!(db.execute_sql("SELECT FROM t").is_err());
    }

    #[test]
    fn table_accessors() {
        let db = db();
        assert_eq!(db.table_count(), 1);
        assert!(db.table("T").is_some());
        assert!(db.table("nope").is_none());
        let stats = db.table_stats("t").unwrap();
        assert_eq!(stats.row_count, 100);
        assert_eq!(stats.column("id").unwrap().distinct, 100);
    }

    #[test]
    fn explain_shows_a_pk_seek() {
        let db = db();
        let j = db.explain_sql("SELECT v FROM t WHERE id = 7").unwrap();
        let rendered = j.render();
        assert!(rendered.contains("PkSeek"), "explain: {rendered}");
        assert!(rendered.contains("\"alternatives\""), "explain: {rendered}");
    }

    #[test]
    fn planned_execution_reports_operator_counters() {
        let db = db();
        let (planned, _) = db
            .execute_sql_planned("SELECT v FROM t WHERE id = 7")
            .unwrap();
        let scan = planned.ops.find("IndexScan").unwrap();
        assert_eq!(scan.rows_scanned, 1);
        assert_eq!(planned.ops.storage_scanned(), 1);
        // A full scan bills every row.
        let (planned, _) = db
            .execute_sql_planned("SELECT id FROM t WHERE v > 9.0")
            .unwrap();
        assert_eq!(planned.ops.storage_scanned(), 100);
        assert!(planned.ops.find("SeqScan").is_some());
    }

    #[test]
    fn planned_cost_is_below_naive_billing_for_seeks() {
        let db = db();
        let (planned, cost) = db
            .execute_sql_planned("SELECT v FROM t WHERE id = 7")
            .unwrap();
        // Operator-tree billing touches 1 row; flat billing of a full scan
        // would have billed 100.
        let full = ExecResult {
            scanned_rows: 100,
            ..planned.result.clone()
        };
        assert!(cost < db.cost.simulated_ms(&full));
    }
}
