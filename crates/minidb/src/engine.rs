//! The database engine: tables + executor + cost accounting.

use crate::cost::CostModel;
use crate::exec::{execute, ExecError, ExecResult};
use crate::table::Table;
use sqlog_sql::ast::{Query, Statement};
use sqlog_sql::parse_statement;
use std::collections::HashMap;

/// An in-memory database with a round-trip cost model.
#[derive(Debug, Default)]
pub struct MiniDb {
    tables: HashMap<String, Table>,
    /// The cost model used by [`MiniDb::execute_sql`].
    pub cost: CostModel,
}

impl MiniDb {
    /// An empty database with the default cost model.
    pub fn new() -> Self {
        MiniDb {
            tables: HashMap::new(),
            cost: CostModel::default(),
        }
    }

    /// Adds (or replaces) a table.
    pub fn add_table(&mut self, table: Table) {
        self.tables.insert(table.name.clone(), table);
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Executes a parsed query.
    pub fn execute_query(&self, query: &Query) -> Result<ExecResult, ExecError> {
        execute(query, &self.tables)
    }

    /// Parses and executes one SQL statement, returning the result and its
    /// simulated cost in milliseconds.
    pub fn execute_sql(&self, sql: &str) -> Result<(ExecResult, f64), ExecError> {
        let stmt = parse_statement(sql)
            .map_err(|e| ExecError::Unsupported(format!("parse error: {e}")))?;
        let Statement::Select(q) = stmt else {
            return Err(ExecError::Unsupported("non-SELECT statement".into()));
        };
        let result = self.execute_query(&q)?;
        let cost = self.cost.simulated_ms(&result);
        Ok((result, cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::ColumnData;

    fn db() -> MiniDb {
        let mut t = Table::new("t");
        t.add_column("id", ColumnData::Int((0..100).map(Some).collect()));
        t.add_column(
            "v",
            ColumnData::Float((0..100).map(|i| Some(i as f64 / 10.0)).collect()),
        );
        t.build_index("id");
        let mut db = MiniDb::new();
        db.add_table(t);
        db
    }

    #[test]
    fn execute_sql_returns_cost() {
        let db = db();
        let (result, cost) = db.execute_sql("SELECT v FROM t WHERE id = 7").unwrap();
        assert_eq!(result.rows.len(), 1);
        assert!(cost >= db.cost.per_statement_ms);
    }

    #[test]
    fn non_select_rejected() {
        let db = db();
        assert!(db.execute_sql("DELETE FROM t WHERE id = 1").is_err());
        assert!(db.execute_sql("SELECT FROM t").is_err());
    }

    #[test]
    fn table_accessors() {
        let db = db();
        assert_eq!(db.table_count(), 1);
        assert!(db.table("T").is_some());
        assert!(db.table("nope").is_none());
    }
}
