//! Synthetic SkyServer-like data: the substrate of the §6.3 runtime
//! experiment and of solver semantic checks.
//!
//! The photometric tables are populated with objids drawn from the same base
//! range the workload generator uses, so a fraction of generated stifle
//! queries actually hits rows.

use crate::engine::MiniDb;
use crate::table::{ColumnData, Table};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sqlog_catalog::{skyserver_catalog, ColumnType};

/// The objid base shared with `sqlog-gen`'s crawler profiles.
pub const OBJID_BASE: u64 = 587_722_982_000_000_000;

/// Builds a SkyServer-like database with `rows` objects per photo table.
pub fn skyserver_db(rows: usize, seed: u64) -> MiniDb {
    let catalog = skyserver_catalog();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut db = MiniDb::new();

    // Dense objids at the bottom of the generator's random range: with the
    // generator drawing uniformly from 900 M offsets, point queries mostly
    // miss — which matches the "small average number of result rows" Stifle
    // signature (§4.2.1) while keeping some hits.
    let objids: Vec<Option<i64>> = (0..rows)
        .map(|i| Some((OBJID_BASE + i as u64 * 1_000) as i64))
        .collect();

    for name in ["photoprimary", "photoobjall", "galaxy", "star"] {
        let schema = catalog.table(name).expect("catalog table");
        let mut t = Table::new(name);
        for col in &schema.columns {
            let data = match (col.name.as_str(), col.ty) {
                ("objid", _) => ColumnData::Int(objids.clone()),
                ("htmid", _) => ColumnData::Int(
                    (0..rows)
                        .map(|_| Some(rng.random_range(1_000_000_000..2_000_000_000i64)))
                        .collect(),
                ),
                ("run" | "camcol" | "field" | "type" | "flags", _) => ColumnData::Int(
                    (0..rows)
                        .map(|_| Some(rng.random_range(0..5_000i64)))
                        .collect(),
                ),
                ("ra", _) => ColumnData::Float(
                    (0..rows)
                        .map(|_| Some(rng.random_range(0.0..360.0)))
                        .collect(),
                ),
                ("dec", _) => ColumnData::Float(
                    (0..rows)
                        .map(|_| Some(rng.random_range(-90.0..90.0)))
                        .collect(),
                ),
                (_, ColumnType::Float) => ColumnData::Float(
                    (0..rows)
                        .map(|_| Some(rng.random_range(10.0..25.0)))
                        .collect(),
                ),
                (_, ColumnType::BigInt) => ColumnData::Int(
                    (0..rows)
                        .map(|_| Some(rng.random_range(0..1_000_000i64)))
                        .collect(),
                ),
                (_, ColumnType::Text) => {
                    ColumnData::Str((0..rows).map(|i| Some(format!("v{i}"))).collect())
                }
            };
            t.add_column(col.name.clone(), data);
        }
        t.build_pk("objid");
        t.build_range_index("htmid");
        db.add_table(t);
    }

    // Spectra: one per four photo objects.
    let spec_rows = rows / 4;
    for name in ["specobjall", "specobj"] {
        let mut t = Table::new(name);
        t.add_column(
            "specobjid",
            ColumnData::Int(
                (0..spec_rows)
                    .map(|i| Some(75_094_000_000_000_000 + i as i64 * 7))
                    .collect(),
            ),
        );
        t.add_column(
            "bestobjid",
            ColumnData::Int((0..spec_rows).map(|i| objids[i * 4]).collect()),
        );
        t.add_column(
            "plate",
            ColumnData::Int(
                (0..spec_rows)
                    .map(|_| Some(rng.random_range(266..3_000i64)))
                    .collect(),
            ),
        );
        t.add_column(
            "fiberid",
            ColumnData::Int(
                (0..spec_rows)
                    .map(|_| Some(rng.random_range(1..641i64)))
                    .collect(),
            ),
        );
        t.add_column(
            "mjd",
            ColumnData::Int(
                (0..spec_rows)
                    .map(|_| Some(rng.random_range(51_000..54_000i64)))
                    .collect(),
            ),
        );
        t.add_column(
            "ra",
            ColumnData::Float(
                (0..spec_rows)
                    .map(|_| Some(rng.random_range(0.0..360.0)))
                    .collect(),
            ),
        );
        t.add_column(
            "dec",
            ColumnData::Float(
                (0..spec_rows)
                    .map(|_| Some(rng.random_range(-90.0..90.0)))
                    .collect(),
            ),
        );
        t.add_column(
            "z",
            ColumnData::Float(
                (0..spec_rows)
                    .map(|_| Some(rng.random_range(0.0..0.5)))
                    .collect(),
            ),
        );
        t.add_column(
            "zerr",
            ColumnData::Float(
                (0..spec_rows)
                    .map(|_| Some(rng.random_range(0.0001..0.02)))
                    .collect(),
            ),
        );
        t.add_column(
            "specclass",
            ColumnData::Int(
                (0..spec_rows)
                    .map(|_| Some(rng.random_range(0..7i64)))
                    .collect(),
            ),
        );
        t.build_pk("specobjid");
        t.build_index("bestobjid");
        db.add_table(t);
    }

    // Schema-browser metadata.
    let meta: &[&str] = &[
        "photoobjall",
        "photoprimary",
        "specobjall",
        "galaxy",
        "star",
        "field",
        "neighbors",
        "platex",
    ];
    let mut t = Table::new("dbobjects");
    t.add_column(
        "name",
        ColumnData::Str(meta.iter().map(|m| Some((*m).to_string())).collect()),
    );
    t.add_column(
        "type",
        ColumnData::Str(meta.iter().map(|_| Some("U".to_string())).collect()),
    );
    t.add_column(
        "access",
        ColumnData::Str(meta.iter().map(|_| Some("public".to_string())).collect()),
    );
    t.add_column(
        "description",
        ColumnData::Str(
            meta.iter()
                .map(|m| Some(format!("description of {m}")))
                .collect(),
        ),
    );
    t.add_column(
        "text",
        ColumnData::Str(meta.iter().map(|m| Some(format!("docs for {m}"))).collect()),
    );
    t.add_column(
        "rank",
        ColumnData::Int((0..meta.len()).map(|i| Some(i as i64)).collect()),
    );
    t.build_index("name");
    db.add_table(t);

    // The paper's running-example tables, small and fully hittable.
    let mut employee = Table::new("employee");
    employee.add_column("empid", ColumnData::Int((1..=50).map(Some).collect()));
    employee.add_column(
        "name",
        ColumnData::Str((1..=50).map(|i| Some(format!("name{i}"))).collect()),
    );
    employee.add_column(
        "address",
        ColumnData::Str((1..=50).map(|i| Some(format!("{i} main st"))).collect()),
    );
    employee.add_column(
        "phone",
        ColumnData::Str((1..=50).map(|i| Some(format!("555-{i:04}"))).collect()),
    );
    employee.build_pk("empid");
    db.add_table(employee);

    let mut orders = Table::new("orders");
    let n_orders = 200usize;
    orders.add_column(
        "orderid",
        ColumnData::Int((0..n_orders as i64).map(Some).collect()),
    );
    orders.add_column(
        "empid",
        ColumnData::Int(
            (0..n_orders)
                .map(|_| Some(rng.random_range(1..=50i64)))
                .collect(),
        ),
    );
    orders.add_column(
        "orders",
        ColumnData::Int(
            (0..n_orders)
                .map(|_| Some(rng.random_range(1..10i64)))
                .collect(),
        ),
    );
    orders.build_pk("orderid");
    orders.build_index("empid");
    db.add_table(orders);

    let mut info = Table::new("employeeinfo");
    info.add_column("empid", ColumnData::Int((1..=50).map(Some).collect()));
    info.add_column(
        "address",
        ColumnData::Str((1..=50).map(|i| Some(format!("{i} main st"))).collect()),
    );
    info.build_index("empid");
    db.add_table(info);

    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_all_tables_with_indexes() {
        let db = skyserver_db(1_000, 7);
        assert!(db.table_count() >= 9);
        assert_eq!(db.table("photoprimary").unwrap().rows(), 1_000);
        assert_eq!(db.table("specobjall").unwrap().rows(), 250);
        assert!(db
            .table("photoprimary")
            .unwrap()
            .indexes
            .contains_key("objid"));
    }

    #[test]
    fn point_query_hits_a_dense_objid() {
        let db = skyserver_db(100, 7);
        let objid = OBJID_BASE + 5_000; // row 5
        let (r, _) = db
            .execute_sql(&format!(
                "SELECT rowc_g, colc_g FROM photoprimary WHERE objid = {objid}"
            ))
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert!(r.used_index);
    }

    #[test]
    fn dbobjects_browsing_works() {
        let db = skyserver_db(100, 7);
        let (r, _) = db
            .execute_sql("SELECT description FROM DBObjects WHERE name = 'galaxy'")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = skyserver_db(200, 9);
        let b = skyserver_db(200, 9);
        let (ra, _) = a
            .execute_sql("SELECT count(*) FROM photoprimary WHERE type = 3")
            .unwrap();
        let (rb, _) = b
            .execute_sql("SELECT count(*) FROM photoprimary WHERE type = 3")
            .unwrap();
        assert_eq!(ra.rows, rb.rows);
    }
}
