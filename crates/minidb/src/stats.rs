//! ANALYZE-style table statistics: the planner's input.
//!
//! [`analyze`] makes one pass over a table and records, per column, the
//! distinct-value count, the null count and (for integer columns) the value
//! range. The planner turns these into selectivity estimates — how many rows
//! an equality probe or a range scan is expected to touch — so the choice
//! among `PkSeek` / `IndexSeek` / `IndexRangeSeek` / `FullScan` is driven by
//! data shape, not by syntax order. Everything here is deterministic: the
//! same table always yields the same stats, so plans (and their committed
//! `explain()` snapshots) are stable.

use crate::table::{ColumnData, Table};
use std::collections::{HashMap, HashSet};

/// Per-column statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of distinct non-null values.
    pub distinct: usize,
    /// Number of NULLs.
    pub nulls: usize,
    /// Minimum value (integer columns only).
    pub min: Option<i64>,
    /// Maximum value (integer columns only).
    pub max: Option<i64>,
}

impl ColumnStats {
    /// Expected rows matched by one equality probe against this column,
    /// given `row_count` table rows: non-null rows spread evenly over the
    /// distinct values. Never less than 1 when any non-null row exists.
    pub fn rows_per_key(&self, row_count: usize) -> f64 {
        let non_null = row_count.saturating_sub(self.nulls);
        if non_null == 0 || self.distinct == 0 {
            return 0.0;
        }
        (non_null as f64 / self.distinct as f64).max(1.0)
    }

    /// Fraction of rows expected inside `[lo, hi]` (either bound optional),
    /// assuming a uniform spread over the observed `[min, max]` range.
    /// Returns 1.0 when the column has no integer range stats.
    pub fn range_selectivity(&self, lo: Option<i64>, hi: Option<i64>) -> f64 {
        let (Some(min), Some(max)) = (self.min, self.max) else {
            return 1.0;
        };
        let lo = lo.map_or(min, |l| l.max(min));
        let hi = hi.map_or(max, |h| h.min(max));
        if lo > hi {
            return 0.0;
        }
        let span = (max - min) as f64 + 1.0;
        (((hi - lo) as f64 + 1.0) / span).clamp(0.0, 1.0)
    }
}

/// Statistics for one table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TableStats {
    /// Number of rows at ANALYZE time.
    pub row_count: usize,
    /// Per-column stats, keyed by lower-cased column name.
    pub columns: HashMap<String, ColumnStats>,
}

impl TableStats {
    /// Stats for a column, if analyzed.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.get(&name.to_ascii_lowercase())
    }
}

/// One-pass ANALYZE over a table.
pub fn analyze(table: &Table) -> TableStats {
    let mut columns = HashMap::with_capacity(table.columns.len());
    for col in &table.columns {
        let stats = match &col.data {
            ColumnData::Int(values) => {
                let mut seen: HashSet<i64> = HashSet::new();
                let (mut nulls, mut min, mut max) = (0usize, None::<i64>, None::<i64>);
                for v in values {
                    match v {
                        Some(v) => {
                            seen.insert(*v);
                            min = Some(min.map_or(*v, |m: i64| m.min(*v)));
                            max = Some(max.map_or(*v, |m: i64| m.max(*v)));
                        }
                        None => nulls += 1,
                    }
                }
                ColumnStats {
                    distinct: seen.len(),
                    nulls,
                    min,
                    max,
                }
            }
            ColumnData::Float(values) => {
                // Floats are keyed by bit pattern: exact distinct count,
                // no range stats (the planner has no float range index).
                let mut seen: HashSet<u64> = HashSet::new();
                let mut nulls = 0usize;
                for v in values {
                    match v {
                        Some(v) => {
                            seen.insert(v.to_bits());
                        }
                        None => nulls += 1,
                    }
                }
                ColumnStats {
                    distinct: seen.len(),
                    nulls,
                    min: None,
                    max: None,
                }
            }
            ColumnData::Str(values) => {
                let mut seen: HashSet<&str> = HashSet::new();
                let mut nulls = 0usize;
                for v in values {
                    match v {
                        Some(v) => {
                            seen.insert(v.as_str());
                        }
                        None => nulls += 1,
                    }
                }
                ColumnStats {
                    distinct: seen.len(),
                    nulls,
                    min: None,
                    max: None,
                }
            }
        };
        columns.insert(col.name.clone(), stats);
    }
    TableStats {
        row_count: table.rows(),
        columns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("t");
        t.add_column(
            "id",
            ColumnData::Int(vec![Some(10), Some(20), Some(20), Some(40), None]),
        );
        t.add_column(
            "name",
            ColumnData::Str(vec![
                Some("a".into()),
                Some("b".into()),
                Some("b".into()),
                None,
                None,
            ]),
        );
        t.add_column(
            "score",
            ColumnData::Float(vec![Some(1.5), Some(1.5), Some(2.5), Some(3.5), Some(4.5)]),
        );
        t
    }

    #[test]
    fn analyze_counts_distincts_nulls_and_ranges() {
        let s = analyze(&table());
        assert_eq!(s.row_count, 5);
        let id = s.column("ID").unwrap();
        assert_eq!(
            (id.distinct, id.nulls, id.min, id.max),
            (3, 1, Some(10), Some(40))
        );
        let name = s.column("name").unwrap();
        assert_eq!((name.distinct, name.nulls), (2, 2));
        assert_eq!(name.min, None);
        let score = s.column("score").unwrap();
        assert_eq!((score.distinct, score.nulls), (4, 0));
    }

    #[test]
    fn rows_per_key_spreads_non_null_rows() {
        let s = analyze(&table());
        // 4 non-null ids over 3 distinct values.
        let rpk = s.column("id").unwrap().rows_per_key(5);
        assert!((rpk - 4.0 / 3.0).abs() < 1e-9);
        // A unique column probes to ~1 row.
        let unique = ColumnStats {
            distinct: 1_000,
            nulls: 0,
            min: Some(0),
            max: Some(999),
        };
        assert_eq!(unique.rows_per_key(1_000), 1.0);
        // Degenerate: empty table.
        assert_eq!(unique.rows_per_key(0), 0.0);
    }

    #[test]
    fn range_selectivity_is_proportional_and_clamped() {
        let c = ColumnStats {
            distinct: 100,
            nulls: 0,
            min: Some(0),
            max: Some(99),
        };
        assert!((c.range_selectivity(Some(0), Some(49)) - 0.5).abs() < 1e-9);
        assert_eq!(c.range_selectivity(Some(200), Some(300)), 0.0);
        assert_eq!(c.range_selectivity(None, None), 1.0);
        // Bounds outside the observed range clamp to it.
        assert_eq!(c.range_selectivity(Some(-100), Some(1_000)), 1.0);
    }

    #[test]
    fn analyze_is_deterministic() {
        assert_eq!(analyze(&table()), analyze(&table()));
    }
}
