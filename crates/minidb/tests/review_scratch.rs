use sqlog_minidb::table::{ColumnData, Table};
use sqlog_minidb::MiniDb;

#[test]
fn self_join_table_qualifier() {
    let mut t = Table::new("t");
    t.add_column("id", ColumnData::Int(vec![Some(1), Some(2), Some(3)]));
    t.add_column("g", ColumnData::Int(vec![Some(7), Some(7), Some(8)]));
    t.build_pk("id");
    let mut db = MiniDb::new();
    db.add_table(t);

    let sql = "SELECT a.id, b.id FROM t AS a JOIN t AS b ON a.g = b.g WHERE t.id = 1";
    let stmt = sqlog_sql::parse_statement(sql).unwrap();
    let q = match stmt {
        sqlog_sql::ast::Statement::Select(q) => *q,
        _ => panic!(),
    };
    let naive = db.execute_query_naive(&q).unwrap();
    let planned = db.execute_query_planned(&q).unwrap();
    println!("plan: {}", db.explain(&q).unwrap().render());
    println!("naive rows:   {:?}", naive.rows);
    println!("planned rows: {:?}", planned.result.rows);
    assert_eq!(naive.rows, planned.result.rows);
}
