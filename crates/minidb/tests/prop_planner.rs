//! Property tests for the cost-based planner and Volcano executor.
//!
//! Random single-table databases (index layout varies: none / hash / pk on
//! `k`, optional range index on `h`) and random point/range predicates,
//! holding three invariants:
//!
//! 1. the planner never picks a seek on a column that lacks the matching
//!    index kind;
//! 2. the cost estimate is monotone in row count — duplicating every row
//!    never makes the estimate smaller;
//! 3. the planned executor returns exactly the naive reference executor's
//!    rows (order-normalized), or both paths reject the statement.

use proptest::prelude::*;
use sqlog_minidb::{Access, ColumnData, MiniDb, Table};
use sqlog_sql::ast::Query;

/// Index layout for the `k` column.
#[derive(Debug, Clone, Copy)]
enum KIndex {
    None,
    Hash,
    Pk,
}

fn build_db(rows: &[(i64, i64, i64)], k_index: KIndex, h_range: bool, dup: usize) -> MiniDb {
    let reps = dup.max(1);
    let mut t = Table::new("t");
    let col = |f: fn(&(i64, i64, i64)) -> i64| -> ColumnData {
        ColumnData::Int(
            std::iter::repeat_with(|| rows.iter().map(f))
                .take(reps)
                .flatten()
                .map(Some)
                .collect(),
        )
    };
    t.add_column("k", col(|r| r.0));
    t.add_column("h", col(|r| r.1));
    t.add_column("v", col(|r| r.2));
    match k_index {
        KIndex::None => {}
        KIndex::Hash => t.build_index("k"),
        KIndex::Pk => t.build_pk("k"),
    }
    if h_range {
        t.build_range_index("h");
    }
    let mut db = MiniDb::new();
    db.add_table(t);
    db
}

fn rows_strategy() -> impl Strategy<Value = Vec<(i64, i64, i64)>> {
    prop::collection::vec((0i64..40, 0i64..200, -50i64..50), 1..80)
}

fn k_index_strategy() -> impl Strategy<Value = KIndex> {
    prop_oneof![Just(KIndex::None), Just(KIndex::Hash), Just(KIndex::Pk),]
}

/// A random point / IN / range predicate over one of the three columns.
fn pred_strategy() -> impl Strategy<Value = String> {
    (
        prop_oneof![Just("k"), Just("h"), Just("v")],
        -10i64..210,
        -10i64..210,
        0u8..4,
    )
        .prop_map(|(c, a, b, op)| {
            let (lo, hi) = (a.min(b), a.max(b));
            match op {
                0 => format!("{c} = {a}"),
                1 => format!("{c} IN ({lo}, {hi})"),
                2 => format!("{c} BETWEEN {lo} AND {hi}"),
                _ => format!("{c} > {a}"),
            }
        })
}

fn parse(sql: &str) -> Query {
    let stmt = sqlog_sql::parse_statement(sql).expect("generated SQL parses");
    stmt.as_select().expect("generated SQL is a SELECT").clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// A seek access path requires the matching index kind on its column.
    #[test]
    fn planner_never_seeks_an_unindexed_column(
        rows in rows_strategy(),
        k_index in k_index_strategy(),
        h_range in any::<bool>(),
        pred in pred_strategy(),
    ) {
        let db = build_db(&rows, k_index, h_range, 1);
        let table = db.table("t").expect("table t");
        let sql = format!("SELECT k, h, v FROM t WHERE {pred}");
        let plan = db.plan(&parse(&sql)).expect("plannable");
        for scan in plan.scans() {
            match &scan.access {
                Access::PkSeek { column, .. } => {
                    prop_assert_eq!(table.primary_key.as_deref(), Some(column.as_str()));
                    prop_assert!(table.indexes.contains_key(column));
                }
                Access::IndexSeek { column, .. } => {
                    prop_assert!(table.indexes.contains_key(column));
                }
                Access::IndexRangeSeek { column, .. } => {
                    prop_assert!(table.range_indexes.contains_key(column));
                }
                Access::FullScan => {}
            }
        }
    }

    /// Duplicating every row never shrinks the plan's cost estimate.
    #[test]
    fn cost_estimate_is_monotone_in_row_count(
        rows in rows_strategy(),
        k_index in k_index_strategy(),
        h_range in any::<bool>(),
        pred in pred_strategy(),
    ) {
        let sql = format!("SELECT k, h, v FROM t WHERE {pred}");
        let query = parse(&sql);
        let small = build_db(&rows, k_index, h_range, 1)
            .plan(&query)
            .expect("plannable");
        let big = build_db(&rows, k_index, h_range, 2)
            .plan(&query)
            .expect("plannable");
        prop_assert!(
            big.est_cost >= small.est_cost - 1e-9,
            "doubling rows shrank est_cost {} -> {} for {}",
            small.est_cost, big.est_cost, sql
        );
    }

    /// The planned executor agrees with the naive reference, row for row.
    #[test]
    fn planned_rows_match_naive_reference(
        rows in rows_strategy(),
        k_index in k_index_strategy(),
        h_range in any::<bool>(),
        pred in pred_strategy(),
    ) {
        let db = build_db(&rows, k_index, h_range, 1);
        let sql = format!("SELECT k, h, v FROM t WHERE {pred}");
        let query = parse(&sql);
        match (db.execute_query(&query), db.execute_query_naive(&query)) {
            (Ok(planned), Ok(naive)) => {
                prop_assert_eq!(&planned.columns, &naive.columns);
                let sort = |r: &sqlog_minidb::ExecResult| {
                    let mut keys: Vec<String> =
                        r.rows.iter().map(|row| format!("{row:?}")).collect();
                    keys.sort();
                    keys
                };
                prop_assert_eq!(sort(&planned), sort(&naive), "rows diverge on {}", sql);
            }
            (Err(_), Err(_)) => {}
            (p, n) => prop_assert!(
                false,
                "one path rejected {}: planned ok={} naive ok={}",
                sql, p.is_ok(), n.is_ok()
            ),
        }
    }
}
