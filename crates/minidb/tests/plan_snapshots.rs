//! Plan snapshots: committed `explain()` fixtures for each antipattern
//! class's original vs rewrite (DW/DS/DF/SNC).
//!
//! The planner's choice for these statements is part of the repo's
//! contract — the §6.3 experiment and the conformance oracle both reason
//! about these plans. When a planner change moves one of them (a seek
//! becomes a scan, a cost estimate shifts), this test fails with a
//! line-oriented diff of the plan tree.
//!
//! To regenerate after an *intentional* planner change:
//!
//! ```text
//! UPDATE_PLAN_SNAPSHOTS=1 cargo test -p sqlog-minidb --test plan_snapshots
//! ```

use sqlog_minidb::datagen::skyserver_db;
use sqlog_minidb::MiniDb;
use std::path::PathBuf;

/// One snapshot: fixture name and the statement whose plan it pins.
const CASES: &[(&str, &str)] = &[
    (
        "dw_original",
        "SELECT rowc_g, colc_g FROM photoprimary WHERE objid=587722982000000000",
    ),
    (
        "dw_rewrite",
        "SELECT objid, rowc_g, colc_g FROM photoprimary WHERE objid IN \
         (587722982000000000, 587722982000001000, 587722982000002000)",
    ),
    (
        "ds_original",
        "SELECT rowc_r, colc_r FROM photoprimary WHERE objid=587722982000002000",
    ),
    (
        "ds_rewrite",
        "SELECT rowc_r, colc_r, rowc_g, colc_g FROM photoprimary \
         WHERE objid = 587722982000002000",
    ),
    (
        "df_original",
        "SELECT ra FROM galaxy WHERE objid=587722982000003000",
    ),
    (
        "df_rewrite",
        "SELECT photoprimary.ra, galaxy.ra FROM photoprimary INNER JOIN galaxy \
         ON galaxy.objid = photoprimary.objid \
         WHERE photoprimary.objid = 587722982000003000",
    ),
    (
        "snc_original",
        "SELECT objid FROM photoprimary WHERE flags = NULL",
    ),
    (
        "snc_rewrite",
        "SELECT objid FROM photoprimary WHERE flags IS NULL",
    ),
    // The degenerate point range: equality on the range-indexed-only
    // htmid column must stay a seek, not a scan — this is the plan-level
    // win the oracle asserts for stifle rewrites.
    (
        "htmid_point_range",
        "SELECT ra, dec FROM photoprimary WHERE htmid = 1500000000",
    ),
];

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/plans")
        .join(format!("{name}.json"))
}

/// A line-oriented diff small enough to read in test output.
fn line_diff(expected: &str, actual: &str) -> String {
    let mut out = String::new();
    let e: Vec<&str> = expected.lines().collect();
    let a: Vec<&str> = actual.lines().collect();
    for i in 0..e.len().max(a.len()) {
        match (e.get(i), a.get(i)) {
            (Some(el), Some(al)) if el == al => {}
            (el, al) => {
                if let Some(el) = el {
                    out.push_str(&format!("  line {:>3} - {el}\n", i + 1));
                }
                if let Some(al) = al {
                    out.push_str(&format!("  line {:>3} + {al}\n", i + 1));
                }
            }
        }
    }
    out
}

fn snapshot_db() -> MiniDb {
    // The fixture plans embed row/cost estimates, so the database shape is
    // pinned: 1 000 rows, seed 7.
    skyserver_db(1_000, 7)
}

#[test]
fn plans_match_committed_fixtures() {
    let db = snapshot_db();
    let update = std::env::var_os("UPDATE_PLAN_SNAPSHOTS").is_some();
    let mut failures = Vec::new();
    for (name, sql) in CASES {
        let plan = db
            .explain_sql(sql)
            .unwrap_or_else(|e| panic!("cannot plan {name} ({sql:?}): {e:?}"));
        let rendered = format!("{}\n", plan.render_pretty());
        let path = fixture_path(name);
        if update {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &rendered).unwrap();
            continue;
        }
        let committed = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                failures.push(format!(
                    "{name}: missing fixture {} ({e}); run with \
                     UPDATE_PLAN_SNAPSHOTS=1 to create it",
                    path.display()
                ));
                continue;
            }
        };
        if committed != rendered {
            failures.push(format!(
                "{name}: plan changed for {sql:?}\n{}",
                line_diff(&committed, &rendered)
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "plan snapshots diverged:\n{}",
        failures.join("\n")
    );
}

#[test]
fn snapshot_plans_have_expected_access_paths() {
    // Independent of fixture bytes: the class-level expectations that give
    // the snapshots their meaning.
    let db = snapshot_db();
    let seek_of = |sql: &str| {
        let plan = db.explain_sql(sql).unwrap();
        plan.render()
    };
    for (name, sql) in CASES {
        let rendered = seek_of(sql);
        match *name {
            "dw_original" | "dw_rewrite" | "ds_original" | "ds_rewrite" | "df_original" => {
                assert!(rendered.contains("\"PkSeek\""), "{name}: {rendered}");
            }
            "df_rewrite" => {
                assert!(rendered.contains("\"PkSeek\""), "{name}: {rendered}");
                assert!(rendered.contains("NestedLoopJoin"), "{name}: {rendered}");
            }
            "snc_original" | "snc_rewrite" => {
                assert!(rendered.contains("\"FullScan\""), "{name}: {rendered}");
            }
            "htmid_point_range" => {
                assert!(
                    rendered.contains("\"IndexRangeSeek\""),
                    "{name}: {rendered}"
                );
            }
            other => panic!("unclassified case {other}"),
        }
    }
}
