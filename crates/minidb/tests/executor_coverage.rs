//! Executor coverage over the generated workload: every statement of the
//! synthetic log either executes or fails with an *honest* error — the
//! engine never panics and never silently mis-executes an unsupported shape.

use sqlog_gen::{generate, GenConfig};
use sqlog_minidb::datagen::skyserver_db;
use sqlog_minidb::ExecError;

#[test]
fn every_generated_statement_executes_or_errors_honestly() {
    let log = generate(&GenConfig::with_scale(4_000, 31415));
    let db = skyserver_db(2_000, 31415);
    let mut executed = 0usize;
    let mut unsupported = 0usize;
    let mut rejected = 0usize;
    for e in &log.entries {
        match db.execute_sql(&e.statement) {
            Ok(_) => executed += 1,
            Err(ExecError::Unsupported(_)) => unsupported += 1,
            Err(ExecError::UnknownTable(_) | ExecError::UnknownColumn(_)) => rejected += 1,
        }
    }
    // The point-lookup crawlers, window scans, metadata browsing and most
    // human idioms execute; the table-valued-function spatial searches are
    // honestly Unsupported.
    assert!(
        executed as f64 > 0.5 * log.len() as f64,
        "executed {executed} of {}",
        log.len()
    );
    assert!(unsupported > 0);
    // Nothing should reference tables/columns the datagen lacks.
    assert_eq!(
        rejected, 0,
        "{rejected} statements hit missing tables/columns"
    );
}
