//! Executor coverage over the generated workload: every statement of the
//! synthetic log either executes or fails with an *honest* error — the
//! engine never panics and never silently mis-executes an unsupported shape.
//!
//! The differential tests below additionally pin the cost-based
//! planner + Volcano executor to the retained naive reference path: over
//! the full generated log and over every statement of the solver-rewrite
//! corpus, both executors must produce identical rows (order-normalized)
//! or both must reject the statement.

use sqlog_catalog::skyserver_catalog;
use sqlog_core::Pipeline;
use sqlog_gen::{generate, GenConfig};
use sqlog_minidb::datagen::skyserver_db;
use sqlog_minidb::{ExecError, ExecResult, MiniDb};
use sqlog_sql::ast::Query;

#[test]
fn every_generated_statement_executes_or_errors_honestly() {
    let log = generate(&GenConfig::with_scale(4_000, 31415));
    let db = skyserver_db(2_000, 31415);
    let mut executed = 0usize;
    let mut unsupported = 0usize;
    let mut rejected = 0usize;
    for e in &log.entries {
        match db.execute_sql(&e.statement) {
            Ok(_) => executed += 1,
            Err(ExecError::Unsupported(_)) => unsupported += 1,
            Err(ExecError::UnknownTable(_) | ExecError::UnknownColumn(_)) => rejected += 1,
        }
    }
    // The point-lookup crawlers, window scans, metadata browsing and most
    // human idioms execute; the table-valued-function spatial searches are
    // honestly Unsupported.
    assert!(
        executed as f64 > 0.5 * log.len() as f64,
        "executed {executed} of {}",
        log.len()
    );
    assert!(unsupported > 0);
    // Nothing should reference tables/columns the datagen lacks.
    assert_eq!(
        rejected, 0,
        "{rejected} statements hit missing tables/columns"
    );
}

fn parse_select(sql: &str) -> Option<Query> {
    let stmt = sqlog_sql::parse_statement(sql).ok()?;
    stmt.as_select().cloned()
}

/// Order-normalized row multiset of a result.
fn sorted_rows(r: &ExecResult) -> Vec<String> {
    let mut keys: Vec<String> = r.rows.iter().map(|row| format!("{row:?}")).collect();
    keys.sort();
    keys
}

/// Runs one statement through both executors and asserts they agree:
/// identical columns and rows (order-normalized) when both execute, or
/// both rejecting it. Returns whether the statement executed.
fn assert_paths_agree(db: &MiniDb, sql: &str) -> bool {
    let Some(query) = parse_select(sql) else {
        return false;
    };
    let planned = db.execute_query(&query);
    let naive = db.execute_query_naive(&query);
    match (planned, naive) {
        (Ok(p), Ok(n)) => {
            assert_eq!(p.columns, n.columns, "columns diverge on {sql:?}");
            assert_eq!(sorted_rows(&p), sorted_rows(&n), "rows diverge on {sql:?}");
            true
        }
        (Err(_), Err(_)) => false,
        (p, n) => panic!(
            "executors diverge on {sql:?}: planned {:?}, naive {:?}",
            p.as_ref().map(|r| r.rows.len()),
            n.as_ref().map(|r| r.rows.len())
        ),
    }
}

#[test]
fn planned_executor_matches_naive_reference_on_generated_log() {
    let log = generate(&GenConfig::with_scale(3_000, 27182));
    let db = skyserver_db(2_000, 27182);
    let mut executed = 0usize;
    for e in &log.entries {
        if assert_paths_agree(&db, &e.statement) {
            executed += 1;
        }
    }
    assert!(
        executed as f64 > 0.5 * log.len() as f64,
        "compared only {executed} of {}",
        log.len()
    );
}

#[test]
fn planned_executor_matches_naive_reference_on_solver_rewrites() {
    let log = generate(&GenConfig::with_scale(3_000, 16180));
    let corpus = Pipeline::new(&skyserver_catalog()).run(&log);
    assert!(
        !corpus.rewrites.is_empty(),
        "pipeline produced no rewrites to compare"
    );
    let db = skyserver_db(2_000, 16180);
    let mut executed = 0usize;
    for rw in &corpus.rewrites {
        for sql in rw
            .original_statements
            .iter()
            .chain(&rw.rewritten_statements)
        {
            if assert_paths_agree(&db, sql) {
                executed += 1;
            }
        }
    }
    assert!(executed > 0, "no corpus statement executed on both paths");
}
