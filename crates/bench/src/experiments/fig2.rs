//! Figure 2: (a) top patterns before/after cleaning, (b) frequency vs
//! userPopularity, (c) with/without user information, (d) true vs false CTH
//! by rank.

use crate::experiments::Experiment;
use sqlog_core::{top_patterns, AntipatternClass};
use sqlog_log::IntentKind;

/// One point of a rank series.
#[derive(Debug, Clone, PartialEq)]
pub struct RankPoint {
    /// 1-based rank.
    pub rank: usize,
    /// Frequency.
    pub frequency: u64,
    /// userPopularity.
    pub user_popularity: usize,
    /// Whether this pattern is an antipattern.
    pub antipattern: bool,
}

/// Fig. 2 (a): the top-`k` patterns of the raw log and of the cleaned log.
pub fn fig2a(exp: &Experiment, k: usize) -> (Vec<RankPoint>, Vec<RankPoint>) {
    let before = top_patterns(
        &exp.result.mined,
        &exp.result.marks,
        &exp.result.store,
        k,
        2,
    )
    .into_iter()
    .map(|r| RankPoint {
        rank: r.rank,
        frequency: r.frequency,
        user_popularity: r.user_popularity,
        antipattern: r.class.is_some(),
    })
    .collect();
    let clean = exp.run_pipeline(&exp.result.clean_log);
    let after = top_patterns(&clean.mined, &clean.marks, &clean.store, k, 2)
        .into_iter()
        .map(|r| RankPoint {
            rank: r.rank,
            frequency: r.frequency,
            user_popularity: r.user_popularity,
            antipattern: r.class.is_some(),
        })
        .collect();
    (before, after)
}

/// Fig. 2 (b): frequency vs userPopularity of the top-`k` patterns.
pub fn fig2b(exp: &Experiment, k: usize) -> Vec<RankPoint> {
    top_patterns(
        &exp.result.mined,
        &exp.result.marks,
        &exp.result.store,
        k,
        2,
    )
    .into_iter()
    .map(|r| RankPoint {
        rank: r.rank,
        frequency: r.frequency,
        user_popularity: r.user_popularity,
        antipattern: r.class.is_some(),
    })
    .collect()
}

/// Fig. 2 (c): top-`k` frequencies with full information vs with user and
/// session metadata stripped. Points are matched by skeleton.
pub fn fig2c(exp: &Experiment, k: usize) -> Vec<(u64, Option<u64>, bool)> {
    let stripped_result = exp.run_pipeline(&exp.log.strip_metadata());
    let with = top_patterns(
        &exp.result.mined,
        &exp.result.marks,
        &exp.result.store,
        k,
        2,
    );
    let without = top_patterns(
        &stripped_result.mined,
        &stripped_result.marks,
        &stripped_result.store,
        k * 4,
        1,
    );
    with.into_iter()
        .map(|r| {
            // Template ids differ between the two stores, so patterns are
            // matched by shape: same length and same skeleton statements.
            let matched = without
                .iter()
                .find(|w| w.key.len() == r.key.len() && w.skeletons == r.skeletons)
                .map(|w| w.frequency);
            (r.frequency, matched, r.class.is_some())
        })
        .collect()
}

/// One Fig. 2 (d) point: a distinct CTH candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct CthPoint {
    /// 1-based rank by frequency.
    pub rank: usize,
    /// Instance count of the candidate.
    pub frequency: u64,
    /// Distinct users across instances.
    pub user_popularity: usize,
    /// Ground-truth verdict.
    pub real: bool,
}

/// Fig. 2 (d): distinct CTH candidates with frequency, userPopularity and
/// the ground-truth verdict.
pub fn fig2d(exp: &Experiment) -> Vec<CthPoint> {
    use std::collections::HashMap;
    // identity → (instances, users, real votes)
    let mut agg: HashMap<&[sqlog_core::TemplateId], (u64, std::collections::HashSet<&str>, u64)> =
        HashMap::new();
    for (inst, entry_ids) in exp
        .result
        .instances
        .iter()
        .zip(&exp.result.instance_entry_ids)
    {
        if inst.class != AntipatternClass::CthCandidate {
            continue;
        }
        let head = &exp.log.entries[entry_ids[0] as usize];
        let real = entry_ids[1..].iter().any(|&id| {
            exp.log.entries[id as usize].truth.map(|t| t.kind) == Some(IntentKind::CthFollowUp)
        });
        let e = agg.entry(inst.identity.as_slice()).or_default();
        e.0 += 1;
        e.1.insert(head.user_key());
        e.2 += u64::from(real);
    }
    let mut points: Vec<CthPoint> = agg
        .into_values()
        .map(|(freq, users, real_votes)| CthPoint {
            rank: 0,
            frequency: freq,
            user_popularity: users.len(),
            real: real_votes * 2 > freq,
        })
        .collect();
    points.sort_by_key(|p| std::cmp::Reverse(p.frequency));
    for (i, p) in points.iter_mut().enumerate() {
        p.rank = i + 1;
    }
    points
}

/// Renders a rank series.
pub fn render_rank_series(title: &str, points: &[RankPoint]) -> String {
    let mut out = format!(
        "{title}\n{:>4} {:>12} {:>8}  type\n",
        "rank", "freq", "userPop"
    );
    for p in points {
        out.push_str(&format!(
            "{:>4} {:>12} {:>8}  {}\n",
            p.rank,
            p.frequency,
            p.user_popularity,
            if p.antipattern {
                "antipattern"
            } else {
                "pattern"
            }
        ));
    }
    out
}

/// Renders the Fig. 2 (d) points.
pub fn render_cth_points(points: &[CthPoint]) -> String {
    let mut out = String::from("Fig. 2(d) — CTH candidates: frequency & userPopularity by rank\n");
    out.push_str(&format!(
        "{:>4} {:>10} {:>8}  verdict\n",
        "rank", "freq", "userPop"
    ));
    for p in points {
        out.push_str(&format!(
            "{:>4} {:>10} {:>8}  {}\n",
            p.rank,
            p.frequency,
            p.user_popularity,
            if p.real { "true CTH" } else { "false CTH" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2a_cleaning_removes_top_antipatterns() {
        let exp = Experiment::new(20_000, 4007);
        let (before, after) = fig2a(&exp, 30);
        let anti_before = before.iter().filter(|p| p.antipattern).count();
        let anti_after = after.iter().filter(|p| p.antipattern).count();
        // Paper: 9 antipatterns in the top 30 before; far fewer after.
        assert!(anti_before >= 4, "before: {anti_before}");
        assert!(anti_after < anti_before, "after: {anti_after}");
    }

    #[test]
    fn fig2b_top_patterns_have_low_user_popularity() {
        let exp = Experiment::new(20_000, 4008);
        let points = fig2b(&exp, 40);
        // Paper §6.5: 23 of the top 40 patterns were run by one user.
        let single_user = points.iter().filter(|p| p.user_popularity <= 2).count();
        assert!(single_user >= 15, "single-user patterns: {single_user}");
    }

    #[test]
    fn fig2c_frequencies_survive_metadata_stripping() {
        let exp = Experiment::new(15_000, 4009);
        let pairs = fig2c(&exp, 10);
        let matched = pairs.iter().filter(|(_, m, _)| m.is_some()).count();
        assert!(matched >= 8, "matched patterns: {matched}");
        for (with, without, _) in pairs.iter().filter(|(_, m, _)| m.is_some()) {
            let ratio = without.unwrap() as f64 / *with as f64;
            assert!((0.65..=1.35).contains(&ratio), "ratio = {ratio}");
        }
    }

    #[test]
    fn fig2d_has_true_and_false_points() {
        let exp = Experiment::new(25_000, 4010);
        let points = fig2d(&exp);
        assert!(points.len() >= 10, "candidates: {}", points.len());
        assert!(points.iter().any(|p| p.real));
        assert!(points.iter().any(|p| !p.real));
        // Ranks are sequential.
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.rank, i + 1);
        }
    }
}
