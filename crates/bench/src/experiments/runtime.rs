//! §6.3's runtime experiment: execute the solvable-Stifle queries as-is and
//! after rewriting.
//!
//! Paper: 10 222 stifle queries → 254 rewritten statements (40× fewer);
//! 4 450 s → 152 s (29.3× faster). The dominant effect is the per-statement
//! round-trip overhead, which the rewrites pay once per merged instance.
//! We execute against `sqlog-minidb` and report both the simulated time
//! (cost model with explicit round-trip overhead, billed from the operator
//! tree) and the actual wall time — plus the **real operator-level costs**:
//! storage rows touched by SeqScan/IndexScan nodes and how many statements
//! planned an index seek. At `--db-rows` in the millions the scanned-row
//! column shows what the round-trip model abstracts away: the rewrites'
//! seeks touch the same handful of rows while a flat model would have
//! billed them as full scans.

use crate::experiments::Experiment;
use sqlog_core::Pipeline;
use sqlog_log::{IntentKind, QueryLog};
use sqlog_minidb::datagen::skyserver_db;
use std::time::Instant;

/// Result of the experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Runtime {
    /// Stifle statements executed as-is.
    pub statements_before: usize,
    /// Statements after rewriting.
    pub statements_after: usize,
    /// Simulated time before, seconds.
    pub simulated_before_secs: f64,
    /// Simulated time after, seconds.
    pub simulated_after_secs: f64,
    /// Wall time before, seconds (engine only, no simulated overhead).
    pub wall_before_secs: f64,
    /// Wall time after, seconds.
    pub wall_after_secs: f64,
    /// Storage rows touched before (operator tree, SeqScan/IndexScan only).
    pub scanned_before: u64,
    /// Storage rows touched after.
    pub scanned_after: u64,
    /// Statements whose plan sought an index before.
    pub seeks_before: usize,
    /// Statements whose plan sought an index after.
    pub seeks_after: usize,
    /// Statements that the executor rejected (should stay 0).
    pub unsupported: usize,
}

impl Runtime {
    /// Statement-count reduction factor (paper: ≈ 40×).
    pub fn statement_factor(&self) -> f64 {
        self.statements_before as f64 / self.statements_after.max(1) as f64
    }

    /// Simulated-time speedup (paper: ≈ 29×).
    pub fn simulated_speedup(&self) -> f64 {
        self.simulated_before_secs / self.simulated_after_secs.max(1e-12)
    }

    /// Operator-level scanned-row reduction factor.
    pub fn scanned_factor(&self) -> f64 {
        self.scanned_before as f64 / (self.scanned_after.max(1)) as f64
    }
}

/// Runs the experiment on the DW crawler queries (the dominant stifle
/// population, whose long runs produce the paper's 40× statement
/// reduction). Use [`run_all_stifles`] for the mixed population.
pub fn run(exp: &Experiment, cap: usize, db_rows: usize) -> Runtime {
    run_filtered(exp, cap, db_rows, &[IntentKind::StifleDw])
}

/// Runs the experiment on all solvable-stifle queries (DW + DS + DF). The
/// DS/DF instances are short (per-object pairs), so the reduction factor is
/// smaller than the DW-only one.
pub fn run_all_stifles(exp: &Experiment, cap: usize, db_rows: usize) -> Runtime {
    run_filtered(
        exp,
        cap,
        db_rows,
        &[
            IntentKind::StifleDw,
            IntentKind::StifleDs,
            IntentKind::StifleDf,
        ],
    )
}

fn run_filtered(exp: &Experiment, cap: usize, db_rows: usize, kinds: &[IntentKind]) -> Runtime {
    let db = skyserver_db(db_rows, exp.seed);

    // The stifle slice of the raw log (ground-truth labeled, as the paper
    // "picked 10 222 queries which form solvable antipatterns").
    let stifle_entries: Vec<_> = exp
        .log
        .entries
        .iter()
        .filter(|e| e.truth.is_some_and(|t| kinds.contains(&t.kind)))
        .take(cap)
        .cloned()
        .collect();

    // One leg of the experiment: execute every statement through the
    // planner, accumulating simulated time plus the operator-level truth
    // (storage rows touched, statements that planned a seek).
    let mut unsupported = 0usize;
    let mut run_leg = |entries: &mut dyn Iterator<Item = &str>| -> (f64, u64, usize, f64) {
        let mut simulated = 0.0f64;
        let mut scanned = 0u64;
        let mut seeks = 0usize;
        let wall = Instant::now();
        for stmt in entries {
            match db.execute_sql_planned(stmt) {
                Ok((planned, cost)) => {
                    simulated += cost;
                    scanned += planned.ops.storage_scanned();
                    if planned
                        .plan
                        .primary_scan()
                        .is_some_and(|s| s.access.is_seek())
                    {
                        seeks += 1;
                    }
                }
                Err(_) => unsupported += 1,
            }
        }
        (simulated, scanned, seeks, wall.elapsed().as_secs_f64())
    };

    let (simulated_before, scanned_before, seeks_before, wall_before) =
        run_leg(&mut stifle_entries.iter().map(|e| e.statement.as_str()));

    // Rewrite via the pipeline.
    let slice_log = QueryLog::from_entries(stifle_entries.clone());
    let rewritten = Pipeline::new(&exp.catalog).run(&slice_log).clean_log;

    let (simulated_after, scanned_after, seeks_after, wall_after) =
        run_leg(&mut rewritten.entries.iter().map(|e| e.statement.as_str()));

    Runtime {
        statements_before: stifle_entries.len(),
        statements_after: rewritten.len(),
        simulated_before_secs: simulated_before / 1_000.0,
        simulated_after_secs: simulated_after / 1_000.0,
        wall_before_secs: wall_before,
        wall_after_secs: wall_after,
        scanned_before,
        scanned_after,
        seeks_before,
        seeks_after,
        unsupported,
    }
}

/// Renders the result.
pub fn render(r: &Runtime) -> String {
    format!(
        "§6.3 — runtime of stifle queries, original vs rewritten\n\
         statements            {:>10} → {:<10} ({:.1}× fewer)\n\
         simulated time (s)    {:>10.1} → {:<10.1} ({:.1}× faster)\n\
         storage rows scanned  {:>10} → {:<10} ({:.1}× fewer)\n\
         index-seek statements {:>10} → {:<10}\n\
         engine wall time (s)  {:>10.3} → {:<10.3}\n\
         unsupported statements: {}\n",
        r.statements_before,
        r.statements_after,
        r.statement_factor(),
        r.simulated_before_secs,
        r.simulated_after_secs,
        r.simulated_speedup(),
        r.scanned_before,
        r.scanned_after,
        r.scanned_factor(),
        r.seeks_before,
        r.seeks_after,
        r.wall_before_secs,
        r.wall_after_secs,
        r.unsupported,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rewriting_wins_by_a_large_factor() {
        let exp = Experiment::new(15_000, 4013);
        let r = run(&exp, 4_000, 2_000);
        assert_eq!(r.unsupported, 0, "executor rejected statements");
        assert!(r.statements_before >= 1_000);
        // Paper: 40× fewer statements, 29.3× faster. DW run lengths are
        // calibrated to land in that regime.
        assert!(
            (15.0..=90.0).contains(&r.statement_factor()),
            "statement factor = {}",
            r.statement_factor()
        );
        assert!(
            r.simulated_speedup() > 10.0,
            "speedup = {}",
            r.simulated_speedup()
        );
        // The speedup tracks the statement reduction but is somewhat
        // smaller, because the merged statements do more work each — the
        // paper's 29.3× vs 40× relationship.
        assert!(r.simulated_speedup() <= r.statement_factor() * 1.05);
        // Operator-level truth: the planner answers both legs with index
        // seeks, and merging never touches more storage rows (the solver
        // deduplicates repeated constants).
        assert!(r.seeks_before >= r.statements_before / 2, "{r:?}");
        assert!(r.seeks_after >= r.statements_after / 2, "{r:?}");
        assert!(r.scanned_after <= r.scanned_before, "{r:?}");
    }

    #[test]
    fn mixed_stifles_still_win() {
        let exp = Experiment::new(10_000, 4014);
        let r = run_all_stifles(&exp, 3_000, 1_000);
        assert_eq!(r.unsupported, 0);
        // DS/DF pairs dilute the factor but rewriting still wins clearly.
        assert!(
            r.statement_factor() > 3.0,
            "statement factor = {}",
            r.statement_factor()
        );
    }
}
