//! Table 8: SWS coverage as a function of the frequency and userPopularity
//! thresholds.
//!
//! Paper grid (frequency 10 / 1 / 0.1 / 0.01 % × userPopularity 1–16):
//! coverage grows from 8.7 % (only the most obvious machine download) to
//! 46.3 % (aggressive cleaning). Monotone in both directions. The frequency
//! threshold is interpreted relative to the maximum pattern frequency (see
//! `sqlog_core::sws`); the strict corner then equals the coverage of the
//! dominant machine download, as in the paper.

use crate::experiments::Experiment;
use sqlog_core::sws_grid;

/// The paper's threshold axes.
pub const FREQUENCY_PCTS: [f64; 4] = [10.0, 1.0, 0.1, 0.01];
/// The paper's userPopularity axis.
pub const USER_POPULARITIES: [usize; 5] = [1, 2, 4, 8, 16];

/// Computes the grid: rows = userPopularity, columns = frequency threshold.
pub fn run(exp: &Experiment) -> Vec<Vec<f64>> {
    sws_grid(
        &exp.result.mined,
        &exp.result.marks,
        &FREQUENCY_PCTS,
        &USER_POPULARITIES,
    )
}

/// Renders the grid.
pub fn render(grid: &[Vec<f64>]) -> String {
    let mut out = String::from("Table 8 — SWS coverage (%) by thresholds\n");
    out.push_str(&format!("{:>12}", "userPop \\ f%"));
    for f in FREQUENCY_PCTS {
        out.push_str(&format!(" {f:>8}"));
    }
    out.push('\n');
    for (i, row) in grid.iter().enumerate() {
        out.push_str(&format!("{:>12}", USER_POPULARITIES[i]));
        for v in row {
            out.push_str(&format!(" {v:>8.1}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_monotone_both_ways() {
        let exp = Experiment::new(20_000, 4005);
        let grid = run(&exp);
        assert_eq!(grid.len(), USER_POPULARITIES.len());
        for row in &grid {
            assert_eq!(row.len(), FREQUENCY_PCTS.len());
            // Lower frequency threshold → more coverage (columns are in
            // decreasing threshold order).
            for w in row.windows(2) {
                assert!(w[0] <= w[1] + 1e-9);
            }
        }
        for c in 0..FREQUENCY_PCTS.len() {
            for pair in grid.windows(2) {
                assert!(pair[0][c] <= pair[1][c] + 1e-9);
            }
        }
        // The corner values bracket a substantial range, like 8.7 → 46.3 in
        // the paper.
        let strict = grid[0][0];
        let loose = grid[USER_POPULARITIES.len() - 1][FREQUENCY_PCTS.len() - 1];
        assert!(loose > strict, "strict {strict} loose {loose}");
        assert!(strict >= 3.0, "strict corner too small: {strict}");
        assert!(loose >= 15.0, "loose corner too small: {loose}");
    }
}
