//! Table 5: results overview.
//!
//! Paper: 41 998 253 queries → 40.18 M SELECTs (95.9 %) → 38.53 M after
//! deduplication (91.74 %) → 30.45 M final (72.51 %); 176 110 patterns;
//! max pattern frequency 3 349 709; 1 018 / 6 562 / 487 distinct
//! DW / DS / DF-Stifles covering 6.33 M / 1.28 M / 0.21 M queries; 50
//! candidate CTH covering 0.42 M queries.

use crate::experiments::Experiment;
use sqlog_core::{render_statistics, Statistics};

/// Runs the full pipeline and returns the statistics.
pub fn run(scale: usize, seed: u64) -> Statistics {
    Experiment::new(scale, seed).result.stats
}

/// Renders the table.
pub fn render(s: &Statistics) -> String {
    format!("Table 5 — results overview\n{}", render_statistics(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_of_class_magnitudes() {
        let s = run(20_000, 4002);
        let q = |c: &str| s.per_class.get(c).map_or(0, |x| x.queries);
        let d = |c: &str| s.per_class.get(c).map_or(0, |x| x.distinct);
        // Query mass: DW > DS > DF (Table 5).
        assert!(q("DW-Stifle") > q("DS-Stifle"));
        assert!(q("DS-Stifle") > q("DF-Stifle"));
        // Distinct counts: DS has the longest tail (paper: 6 562 DS vs
        // 1 018 DW vs 487 DF).
        assert!(d("DS-Stifle") > d("DF-Stifle"));
        // Final size below dedup size below original.
        assert!(s.final_size < s.after_dedup);
        assert!(s.after_dedup <= s.original_size);
    }
}
