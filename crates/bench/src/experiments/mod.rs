//! Experiment drivers, one module per table/figure of the paper.

pub mod ablation;
pub mod cth_examples;
pub mod ctx;
pub mod expert;
pub mod fig2;
pub mod fig3_4;
pub mod future_work;
pub mod purity;
pub mod runtime;
pub mod table4;
pub mod table5;
pub mod table6_7;
pub mod table8;

pub use ctx::Experiment;
