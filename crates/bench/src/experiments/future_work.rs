//! The paper's §7 future-work experiment: antipattern rate of a query
//! recommender trained on the raw vs the cleaned log.
//!
//! > "If the rate now is much smaller, then our approach obviously is more
//! > useful compared to the outcome that it is not."

use crate::experiments::Experiment;
use sqlog_core::{build_sessions, parse_log, Recommender, TemplateStore};
use sqlog_log::QueryLog;
use std::collections::HashSet;

/// Result of the study.
#[derive(Debug, Clone, PartialEq)]
pub struct FutureWork {
    /// Antipattern rate of the recommender trained on the raw log.
    pub raw_rate: f64,
    /// Antipattern rate of the recommender trained on the cleaned log.
    pub clean_rate: f64,
    /// Training transitions, raw.
    pub raw_transitions: u64,
    /// Training transitions, clean.
    pub clean_transitions: u64,
}

/// Trains on `log`, evaluates top-`k` suggestions against the set of
/// antipattern skeleton texts (store-independent identity).
fn rate_on(log: &QueryLog, anti: &HashSet<String>, k: usize) -> (f64, u64) {
    let store = TemplateStore::new();
    let parsed = parse_log(log, &store, 0);
    let cfg = sqlog_core::PipelineConfig::default();
    let sessions = build_sessions(log, &parsed.records, cfg.session_gap_ms);
    let recommender = Recommender::train(&sessions, &parsed.records);

    let mut total = 0u64;
    let mut hits = 0u64;
    for (current, weight) in recommender.sources() {
        for suggestion in recommender.recommend(current, k) {
            total += weight;
            if store.with(suggestion, |t| anti.contains(&t.full)) {
                hits += weight;
            }
        }
    }
    (
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        },
        recommender.transition_count(),
    )
}

/// Runs the study at top-`k` recommendations.
pub fn run(exp: &Experiment, k: usize) -> FutureWork {
    // Antipattern identity across template stores: the skeleton text of
    // every antipattern-marked unigram in the raw pipeline result.
    let anti: HashSet<String> = exp
        .result
        .marks
        .keys()
        .filter(|key| key.len() == 1)
        .map(|key| exp.result.store.with(key[0], |t| t.full.clone()))
        .collect();

    // Pre-cleaned (dedup-only) log stands in for "the original log".
    let (pre_clean, _) = sqlog_core::dedup(&exp.log, Some(1_000));
    let (raw_rate, raw_transitions) = rate_on(&pre_clean, &anti, k);
    let (clean_rate, clean_transitions) = rate_on(&exp.result.clean_log, &anti, k);

    FutureWork {
        raw_rate,
        clean_rate,
        raw_transitions,
        clean_transitions,
    }
}

/// Renders the result.
pub fn render(f: &FutureWork) -> String {
    format!(
        "§7 future work — antipattern rate of next-query recommendations\n\
         trained on raw log    {:>6.1}% of recommendations are antipatterns \
         ({} transitions)\n\
         trained on clean log  {:>6.1}% of recommendations are antipatterns \
         ({} transitions)\n",
        100.0 * f.raw_rate,
        f.raw_transitions,
        100.0 * f.clean_rate,
        f.clean_transitions,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cleaning_slashes_the_antipattern_recommendation_rate() {
        let exp = Experiment::new(15_000, 4020);
        let f = run(&exp, 1);
        assert!(f.raw_rate > 0.05, "raw rate = {}", f.raw_rate);
        assert!(
            f.clean_rate < f.raw_rate / 2.0,
            "raw {} vs clean {}",
            f.raw_rate,
            f.clean_rate
        );
    }
}
