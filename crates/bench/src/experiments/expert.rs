//! §6.7 "Feedback from Domain Experts", quantified.
//!
//! The paper showed its most popular patterns to astronomers, blind to the
//! antipattern marking; the experts judged every unmarked pattern meaningful
//! and recognized the marked ones as follow-up traffic. Here the generator's
//! ground truth plays the experts: for each top pattern we compare the
//! pipeline's antipattern mark with the majority intent of the queries
//! behind the pattern.

use crate::experiments::Experiment;
use sqlog_core::{build_sessions, parse_log, top_patterns, TemplateStore};
use sqlog_log::IntentKind;
use std::collections::HashMap;

/// Agreement between the marking and the ground truth over the top patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpertAgreement {
    /// Patterns examined.
    pub patterns: usize,
    /// Marked antipatterns whose majority intent really is antipattern
    /// traffic (stifle crawlers, CTH follow-ups, SNC) — the paper's experts
    /// "deem antipatterns follow-up queries".
    pub true_antipatterns: usize,
    /// Marked antipatterns whose majority intent is genuine user work.
    pub false_antipatterns: usize,
    /// Unmarked patterns whose majority intent is genuine user work — the
    /// experts' "all patterns are meaningful".
    pub true_patterns: usize,
    /// Unmarked patterns whose majority intent is antipattern traffic.
    pub missed_antipatterns: usize,
}

impl ExpertAgreement {
    /// Overall agreement rate in [0, 1].
    pub fn agreement(&self) -> f64 {
        (self.true_antipatterns + self.true_patterns) as f64 / self.patterns.max(1) as f64
    }
}

/// Runs the experiment over the top-`k` patterns of the raw log.
pub fn run(exp: &Experiment, k: usize) -> ExpertAgreement {
    // Majority intent per template, computed from the pre-cleaned log.
    let (pre_clean, _) = sqlog_core::dedup(&exp.log, Some(1_000));
    let store = TemplateStore::new();
    let parsed = parse_log(&pre_clean, &store, 0);
    let _sessions = build_sessions(&pre_clean, &parsed.records, 300_000);
    let mut label_per_template: HashMap<u64, HashMap<IntentKind, u64>> = HashMap::new();
    for rec in &parsed.records {
        let entry = &pre_clean.entries[rec.entry_idx as usize];
        if let Some(t) = entry.truth {
            *label_per_template
                .entry(store.with(rec.template, |tpl| tpl.fingerprint.0))
                .or_default()
                .entry(t.kind)
                .or_default() += 1;
        }
    }

    let is_antipattern_traffic = |kind: IntentKind| {
        matches!(
            kind,
            IntentKind::StifleDw
                | IntentKind::StifleDs
                | IntentKind::StifleDf
                | IntentKind::CthSource
                | IntentKind::CthFollowUp
                | IntentKind::CthCoincidental
                | IntentKind::Snc
                | IntentKind::Duplicate
        )
    };

    let rows = top_patterns(
        &exp.result.mined,
        &exp.result.marks,
        &exp.result.store,
        k,
        2,
    );
    let mut agreement = ExpertAgreement {
        patterns: 0,
        true_antipatterns: 0,
        false_antipatterns: 0,
        true_patterns: 0,
        missed_antipatterns: 0,
    };
    for row in rows {
        // Majority intent across the pattern's templates.
        let mut tally: HashMap<IntentKind, u64> = HashMap::new();
        for &t in &row.key {
            let fp = exp.result.store.with(t, |tpl| tpl.fingerprint.0);
            if let Some(labels) = label_per_template.get(&fp) {
                for (kind, count) in labels {
                    *tally.entry(*kind).or_default() += count;
                }
            }
        }
        let Some((majority, _)) = tally.into_iter().max_by_key(|(_, c)| *c) else {
            continue;
        };
        agreement.patterns += 1;
        match (row.class.is_some(), is_antipattern_traffic(majority)) {
            (true, true) => agreement.true_antipatterns += 1,
            (true, false) => agreement.false_antipatterns += 1,
            (false, false) => agreement.true_patterns += 1,
            (false, true) => agreement.missed_antipatterns += 1,
        }
    }
    agreement
}

/// Renders the result.
pub fn render(a: &ExpertAgreement, k: usize) -> String {
    format!(
        "§6.7 — marking vs ground-truth 'expert' judgment (top {k} patterns)\n\
         marked antipatterns, confirmed        {:>4}\n\
         marked antipatterns, disputed         {:>4}\n\
         unmarked patterns, confirmed genuine  {:>4}\n\
         unmarked patterns that were traffic   {:>4}\n\
         agreement: {:.1}%\n",
        a.true_antipatterns,
        a.false_antipatterns,
        a.true_patterns,
        a.missed_antipatterns,
        100.0 * a.agreement(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experts_agree_with_the_marking() {
        let exp = Experiment::new(15_000, 4050);
        let a = run(&exp, 40);
        assert!(a.patterns >= 30, "patterns = {}", a.patterns);
        assert!(a.true_antipatterns >= 3);
        assert!(a.true_patterns >= 15);
        // The paper's experts agreed with every judgment; with CTH-shaped
        // web-UI patterns in the mix a small disagreement band remains.
        assert!(a.agreement() >= 0.85, "agreement = {}", a.agreement());
    }
}
