//! Table 4: duplicate-threshold sweep.
//!
//! Paper (5.7 M-query sample): log size 100 % → 95.95 % at 1 s, 95.95 % at
//! 2 s, 95.89 % at 5 s, 95.80 % at 10 s, 95.41 % unrestricted. The shape to
//! reproduce: almost all duplicates are caught at 1 s, and going to ∞ buys
//! well under one additional percent.

use sqlog_core::dedup;
use sqlog_gen::{generate, GenConfig};

/// One row of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Threshold label (`"1 sec"`, …, `"unrestricted"`).
    pub threshold: String,
    /// Log size after deduplication.
    pub size: usize,
    /// Percentage of the original size.
    pub pct_of_original: f64,
}

/// Sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4 {
    /// Original log size.
    pub original: usize,
    /// One row per threshold.
    pub rows: Vec<Row>,
}

/// Runs the sweep at the paper's thresholds.
pub fn run(scale: usize, seed: u64) -> Table4 {
    let log = generate(&GenConfig::with_scale(scale, seed));
    let original = log.len();
    let thresholds: [(&str, Option<u64>); 5] = [
        ("1 sec", Some(1_000)),
        ("2 sec", Some(2_000)),
        ("5 sec", Some(5_000)),
        ("10 sec", Some(10_000)),
        ("unrestricted", None),
    ];
    let rows = thresholds
        .iter()
        .map(|(label, t)| {
            let (clean, _) = dedup(&log, *t);
            Row {
                threshold: (*label).to_string(),
                size: clean.len(),
                pct_of_original: 100.0 * clean.len() as f64 / original as f64,
            }
        })
        .collect();
    Table4 { original, rows }
}

/// Renders the table.
pub fn render(t: &Table4) -> String {
    let mut out = String::new();
    out.push_str("Table 4 — duplicate-threshold sweep\n");
    out.push_str(&format!(
        "{:<14} {:>12} {:>10}\n",
        "threshold", "log size", "% of orig"
    ));
    out.push_str(&format!(
        "{:<14} {:>12} {:>10.2}\n",
        "original", t.original, 100.0
    ));
    for r in &t.rows {
        out.push_str(&format!(
            "{:<14} {:>12} {:>10.2}\n",
            r.threshold, r.size, r.pct_of_original
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let t = run(20_000, 4001);
        // Sizes decrease monotonically with the threshold.
        for w in t.rows.windows(2) {
            assert!(w[0].size >= w[1].size);
        }
        // 1 s already removes the true duplicates (reload bursts)…
        let one_sec = t.rows[0].pct_of_original;
        assert!((90.0..99.5).contains(&one_sec), "1s → {one_sec}%");
        // …while the unrestricted threshold additionally eats *intentional*
        // repeats (robot rescans of the same window, users revisiting the
        // same famous target) — the paper's very argument for choosing a
        // small threshold ("two identical queries with a big time
        // difference might not be a duplicate after all, but reflect user
        // intention"). The gap stays bounded.
        let unrestricted = t.rows.last().unwrap().pct_of_original;
        let gap = one_sec - unrestricted;
        assert!((0.0..5.0).contains(&gap), "gap = {gap}");
    }
}
