//! Cluster interpretability against ground truth — a quantitative version of
//! the paper's qualitative §6.9 finding.
//!
//! The paper's domain experts judged that after removal "most clusters do
//! reflect an area of user interest". With the generator's labels standing
//! in for the experts, we can measure that: for each of the biggest
//! clusters, take the majority ground-truth label of its queries; a cluster
//! is *interpretable* when that label is genuine user work (a human idiom or
//! a machine download), not antipattern traffic.

use crate::experiments::Experiment;
use sqlog_cluster::{cluster_regions, region_of_query};
use sqlog_log::{IntentKind, QueryLog};
use std::collections::HashMap;

/// Interpretability stats for one log variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariantPurity {
    /// Clusters examined (the `k` biggest).
    pub clusters: usize,
    /// Clusters whose majority label is genuine user work.
    pub interpretable: usize,
    /// Mean majority-label share (how single-minded clusters are).
    pub mean_purity: f64,
}

impl VariantPurity {
    /// Interpretable share in [0, 1].
    pub fn rate(&self) -> f64 {
        self.interpretable as f64 / self.clusters.max(1) as f64
    }
}

/// The experiment result for raw / clean / removal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Purity {
    /// Raw-log clusters.
    pub raw: VariantPurity,
    /// Removal-log clusters.
    pub removal: VariantPurity,
}

/// Clusters `log` and scores the `k` biggest clusters against the labels in
/// `truth_by_statement` (rewritten statements have no label and count as
/// non-genuine, which is conservative).
fn score(
    log: &QueryLog,
    truth_by_statement: &HashMap<&str, IntentKind>,
    threshold: f64,
    k: usize,
) -> VariantPurity {
    // Dedup identical regions, tracking the labels of the queries behind
    // each distinct region.
    let mut by_key: HashMap<String, usize> = HashMap::new();
    let mut regions = Vec::new();
    let mut weights: Vec<u64> = Vec::new();
    let mut labels: Vec<HashMap<Option<IntentKind>, u64>> = Vec::new();
    for e in &log.entries {
        let Ok(stmt) = sqlog_sql::parse_statement(&e.statement) else {
            continue;
        };
        let Some(q) = stmt.as_select() else { continue };
        let region = region_of_query(q);
        let key = region.key();
        let idx = match by_key.get(&key) {
            Some(&i) => i,
            None => {
                by_key.insert(key, regions.len());
                regions.push(region);
                weights.push(0);
                labels.push(HashMap::new());
                regions.len() - 1
            }
        };
        weights[idx] += 1;
        let label = e
            .truth
            .map(|t| t.kind)
            .or_else(|| truth_by_statement.get(e.statement.as_str()).copied());
        *labels[idx].entry(label).or_default() += 1;
    }

    let clustering = cluster_regions(&regions, &weights, threshold);
    let mut examined = 0usize;
    let mut interpretable = 0usize;
    let mut purity_sum = 0.0f64;
    for cluster in clustering.clusters.iter().take(k) {
        let mut tally: HashMap<Option<IntentKind>, u64> = HashMap::new();
        for &m in &cluster.members {
            for (label, count) in &labels[m] {
                *tally.entry(*label).or_default() += count;
            }
        }
        let total: u64 = tally.values().sum();
        let Some((majority, majority_count)) = tally.into_iter().max_by_key(|(_, c)| *c) else {
            continue;
        };
        examined += 1;
        purity_sum += majority_count as f64 / total.max(1) as f64;
        if matches!(
            majority,
            Some(IntentKind::Human | IntentKind::Sws | IntentKind::WebUi)
        ) {
            interpretable += 1;
        }
    }
    VariantPurity {
        clusters: examined,
        interpretable,
        mean_purity: purity_sum / examined.max(1) as f64,
    }
}

/// Runs the experiment on the first `cap` entries of the raw log.
pub fn run(exp: &Experiment, cap: usize, threshold: f64, k: usize) -> Purity {
    let extract = QueryLog::from_entries(exp.log.entries.iter().take(cap).cloned().collect());
    let result = exp.run_pipeline(&extract);
    let truth_by_statement: HashMap<&str, IntentKind> = HashMap::new();
    Purity {
        raw: score(&extract, &truth_by_statement, threshold, k),
        removal: score(&result.removal_log, &truth_by_statement, threshold, k),
    }
}

/// Renders the result.
pub fn render(p: &Purity, k: usize) -> String {
    let line = |name: &str, v: &VariantPurity| {
        format!(
            "  {name:<8} {:>3}/{:<3} interpretable ({:>5.1}%), mean purity {:.2}\n",
            v.interpretable,
            v.clusters,
            100.0 * v.rate(),
            v.mean_purity,
        )
    };
    format!(
        "Cluster interpretability vs ground truth (top {k} clusters):\n{}{}",
        line("raw", &p.raw),
        line("removal", &p.removal),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removal_clusters_are_more_interpretable() {
        let exp = Experiment::new(12_000, 4040);
        let p = run(&exp, 8_000, 0.9, 50);
        assert!(p.raw.clusters >= 30);
        assert!(p.removal.clusters >= 30);
        // The §6.9 claim, quantified: the removal log's big clusters are
        // genuine user interests at a higher rate than the raw log's.
        assert!(
            p.removal.rate() > p.raw.rate(),
            "raw {:.2} removal {:.2}",
            p.raw.rate(),
            p.removal.rate()
        );
    }
}
