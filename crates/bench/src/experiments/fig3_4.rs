//! Figures 3 and 4: the downstream clustering experiment (§6.9).
//!
//! The paper clusters a 1.3 M-query extract three ways — raw, cleaned,
//! removal — sweeping the distance threshold 0.1…0.9. Findings to
//! reproduce: the raw log yields many small clusters; removal yields the
//! fewest/biggest clusters and the best runtime; every removal-log cluster
//! also exists in the raw and cleaned logs; and the DS-dominated clusters
//! shrink roughly 2× in the cleaned log (Fig. 4c).

use crate::experiments::Experiment;
use sqlog_cluster::{cluster_statements, Clustering, Region};
use std::time::Instant;

/// Clustering metrics for one (variant, threshold) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Number of clusters.
    pub clusters: usize,
    /// Average cluster size.
    pub average_size: f64,
    /// Wall-clock runtime of the clustering call, seconds.
    pub runtime_secs: f64,
}

/// The Fig. 3 sweep for the three log variants.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3 {
    /// Thresholds swept.
    pub thresholds: Vec<f64>,
    /// Per-threshold metrics for the raw log.
    pub raw: Vec<Cell>,
    /// Per-threshold metrics for the cleaned log.
    pub clean: Vec<Cell>,
    /// Per-threshold metrics for the removal log.
    pub removal: Vec<Cell>,
}

fn statements(log: &sqlog_log::QueryLog, cap: usize) -> Vec<&str> {
    log.entries
        .iter()
        .take(cap)
        .map(|e| e.statement.as_str())
        .collect()
}

fn sweep(statements: &[&str], thresholds: &[f64]) -> Vec<Cell> {
    thresholds
        .iter()
        .map(|&t| {
            let start = Instant::now();
            let (clustering, _) = cluster_statements(statements.iter().copied(), t);
            Cell {
                clusters: clustering.count(),
                average_size: clustering.average_size(),
                runtime_secs: start.elapsed().as_secs_f64(),
            }
        })
        .collect()
}

/// Builds the three §6.9 variants from one extract of the raw log: the
/// extract itself, its cleaned version, and its removal version. The paper
/// extracts 1.3 M queries and derives the variants from that same extract
/// (raw 1.3 M → clean 1.0 M → removal 0.89 M).
fn variants(
    exp: &Experiment,
    cap: usize,
) -> (
    sqlog_log::QueryLog,
    sqlog_log::QueryLog,
    sqlog_log::QueryLog,
) {
    let extract =
        sqlog_log::QueryLog::from_entries(exp.log.entries.iter().take(cap).cloned().collect());
    let result = exp.run_pipeline(&extract);
    (extract, result.clean_log, result.removal_log)
}

/// Runs the Fig. 3 sweep. `cap` bounds the extract size (the paper used a
/// 1.3 M extract; default drivers use 10⁴–10⁵).
pub fn fig3(exp: &Experiment, cap: usize, thresholds: &[f64]) -> Fig3 {
    let (raw, clean, removal) = variants(exp, cap);
    let raw = statements(&raw, usize::MAX);
    let clean = statements(&clean, usize::MAX);
    let removal = statements(&removal, usize::MAX);
    Fig3 {
        thresholds: thresholds.to_vec(),
        raw: sweep(&raw, thresholds),
        clean: sweep(&clean, thresholds),
        removal: sweep(&removal, thresholds),
    }
}

/// Renders the Fig. 3 series.
pub fn render_fig3(f: &Fig3) -> String {
    let mut out = String::from("Fig. 3 — clustering: cluster count / average size / runtime(s)\n");
    out.push_str(&format!(
        "{:>6} {:>22} {:>22} {:>22}\n",
        "thresh", "raw", "clean", "removal"
    ));
    for (i, t) in f.thresholds.iter().enumerate() {
        let cell = |c: &Cell| {
            format!(
                "{:>6} {:>8.1} {:>6.2}",
                c.clusters, c.average_size, c.runtime_secs
            )
        };
        out.push_str(&format!(
            "{:>6.1} {:>22} {:>22} {:>22}\n",
            t,
            cell(&f.raw[i]),
            cell(&f.clean[i]),
            cell(&f.removal[i])
        ));
    }
    out
}

/// Fig. 4 (a, b): cluster-size rank curves at one threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4 {
    /// Sizes (descending) for the raw log.
    pub raw_sizes: Vec<u64>,
    /// Sizes for the cleaned log.
    pub clean_sizes: Vec<u64>,
    /// Sizes for the removal log.
    pub removal_sizes: Vec<u64>,
    /// Fig. 4 (c): top DS-cluster sizes in the raw log.
    pub ds_raw: Vec<u64>,
    /// Fig. 4 (c): top DS-cluster sizes in the cleaned log.
    pub ds_clean: Vec<u64>,
}

/// A DS-dominated cluster in this workload: its region lives on the
/// `dbobjects` metadata table (the paper's biggest DS cluster was exactly
/// the `DBObjects` description/text queries).
fn ds_sizes(clustering: &Clustering, regions: &[Region], k: usize) -> Vec<u64> {
    clustering
        .clusters
        .iter()
        .filter(|c| {
            c.members
                .iter()
                .any(|&m| regions[m].tables.len() == 1 && regions[m].tables.contains("dbobjects"))
        })
        .map(|c| c.size)
        .take(k)
        .collect()
}

/// Runs the Fig. 4 extraction at `threshold` (the paper uses 0.9).
pub fn fig4(exp: &Experiment, cap: usize, threshold: f64, k: usize) -> Fig4 {
    let (raw, clean, removal) = variants(exp, cap);
    let raw = statements(&raw, usize::MAX);
    let clean = statements(&clean, usize::MAX);
    let removal = statements(&removal, usize::MAX);
    let (raw_c, raw_r) = cluster_statements(raw.iter().copied(), threshold);
    let (clean_c, clean_r) = cluster_statements(clean.iter().copied(), threshold);
    let (removal_c, _) = cluster_statements(removal.iter().copied(), threshold);
    Fig4 {
        ds_raw: ds_sizes(&raw_c, &raw_r, k),
        ds_clean: ds_sizes(&clean_c, &clean_r, k),
        raw_sizes: raw_c.sizes(),
        clean_sizes: clean_c.sizes(),
        removal_sizes: removal_c.sizes(),
    }
}

/// Renders the Fig. 4 series.
pub fn render_fig4(f: &Fig4) -> String {
    let mut out = String::from("Fig. 4 — cluster sizes by rank (threshold 0.9)\n");
    let head = |name: &str, sizes: &[u64]| {
        let shown: Vec<String> = sizes.iter().take(12).map(u64::to_string).collect();
        format!(
            "{name:<10} n={:<6} top: {}\n",
            sizes.len(),
            shown.join(", ")
        )
    };
    out.push_str(&head("raw", &f.raw_sizes));
    out.push_str(&head("clean", &f.clean_sizes));
    out.push_str(&head("removal", &f.removal_sizes));
    out.push_str(&head("DS raw", &f.ds_raw));
    out.push_str(&head("DS clean", &f.ds_clean));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_shapes() {
        let exp = Experiment::new(8_000, 4011);
        let f = fig3(&exp, 4_000, &[0.5, 0.9]);
        for i in 0..f.thresholds.len() {
            // Removal produces at most as many clusters as raw (noise gone).
            assert!(
                f.removal[i].clusters <= f.raw[i].clusters,
                "raw {} removal {}",
                f.raw[i].clusters,
                f.removal[i].clusters
            );
            // And clusters exist everywhere.
            assert!(f.removal[i].clusters > 0);
            assert!(f.clean[i].clusters > 0);
        }
    }

    #[test]
    fn fig4_ds_clusters_shrink_after_cleaning() {
        let exp = Experiment::new(10_000, 4012);
        let f = fig4(&exp, 10_000, 0.9, 20);
        assert!(!f.ds_raw.is_empty());
        assert!(!f.ds_clean.is_empty());
        // Paper Fig. 4 (c): raw DS clusters ≈ 2× the cleaned ones.
        let raw_top: u64 = f.ds_raw.iter().take(5).sum();
        let clean_top: u64 = f.ds_clean.iter().take(5).sum();
        assert!(
            raw_top as f64 >= 1.3 * clean_top as f64,
            "raw {raw_top} vs clean {clean_top}"
        );
    }
}
