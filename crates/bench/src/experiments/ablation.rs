//! Ablations of the framework's design choices.
//!
//! Three knobs the paper discusses but does not sweep:
//!
//! 1. **Definition 11's key-attribute axiom** — "We could have omitted the
//!    third axiom in principle … with the potential drawback of some false
//!    positives." Measured: detected stifle queries and their ground-truth
//!    false-positive rate, with and without the axiom.
//! 2. **Session gap** — Def. 8 bounds instances by uninterrupted runs; the
//!    gap parameter decides when a pause ends a session.
//! 3. **Max n-gram length** — how long the mined pattern sequences may be.

use crate::experiments::Experiment;
use sqlog_catalog::skyserver_catalog;
use sqlog_core::{AntipatternClass, Pipeline, PipelineConfig};
use sqlog_gen::{generate, GenConfig};
use sqlog_log::{IntentKind, QueryLog};

/// Result of the key-axiom ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyAxiomAblation {
    /// Stifle-covered queries with the axiom enforced.
    pub with_queries: usize,
    /// Ground-truth false positives among them.
    pub with_false_positives: usize,
    /// Stifle-covered queries with the axiom dropped.
    pub without_queries: usize,
    /// Ground-truth false positives among them.
    pub without_false_positives: usize,
}

impl KeyAxiomAblation {
    /// False-positive rate with the axiom.
    pub fn with_fp_rate(&self) -> f64 {
        self.with_false_positives as f64 / self.with_queries.max(1) as f64
    }

    /// False-positive rate without the axiom.
    pub fn without_fp_rate(&self) -> f64 {
        self.without_false_positives as f64 / self.without_queries.max(1) as f64
    }
}

fn stifle_stats(log: &QueryLog, config: PipelineConfig) -> (usize, usize) {
    let catalog = skyserver_catalog();
    let result = Pipeline::new(&catalog).with_config(config).run(log);
    let mut covered = std::collections::HashSet::new();
    for (inst, ids) in result.instances.iter().zip(&result.instance_entry_ids) {
        if matches!(
            inst.class,
            AntipatternClass::DwStifle | AntipatternClass::DsStifle | AntipatternClass::DfStifle
        ) {
            covered.extend(ids.iter().copied());
        }
    }
    // A flagged query is a *false positive* when the generator meant it as
    // genuine ad-hoc work (human science or a machine download). CTH
    // follow-ups and web-UI metadata pairs are structurally real stifles —
    // the paper's Table 2 itself marks CTH follow-ups as DW-Stifle — so they
    // do not count against the detector.
    let false_positives = covered
        .iter()
        .filter(|&&id| {
            matches!(
                log.entries[id as usize].truth.map(|t| t.kind),
                Some(IntentKind::Human | IntentKind::Sws)
            )
        })
        .count();
    (covered.len(), false_positives)
}

/// Runs the key-axiom ablation.
pub fn key_axiom(exp: &Experiment) -> KeyAxiomAblation {
    let with = stifle_stats(&exp.log, PipelineConfig::default());
    let without = stifle_stats(
        &exp.log,
        PipelineConfig {
            require_key_attribute: false,
            ..PipelineConfig::default()
        },
    );
    KeyAxiomAblation {
        with_queries: with.0,
        with_false_positives: with.1,
        without_queries: without.0,
        without_false_positives: without.1,
    }
}

/// One row of the session-gap sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapRow {
    /// Session gap in milliseconds.
    pub gap_ms: u64,
    /// Mined patterns above the frequency floor.
    pub patterns: usize,
    /// Solvable-antipattern coverage (% of SELECTs).
    pub solvable_coverage_pct: f64,
}

/// Sweeps the session gap.
pub fn session_gap(scale: usize, seed: u64, gaps_ms: &[u64]) -> Vec<GapRow> {
    let log = generate(&GenConfig::with_scale(scale, seed));
    let catalog = skyserver_catalog();
    gaps_ms
        .iter()
        .map(|&gap_ms| {
            let result = Pipeline::new(&catalog)
                .with_config(PipelineConfig {
                    session_gap_ms: gap_ms,
                    ..PipelineConfig::default()
                })
                .run(&log);
            GapRow {
                gap_ms,
                patterns: result.stats.pattern_count,
                solvable_coverage_pct: result.stats.solvable_coverage_pct(),
            }
        })
        .collect()
}

/// One row of the n-gram sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NgramRow {
    /// Maximum n-gram length mined.
    pub max_ngram: usize,
    /// Mined patterns above the frequency floor.
    pub patterns: usize,
    /// Antipatterns among the top-15 patterns.
    pub antipatterns_in_top15: usize,
}

/// Sweeps the maximum mined n-gram length.
pub fn max_ngram(scale: usize, seed: u64, ns: &[usize]) -> Vec<NgramRow> {
    let log = generate(&GenConfig::with_scale(scale, seed));
    let catalog = skyserver_catalog();
    ns.iter()
        .map(|&n| {
            let result = Pipeline::new(&catalog)
                .with_config(PipelineConfig {
                    max_ngram: n,
                    ..PipelineConfig::default()
                })
                .run(&log);
            let top = sqlog_core::top_patterns(&result.mined, &result.marks, &result.store, 15, 2);
            NgramRow {
                max_ngram: n,
                patterns: result.stats.pattern_count,
                antipatterns_in_top15: top.iter().filter(|r| r.class.is_some()).count(),
            }
        })
        .collect()
}

/// Renders all three ablations.
pub fn render(ka: &KeyAxiomAblation, gaps: &[GapRow], ngrams: &[NgramRow]) -> String {
    let mut out = String::from("Ablations\n\n");
    out.push_str(&format!(
        "Def. 11 key-attribute axiom:\n\
           enforced   {:>8} stifle queries, {:>6} false positives ({:.2}%)\n\
           dropped    {:>8} stifle queries, {:>6} false positives ({:.2}%)\n\n",
        ka.with_queries,
        ka.with_false_positives,
        100.0 * ka.with_fp_rate(),
        ka.without_queries,
        ka.without_false_positives,
        100.0 * ka.without_fp_rate(),
    ));
    out.push_str("session gap sweep:\n  gap(s)   patterns   solvable coverage %\n");
    for g in gaps {
        out.push_str(&format!(
            "  {:>6} {:>10} {:>21.2}\n",
            g.gap_ms / 1_000,
            g.patterns,
            g.solvable_coverage_pct
        ));
    }
    out.push_str("\nmax n-gram sweep:\n  n   patterns   antipatterns in top-15\n");
    for n in ngrams {
        out.push_str(&format!(
            "  {}   {:>8} {:>24}\n",
            n.max_ngram, n.patterns, n.antipatterns_in_top15
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dropping_the_key_axiom_adds_false_positives() {
        let exp = Experiment::new(12_000, 4030);
        let ka = key_axiom(&exp);
        // More queries are flagged without the axiom…
        assert!(
            ka.without_queries > ka.with_queries,
            "with {} without {}",
            ka.with_queries,
            ka.without_queries
        );
        // …and the extra flags are mostly false positives (human range
        // probes, SWS windows with equality constants, …).
        assert!(
            ka.without_false_positives > ka.with_false_positives,
            "fp with {} without {}",
            ka.with_false_positives,
            ka.without_false_positives
        );
        // The axiom keeps the detector precise; dropping it lets human
        // probes and scan windows slip in.
        assert!(ka.with_fp_rate() < 0.05, "fp rate = {}", ka.with_fp_rate());
        assert!(
            ka.without_fp_rate() > ka.with_fp_rate(),
            "fp rates: with {} without {}",
            ka.with_fp_rate(),
            ka.without_fp_rate()
        );
    }

    #[test]
    fn longer_gaps_find_at_least_as_many_patterns() {
        let rows = session_gap(6_000, 4031, &[10_000, 300_000]);
        // Longer gaps mean longer sessions, so the same or more multi-query
        // instances are visible.
        assert!(rows[1].solvable_coverage_pct >= rows[0].solvable_coverage_pct - 1.0);
    }

    #[test]
    fn ngram_sweep_monotone_pattern_counts() {
        let rows = max_ngram(6_000, 4032, &[1, 2, 3]);
        assert!(rows[0].patterns <= rows[1].patterns);
        assert!(rows[1].patterns <= rows[2].patterns);
    }
}
