//! Shared experiment context: one generated log + one pipeline run.

use sqlog_catalog::{skyserver_catalog, Catalog};
use sqlog_core::{Pipeline, PipelineResult};
use sqlog_gen::{generate, GenConfig};
use sqlog_log::QueryLog;

/// A generated log together with its pipeline result.
pub struct Experiment {
    /// The raw synthetic log.
    pub log: QueryLog,
    /// The schema catalog.
    pub catalog: Catalog,
    /// The pipeline result over `log`.
    pub result: PipelineResult,
    /// Scale (target query count) used.
    pub scale: usize,
    /// Seed used.
    pub seed: u64,
}

impl Experiment {
    /// Generates a log at `scale` with `seed` and runs the default pipeline.
    pub fn new(scale: usize, seed: u64) -> Self {
        let log = generate(&GenConfig::with_scale(scale, seed));
        let catalog = skyserver_catalog();
        let result = Pipeline::new(&catalog).run(&log);
        Experiment {
            log,
            catalog,
            result,
            scale,
            seed,
        }
    }

    /// Re-runs the pipeline on an arbitrary log with the same catalog.
    pub fn run_pipeline(&self, log: &QueryLog) -> PipelineResult {
        Pipeline::new(&self.catalog).run(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_builds() {
        let e = Experiment::new(2_000, 42);
        assert!(e.log.len() >= 1_500);
        assert!(e.result.stats.final_size > 0);
    }
}
