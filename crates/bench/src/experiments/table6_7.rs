//! Tables 6 and 7: the most popular antipatterns and (after cleaning) the
//! most popular patterns.
//!
//! Paper Table 6: the top antipatterns are DW/DS pairs on
//! `photoprimary.objid` (frequencies 1.45 M / 1.41 M / 1.04 M / 0.56 M /
//! 0.56 M) from 1–3 distinct IPs. Table 7: after cleaning, the top-5
//! patterns are spatial searches (8.69 / 8.0 / 5.65 / 5.44 / 1.75 % of the
//! log) from 1–19 distinct IPs.

use crate::experiments::Experiment;
use sqlog_core::{render_pattern_table, top_patterns, PatternRow};

/// Table 6: the `k` most frequent *antipattern* patterns.
pub fn table6(exp: &Experiment, k: usize) -> Vec<PatternRow> {
    top_patterns(
        &exp.result.mined,
        &exp.result.marks,
        &exp.result.store,
        400,
        2,
    )
    .into_iter()
    .filter(|r| r.class.is_some())
    .take(k)
    .collect()
}

/// Table 7: the `k` most frequent patterns of the *cleaned* log.
pub fn table7(exp: &Experiment, k: usize) -> Vec<PatternRow> {
    let clean = exp.run_pipeline(&exp.result.clean_log);
    top_patterns(&clean.mined, &clean.marks, &clean.store, 400, 2)
        .into_iter()
        .filter(|r| r.class.is_none())
        .take(k)
        .collect()
}

/// Renders either table.
pub fn render(title: &str, rows: &[PatternRow]) -> String {
    format!("{title}\n{}", render_pattern_table(rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_top_antipatterns_are_objid_stifles() {
        let exp = Experiment::new(20_000, 4003);
        let rows = table6(&exp, 5);
        assert_eq!(rows.len(), 5);
        // The paper's dominant antipatterns filter photoprimary by objid.
        let objid_hits = rows
            .iter()
            .filter(|r| r.skeletons[0].contains("objid = <num>"))
            .count();
        assert!(objid_hits >= 3, "objid stifles in top-5: {objid_hits}");
        // Low user popularity (few distinct IPs) throughout.
        assert!(rows.iter().all(|r| r.user_popularity <= 8));
    }

    #[test]
    fn table7_top_patterns_are_spatial_searches() {
        let exp = Experiment::new(20_000, 4004);
        let rows = table7(&exp, 5);
        assert_eq!(rows.len(), 5);
        let spatial = rows
            .iter()
            .filter(|r| {
                let s = &r.skeletons[0];
                s.contains("fgetnearbyobjeq")
                    || s.contains("fgetobjfromrect")
                    || s.contains("htmid")
            })
            .count();
        assert!(spatial >= 4, "spatial searches in top-5: {spatial}");
        // None of them is an antipattern (we filtered, but also the marks
        // must not contain them in the first place for unmarked rows).
        assert!(rows.iter().all(|r| r.class.is_none()));
    }
}
