//! Tables 9 and 10: exemplar CTH candidates, one false and one true.
//!
//! The paper shows two candidates: a schema-browsing sequence with a
//! 27-second think pause (judged *not* a real CTH) and an instant
//! `fGetNearestObjEq` → `SpecObjAll` chase (judged real). This driver pulls
//! one instance of each kind from the detected candidates, using the
//! generator's ground truth in place of the domain experts.

use crate::experiments::Experiment;
use sqlog_core::AntipatternClass;
use sqlog_log::IntentKind;

/// One exemplar candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Exemplar {
    /// Whether the ground truth says the dependency is real.
    pub real: bool,
    /// `(timestamp, statement)` rows of the instance.
    pub statements: Vec<(String, String)>,
}

/// Extracts one real and one false exemplar (when present).
pub fn run(exp: &Experiment) -> Vec<Exemplar> {
    let mut out: Vec<Exemplar> = Vec::new();
    let mut have_real = false;
    let mut have_false = false;
    for (inst, entry_ids) in exp
        .result
        .instances
        .iter()
        .zip(&exp.result.instance_entry_ids)
    {
        if inst.class != AntipatternClass::CthCandidate {
            continue;
        }
        let real = entry_ids[1..].iter().any(|&id| {
            exp.log.entries[id as usize].truth.map(|t| t.kind) == Some(IntentKind::CthFollowUp)
        });
        if (real && have_real) || (!real && have_false) {
            continue;
        }
        let statements = entry_ids
            .iter()
            .map(|&id| {
                let e = &exp.log.entries[id as usize];
                (e.timestamp.to_string(), e.statement.clone())
            })
            .collect();
        out.push(Exemplar { real, statements });
        if real {
            have_real = true;
        } else {
            have_false = true;
        }
        if have_real && have_false {
            break;
        }
    }
    out.sort_by_key(|e| e.real); // false (Table 9) first, true (Table 10) second
    out
}

/// Renders the exemplars.
pub fn render(exemplars: &[Exemplar]) -> String {
    let mut out = String::from("Tables 9/10 — CTH candidate exemplars\n");
    for e in exemplars {
        out.push_str(if e.real {
            "\nReal CTH (Table 10 analogue — instant, value-dependent):\n"
        } else {
            "\nFalse candidate (Table 9 analogue — human think pause):\n"
        });
        for (i, (ts, stmt)) in e.statements.iter().enumerate() {
            out.push_str(&format!("  {} [{}] {}\n", i + 1, ts, stmt));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_both_kinds() {
        let exp = Experiment::new(25_000, 4006);
        let ex = run(&exp);
        assert_eq!(ex.len(), 2, "expected one false and one real exemplar");
        assert!(!ex[0].real);
        assert!(ex[1].real);
        // The real hunt fires within ~a second (Table 10 shows a 0 s gap);
        // the false candidate has a human think pause (Table 9 shows 27 s).
        let gap_secs = |e: &Exemplar| {
            let parse = |s: &str| s.parse::<sqlog_log::Timestamp>().unwrap();
            parse(&e.statements[1].0).abs_diff(parse(&e.statements[0].0)) / 1_000
        };
        assert!(ex[1].statements.len() >= 2);
        assert!(
            gap_secs(&ex[1]) <= 1,
            "real hunt too slow: {}s",
            gap_secs(&ex[1])
        );
        assert!(ex[0].statements.len() >= 2);
        assert!(
            gap_secs(&ex[0]) >= 10,
            "false hunt too fast: {}s",
            gap_secs(&ex[0])
        );
    }
}
