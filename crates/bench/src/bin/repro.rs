//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--scale N] [--seed S] [--cap N] [--db-rows N] <experiment>...
//! experiments: table4 table5 table6 table7 table8 cth-examples
//!              fig2a fig2b fig2c fig2d fig3 fig4 runtime future-work ablation purity expert all
//! ```
//!
//! `--db-rows` sizes the minidb tables behind the §6.3 runtime experiment
//! (default 5 000; millions are fine — the planner answers the stifle
//! queries with index seeks, so row count mostly affects build time).

use sqlog_bench::experiments::{
    ablation, cth_examples, expert, fig2, fig3_4, future_work, purity, runtime, table4, table5,
    table6_7, table8, Experiment,
};

struct Args {
    scale: usize,
    seed: u64,
    cap: usize,
    db_rows: usize,
    experiments: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: 100_000,
        seed: 42,
        cap: 20_000,
        db_rows: 5_000,
        experiments: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                args.scale = it
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?;
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--cap" => {
                args.cap = it
                    .next()
                    .ok_or("--cap needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --cap: {e}"))?;
            }
            "--db-rows" => {
                args.db_rows = it
                    .next()
                    .ok_or("--db-rows needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --db-rows: {e}"))?;
            }
            "--help" | "-h" => {
                return Err(String::new());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other}"));
            }
            exp => args.experiments.push(exp.to_string()),
        }
    }
    if args.experiments.is_empty() {
        args.experiments.push("all".to_string());
    }
    Ok(args)
}

const USAGE: &str = "usage: repro [--scale N] [--seed S] [--cap N] [--db-rows N] <experiment>...\n\
    experiments: table4 table5 table6 table7 table8 cth-examples\n\
                 fig2a fig2b fig2c fig2d fig3 fig4 runtime future-work ablation purity expert all";

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("{USAGE}");
            std::process::exit(if msg.is_empty() { 0 } else { 2 });
        }
    };

    let all = args.experiments.iter().any(|e| e == "all");
    let wants = |name: &str| all || args.experiments.iter().any(|e| e == name);

    // Table 4 runs its own sweep (dedup only — no full pipeline needed).
    if wants("table4") {
        println!("{}", table4::render(&table4::run(args.scale, args.seed)));
    }

    let needs_ctx = [
        "table5",
        "table6",
        "table7",
        "table8",
        "cth-examples",
        "fig2a",
        "fig2b",
        "fig2c",
        "fig2d",
        "fig3",
        "fig4",
        "runtime",
        "future-work",
        "ablation",
        "purity",
        "expert",
    ]
    .iter()
    .any(|e| wants(e));
    if !needs_ctx {
        return;
    }

    eprintln!(
        "[repro] generating log (scale {}) and running the pipeline…",
        args.scale
    );
    let exp = Experiment::new(args.scale, args.seed);

    if wants("table5") {
        println!("{}", table5::render(&exp.result.stats));
    }
    if wants("table6") {
        println!(
            "{}",
            table6_7::render(
                "Table 6 — most popular antipatterns",
                &table6_7::table6(&exp, 5)
            )
        );
    }
    if wants("table7") {
        println!(
            "{}",
            table6_7::render(
                "Table 7 — most popular patterns after cleaning",
                &table6_7::table7(&exp, 5)
            )
        );
    }
    if wants("table8") {
        println!("{}", table8::render(&table8::run(&exp)));
    }
    if wants("cth-examples") {
        println!("{}", cth_examples::render(&cth_examples::run(&exp)));
    }
    if wants("fig2a") {
        let (before, after) = fig2::fig2a(&exp, 30);
        println!(
            "{}",
            fig2::render_rank_series("Fig. 2(a) — top 30 before cleaning", &before)
        );
        println!(
            "{}",
            fig2::render_rank_series("Fig. 2(a) — top 30 after cleaning", &after)
        );
    }
    if wants("fig2b") {
        println!(
            "{}",
            fig2::render_rank_series(
                "Fig. 2(b) — frequency vs userPopularity (top 40)",
                &fig2::fig2b(&exp, 40)
            )
        );
    }
    if wants("fig2c") {
        println!("Fig. 2(c) — top-10 frequencies with vs without user info");
        println!("{:>12} {:>12}  type", "with", "without");
        for (with, without, anti) in fig2::fig2c(&exp, 10) {
            println!(
                "{:>12} {:>12}  {}",
                with,
                without.map_or_else(|| "-".to_string(), |w| w.to_string()),
                if anti { "antipattern" } else { "pattern" }
            );
        }
        println!();
    }
    if wants("fig2d") {
        println!("{}", fig2::render_cth_points(&fig2::fig2d(&exp)));
    }
    if wants("fig3") {
        let thresholds: Vec<f64> = (1..=9).map(|i| i as f64 / 10.0).collect();
        let f = fig3_4::fig3(&exp, args.cap, &thresholds);
        println!("{}", fig3_4::render_fig3(&f));
    }
    if wants("fig4") {
        let f = fig3_4::fig4(&exp, args.cap, 0.9, 20);
        println!("{}", fig3_4::render_fig4(&f));
    }
    if wants("runtime") {
        let r = runtime::run(&exp, 10_222.min(args.cap), args.db_rows);
        println!("{}", runtime::render(&r));
        let r = runtime::run_all_stifles(&exp, 10_222.min(args.cap), args.db_rows);
        println!("(all stifle classes)\n{}", runtime::render(&r));
    }
    if wants("future-work") {
        println!("{}", future_work::render(&future_work::run(&exp, 1)));
    }
    if wants("expert") {
        println!("{}", expert::render(&expert::run(&exp, 40), 40));
    }
    if wants("purity") {
        let p = purity::run(&exp, args.cap, 0.9, 50);
        println!("{}", purity::render(&p, 50));
    }
    if wants("ablation") {
        let ka = ablation::key_axiom(&exp);
        let gaps = ablation::session_gap(
            args.scale.min(20_000),
            args.seed,
            &[10_000, 60_000, 300_000, 3_600_000],
        );
        let ngrams = ablation::max_ngram(args.scale.min(20_000), args.seed, &[1, 2, 3, 4]);
        println!("{}", ablation::render(&ka, &gaps, &ngrams));
    }
}
