//! Guard for the observability overhead contract (DESIGN.md): with the
//! recorder disabled, instrumentation must cost **< 1 %** of the
//! `pipeline_sharded/threads_1` wall time.
//!
//! There is no uninstrumented build to A/B against, so the guard bounds the
//! disabled path from first principles: it measures the wall time of a
//! threads-1 pipeline run, measures the per-call cost of the disabled
//! recorder primitives directly, multiplies by a deliberately generous
//! estimate of how many primitive calls one run makes, and asserts the
//! product stays under the contract. Comparing two wall-clock runs of the
//! same binary would only measure scheduler noise.
//!
//! Exit code 0 = contract holds, 1 = violated. `--scale N` changes the
//! workload size (default 20 000 queries; CI uses the default),
//! `--max-pct P` the threshold (default 1.0), and `--json PATH` writes the
//! measurements as a JSON object so CI can record them next to the
//! benchmark baselines.

use sqlog_catalog::skyserver_catalog;
use sqlog_core::{Pipeline, PipelineConfig};
use sqlog_gen::{generate, GenConfig};
use sqlog_obs::{Json, Recorder};
use std::hint::black_box;
use std::time::Instant;

const USAGE: &str = "usage: obs_guard [--scale N] [--max-pct P] [--json PATH]";

fn main() {
    let mut scale = 20_000usize;
    let mut max_pct = 1.0f64;
    let mut json_path: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                scale = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --scale needs a number");
                    std::process::exit(2);
                })
            }
            "--max-pct" => {
                max_pct = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --max-pct needs a number");
                    std::process::exit(2);
                });
                if !max_pct.is_finite() || max_pct <= 0.0 {
                    eprintln!("error: --max-pct must be positive");
                    std::process::exit(2);
                }
            }
            "--json" => {
                json_path = Some(it.next().unwrap_or_else(|| {
                    eprintln!("error: --json needs a path");
                    std::process::exit(2);
                }))
            }
            other => {
                eprintln!("error: unknown option {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let catalog = skyserver_catalog();
    let log = generate(&GenConfig::with_scale(scale, 77));

    // Pipeline wall time: threads 1, recorder disabled (the default
    // config). Best of three shaves scheduler noise.
    let mut wall = f64::INFINITY;
    for _ in 0..3 {
        let cfg = PipelineConfig {
            parallelism: 1,
            ..PipelineConfig::default()
        };
        let t = Instant::now();
        black_box(
            Pipeline::new(&catalog)
                .with_config(cfg)
                .run(&log)
                .stats
                .final_size,
        );
        wall = wall.min(t.elapsed().as_secs_f64());
    }

    // Per-call cost of the disabled primitives. `black_box` keeps the
    // compiler from proving the recorder disabled and folding the loops
    // away — in the pipeline the recorder arrives through runtime config,
    // so that optimization is not available there either.
    let rec = black_box(Recorder::disabled());
    const ITERS: u64 = 2_000_000;
    // Counters and histograms: the only primitives called per record (the
    // template store's intern counters); everything else is per stage or
    // per shard.
    let t = Instant::now();
    for i in 0..ITERS {
        rec.counter("guard", black_box(i) & 1);
        rec.histogram("guard", black_box(i));
    }
    let counter_cost = t.elapsed().as_secs_f64() / ITERS as f64;
    // Spans (open + field + drop): per stage / per shard only.
    let t = Instant::now();
    for i in 0..ITERS {
        let mut g = rec.span("guard");
        g.field("k", black_box(i));
    }
    let span_cost = t.elapsed().as_secs_f64() / ITERS as f64;
    // Progress gauge primitives: per stage (stage_begin) / per shard
    // (stage_add_items) only.
    let t = Instant::now();
    for i in 0..ITERS {
        rec.stage_begin("guard", black_box(i));
        rec.stage_add_items(black_box(i));
    }
    let progress_cost = t.elapsed().as_secs_f64() / ITERS as f64;

    // Bound the per-run call counts generously: four per-record counter
    // calls (the worst stage makes at most two), a thousand spans and a
    // thousand progress updates (a run makes a few dozen of each).
    let bound = counter_cost * (4 * log.len()) as f64 + (span_cost + progress_cost) * 1_000.0;
    let pct = 100.0 * bound / wall;
    println!("pipeline threads_1 wall time: {wall:.3} s ({scale} queries)");
    println!(
        "disabled primitive costs: {:.2} ns per counter+histogram pair, {:.2} ns per span, \
         {:.2} ns per progress update",
        counter_cost * 1e9,
        span_cost * 1e9,
        progress_cost * 1e9
    );
    println!(
        "bounded overhead: {:.1} us per run -> {pct:.4}% (contract < {max_pct}%)",
        bound * 1e6
    );
    let pass = pct < max_pct;

    if let Some(path) = &json_path {
        // Fixed-point µ-units keep the exact-integer JSON model exact:
        // *_pct fields carry 1/10000ths of a percent, costs nanoseconds.
        let j = Json::obj(vec![
            ("scale", Json::U64(scale as u64)),
            ("wall_us", Json::U64((wall * 1e6) as u64)),
            ("counter_pair_ns", Json::U64((counter_cost * 1e9) as u64)),
            ("span_ns", Json::U64((span_cost * 1e9) as u64)),
            ("progress_ns", Json::U64((progress_cost * 1e9) as u64)),
            ("bound_us", Json::U64((bound * 1e6) as u64)),
            ("overhead_pct_e4", Json::U64((pct * 1e4) as u64)),
            ("max_pct_e4", Json::U64((max_pct * 1e4) as u64)),
            ("pass", Json::Bool(pass)),
        ]);
        if let Err(e) = std::fs::write(path, j.render() + "\n") {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("wrote measurements to {path}");
    }

    if !pass {
        eprintln!("FAIL: disabled-recorder overhead bound {pct:.4}% >= {max_pct}%");
        std::process::exit(1);
    }
    println!("OK: disabled-recorder overhead contract holds");
}
