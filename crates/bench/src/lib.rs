//! # sqlog-bench — experiment drivers reproducing every table and figure
//!
//! Each submodule regenerates one table or figure of the paper's evaluation
//! (§6) on the synthetic SkyServer-like log. The `repro` binary dispatches
//! to these drivers and prints the same rows/series the paper reports;
//! `EXPERIMENTS.md` records paper-reported vs measured values.
//!
//! Scale note: the paper analyzed ~42 M queries. The drivers default to
//! 10⁵-scale logs (laptop-friendly); absolute counts scale down, the shapes
//! (who wins, by what factor, where crossovers fall) are the reproduction
//! target.

pub mod experiments;

pub use experiments::*;
