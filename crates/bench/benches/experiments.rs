//! One Criterion benchmark per table and figure of the paper's evaluation:
//! each bench runs the corresponding experiment driver end to end at a
//! laptop-friendly scale. `cargo bench -p sqlog-bench` therefore regenerates
//! (and times) every experiment; the printed rows/series come from the
//! `repro` binary, which shares these drivers.

use criterion::{criterion_group, criterion_main, Criterion};
use sqlog_bench::experiments::{
    ablation, cth_examples, expert, fig2, fig3_4, future_work, purity, runtime, table4, table5,
    table6_7, table8, Experiment,
};
use std::hint::black_box;
use std::time::Duration;

const SCALE: usize = 6_000;
const SEED: u64 = 42;

fn experiment() -> &'static Experiment {
    use std::sync::OnceLock;
    static EXP: OnceLock<Experiment> = OnceLock::new();
    EXP.get_or_init(|| Experiment::new(SCALE, SEED))
}

fn bench_table4(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_duplicate_thresholds");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("sweep", |b| {
        b.iter(|| black_box(table4::run(SCALE, SEED).rows.len()))
    });
    g.finish();
}

fn bench_table5(c: &mut Criterion) {
    let mut g = c.benchmark_group("table5_results_overview");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("pipeline", |b| {
        b.iter(|| black_box(table5::run(SCALE, SEED).final_size))
    });
    g.finish();
}

fn bench_table6(c: &mut Criterion) {
    let exp = experiment();
    let mut g = c.benchmark_group("table6_top_antipatterns");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("extract", |b| {
        b.iter(|| black_box(table6_7::table6(exp, 5).len()))
    });
    g.finish();
}

fn bench_table7(c: &mut Criterion) {
    let exp = experiment();
    let mut g = c.benchmark_group("table7_top_patterns_clean");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("extract", |b| {
        b.iter(|| black_box(table6_7::table7(exp, 5).len()))
    });
    g.finish();
}

fn bench_table8(c: &mut Criterion) {
    let exp = experiment();
    let mut g = c.benchmark_group("table8_sws_grid");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("grid", |b| b.iter(|| black_box(table8::run(exp).len())));
    g.finish();
}

fn bench_tables9_10(c: &mut Criterion) {
    let exp = experiment();
    let mut g = c.benchmark_group("tables9_10_cth_exemplars");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("extract", |b| {
        b.iter(|| black_box(cth_examples::run(exp).len()))
    });
    g.finish();
}

fn bench_fig2(c: &mut Criterion) {
    let exp = experiment();
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("a_before_after", |b| {
        b.iter(|| black_box(fig2::fig2a(exp, 30).0.len()))
    });
    g.bench_function("b_freq_vs_userpop", |b| {
        b.iter(|| black_box(fig2::fig2b(exp, 40).len()))
    });
    g.bench_function("c_with_without_users", |b| {
        b.iter(|| black_box(fig2::fig2c(exp, 10).len()))
    });
    g.bench_function("d_cth_true_false", |b| {
        b.iter(|| black_box(fig2::fig2d(exp).len()))
    });
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let exp = experiment();
    let mut g = c.benchmark_group("fig3_clustering_sweep");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("three_variants", |b| {
        b.iter(|| black_box(fig3_4::fig3(exp, 3_000, &[0.5, 0.9]).raw.len()))
    });
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let exp = experiment();
    let mut g = c.benchmark_group("fig4_cluster_sizes");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("rank_curves", |b| {
        b.iter(|| black_box(fig3_4::fig4(exp, 3_000, 0.9, 20).raw_sizes.len()))
    });
    g.finish();
}

fn bench_runtime_sec63(c: &mut Criterion) {
    let exp = experiment();
    let mut g = c.benchmark_group("sec6_3_runtime");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("original_vs_rewritten", |b| {
        b.iter(|| {
            let r = runtime::run(exp, 2_000, 1_000);
            black_box(r.simulated_speedup())
        })
    });
    g.finish();
}

fn bench_future_work(c: &mut Criterion) {
    let exp = experiment();
    let mut g = c.benchmark_group("sec7_future_work_recommender");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("raw_vs_clean", |b| {
        b.iter(|| black_box(future_work::run(exp, 1).raw_rate))
    });
    g.finish();
}

fn bench_purity(c: &mut Criterion) {
    let exp = experiment();
    let mut g = c.benchmark_group("purity");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("raw_vs_removal", |b| {
        b.iter(|| black_box(purity::run(exp, 3_000, 0.9, 50).removal.clusters))
    });
    g.finish();
}

fn bench_expert(c: &mut Criterion) {
    let exp = experiment();
    let mut g = c.benchmark_group("sec6_7_expert_agreement");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("top40", |b| {
        b.iter(|| black_box(expert::run(exp, 40).agreement()))
    });
    g.finish();
}

fn bench_ablation(c: &mut Criterion) {
    let exp = experiment();
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("key_axiom", |b| {
        b.iter(|| black_box(ablation::key_axiom(exp).without_queries))
    });
    g.bench_function("session_gap", |b| {
        b.iter(|| black_box(ablation::session_gap(SCALE, SEED, &[60_000, 300_000]).len()))
    });
    g.bench_function("max_ngram", |b| {
        b.iter(|| black_box(ablation::max_ngram(SCALE, SEED, &[1, 3]).len()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table4,
    bench_table5,
    bench_table6,
    bench_table7,
    bench_table8,
    bench_tables9_10,
    bench_fig2,
    bench_fig3,
    bench_fig4,
    bench_runtime_sec63,
    bench_future_work,
    bench_ablation,
    bench_purity,
    bench_expert
);
criterion_main!(benches);
