//! Microbenchmarks of the pipeline stages: parse, skeletonize, dedup, mine,
//! detect, solve — the components every experiment driver composes.
//!
//! Note on the `*_parallel` benches: the parallel implementations are
//! equivalence-tested against their sequential twins and scale with cores;
//! on a single-core runner they only measure the coordination overhead.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use sqlog_catalog::skyserver_catalog;
use sqlog_core::{
    build_sessions, dedup, mine_patterns, parse_log, Pipeline, PipelineConfig, TemplateStore,
};
use sqlog_gen::{generate, GenConfig};
use sqlog_skeleton::QueryTemplate;
use sqlog_sql::parse_statement;
use std::hint::black_box;
use std::time::Duration;

const SCALE: usize = 8_000;
const SEED: u64 = 77;

fn bench_parse(c: &mut Criterion) {
    let log = generate(&GenConfig::with_scale(SCALE, SEED));
    let mut group = c.benchmark_group("stage_parse");
    group.throughput(Throughput::Elements(log.len() as u64));
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));

    group.bench_function("parse_statement_each", |b| {
        b.iter(|| {
            let mut ok = 0usize;
            for e in &log.entries {
                if parse_statement(black_box(&e.statement)).is_ok() {
                    ok += 1;
                }
            }
            black_box(ok)
        })
    });
    group.bench_function("parse_log_parallel", |b| {
        b.iter(|| {
            let store = TemplateStore::new();
            black_box(parse_log(&log, &store, 0).stats.selects)
        })
    });
    group.finish();
}

fn bench_skeleton(c: &mut Criterion) {
    let log = generate(&GenConfig::with_scale(SCALE, SEED));
    let queries: Vec<_> = log
        .entries
        .iter()
        .filter_map(|e| match parse_statement(&e.statement) {
            Ok(sqlog_sql::Statement::Select(q)) => Some(*q),
            _ => None,
        })
        .collect();
    let mut group = c.benchmark_group("stage_skeleton");
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("template_of_query", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(QueryTemplate::of_query(black_box(q)));
            }
        })
    });
    group.finish();
}

fn bench_dedup(c: &mut Criterion) {
    let log = generate(&GenConfig::with_scale(SCALE, SEED));
    let mut group = c.benchmark_group("stage_dedup");
    group.throughput(Throughput::Elements(log.len() as u64));
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    for (label, t) in [("1s", Some(1_000u64)), ("unrestricted", None)] {
        group.bench_function(label, |b| b.iter(|| black_box(dedup(&log, t).1.removed)));
    }
    group.finish();
}

fn bench_mine_and_detect(c: &mut Criterion) {
    let log = generate(&GenConfig::with_scale(SCALE, SEED));
    let (pre, _) = dedup(&log, Some(1_000));
    let store = TemplateStore::new();
    let parsed = parse_log(&pre, &store, 0);
    let cfg = PipelineConfig::default();
    let sessions = build_sessions(&pre, &parsed.records, cfg.session_gap_ms);

    let mut group = c.benchmark_group("stage_mine_detect");
    group.throughput(Throughput::Elements(parsed.records.len() as u64));
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("build_sessions", |b| {
        b.iter(|| {
            black_box(
                build_sessions(&pre, &parsed.records, cfg.session_gap_ms)
                    .sessions
                    .len(),
            )
        })
    });
    group.bench_function("mine_patterns", |b| {
        b.iter(|| {
            black_box(
                mine_patterns(&sessions, &parsed.records, &cfg)
                    .patterns
                    .len(),
            )
        })
    });
    let catalog = skyserver_catalog();
    let view = sqlog_log::LogView::identity(&pre);
    group.bench_function("detect_builtin", |b| {
        b.iter(|| {
            let ctx = sqlog_core::DetectCtx {
                log: &view,
                records: &parsed.records,
                sessions: &sessions.sessions,
                store: &store,
                catalog: &catalog,
                config: &cfg,
            };
            black_box(sqlog_core::detect::detect_builtin(&ctx).len())
        })
    });
    group.finish();
}

/// The parse stage alone, template-aware parse cache on vs off, on the
/// same ~100k-entry log as `pipeline_sharded`. The cache-on row is the
/// acceptance number: repeated query shapes skip lexing/parsing entirely,
/// so parse-stage throughput must be a multiple of the cache-off row.
fn bench_parse_cache(c: &mut Criterion) {
    use sqlog_core::{parse_view_traced, ParseOptions};
    use sqlog_obs::Recorder;

    let log = generate(&GenConfig::with_scale(100_000, SEED));
    let view = sqlog_log::LogView::identity(&log);
    let rec = Recorder::disabled();
    let mut group = c.benchmark_group("parse_cache");
    group.throughput(Throughput::Elements(log.len() as u64));
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(5));
    for (label, cache) in [("cache_off", false), ("cache_on", true)] {
        let options = ParseOptions {
            cache,
            ..ParseOptions::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                let store = TemplateStore::new();
                let parsed = parse_view_traced(&view, &store, &options, 1, &rec, None);
                black_box((parsed.stats.selects, parsed.cache.hits))
            })
        });
    }
    group.finish();
}

/// The tentpole benchmark: the full pipeline under increasing
/// `parallelism`, on a log large enough for sharding to matter. Thread
/// counts cover sequential (1), minimal sharding (2), and one worker per
/// available core. The `threads_1_nocache` row isolates what the parse
/// cache contributes end-to-end.
fn bench_pipeline_sharded(c: &mut Criterion) {
    let catalog = skyserver_catalog();
    let log = generate(&GenConfig::with_scale(100_000, SEED));
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut thread_counts = vec![1usize, 2, cores];
    thread_counts.sort_unstable();
    thread_counts.dedup();
    let mut group = c.benchmark_group("pipeline_sharded");
    group.throughput(Throughput::Elements(log.len() as u64));
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(5));
    let mut rows: Vec<(String, usize, bool)> = thread_counts
        .iter()
        .map(|&t| (format!("threads_{t}"), t, true))
        .collect();
    rows.push(("threads_1_nocache".to_string(), 1, false));
    for (label, threads, parse_cache) in rows {
        let cfg = PipelineConfig {
            parallelism: threads,
            parse_cache,
            ..PipelineConfig::default()
        };
        group.bench_function(&label, |b| {
            b.iter(|| {
                black_box(
                    Pipeline::new(&catalog)
                        .with_config(cfg.clone())
                        .run(&log)
                        .stats
                        .final_size,
                )
            })
        });
    }
    group.finish();
}

/// The paper-scale axis: full pipeline throughput at 100k and 1M entries
/// (threads=1, cache on — the configuration the stage_breakdown and
/// peak-RSS rows in BENCH_pipeline.json are recorded under). SkyServer's
/// cleaned log is tens of millions of statements; this axis pins that
/// throughput does not degrade nonlinearly between the two scales.
fn bench_pipeline_scale(c: &mut Criterion) {
    let catalog = skyserver_catalog();
    let mut group = c.benchmark_group("pipeline_scale");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(5));
    for (scale, name) in [
        (100_000usize, "entries_100000"),
        (1_000_000, "entries_1000000"),
    ] {
        let log = generate(&GenConfig::with_scale(scale, SEED));
        group.throughput(Throughput::Elements(log.len() as u64));
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    Pipeline::new(&catalog)
                        .with_config(PipelineConfig {
                            parallelism: 1,
                            ..PipelineConfig::default()
                        })
                        .run(&log)
                        .stats
                        .final_size,
                )
            })
        });
    }
    group.finish();
}

fn bench_full_pipeline(c: &mut Criterion) {
    let catalog = skyserver_catalog();
    let log = generate(&GenConfig::with_scale(SCALE, SEED));
    let mut group = c.benchmark_group("stage_full_pipeline");
    group.throughput(Throughput::Elements(log.len() as u64));
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("run", |b| {
        b.iter_batched(
            || log.clone(),
            |l| black_box(Pipeline::new(&catalog).run(&l).stats.final_size),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_cluster(c: &mut Criterion) {
    use sqlog_cluster::{cluster_regions, cluster_regions_parallel, region_of_query, Region};
    let log = generate(&GenConfig::with_scale(SCALE, SEED));
    // Distinct regions of the log's SELECTs.
    let mut by_key = std::collections::HashMap::new();
    let mut regions: Vec<Region> = Vec::new();
    let mut weights: Vec<u64> = Vec::new();
    for e in &log.entries {
        let Ok(stmt) = parse_statement(&e.statement) else {
            continue;
        };
        let Some(q) = stmt.as_select() else { continue };
        let r = region_of_query(q);
        let key = r.key();
        match by_key.get(&key) {
            Some(&i) => weights[i] += 1,
            None => {
                by_key.insert(key, regions.len());
                regions.push(r);
                weights.push(1);
            }
        }
    }
    let mut group = c.benchmark_group("stage_cluster");
    group.throughput(Throughput::Elements(regions.len() as u64));
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(cluster_regions(&regions, &weights, 0.9).count()))
    });
    group.bench_function("parallel", |b| {
        b.iter(|| black_box(cluster_regions_parallel(&regions, &weights, 0.9, 0).count()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_parse,
    bench_skeleton,
    bench_dedup,
    bench_mine_and_detect,
    bench_full_pipeline,
    bench_parse_cache,
    bench_pipeline_sharded,
    bench_pipeline_scale,
    bench_cluster
);
criterion_main!(benches);
