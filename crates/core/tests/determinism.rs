//! Sharded execution is observably identical to sequential execution.
//!
//! The pipeline shards dedup, parsing, session building, mining, and
//! detection across worker threads (`PipelineConfig::parallelism`). These
//! tests pin the contract that makes that safe: for any thread count, every
//! output — statistics, instances, marks, clean/removal logs, mined
//! patterns — is exactly the same as a sequential run.

use sqlog_catalog::skyserver_catalog;
use sqlog_core::{Pipeline, PipelineConfig, PipelineResult};
use sqlog_gen::{generate, GenConfig};
use sqlog_log::QueryLog;
use std::collections::HashSet;

fn run_with(log: &QueryLog, threads: usize) -> PipelineResult {
    run_with_cache(log, threads, true)
}

fn run_with_cache(log: &QueryLog, threads: usize, parse_cache: bool) -> PipelineResult {
    let catalog = skyserver_catalog();
    let cfg = PipelineConfig {
        parallelism: threads,
        parse_cache,
        ..PipelineConfig::default()
    };
    Pipeline::new(&catalog).with_config(cfg).run(log)
}

fn assert_identical(a: &PipelineResult, b: &PipelineResult, label: &str) {
    // Timings are wall-clock noise; everything else must match exactly.
    assert_eq!(
        a.stats.with_zeroed_timings(),
        b.stats.with_zeroed_timings(),
        "stats differ: {label}"
    );
    assert_eq!(a.instances, b.instances, "instances differ: {label}");
    assert_eq!(
        a.instance_entry_ids, b.instance_entry_ids,
        "entry ids differ: {label}"
    );
    assert_eq!(a.marks, b.marks, "marks differ: {label}");
    assert_eq!(a.clean_log, b.clean_log, "clean log differs: {label}");
    assert_eq!(a.removal_log, b.removal_log, "removal log differs: {label}");
    assert_eq!(
        a.mined.patterns, b.mined.patterns,
        "mined patterns differ: {label}"
    );
    assert_eq!(a.mined.total_queries, b.mined.total_queries);
    assert_eq!(a.store.len(), b.store.len(), "store size differs: {label}");
}

#[test]
fn sharded_pipeline_is_identical_for_all_thread_counts() {
    let log = generate(&GenConfig::with_scale(6_000, 4242));
    // The generator interleaves concurrent users — the interesting case for
    // user-sharded stages.
    let users: HashSet<&str> = log.entries.iter().map(|e| e.user_key()).collect();
    assert!(users.len() > 1, "workload should interleave users");

    let sequential = run_with(&log, 1);
    for threads in [2usize, 8] {
        let sharded = run_with(&log, threads);
        assert_identical(&sequential, &sharded, &format!("threads={threads}"));
    }
    // parallelism = 0 (auto) must agree too, whatever the core count.
    let auto = run_with(&log, 0);
    assert_identical(&sequential, &auto, "threads=auto");
}

#[test]
fn parse_cache_output_is_identical_to_uncached() {
    // The template-aware parse cache must be a pure optimization: for every
    // thread count, every output with the cache on equals the cache-off run
    // (which in turn equals sequential cache-off — the seed behavior).
    let log = generate(&GenConfig::with_scale(6_000, 4242));
    let baseline = run_with_cache(&log, 1, false);
    assert!(!baseline.stats.parse_cache.enabled);
    for threads in [1usize, 2, 8, 0] {
        for cache in [false, true] {
            let run = run_with_cache(&log, threads, cache);
            assert_eq!(run.stats.parse_cache.enabled, cache);
            if cache {
                // The generated workload repeats shapes heavily; the cache
                // must actually engage for the comparison to mean anything.
                assert!(
                    run.stats.parse_cache.hits > 0,
                    "no cache hits at threads={threads}"
                );
            }
            assert_identical(
                &baseline,
                &run,
                &format!("threads={threads}, cache={cache}"),
            );
        }
    }
}

#[test]
fn unsorted_input_is_sorted_identically_under_sharding() {
    let mut log = generate(&GenConfig::with_scale(2_000, 777));
    // Scramble the entry order deterministically; the pipeline must sort a
    // permutation (not clone the log) and still agree across thread counts.
    let n = log.entries.len();
    for i in 0..n / 2 {
        log.entries.swap(i, n - 1 - i);
    }
    assert!(!log.is_time_sorted());

    let sequential = run_with(&log, 1);
    for threads in [2usize, 8] {
        let sharded = run_with(&log, threads);
        assert_identical(
            &sequential,
            &sharded,
            &format!("unsorted, threads={threads}"),
        );
    }
}
