//! Sharded execution is observably identical to sequential execution.
//!
//! The pipeline shards dedup, parsing, session building, mining, and
//! detection across worker threads (`PipelineConfig::parallelism`). These
//! tests pin the contract that makes that safe: for any thread count, every
//! output — statistics, instances, marks, clean/removal logs, mined
//! patterns — is exactly the same as a sequential run.

use sqlog_catalog::skyserver_catalog;
use sqlog_core::{Pipeline, PipelineConfig, PipelineResult};
use sqlog_gen::{generate, GenConfig};
use sqlog_log::QueryLog;
use std::collections::HashSet;

fn run_with(log: &QueryLog, threads: usize) -> PipelineResult {
    let catalog = skyserver_catalog();
    let cfg = PipelineConfig {
        parallelism: threads,
        ..PipelineConfig::default()
    };
    Pipeline::new(&catalog).with_config(cfg).run(log)
}

fn assert_identical(a: &PipelineResult, b: &PipelineResult, label: &str) {
    // Timings are wall-clock noise; everything else must match exactly.
    assert_eq!(
        a.stats.with_zeroed_timings(),
        b.stats.with_zeroed_timings(),
        "stats differ: {label}"
    );
    assert_eq!(a.instances, b.instances, "instances differ: {label}");
    assert_eq!(
        a.instance_entry_ids, b.instance_entry_ids,
        "entry ids differ: {label}"
    );
    assert_eq!(a.marks, b.marks, "marks differ: {label}");
    assert_eq!(a.clean_log, b.clean_log, "clean log differs: {label}");
    assert_eq!(a.removal_log, b.removal_log, "removal log differs: {label}");
    assert_eq!(
        a.mined.patterns, b.mined.patterns,
        "mined patterns differ: {label}"
    );
    assert_eq!(a.mined.total_queries, b.mined.total_queries);
    assert_eq!(a.store.len(), b.store.len(), "store size differs: {label}");
}

#[test]
fn sharded_pipeline_is_identical_for_all_thread_counts() {
    let log = generate(&GenConfig::with_scale(6_000, 4242));
    // The generator interleaves concurrent users — the interesting case for
    // user-sharded stages.
    let users: HashSet<&str> = log.entries.iter().map(|e| e.user_key()).collect();
    assert!(users.len() > 1, "workload should interleave users");

    let sequential = run_with(&log, 1);
    for threads in [2usize, 8] {
        let sharded = run_with(&log, threads);
        assert_identical(&sequential, &sharded, &format!("threads={threads}"));
    }
    // parallelism = 0 (auto) must agree too, whatever the core count.
    let auto = run_with(&log, 0);
    assert_identical(&sequential, &auto, "threads=auto");
}

#[test]
fn unsorted_input_is_sorted_identically_under_sharding() {
    let mut log = generate(&GenConfig::with_scale(2_000, 777));
    // Scramble the entry order deterministically; the pipeline must sort a
    // permutation (not clone the log) and still agree across thread counts.
    let n = log.entries.len();
    for i in 0..n / 2 {
        log.entries.swap(i, n - 1 - i);
    }
    assert!(!log.is_time_sorted());

    let sequential = run_with(&log, 1);
    for threads in [2usize, 8] {
        let sharded = run_with(&log, threads);
        assert_identical(
            &sequential,
            &sharded,
            &format!("unsorted, threads={threads}"),
        );
    }
}
