//! Additional solver scenarios: long DF chains, negative constants, value
//! ordering, and rewrite idempotence.

use sqlog_catalog::skyserver_catalog;
use sqlog_core::Pipeline;
use sqlog_log::{LogEntry, QueryLog, Timestamp};

fn run(rows: &[&str]) -> sqlog_core::PipelineResult {
    let log = QueryLog::from_entries(
        rows.iter()
            .enumerate()
            .map(|(i, s)| {
                LogEntry::minimal(i as u64, *s, Timestamp::from_secs(i as i64)).with_user("u")
            })
            .collect(),
    );
    let catalog = skyserver_catalog();
    Pipeline::new(&catalog).run(&log)
}

#[test]
fn df_chain_across_three_tables_joins_all() {
    let result = run(&[
        "SELECT ra FROM photoprimary WHERE objid = 587722982000001000",
        "SELECT g FROM photoobjall WHERE objid = 587722982000001000",
        "SELECT r FROM galaxy WHERE objid = 587722982000001000",
    ]);
    assert_eq!(result.stats.solved_instances, 1);
    assert_eq!(result.clean_log.len(), 1);
    let stmt = &result.clean_log.entries[0].statement;
    // Two joins chain three tables.
    assert_eq!(stmt.matches("INNER JOIN").count(), 2, "{stmt}");
    assert!(stmt.contains("photoprimary"), "{stmt}");
    assert!(stmt.contains("photoobjall"), "{stmt}");
    assert!(stmt.contains("galaxy"), "{stmt}");
    // The merged statement re-parses.
    sqlog_sql::parse_statement(stmt).unwrap();
}

#[test]
fn dw_merge_handles_negative_constants() {
    let result = run(&[
        "SELECT name FROM employee WHERE empid = -5",
        "SELECT name FROM employee WHERE empid = 7",
        "SELECT name FROM employee WHERE empid = -9",
    ]);
    assert_eq!(result.stats.solved_instances, 1);
    let stmt = &result.clean_log.entries[0].statement;
    assert!(stmt.contains("IN (-5, 7, -9)"), "{stmt}");
    sqlog_sql::parse_statement(stmt).unwrap();
}

#[test]
fn dw_merge_preserves_log_order_of_values() {
    let result = run(&[
        "SELECT name FROM employee WHERE empid = 30",
        "SELECT name FROM employee WHERE empid = 10",
        "SELECT name FROM employee WHERE empid = 20",
    ]);
    let stmt = &result.clean_log.entries[0].statement;
    assert!(stmt.contains("IN (30, 10, 20)"), "{stmt}");
}

#[test]
fn dw_with_string_key_quotes_values() {
    let result = run(&[
        "SELECT description FROM dbobjects WHERE name = 'galaxy'",
        "SELECT description FROM dbobjects WHERE name = 'star'",
        "SELECT description FROM dbobjects WHERE name = 'photoprimary'",
    ]);
    assert_eq!(result.stats.solved_instances, 1);
    let stmt = &result.clean_log.entries[0].statement;
    assert!(
        stmt.contains("IN ('galaxy', 'star', 'photoprimary')"),
        "{stmt}"
    );
}

#[test]
fn solving_a_solved_log_changes_nothing() {
    // Rewrite idempotence at the statement level: the DW merge produces an
    // IN-query whose skeleton collapses the list; feeding the clean log back
    // must leave it untouched.
    let first = run(&[
        "SELECT name FROM employee WHERE empid = 1",
        "SELECT name FROM employee WHERE empid = 2",
        "SELECT name FROM employee WHERE empid = 3",
    ]);
    assert_eq!(first.clean_log.len(), 1);
    let catalog = skyserver_catalog();
    let second = Pipeline::new(&catalog).run(&first.clean_log);
    assert_eq!(second.stats.solved_instances, 0);
    assert_eq!(second.clean_log, first.clean_log);
}

#[test]
fn ds_with_wildcard_member_keeps_wildcard_semantics() {
    // A `SELECT *` inside a DS run: the union contains the wildcard, which
    // already covers every other column.
    let result = run(&[
        "SELECT * FROM employee WHERE empid = 4",
        "SELECT name FROM employee WHERE empid = 4",
    ]);
    assert_eq!(result.stats.solved_instances, 1);
    let stmt = &result.clean_log.entries[0].statement;
    assert!(
        stmt.starts_with("SELECT *, name") || stmt.starts_with("SELECT *"),
        "{stmt}"
    );
    sqlog_sql::parse_statement(stmt).unwrap();
}

#[test]
fn interleaved_users_solve_independently() {
    let log = QueryLog::from_entries(vec![
        LogEntry::minimal(
            0,
            "SELECT name FROM employee WHERE empid = 1",
            Timestamp::from_secs(0),
        )
        .with_user("a"),
        LogEntry::minimal(
            1,
            "SELECT name FROM employee WHERE empid = 9",
            Timestamp::from_secs(1),
        )
        .with_user("b"),
        LogEntry::minimal(
            2,
            "SELECT name FROM employee WHERE empid = 2",
            Timestamp::from_secs(2),
        )
        .with_user("a"),
        LogEntry::minimal(
            3,
            "SELECT name FROM employee WHERE empid = 8",
            Timestamp::from_secs(3),
        )
        .with_user("b"),
    ]);
    let catalog = skyserver_catalog();
    let result = Pipeline::new(&catalog).run(&log);
    // One DW instance per user, despite the interleaving.
    assert_eq!(result.stats.solved_instances, 2);
    let stmts: Vec<_> = result
        .clean_log
        .entries
        .iter()
        .map(|e| e.statement.as_str())
        .collect();
    assert!(stmts.iter().any(|s| s.contains("IN (1, 2)")), "{stmts:?}");
    assert!(stmts.iter().any(|s| s.contains("IN (9, 8)")), "{stmts:?}");
}
