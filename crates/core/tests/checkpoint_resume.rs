//! In-process resume equivalence: a checkpointed run interrupted after any
//! stage and resumed produces output byte-identical to an uninterrupted
//! run — at every thread count, parse cache on or off — and validation
//! failures (changed input, changed config, corrupted checkpoint) behave
//! as specified: the first two refuse, the last re-runs the stage with a
//! warning.

use sqlog_catalog::skyserver_catalog;
use sqlog_core::checkpoint::{run_checkpointed, CheckpointOptions, RunDir, Stage};
use sqlog_core::{Pipeline, PipelineConfig, PipelineResult};
use sqlog_gen::{generate, GenConfig};
use sqlog_log::{write_log_file, IngestPolicy, QueryLog};
use std::path::{Path, PathBuf};

struct Scratch(PathBuf);

impl Scratch {
    fn new(label: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("sqlog-ckpt-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn config(threads: usize, parse_cache: bool) -> PipelineConfig {
    PipelineConfig {
        parallelism: threads,
        parse_cache,
        ..PipelineConfig::default()
    }
}

fn opts(input: &Path, resume: bool, stop_after: Option<Stage>) -> CheckpointOptions {
    CheckpointOptions {
        input: input.to_path_buf(),
        policy: IngestPolicy::Strict,
        quarantine: None,
        resume,
        stop_after,
    }
}

fn expect_err(r: Result<Option<sqlog_core::checkpoint::CheckpointOutcome>, String>) -> String {
    match r {
        Err(e) => e,
        Ok(_) => panic!("expected the resume to be refused"),
    }
}

fn assert_identical(a: &PipelineResult, b: &PipelineResult, label: &str) {
    assert_eq!(
        a.stats.with_zeroed_timings(),
        b.stats.with_zeroed_timings(),
        "stats differ: {label}"
    );
    assert_eq!(a.instances, b.instances, "instances differ: {label}");
    assert_eq!(a.marks, b.marks, "marks differ: {label}");
    assert_eq!(a.clean_log, b.clean_log, "clean log differs: {label}");
    assert_eq!(a.removal_log, b.removal_log, "removal log differs: {label}");
    assert_eq!(
        a.mined.patterns, b.mined.patterns,
        "mined patterns differ: {label}"
    );
}

fn fixture(scratch: &Scratch) -> (PathBuf, QueryLog) {
    let log = generate(&GenConfig::with_scale(2_000, 4242));
    let input = scratch.path("input.tsv");
    write_log_file(&log, &input).unwrap();
    (input, log)
}

#[test]
fn interrupt_after_every_stage_then_resume_is_identical() {
    let scratch = Scratch::new("stages");
    let (input, log) = fixture(&scratch);
    let catalog = skyserver_catalog();

    // Reference: plain in-memory run (the seed behavior).
    let reference = Pipeline::new(&catalog)
        .with_config(config(1, true))
        .run(&log);

    for stage in Stage::ALL {
        let dir = RunDir::create(scratch.path(&format!("run-{stage}"))).unwrap();
        let pipeline = Pipeline::new(&catalog).with_config(config(1, true));
        // First leg: die (cleanly, via stop_after) right after `stage`.
        let early = run_checkpointed(&pipeline, &dir, &opts(&input, false, Some(stage))).unwrap();
        assert!(early.is_none(), "stop_after {stage} should end the run");
        // Second leg: resume to completion.
        let resumed = run_checkpointed(&pipeline, &dir, &opts(&input, true, None))
            .unwrap()
            .expect("resumed run completes");
        assert!(
            resumed.loaded_stages.contains(&stage.name()),
            "resume after {stage} should load its checkpoint, loaded: {:?}",
            resumed.loaded_stages
        );
        assert!(
            resumed.warnings.is_empty(),
            "unexpected: {:?}",
            resumed.warnings
        );
        // A resume of an incomplete run counts as one interruption, and the
        // result is still *clean*: nothing was lost.
        assert_eq!(resumed.result.stats.run_health.interruptions, 1);
        assert!(!resumed.result.stats.run_health.completed_degraded());
        let mut r = resumed.result;
        r.stats.run_health.interruptions = 0;
        assert_identical(&reference, &r, &format!("resume after {stage}"));
    }
}

#[test]
fn resume_at_different_parallelism_and_cache_is_identical() {
    let scratch = Scratch::new("threads");
    let (input, log) = fixture(&scratch);
    let catalog = skyserver_catalog();
    let reference = Pipeline::new(&catalog)
        .with_config(config(1, false))
        .run(&log);

    // Interrupt a 1-thread cache-off run after parse; resume with 8 threads
    // and the cache on. Execution knobs are outside the config fingerprint,
    // so this must be accepted — and still byte-identical.
    let dir = RunDir::create(scratch.path("run")).unwrap();
    let one = Pipeline::new(&catalog).with_config(config(1, false));
    run_checkpointed(&one, &dir, &opts(&input, false, Some(Stage::Parse))).unwrap();

    let eight = Pipeline::new(&catalog).with_config(config(8, true));
    let resumed = run_checkpointed(&eight, &dir, &opts(&input, true, None))
        .unwrap()
        .expect("completes");
    let mut r = resumed.result;
    r.stats.run_health.interruptions = 0;
    // The parse checkpoint was taken cache-off, so cache stats stay off;
    // with_zeroed_timings already ignores them.
    assert_identical(&reference, &r, "resume 1→8 threads, cache off→on");
}

#[test]
fn corrupted_checkpoint_is_nonfatal_and_rerun() {
    let scratch = Scratch::new("corrupt");
    let (input, log) = fixture(&scratch);
    let catalog = skyserver_catalog();
    let pipeline = Pipeline::new(&catalog).with_config(config(2, true));
    let reference = Pipeline::new(&catalog)
        .with_config(config(2, true))
        .run(&log);

    let dir = RunDir::create(scratch.path("run")).unwrap();
    run_checkpointed(&pipeline, &dir, &opts(&input, false, Some(Stage::Sessions))).unwrap();

    // Flip bytes in the sessions checkpoint payload: the FNV in the header
    // no longer matches, so the load must fail *gracefully*.
    let ckpt = dir.checkpoint_path(Stage::Sessions);
    let mut bytes = std::fs::read(&ckpt).unwrap();
    let n = bytes.len();
    bytes[n - 2] ^= 0xff;
    std::fs::write(&ckpt, &bytes).unwrap();

    let resumed = run_checkpointed(&pipeline, &dir, &opts(&input, true, None))
        .unwrap()
        .expect("completes despite corruption");
    assert!(
        resumed
            .warnings
            .iter()
            .any(|w| w.contains("sessions") && w.contains("re-running")),
        "expected a sessions-corruption warning, got {:?}",
        resumed.warnings
    );
    // Ingest/dedup/parse load; sessions and everything after re-run.
    assert_eq!(resumed.loaded_stages, ["ingest", "dedup", "parse"]);
    let mut r = resumed.result;
    r.stats.run_health.interruptions = 0;
    assert_identical(&reference, &r, "resume over corrupted checkpoint");
}

#[test]
fn truncated_checkpoint_is_detected_as_torn_write() {
    let scratch = Scratch::new("torn");
    let (input, _log) = fixture(&scratch);
    let catalog = skyserver_catalog();
    let pipeline = Pipeline::new(&catalog).with_config(config(1, true));

    let dir = RunDir::create(scratch.path("run")).unwrap();
    run_checkpointed(&pipeline, &dir, &opts(&input, false, Some(Stage::Dedup))).unwrap();

    // Chop the tail off the dedup checkpoint — the header's payload_bytes
    // no longer matches, which is exactly what a torn write looks like.
    let ckpt = dir.checkpoint_path(Stage::Dedup);
    let bytes = std::fs::read(&ckpt).unwrap();
    std::fs::write(&ckpt, &bytes[..bytes.len() / 2]).unwrap();

    let resumed = run_checkpointed(&pipeline, &dir, &opts(&input, true, None))
        .unwrap()
        .expect("completes despite torn checkpoint");
    assert!(
        resumed.warnings.iter().any(|w| w.contains("dedup")),
        "expected a dedup warning, got {:?}",
        resumed.warnings
    );
    assert_eq!(resumed.loaded_stages, ["ingest"]);
}

#[test]
fn changed_input_refuses_to_resume() {
    let scratch = Scratch::new("input-drift");
    let (input, _log) = fixture(&scratch);
    let catalog = skyserver_catalog();
    let pipeline = Pipeline::new(&catalog).with_config(config(1, true));
    let dir = RunDir::create(scratch.path("run")).unwrap();
    run_checkpointed(&pipeline, &dir, &opts(&input, false, Some(Stage::Parse))).unwrap();

    // Append one line: length and hash both drift.
    let mut text = std::fs::read_to_string(&input).unwrap();
    text.push_str("999999\t0\textra\t\t0\t\tSELECT 1\n");
    std::fs::write(&input, text).unwrap();

    let err = expect_err(run_checkpointed(&pipeline, &dir, &opts(&input, true, None)));
    assert!(err.contains("has changed"), "diagnostic: {err}");
}

#[test]
fn changed_semantic_config_refuses_to_resume() {
    let scratch = Scratch::new("config-drift");
    let (input, _log) = fixture(&scratch);
    let catalog = skyserver_catalog();
    let dir = RunDir::create(scratch.path("run")).unwrap();
    let original = Pipeline::new(&catalog).with_config(config(1, true));
    run_checkpointed(&original, &dir, &opts(&input, false, Some(Stage::Parse))).unwrap();

    let drifted = Pipeline::new(&catalog).with_config(PipelineConfig {
        session_gap_ms: 1,
        ..config(1, true)
    });
    let err = expect_err(run_checkpointed(&drifted, &dir, &opts(&input, true, None)));
    assert!(err.contains("different configuration"), "diagnostic: {err}");
}

#[test]
fn changed_ingest_policy_refuses_to_resume() {
    let scratch = Scratch::new("policy-drift");
    let (input, _log) = fixture(&scratch);
    let catalog = skyserver_catalog();
    let pipeline = Pipeline::new(&catalog).with_config(config(1, true));
    let dir = RunDir::create(scratch.path("run")).unwrap();
    run_checkpointed(&pipeline, &dir, &opts(&input, false, Some(Stage::Ingest))).unwrap();

    let mut lenient = opts(&input, true, None);
    lenient.policy = IngestPolicy::Lenient;
    let err = expect_err(run_checkpointed(&pipeline, &dir, &lenient));
    assert!(err.contains("ingestion"), "diagnostic: {err}");
}

#[test]
fn double_interruption_counts_twice() {
    let scratch = Scratch::new("double");
    let (input, _log) = fixture(&scratch);
    let catalog = skyserver_catalog();
    let pipeline = Pipeline::new(&catalog).with_config(config(1, true));
    let dir = RunDir::create(scratch.path("run")).unwrap();

    run_checkpointed(&pipeline, &dir, &opts(&input, false, Some(Stage::Dedup))).unwrap();
    // First resume is itself interrupted (after mine), second completes.
    run_checkpointed(&pipeline, &dir, &opts(&input, true, Some(Stage::Mine))).unwrap();
    let done = run_checkpointed(&pipeline, &dir, &opts(&input, true, None))
        .unwrap()
        .expect("completes");
    assert_eq!(done.result.stats.run_health.interruptions, 2);
    assert!(!done.result.stats.run_health.completed_degraded());
    // Everything checkpointed before the second crash (which hit after
    // mine) loads on the final leg; detect and solve run live.
    assert_eq!(
        done.loaded_stages,
        ["ingest", "dedup", "parse", "sessions", "mine"]
    );
}
