//! Panic isolation under injected faults: the pipeline runs to completion.
//!
//! A corrupted fixture log (malformed line + invalid UTF-8 line + depth-bomb
//! statement) is ingested leniently and then run through the pipeline while
//! the `SQLOG_FAULT_MARKER`/`SQLOG_FAULT_STAGE` hook plants a panicking
//! record in each sharded stage in turn. For every stage and every thread
//! count the run must finish, the clean/removal logs must be byte-identical
//! to the sequential run, and `RunHealth` must account for every injected
//! fault exactly.
//!
//! Everything env-dependent lives in ONE test function: the fault hook reads
//! process-global environment variables, and `cargo test` runs test
//! functions of a binary concurrently. Env-free robustness tests live in
//! `run_to_completion.rs` (a separate binary) for the same reason.

use sqlog_catalog::skyserver_catalog;
use sqlog_core::{Pipeline, PipelineConfig, PipelineResult, RunHealth};
use sqlog_log::{read_log_with, write_log, IngestPolicy, IngestStats, QueryLog};

/// Marker planted in a block comment: the statement parses cleanly while
/// disarmed (comments are stripped by the lexer) but its raw text trips the
/// dedup/parse/sessions/detect hooks.
const CMT_MARKER: &str = "POISON_CMT";
/// Marker planted in a table name: the mine stage sees template ids, not
/// statement text, so its hook matches on `primary_table`.
const TBL_MARKER: &str = "poison_mine_tbl";

/// The corrupted fixture: 9 good entries across three users, one
/// structurally malformed line, one invalid-UTF-8 line, and one depth-bomb
/// statement that exceeds the parser's recursion guard.
fn corrupted_fixture() -> Vec<u8> {
    let mut raw: Vec<u8> = Vec::new();
    fn line(raw: &mut Vec<u8>, s: &str) {
        raw.extend_from_slice(s.as_bytes());
        raw.push(b'\n');
    }
    line(
        &mut raw,
        "0\t0\tu1\t\t\t\tSELECT name FROM Employee WHERE empId = 8",
    );
    line(
        &mut raw,
        &format!("1\t1000\tu1\t\t\t\tSELECT a FROM t WHERE x = 1 /* {CMT_MARKER} */"),
    );
    line(
        &mut raw,
        &format!("2\t2000\tu1\t\t\t\tSELECT a FROM {TBL_MARKER} WHERE x = 2"),
    );
    line(
        &mut raw,
        "3\t3000\tu1\t\t\t\tSELECT name FROM Employee WHERE empId = 1",
    );
    line(&mut raw, "this line is not a log entry at all");
    raw.extend_from_slice(b"4\t4000\tu2\t\t\t\tSELECT \xFF FROM t\n");
    line(&mut raw, "4\t0\tu2\t\t\t\tINSERT INTO t VALUES (1)");
    line(&mut raw, "5\t1000\tu2\t\t\t\tSELECT broken FROM");
    line(
        &mut raw,
        "6\t2000\tu2\t\t\t\tSELECT count(*) FROM photoprimary WHERE htmid>=1 and htmid<=2",
    );
    let bomb = format!("SELECT {}1{}", "(".repeat(10_000), ")".repeat(10_000));
    line(&mut raw, &format!("7\t0\tu3\t\t\t\t{bomb}"));
    line(
        &mut raw,
        "8\t1000\tu3\t\t\t\tSELECT ra, dec FROM photoprimary WHERE objid=3",
    );
    raw
}

fn ingest_lenient() -> (QueryLog, IngestStats) {
    read_log_with(&corrupted_fixture()[..], IngestPolicy::Lenient, None)
        .expect("lenient ingestion never aborts on data faults")
}

/// Runs the pipeline and patches in the ingestion counts, the way
/// `sqlog-clean --lenient` does.
fn run_with(log: &QueryLog, ingest: &IngestStats, threads: usize) -> PipelineResult {
    let catalog = skyserver_catalog();
    let cfg = PipelineConfig {
        parallelism: threads,
        ..PipelineConfig::default()
    };
    let mut result = Pipeline::new(&catalog).with_config(cfg).run(log);
    result.stats.run_health.quarantined_lines = ingest.quarantined;
    result.stats.run_health.invalid_utf8_lines = ingest.invalid_utf8;
    result
}

fn log_bytes(log: &QueryLog) -> Vec<u8> {
    let mut buf = Vec::new();
    write_log(log, &mut buf).expect("serializing to memory cannot fail");
    buf
}

fn clean_contains(result: &PipelineResult, needle: &str) -> bool {
    result
        .clean_log
        .entries
        .iter()
        .any(|e| e.statement.contains(needle))
}

/// Arms the fault hook for one stage; disarms on drop (including unwind),
/// so an assertion failure cannot leak an armed hook into later phases.
struct FaultEnv;

impl FaultEnv {
    fn arm(stage: &str, marker: &str) -> FaultEnv {
        std::env::set_var("SQLOG_FAULT_MARKER", marker);
        std::env::set_var("SQLOG_FAULT_STAGE", stage);
        FaultEnv
    }
}

impl Drop for FaultEnv {
    fn drop(&mut self) {
        std::env::remove_var("SQLOG_FAULT_MARKER");
        std::env::remove_var("SQLOG_FAULT_STAGE");
    }
}

#[test]
fn injected_faults_are_isolated_and_deterministic_across_thread_counts() {
    let (log, ingest) = ingest_lenient();
    assert_eq!(
        ingest,
        IngestStats {
            lines: 11,
            entries: 9,
            quarantined: 2,
            malformed: 1,
            invalid_utf8: 1,
        },
        "ingestion accounting for the corrupted fixture"
    );

    // Disarmed baseline: the marked statements are ordinary records (the
    // comment marker is stripped by the lexer, the table marker is just a
    // table name), and the only health findings are the ingestion damage
    // and the depth bomb.
    let baseline = run_with(&log, &ingest, 1);
    assert_eq!(
        baseline.stats.run_health,
        RunHealth {
            quarantined_lines: 2,
            invalid_utf8_lines: 1,
            limit_rejected: 1,
            poison_records: 0,
            poison_sessions: 0,
            degraded_shards: 0,
            interruptions: 0,
        }
    );
    assert!(clean_contains(&baseline, CMT_MARKER));
    assert!(clean_contains(&baseline, TBL_MARKER));
    let baseline_clean = log_bytes(&baseline.clean_log);

    // One scenario per sharded stage. `poison_records` counts individually
    // skipped records (dedup/parse/sessions recover per record);
    // `poison_sessions` counts skipped sessions (mine/detect recover per
    // session). A single poison record lands in exactly one shard at any
    // thread count, so `degraded_shards` is always exactly 1.
    struct Scenario {
        stage: &'static str,
        marker: &'static str,
        poison_records: usize,
        poison_sessions: usize,
    }
    let scenarios = [
        Scenario {
            stage: "dedup",
            marker: CMT_MARKER,
            poison_records: 1,
            poison_sessions: 0,
        },
        Scenario {
            stage: "parse",
            marker: CMT_MARKER,
            poison_records: 1,
            poison_sessions: 0,
        },
        Scenario {
            stage: "sessions",
            marker: CMT_MARKER,
            poison_records: 1,
            poison_sessions: 0,
        },
        Scenario {
            stage: "mine",
            marker: TBL_MARKER,
            poison_records: 0,
            poison_sessions: 1,
        },
        Scenario {
            stage: "detect",
            marker: CMT_MARKER,
            poison_records: 0,
            poison_sessions: 1,
        },
    ];

    for sc in &scenarios {
        let _armed = FaultEnv::arm(sc.stage, sc.marker);
        let reference = run_with(&log, &ingest, 1);
        assert_eq!(
            reference.stats.run_health,
            RunHealth {
                quarantined_lines: 2,
                invalid_utf8_lines: 1,
                limit_rejected: 1,
                poison_records: sc.poison_records,
                poison_sessions: sc.poison_sessions,
                degraded_shards: 1,
                interruptions: 0,
            },
            "health counts, stage={}",
            sc.stage
        );

        // Stage-specific isolation semantics: a record poisoned before
        // parsing vanishes from the output; one poisoned after parsing
        // passes through solving (it simply belongs to no session, so no
        // instance can consume it); poisoning mining changes no output log
        // at all (only pattern statistics).
        match sc.stage {
            "dedup" | "parse" => {
                assert!(!clean_contains(&reference, sc.marker), "stage={}", sc.stage)
            }
            "sessions" => assert!(clean_contains(&reference, sc.marker)),
            "mine" => assert_eq!(log_bytes(&reference.clean_log), baseline_clean),
            "detect" => {
                // The poisoned session is u1's — its DW pair goes
                // undetected and survives unsolved.
                assert!(clean_contains(&reference, "empId = 8"));
                assert!(clean_contains(&reference, "empId = 1"));
            }
            _ => unreachable!(),
        }

        let ref_clean = log_bytes(&reference.clean_log);
        let ref_removal = log_bytes(&reference.removal_log);
        for threads in [2usize, 8, 0] {
            let run = run_with(&log, &ingest, threads);
            assert_eq!(
                run.stats.with_zeroed_timings(),
                reference.stats.with_zeroed_timings(),
                "stats, stage={} threads={threads}",
                sc.stage
            );
            assert_eq!(
                log_bytes(&run.clean_log),
                ref_clean,
                "clean log bytes, stage={} threads={threads}",
                sc.stage
            );
            assert_eq!(
                log_bytes(&run.removal_log),
                ref_removal,
                "removal log bytes, stage={} threads={threads}",
                sc.stage
            );
        }
    }

    // The guard dropped after each scenario; a disarmed re-run must match
    // the original baseline bit for bit.
    let disarmed = run_with(&log, &ingest, 8);
    assert_eq!(log_bytes(&disarmed.clean_log), baseline_clean);
    assert_eq!(
        disarmed.stats.with_zeroed_timings(),
        baseline.stats.with_zeroed_timings()
    );
}
