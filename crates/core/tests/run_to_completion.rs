//! Run-to-completion robustness without fault injection.
//!
//! These tests exercise the guard rails that operate on real (non-injected)
//! damage: parser resource limits, lenient ingestion, and the clean-run
//! health baseline. They must not touch the `SQLOG_FAULT_*` environment
//! variables — env-dependent scenarios live in `fault_isolation.rs`, a
//! separate test binary, because the hook reads process-global state.

use sqlog_catalog::skyserver_catalog;
use sqlog_core::{Pipeline, PipelineConfig, PipelineResult};
use sqlog_log::{read_log_with, IngestPolicy, LogEntry, QueryLog, Timestamp};

fn run_with(log: &QueryLog, threads: usize) -> PipelineResult {
    let catalog = skyserver_catalog();
    let cfg = PipelineConfig {
        parallelism: threads,
        ..PipelineConfig::default()
    };
    Pipeline::new(&catalog).with_config(cfg).run(log)
}

fn log_of(rows: &[(&str, i64, &str)]) -> QueryLog {
    QueryLog::from_entries(
        rows.iter()
            .enumerate()
            .map(|(i, (stmt, secs, user))| {
                LogEntry::minimal(i as u64, *stmt, Timestamp::from_secs(*secs)).with_user(*user)
            })
            .collect(),
    )
}

#[test]
fn healthy_run_reports_clean_health() {
    let log = log_of(&[
        ("SELECT name FROM Employee WHERE empId = 8", 0, "u1"),
        ("SELECT name FROM Employee WHERE empId = 1", 1, "u1"),
        ("SELECT broken FROM", 2, "u2"),
        ("INSERT INTO t VALUES (1)", 3, "u2"),
    ]);
    for threads in [1usize, 8] {
        let result = run_with(&log, threads);
        // Plain syntax errors and non-SELECTs are expected log content, not
        // health findings.
        assert!(
            result.stats.run_health.is_clean(),
            "threads={threads}: {:?}",
            result.stats.run_health
        );
    }
}

#[test]
fn depth_bomb_is_rejected_by_limit_not_by_stack_overflow() {
    let bomb = format!("SELECT {}1{}", "(".repeat(10_000), ")".repeat(10_000));
    let log = log_of(&[
        (bomb.as_str(), 0, "u1"),
        ("SELECT broken FROM", 1, "u1"),
        ("SELECT name FROM Employee WHERE empId = 8", 2, "u2"),
    ]);
    let reference = run_with(&log, 1);
    // The bomb is counted both as a limit rejection and, like any
    // unparseable statement, as a syntax error — `limit_rejected` refines
    // the pinned `syntax_errors` total rather than competing with it.
    assert_eq!(reference.stats.run_health.limit_rejected, 1);
    assert_eq!(reference.stats.syntax_errors, 2);
    assert_eq!(reference.stats.run_health.poison_records, 0);
    assert_eq!(reference.stats.run_health.degraded_shards, 0);
    for threads in [2usize, 8, 0] {
        let run = run_with(&log, threads);
        assert_eq!(
            run.stats.with_zeroed_timings(),
            reference.stats.with_zeroed_timings(),
            "threads={threads}"
        );
    }
}

#[test]
fn lenient_ingestion_feeds_the_pipeline_and_fills_health_counts() {
    let mut raw: Vec<u8> = Vec::new();
    raw.extend_from_slice(b"0\t0\tu1\t\t\t\tSELECT name FROM Employee WHERE empId = 8\n");
    raw.extend_from_slice(b"garbage line\n");
    raw.extend_from_slice(b"1\t1000\tu1\t\t\t\tSELECT \xFF FROM t\n");
    raw.extend_from_slice(b"1\t1000\tu1\t\t\t\tSELECT name FROM Employee WHERE empId = 1\n");

    let mut sidecar: Vec<u8> = Vec::new();
    let (log, stats) =
        read_log_with(&raw[..], IngestPolicy::Lenient, Some(&mut sidecar)).expect("lenient read");
    assert_eq!(log.len(), 2);
    assert_eq!(
        (stats.quarantined, stats.malformed, stats.invalid_utf8),
        (2, 1, 1)
    );
    assert_eq!(
        sidecar,
        b"garbage line\n1\t1000\tu1\t\t\t\tSELECT \xFF FROM t\n"
    );

    // Strict mode pins the historical fail-fast contract on the same bytes.
    assert!(read_log_with(&raw[..], IngestPolicy::Strict, None).is_err());

    let mut result = run_with(&log, 1);
    result.stats.run_health.quarantined_lines = stats.quarantined;
    result.stats.run_health.invalid_utf8_lines = stats.invalid_utf8;
    assert!(!result.stats.run_health.is_clean());
    assert_eq!(result.stats.run_health.quarantined_lines, 2);
    assert_eq!(result.stats.run_health.invalid_utf8_lines, 1);
    // The surviving DW pair still gets cleaned normally.
    assert_eq!(result.stats.solved_instances, 1);
}
