//! Robustness: the pipeline is total over arbitrary logs — any mixture of
//! garbage, valid SQL, weird timestamps and missing metadata produces a
//! result, never a panic.

use proptest::prelude::*;
use sqlog_catalog::skyserver_catalog;
use sqlog_core::Pipeline;
use sqlog_log::{LogEntry, QueryLog, Timestamp};

fn statement_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        // Arbitrary junk.
        ".{0,80}",
        // SQL-ish fragments.
        "(SELECT|select) [a-z, *()@0-9='<>.]{0,60}",
        // Valid point queries.
        (0u64..50).prop_map(|i| format!("SELECT name FROM employee WHERE empid = {i}")),
        // Valid range scans.
        (0u64..1000).prop_map(|i| {
            format!(
                "SELECT count(*) FROM photoprimary WHERE htmid >= {i} AND htmid <= {}",
                i + 9
            )
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pipeline_is_total(
        rows in prop::collection::vec(
            (statement_strategy(), any::<i32>(), prop::option::of(0u8..4)),
            0..60,
        )
    ) {
        let mut log = QueryLog::from_entries(
            rows.into_iter()
                .enumerate()
                .map(|(i, (stmt, ms, user))| {
                    let mut e = LogEntry::minimal(
                        i as u64,
                        stmt,
                        Timestamp::from_millis(i64::from(ms)),
                    );
                    if let Some(u) = user {
                        e = e.with_user(format!("u{u}"));
                    }
                    e
                })
                .collect(),
        );
        log.sort_by_time();
        for (i, e) in log.entries.iter_mut().enumerate() {
            e.id = i as u64;
        }
        let catalog = skyserver_catalog();
        let result = Pipeline::new(&catalog).run(&log);
        // Conservation invariants hold whatever the input.
        prop_assert!(result.stats.final_size <= log.len());
        prop_assert_eq!(
            result.stats.final_size,
            result.stats.select_count - result.stats.solved_queries
                + result.stats.rewritten_statements
        );
        // Every clean statement re-parses.
        for e in &result.clean_log.entries {
            prop_assert!(sqlog_sql::parse_statement(&e.statement).is_ok());
        }
    }
}
