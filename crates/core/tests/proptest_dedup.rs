//! Property tests for duplicate deletion (§5.2).

use proptest::prelude::*;
use sqlog_core::dedup;
use sqlog_log::{LogEntry, QueryLog, Timestamp};

fn log_strategy() -> impl Strategy<Value = QueryLog> {
    // Few distinct statements and users, bursty times: a dedup stress mix.
    prop::collection::vec((0u8..6, 0u8..3, 0i64..20_000), 0..60).prop_map(|rows| {
        let mut entries: Vec<LogEntry> = rows
            .into_iter()
            .enumerate()
            .map(|(i, (stmt, user, ms))| {
                LogEntry::minimal(
                    i as u64,
                    format!("SELECT c{stmt} FROM t WHERE x = {stmt}"),
                    Timestamp::from_millis(ms),
                )
                .with_user(format!("u{user}"))
            })
            .collect();
        entries.sort_by_key(|e| (e.timestamp, e.id));
        for (i, e) in entries.iter_mut().enumerate() {
            e.id = i as u64;
        }
        QueryLog::from_entries(entries)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Larger thresholds never remove fewer duplicates (the Table 4 shape).
    #[test]
    fn threshold_monotonicity(log in log_strategy()) {
        let mut prev = 0usize;
        for t in [0u64, 500, 1_000, 5_000] {
            let (_, stats) = dedup(&log, Some(t));
            prop_assert!(stats.removed >= prev);
            prev = stats.removed;
        }
        let (_, unrestricted) = dedup(&log, None);
        prop_assert!(unrestricted.removed >= prev);
    }

    /// Deduplication is idempotent: a second pass removes nothing.
    #[test]
    fn idempotence(log in log_strategy(), t in prop::option::of(0u64..5_000)) {
        let (once, _) = dedup(&log, t);
        let (twice, second) = dedup(&once, t);
        prop_assert_eq!(second.removed, 0);
        prop_assert_eq!(once, twice);
    }

    /// Dedup only ever removes entries, never reorders or invents them.
    #[test]
    fn output_is_a_subsequence(log in log_strategy(), t in 0u64..5_000) {
        let (clean, stats) = dedup(&log, Some(t));
        prop_assert_eq!(clean.len() + stats.removed, log.len());
        // Subsequence check by (id) order.
        let mut it = log.entries.iter();
        for kept in &clean.entries {
            prop_assert!(
                it.any(|orig| orig.id == kept.id),
                "entry {} not in order",
                kept.id
            );
        }
    }

    /// The first occurrence of every distinct (user, statement) is kept.
    #[test]
    fn first_occurrences_survive(log in log_strategy(), t in prop::option::of(0u64..5_000)) {
        let (clean, _) = dedup(&log, t);
        let mut firsts = std::collections::HashSet::new();
        for e in &log.entries {
            let key = (e.user_key().to_string(), e.statement.clone());
            if firsts.insert(key) {
                prop_assert!(
                    clean.entries.iter().any(|c| c.id == e.id),
                    "first occurrence {} was removed",
                    e.id
                );
            }
        }
    }
}
