//! End-to-end pipeline runs over the synthetic SkyServer-like log.
//!
//! These tests assert the *shape* results of the paper's case study (§6.3,
//! §6.4) at reduced scale: a significant share of the log is covered by
//! solvable Stifles, cleaning shrinks the log, the top patterns include
//! antipatterns before cleaning, and CTH candidates split into true and
//! false positives against the generator's ground truth.

use sqlog_catalog::skyserver_catalog;
use sqlog_core::{top_patterns, AntipatternClass, Pipeline};
use sqlog_gen::{generate, GenConfig};
use sqlog_log::IntentKind;

fn run(scale: usize, seed: u64) -> (sqlog_log::QueryLog, sqlog_core::PipelineResult) {
    let log = generate(&GenConfig::with_scale(scale, seed));
    let catalog = skyserver_catalog();
    let result = Pipeline::new(&catalog).run(&log);
    (log, result)
}

#[test]
fn headline_shares_match_the_paper_shape() {
    let (log, result) = run(30_000, 1001);
    let s = &result.stats;

    // ~4 % of statements are DML or syntax errors (paper: 42 M → 40.2 M).
    let dropped = s.syntax_errors + s.non_select;
    let dropped_share = dropped as f64 / s.after_dedup as f64;
    assert!(
        (0.01..=0.10).contains(&dropped_share),
        "dropped share = {dropped_share}"
    );

    // Duplicates removed (paper: 40.2 M → 38.5 M ≈ 4 %).
    let dup_share = s.duplicates_removed as f64 / s.original_size as f64;
    assert!(
        (0.01..=0.08).contains(&dup_share),
        "dup share = {dup_share}"
    );

    // Solvable Stifles cover a significant share of the SELECTs
    // (paper: ≈ 19.2 %).
    let cov = s.solvable_coverage_pct();
    assert!((10.0..=30.0).contains(&cov), "stifle coverage = {cov}%");

    // Cleaning shrinks the log substantially (paper: final = 72.5 % of raw).
    let final_share = s.final_size as f64 / log.len() as f64;
    assert!(
        (0.55..=0.90).contains(&final_share),
        "final share = {final_share}"
    );

    // All three stifle classes and CTH candidates are present.
    for class in ["DW-Stifle", "DS-Stifle", "DF-Stifle", "CTH", "SNC"] {
        assert!(
            s.per_class.get(class).map_or(0, |c| c.queries) > 0,
            "missing class {class}"
        );
    }

    // DW dominates DS dominates DF in covered queries (Table 5 ordering).
    let q = |c: &str| s.per_class[c].queries;
    assert!(q("DW-Stifle") > q("DS-Stifle"));
    assert!(q("DS-Stifle") > q("DF-Stifle"));
}

#[test]
fn top_patterns_contain_antipatterns_before_cleaning() {
    let (_, result) = run(30_000, 1002);
    let rows = top_patterns(&result.mined, &result.marks, &result.store, 15, 2);
    let antipatterns = rows.iter().filter(|r| r.class.is_some()).count();
    // Paper §6.4: 6 antipatterns among the top 15.
    assert!(
        (3..=12).contains(&antipatterns),
        "antipatterns in top 15 = {antipatterns}"
    );
}

#[test]
fn repeated_cleaning_converges() {
    // §5.5: "After one cleaning step, there can be further solvable
    // antipatterns. To check this, one needs to parse statements again and
    // possibly solve." On SkyServer the residual was 0.09 %; our synthetic
    // web-UI sessions nest DS inside DW (the merged description/text
    // queries differ only in the `name` constant), so a second pass still
    // finds work — but the process must shrink monotonically and reach a
    // fixpoint in a few passes.
    let (_, result) = run(15_000, 1003);
    let catalog = skyserver_catalog();
    let mut log = result.clean_log;
    let mut prev_solved = result.stats.solved_queries;
    for pass in 2..=6 {
        let next = Pipeline::new(&catalog).run(&log);
        assert!(
            next.stats.solved_queries < prev_solved,
            "pass {pass} solved {} (previous {prev_solved})",
            next.stats.solved_queries
        );
        prev_solved = next.stats.solved_queries;
        log = next.clean_log;
        if prev_solved == 0 {
            return; // fixpoint reached
        }
    }
    let residual = prev_solved as f64 / log.len().max(1) as f64;
    assert!(residual < 0.01, "residual after 6 passes = {residual}");
}

#[test]
fn cth_candidates_split_into_true_and_false() {
    // The paper's §6.6 judges *distinct* candidates (50 found, 28 real);
    // here the generator's ground truth plays the domain expert, and a
    // distinct candidate is real when the majority of its instances carry
    // dependent follow-ups.
    let (log, result) = run(30_000, 1004);
    let mut votes: std::collections::HashMap<&[sqlog_core::TemplateId], (usize, usize)> =
        std::collections::HashMap::new();
    for (inst, entry_ids) in result
        .instances
        .iter()
        .zip(&result.instance_entry_ids)
        .filter(|(i, _)| i.class == AntipatternClass::CthCandidate)
    {
        assert!(!inst.solvable);
        let real = entry_ids[1..].iter().any(|&id| {
            log.entries[id as usize].truth.map(|t| t.kind) == Some(IntentKind::CthFollowUp)
        });
        let v = votes.entry(inst.identity.as_slice()).or_default();
        if real {
            v.0 += 1;
        } else {
            v.1 += 1;
        }
    }
    let distinct = votes.len();
    let real_distinct = votes.values().filter(|(t, f)| t > f).count();
    assert!(distinct >= 10, "only {distinct} distinct candidates");
    assert!(real_distinct > 0, "no real CTH found");
    assert!(real_distinct < distinct, "no false CTH found");
    // Shape check: a substantial fraction of candidates is real, but not
    // all (paper: 28/50 = 56 %).
    let share = real_distinct as f64 / distinct as f64;
    assert!((0.2..=0.9).contains(&share), "real share = {share}");
}

#[test]
fn stripping_metadata_keeps_frequencies_stable() {
    // §6.8: without user/session info the top-pattern frequencies barely
    // move, because instances are tightly clustered in time.
    let log = generate(&GenConfig::with_scale(20_000, 1005));
    let catalog = skyserver_catalog();
    let with_users = Pipeline::new(&catalog).run(&log);
    let without_users = Pipeline::new(&catalog).run(&log.strip_metadata());

    let top_with = top_patterns(
        &with_users.mined,
        &with_users.marks,
        &with_users.store,
        5,
        2,
    );
    let top_without = top_patterns(
        &without_users.mined,
        &without_users.marks,
        &without_users.store,
        30,
        1,
    );
    // Each of the top-5 patterns keeps a similar frequency without users.
    for row in &top_with {
        let found = top_without
            .iter()
            .find(|r| r.key.len() == row.key.len() && r.skeletons == row.skeletons);
        let Some(found) = found else {
            panic!(
                "top pattern vanished without user info: {:?}",
                row.skeletons
            );
        };
        let ratio = found.frequency as f64 / row.frequency as f64;
        assert!(
            (0.7..=1.3).contains(&ratio),
            "frequency moved by {ratio} for {:?}",
            row.skeletons
        );
    }

    // Final log sizes differ by well under a few percent (paper: 0.36 %).
    let a = with_users.stats.final_size as f64;
    let b = without_users.stats.final_size as f64;
    assert!(((a - b) / a).abs() < 0.10, "final sizes {a} vs {b}");
}
