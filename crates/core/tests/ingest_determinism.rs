//! Segmented ingest is observably identical to the sequential reader.
//!
//! `ingest_slice_traced` splits the input into line-aligned byte segments
//! and scans them in parallel. These tests pin the merge contract end to
//! end: for every thread count and both ingest policies, the entries, the
//! ingest statistics, the quarantine sidecar bytes, and the *pipeline
//! outputs computed from the ingested log* (clean log, removal log) are
//! byte-identical to a sequential `read_log_with` scan — including on a
//! hostile corpus whose quarantined lines straddle segment boundaries.

use sqlog_catalog::skyserver_catalog;
use sqlog_core::{ingest_slice_traced, Pipeline, PipelineConfig};
use sqlog_gen::{generate, GenConfig};
use sqlog_log::{read_log_with, write_log, IngestPolicy, QueryLog};
use sqlog_obs::Recorder;

const THREADS: [usize; 4] = [1, 2, 8, 0]; // 0 = auto (one per core)

/// A generated workload serialized to TSV — clean lines only.
fn clean_corpus() -> Vec<u8> {
    let log = generate(&GenConfig::with_scale(4_000, 99));
    let mut data = Vec::new();
    write_log(&log, &mut data).unwrap();
    data
}

/// The clean corpus with garbage interleaved *pervasively*, so that at every
/// thread count some quarantined line straddles or abuts a segment cut:
/// every few lines carry a wrong field count, invalid UTF-8, a blank line,
/// or a CRLF terminator, and the file ends without a newline.
fn hostile_corpus() -> Vec<u8> {
    let clean = clean_corpus();
    let mut data = Vec::new();
    for (i, line) in clean.split_inclusive(|&b| b == b'\n').enumerate() {
        data.extend_from_slice(line);
        match i % 5 {
            0 => data.extend_from_slice(b"garbage line without enough tabs\n"),
            1 => data.extend_from_slice(b"\n"),
            2 => data.extend_from_slice(b"9\t9\t\xFF\t\t\t\tSELECT 1\n"),
            3 => data.extend_from_slice(b"8\t8\tu\t\t\t\tSELECT 2\r\n"),
            _ => {}
        }
    }
    data.extend_from_slice(b"trailing line with no terminator");
    data
}

/// Sequential reference scan.
fn sequential(data: &[u8], policy: IngestPolicy) -> Result<(QueryLog, Vec<u8>), String> {
    let mut quarantine = Vec::new();
    read_log_with(data, policy, Some(&mut quarantine))
        .map(|(log, _)| (log, quarantine))
        .map_err(|e| e.to_string())
}

/// Segmented scan at a given thread count.
fn segmented(
    data: &[u8],
    policy: IngestPolicy,
    threads: usize,
) -> Result<(QueryLog, Vec<u8>), String> {
    let mut quarantine = Vec::new();
    ingest_slice_traced(
        data,
        policy,
        threads,
        Some(&mut quarantine),
        &Recorder::disabled(),
        None,
    )
    .map(|(log, _)| (log, quarantine))
    .map_err(|e| e.to_string())
}

#[test]
fn segmented_ingest_matches_sequential_on_clean_and_hostile_corpora() {
    for (label, data) in [("clean", clean_corpus()), ("hostile", hostile_corpus())] {
        for policy in [IngestPolicy::Strict, IngestPolicy::Lenient] {
            let seq = sequential(&data, policy);
            for threads in THREADS {
                let seg = segmented(&data, policy, threads);
                assert_eq!(seg, seq, "{label}, {policy:?}, threads={threads}");
            }
        }
    }
}

#[test]
fn pipeline_outputs_from_segmented_ingest_are_byte_identical() {
    // End to end: hostile corpus → lenient ingest → pipeline. Clean and
    // removal logs must not depend on the segment count, with the parse
    // cache on or off.
    let data = hostile_corpus();
    let (seq_log, seq_quarantine) = sequential(&data, IngestPolicy::Lenient).unwrap();
    assert!(
        !seq_quarantine.is_empty(),
        "corpus must exercise quarantine"
    );
    let catalog = skyserver_catalog();
    let run = |log: &QueryLog, cache: bool| {
        let cfg = PipelineConfig {
            parse_cache: cache,
            ..PipelineConfig::default()
        };
        Pipeline::new(&catalog).with_config(cfg).run(log)
    };
    for cache in [false, true] {
        let reference = run(&seq_log, cache);
        for threads in THREADS {
            let (log, quarantine) = segmented(&data, IngestPolicy::Lenient, threads).unwrap();
            assert_eq!(quarantine, seq_quarantine, "threads={threads}");
            let result = run(&log, cache);
            assert_eq!(
                result.clean_log, reference.clean_log,
                "clean log differs: threads={threads}, cache={cache}"
            );
            assert_eq!(
                result.removal_log, reference.removal_log,
                "removal log differs: threads={threads}, cache={cache}"
            );
        }
    }
}

#[test]
fn dedup_prefilter_and_solve_batching_are_invisible_in_the_output() {
    // The two new fast paths are pure optimizations: toggling them must not
    // change any pipeline output.
    let log = generate(&GenConfig::with_scale(4_000, 4242));
    let catalog = skyserver_catalog();
    let run = |prefilter: bool, batching: bool, threads: usize| {
        let cfg = PipelineConfig {
            parallelism: threads,
            dedup_prefilter: prefilter,
            solve_batching: batching,
            ..PipelineConfig::default()
        };
        Pipeline::new(&catalog).with_config(cfg).run(&log)
    };
    let reference = run(false, false, 1);
    for threads in [1usize, 8] {
        for prefilter in [false, true] {
            for batching in [false, true] {
                let result = run(prefilter, batching, threads);
                let label =
                    format!("threads={threads}, prefilter={prefilter}, batching={batching}");
                assert_eq!(
                    result.stats.with_zeroed_timings(),
                    reference.stats.with_zeroed_timings(),
                    "stats differ: {label}"
                );
                assert_eq!(result.clean_log, reference.clean_log, "clean: {label}");
                assert_eq!(
                    result.removal_log, reference.removal_log,
                    "removal: {label}"
                );
                assert_eq!(result.instances, reference.instances, "instances: {label}");
            }
        }
    }
}
