//! Regression pins for the parse cache's *uncacheable* shapes.
//!
//! The raw shape key collapses every number and string literal, so two
//! statements can share a [`RawKey`] while meaning different templates
//! (`CAST(x AS DECIMAL(10,2))` vs `DECIMAL(12,4)` — the type size is part
//! of the skeleton) or while carrying literal text the substitution recipe
//! cannot splice back verbatim (`''`-escaped strings). The sentinel probe
//! must mark those shapes uncacheable and every statement of the shape must
//! take the full-parse path — same records, same pipeline bytes, cache on
//! or off.

use sqlog_catalog::skyserver_catalog;
use sqlog_core::{parse_view_traced, ParseOptions, Pipeline, PipelineConfig, TemplateStore};
use sqlog_log::{write_log, LogEntry, LogView, QueryLog, Timestamp};
use sqlog_obs::Recorder;
use sqlog_skeleton::{raw_shape_scan, QueryTemplate};
use sqlog_sql::parse_query;

fn log_of(statements: &[&str]) -> QueryLog {
    QueryLog::from_entries(
        statements
            .iter()
            .enumerate()
            .map(|(i, s)| {
                LogEntry::minimal(i as u64, *s, Timestamp::from_secs(10 * i as i64)).with_user("u")
            })
            .collect(),
    )
}

fn parse_with_cache(log: &QueryLog, cache: bool) -> (String, sqlog_core::ParseCacheStats) {
    let store = TemplateStore::new();
    let parsed = parse_view_traced(
        &LogView::identity(log),
        &store,
        &ParseOptions {
            cache,
            ..ParseOptions::default()
        },
        1,
        &Recorder::disabled(),
        None,
    );
    (format!("{:?}", parsed.records), parsed.cache)
}

#[test]
fn cast_type_sizes_share_a_raw_key_but_not_a_template() {
    let a = "SELECT CAST(ra AS DECIMAL(10,2)) FROM photoprimary WHERE objid = 1";
    let b = "SELECT CAST(ra AS DECIMAL(12,4)) FROM photoprimary WHERE objid = 1";
    let (mut va, mut vb) = (Vec::new(), Vec::new());
    assert_eq!(
        raw_shape_scan(a, &mut va),
        raw_shape_scan(b, &mut vb),
        "the raw key cannot see type sizes — that is the hazard"
    );
    let ta = QueryTemplate::of_query(&parse_query(a).unwrap());
    let tb = QueryTemplate::of_query(&parse_query(b).unwrap());
    assert_ne!(
        ta.fingerprint, tb.fingerprint,
        "the skeleton renders the type size, so the templates differ"
    );
}

#[test]
fn cast_shapes_never_hit_the_cache() {
    // Ten control statements of one cacheable shape, then interleaved CAST
    // variants whose raw keys collide across different templates.
    let mut statements: Vec<String> = (0..10)
        .map(|i| format!("SELECT ra FROM photoprimary WHERE objid = {i}"))
        .collect();
    for i in 0..6 {
        let (p, s) = if i % 2 == 0 { (10, 2) } else { (12, 4) };
        statements.push(format!(
            "SELECT CAST(ra AS DECIMAL({p},{s})) FROM photoprimary WHERE objid = {i}"
        ));
    }
    let refs: Vec<&str> = statements.iter().map(|s| s.as_str()).collect();
    let log = log_of(&refs);

    let (with_cache, stats) = parse_with_cache(&log, true);
    let (without_cache, off_stats) = parse_with_cache(&log, false);
    assert_eq!(with_cache, without_cache, "records must be byte-identical");
    assert!(stats.enabled);
    assert!(!off_stats.enabled);
    // Only the control shape may serve hits: 10 statements = 1 miss + 9
    // hits. Every CAST statement must fall back to a full parse.
    assert_eq!(stats.hits, 9, "{stats:?}");
    assert!(stats.fallbacks >= 5, "{stats:?}");
}

#[test]
fn escaped_strings_never_serve_stale_literals() {
    // Same raw key (both literals collapse to one string placeholder), but
    // the `''` escape means the recorded span is not the literal's value —
    // splicing it into a cached profile verbatim would corrupt the second
    // statement's predicate.
    let log = log_of(&[
        "SELECT access FROM dbobjects WHERE name = 'O''Hara'",
        "SELECT access FROM dbobjects WHERE name = 'D''Arcy'",
    ]);
    let (with_cache, _) = parse_with_cache(&log, true);
    let (without_cache, _) = parse_with_cache(&log, false);
    assert_eq!(with_cache, without_cache);
    // The two records must differ from each other — the second statement's
    // profile carries its own literal, not a stale cached one.
    assert!(with_cache.contains("Arcy"), "{with_cache}");
}

#[test]
fn pipeline_bytes_identical_across_cache_setting_on_hazard_shapes() {
    let catalog = skyserver_catalog();
    let log = log_of(&[
        "SELECT CAST(ra AS DECIMAL(10,2)) FROM photoprimary WHERE objid = 11",
        "SELECT CAST(ra AS DECIMAL(12,4)) FROM photoprimary WHERE objid = 12",
        "SELECT access FROM dbobjects WHERE name = 'O''Hara'",
        "SELECT ra, rowc_g FROM photoprimary WHERE objid = 587722982000000000",
        "SELECT ra, rowc_g FROM photoprimary WHERE objid = 587722982000001000",
    ]);
    let run = |cache: bool| {
        let result = Pipeline::new(&catalog)
            .with_config(PipelineConfig {
                parse_cache: cache,
                ..PipelineConfig::default()
            })
            .run(&log);
        let mut clean = Vec::new();
        let mut removal = Vec::new();
        write_log(&result.clean_log, &mut clean).unwrap();
        write_log(&result.removal_log, &mut removal).unwrap();
        (clean, removal, format!("{:?}", result.stats.per_class))
    };
    assert_eq!(run(true), run(false));
}
