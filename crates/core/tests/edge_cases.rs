//! Edge-case tests for detection, solving and configuration interplay.

use sqlog_catalog::skyserver_catalog;
use sqlog_core::{AntipatternClass, Pipeline, PipelineConfig};
use sqlog_log::{LogEntry, QueryLog, Timestamp};

fn log_at(rows: &[(&str, i64)]) -> QueryLog {
    QueryLog::from_entries(
        rows.iter()
            .enumerate()
            .map(|(i, (s, secs))| {
                LogEntry::minimal(i as u64, *s, Timestamp::from_secs(*secs)).with_user("u")
            })
            .collect(),
    )
}

fn run(log: &QueryLog) -> sqlog_core::PipelineResult {
    let catalog = skyserver_catalog();
    Pipeline::new(&catalog).run(log)
}

fn run_with(log: &QueryLog, config: PipelineConfig) -> sqlog_core::PipelineResult {
    let catalog = skyserver_catalog();
    Pipeline::new(&catalog).with_config(config).run(log)
}

#[test]
fn stifle_runs_split_at_session_boundaries() {
    // Two DW pairs, ten hours apart: Def. 8 forbids one instance spanning
    // the pause, so two instances are found.
    let log = log_at(&[
        ("SELECT name FROM employee WHERE empid = 1", 0),
        ("SELECT name FROM employee WHERE empid = 2", 2),
        ("SELECT name FROM employee WHERE empid = 3", 36_000),
        ("SELECT name FROM employee WHERE empid = 4", 36_002),
    ]);
    let result = run(&log);
    let dw: Vec<_> = result
        .instances
        .iter()
        .filter(|i| i.class == AntipatternClass::DwStifle)
        .collect();
    assert_eq!(dw.len(), 2);
    assert_eq!(result.stats.solved_instances, 2);
    assert_eq!(result.clean_log.len(), 2);
}

#[test]
fn cth_followups_do_not_cross_sessions() {
    // The follow-up arrives 10 hours later — not a hunt.
    let log = log_at(&[
        ("SELECT * FROM dbo.fGetNearestObjEq(1.0, 2.0, 0.1)", 0),
        (
            "SELECT z FROM specobjall WHERE specobjid = 75094000000000007",
            36_000,
        ),
    ]);
    let result = run(&log);
    assert!(result
        .instances
        .iter()
        .all(|i| i.class != AntipatternClass::CthCandidate));
}

#[test]
fn cth_lookahead_bounds_the_instance() {
    // Source + 12 follow-ups, default lookahead 8 → instance covers 9.
    let mut rows: Vec<(String, i64)> = vec![(
        "SELECT * FROM dbo.fGetNearestObjEq(1.0, 2.0, 0.1)".into(),
        0,
    )];
    for k in 0..12i64 {
        rows.push((
            format!("SELECT z FROM specobjall WHERE specobjid = 7509400000000{k:04}"),
            1 + k,
        ));
    }
    let rows_ref: Vec<(&str, i64)> = rows.iter().map(|(s, t)| (s.as_str(), *t)).collect();
    let log = log_at(&rows_ref);
    let result = run(&log);
    let cth: Vec<_> = result
        .instances
        .iter()
        .filter(|i| i.class == AntipatternClass::CthCandidate)
        .collect();
    assert_eq!(cth.len(), 1);
    assert_eq!(
        cth[0].records.len(),
        9,
        "source + lookahead-bounded follow-ups"
    );

    // A larger lookahead covers them all.
    let result = run_with(
        &log,
        PipelineConfig {
            cth_lookahead: 20,
            ..PipelineConfig::default()
        },
    );
    let cth: Vec<_> = result
        .instances
        .iter()
        .filter(|i| i.class == AntipatternClass::CthCandidate)
        .collect();
    assert_eq!(cth[0].records.len(), 13);
}

#[test]
fn dw_rewrite_without_filter_column_injection() {
    let log = log_at(&[
        ("SELECT name FROM employee WHERE empid = 8", 0),
        ("SELECT name FROM employee WHERE empid = 1", 1),
    ]);
    let result = run_with(
        &log,
        PipelineConfig {
            rewrite_adds_filter_column: false,
            ..PipelineConfig::default()
        },
    );
    assert_eq!(
        result.clean_log.entries[0].statement,
        "SELECT name FROM employee WHERE empid IN (8, 1)"
    );
}

#[test]
fn dw_rewrite_keeps_existing_filter_column() {
    // The filter column is already projected — it must not be duplicated.
    let log = log_at(&[
        ("SELECT empid, name FROM employee WHERE empid = 8", 0),
        ("SELECT empid, name FROM employee WHERE empid = 1", 1),
    ]);
    let result = run(&log);
    assert_eq!(
        result.clean_log.entries[0].statement,
        "SELECT empid, name FROM employee WHERE empid IN (8, 1)"
    );
}

#[test]
fn ds_rewrite_preserves_aliases() {
    let log = log_at(&[
        ("SELECT name AS n FROM employee WHERE empid = 8", 0),
        ("SELECT address AS a FROM employee WHERE empid = 8", 1),
    ]);
    let result = run(&log);
    assert_eq!(
        result.clean_log.entries[0].statement,
        "SELECT name AS n, address AS a FROM employee WHERE empid = 8"
    );
}

#[test]
fn snc_inside_a_dw_run_first_wins() {
    // Query 1 is both an SNC (y = NULL) and… no — make query 2 SNC-shaped
    // while 1–2 also look like DW on empid? They cannot (SNC has CP 2 here).
    // Instead: an SNC occurrence amid a DW run must not break the DW merge.
    let log = log_at(&[
        ("SELECT name FROM employee WHERE empid = 1", 0),
        ("SELECT name FROM employee WHERE empid = 2", 1),
        ("SELECT * FROM photoprimary WHERE flags = NULL", 2),
        ("SELECT name FROM employee WHERE empid = 3", 3),
        ("SELECT name FROM employee WHERE empid = 4", 4),
    ]);
    let result = run(&log);
    // Two DW instances (split by the SNC query) plus the SNC itself.
    assert_eq!(result.stats.per_class["DW-Stifle"].instances, 2);
    assert_eq!(result.stats.per_class["SNC"].instances, 1);
    assert_eq!(result.stats.solved_instances, 3);
    let statements: Vec<_> = result
        .clean_log
        .entries
        .iter()
        .map(|e| e.statement.as_str())
        .collect();
    assert!(statements.iter().any(|s| s.ends_with("IS NULL")));
    assert_eq!(statements.len(), 3);
}

#[test]
fn min_pattern_frequency_filters_reporting_only() {
    let log = log_at(&[
        ("SELECT ra FROM galaxy WHERE r BETWEEN 1 AND 2", 0),
        ("SELECT name FROM employee WHERE empid = 1", 100),
        ("SELECT name FROM employee WHERE empid = 2", 101),
    ]);
    let strict = run_with(
        &log,
        PipelineConfig {
            min_pattern_frequency: 3,
            ..PipelineConfig::default()
        },
    );
    let loose = run_with(
        &log,
        PipelineConfig {
            min_pattern_frequency: 1,
            ..PipelineConfig::default()
        },
    );
    assert!(strict.stats.pattern_count < loose.stats.pattern_count);
    // Detection and solving are unaffected by the reporting floor.
    assert_eq!(strict.stats.solved_instances, loose.stats.solved_instances);
}

#[test]
fn different_users_never_share_an_instance() {
    let log = QueryLog::from_entries(vec![
        LogEntry::minimal(
            0,
            "SELECT name FROM employee WHERE empid = 1",
            Timestamp::from_secs(0),
        )
        .with_user("a"),
        LogEntry::minimal(
            1,
            "SELECT name FROM employee WHERE empid = 2",
            Timestamp::from_secs(1),
        )
        .with_user("b"),
    ]);
    let result = run(&log);
    assert_eq!(result.stats.solved_instances, 0);
    assert_eq!(result.stats.final_size, 2);
}

#[test]
fn duplicate_of_a_stifle_member_is_removed_first() {
    // The duplicate (same statement, 300 ms later) is deleted in step 1, so
    // the DW run sees clean constants.
    let log = QueryLog::from_entries(vec![
        LogEntry::minimal(
            0,
            "SELECT name FROM employee WHERE empid = 1",
            Timestamp::from_millis(0),
        )
        .with_user("u"),
        LogEntry::minimal(
            1,
            "SELECT name FROM employee WHERE empid = 1",
            Timestamp::from_millis(300),
        )
        .with_user("u"),
        LogEntry::minimal(
            2,
            "SELECT name FROM employee WHERE empid = 2",
            Timestamp::from_millis(900),
        )
        .with_user("u"),
    ]);
    let result = run(&log);
    assert_eq!(result.stats.duplicates_removed, 1);
    assert_eq!(result.stats.solved_instances, 1);
    assert!(result.clean_log.entries[0].statement.contains("IN (1, 2)"));
}

#[test]
fn cross_apply_queries_flow_through_the_pipeline() {
    // Dialect coverage: APPLY joins parse, template, and mine like any
    // other shape.
    let log = log_at(&[
        (
            "SELECT p.objid FROM photoprimary p CROSS APPLY \
             fGetNearbyObjEq(p.ra, p.dec, 1.0) n",
            0,
        ),
        (
            "SELECT p.objid FROM photoprimary p CROSS APPLY \
             fGetNearbyObjEq(p.ra, p.dec, 2.0) n",
            10,
        ),
    ]);
    let result = run(&log);
    assert_eq!(result.stats.select_count, 2);
    // Same skeleton (the radius is a literal → placeholder).
    assert_eq!(result.store.len(), 1);
}
