//! Sliding-window-search (SWS) classification (§6.5, Table 8).
//!
//! SWS patterns are *machine downloads*: hugely frequent patterns issued by
//! very few users. They are not antipatterns (no negative performance
//! effect), but they drown out genuine user interests, so analyses may want
//! to exclude them. Classification keys on exactly the two properties the
//! paper's Table 8 sweeps: a **frequency** threshold (relative, % of the
//! log) and a **userPopularity** ceiling.

use crate::detect::AntipatternClass;
use crate::mine::MinedPatterns;
use crate::store::TemplateId;
use std::collections::HashMap;

/// SWS thresholds.
///
/// The paper's Table 8 sweeps a relative frequency threshold; its cell
/// values (the 10 %-threshold corner equals exactly the top pattern's
/// coverage) indicate the threshold is relative to the *maximum* pattern
/// frequency, which is the interpretation used here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwsThresholds {
    /// Minimum pattern frequency as a percentage of the maximum pattern
    /// frequency in the log.
    pub frequency_pct: f64,
    /// Maximum userPopularity.
    pub max_user_popularity: usize,
}

/// Result of SWS classification.
#[derive(Debug, Default)]
pub struct SwsResult {
    /// The unigram patterns classified as SWS.
    pub patterns: Vec<Vec<TemplateId>>,
    /// Queries covered by SWS patterns.
    pub covered_queries: u64,
    /// Coverage as a percentage of all mined queries (a Table 8 cell).
    pub coverage_pct: f64,
}

/// Classifies SWS patterns.
///
/// Only length-1 patterns are considered so that coverage counts each query
/// at most once; antipattern-marked patterns are excluded (SWS is a pattern
/// property, and the Stifles are already accounted for elsewhere).
pub fn classify_sws(
    mined: &MinedPatterns,
    marks: &HashMap<Vec<TemplateId>, AntipatternClass>,
    thresholds: SwsThresholds,
) -> SwsResult {
    let total = mined.total_queries.max(1);
    let max_freq = mined
        .patterns
        .iter()
        .filter(|(k, _)| k.len() == 1)
        .map(|(_, d)| d.frequency)
        .max()
        .unwrap_or(0);
    let min_freq = (max_freq as f64 * thresholds.frequency_pct / 100.0).ceil() as u64;
    let mut result = SwsResult::default();

    for (key, data) in &mined.patterns {
        if key.len() != 1 {
            continue;
        }
        if data.frequency < min_freq.max(1) {
            continue;
        }
        if data.users.len() > thresholds.max_user_popularity {
            continue;
        }
        if marks.contains_key(key) {
            continue;
        }
        result.covered_queries += data.frequency;
        result.patterns.push(key.clone());
    }
    result.patterns.sort();
    result.coverage_pct = 100.0 * result.covered_queries as f64 / total as f64;
    result
}

/// Computes the full Table-8 grid: coverage for every combination of the
/// given threshold lists.
pub fn sws_grid(
    mined: &MinedPatterns,
    marks: &HashMap<Vec<TemplateId>, AntipatternClass>,
    frequency_pcts: &[f64],
    user_popularities: &[usize],
) -> Vec<Vec<f64>> {
    user_popularities
        .iter()
        .map(|&up| {
            frequency_pcts
                .iter()
                .map(|&fp| {
                    classify_sws(
                        mined,
                        marks,
                        SwsThresholds {
                            frequency_pct: fp,
                            max_user_popularity: up,
                        },
                    )
                    .coverage_pct
                })
                .collect()
        })
        .collect()
}

/// The §6.5 alternative to excluding SWS noise: "a union of the filtering
/// conditions, i.e., replacing all these queries with one that yields the
/// same result".
///
/// Merges queries that share one skeleton:
///
/// * when every WHERE clause is a contiguous numeric window on the same
///   column (`col >= a AND col <= b`, or `col BETWEEN a AND b`), the result
///   filters `col BETWEEN min AND max` — one clean range;
/// * otherwise the result ORs the original WHERE clauses together.
///
/// Returns `None` when fewer than two queries are given or a query has no
/// WHERE clause to merge.
pub fn union_windows(queries: &[sqlog_sql::Query]) -> Option<sqlog_sql::Query> {
    use sqlog_sql::ast::{BinaryOp, Expr, Literal};
    if queries.len() < 2 {
        return None;
    }

    /// `col >= a AND col <= b` / `col BETWEEN a AND b` → (col expr, a, b).
    fn window(selection: &Expr) -> Option<(Expr, f64, f64)> {
        fn lit(e: &Expr) -> Option<f64> {
            match e {
                Expr::Literal(l) => l.as_f64(),
                Expr::Nested(inner) => lit(inner),
                _ => None,
            }
        }
        match selection.conjuncts().as_slice() {
            [Expr::Between {
                expr,
                low,
                high,
                negated: false,
            }] => Some((expr.as_ref().clone(), lit(low)?, lit(high)?)),
            [Expr::Binary {
                left: l1,
                op: BinaryOp::GtEq,
                right: r1,
            }, Expr::Binary {
                left: l2,
                op: BinaryOp::LtEq,
                right: r2,
            }] if matches!(l1.as_ref(), Expr::Column(_)) && format!("{l1}") == format!("{l2}") => {
                Some((l1.as_ref().clone(), lit(r1)?, lit(r2)?))
            }
            _ => None,
        }
    }

    let mut base = queries[0].clone();
    let selections: Vec<&Expr> = queries
        .iter()
        .map(|q| q.body.selection.as_ref())
        .collect::<Option<Vec<_>>>()?;

    // Try the contiguous-window fast path.
    let windows: Option<Vec<(Expr, f64, f64)>> = selections.iter().map(|sel| window(sel)).collect();
    if let Some(mut windows) = windows {
        let col_text = format!("{}", windows[0].0);
        if windows.iter().all(|(c, _, _)| format!("{c}") == col_text) {
            windows.sort_by(|a, b| a.1.total_cmp(&b.1));
            let contiguous = windows.windows(2).all(|w| w[1].1 <= w[0].2 + 1.0 + 1e-9);
            if contiguous {
                let lo = windows[0].1;
                let hi = windows.iter().map(|w| w.2).fold(f64::MIN, f64::max);
                let fmt = |v: f64| {
                    if v.fract() == 0.0 && v.abs() < 9e15 {
                        format!("{}", v as i64)
                    } else {
                        format!("{v}")
                    }
                };
                base.body.selection = Some(Expr::Between {
                    expr: Box::new(windows[0].0.clone()),
                    low: Box::new(Expr::Literal(Literal::Number(fmt(lo)))),
                    high: Box::new(Expr::Literal(Literal::Number(fmt(hi)))),
                    negated: false,
                });
                return Some(base);
            }
        }
    }

    // General fallback: OR of the original conditions.
    let mut merged: Option<Expr> = None;
    for sel in selections {
        let clause = Expr::Nested(Box::new(sel.clone()));
        merged = Some(match merged {
            None => clause,
            Some(acc) => Expr::Binary {
                left: Box::new(acc),
                op: BinaryOp::Or,
                right: Box::new(clause),
            },
        });
    }
    base.body.selection = merged;
    Some(base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mine::PatternData;
    use std::collections::HashSet;

    fn mined_fixture() -> MinedPatterns {
        let mut patterns = HashMap::new();
        let mk = |freq: u64, users: &[u32]| PatternData {
            frequency: freq,
            users: users.iter().copied().collect::<HashSet<_>>(),
        };
        // A bot pattern: 500 of 1000 queries, 1 user.
        patterns.insert(vec![TemplateId(0)], mk(500, &[0]));
        // A popular human pattern: 300 queries, 40 users.
        patterns.insert(
            vec![TemplateId(1)],
            PatternData {
                frequency: 300,
                users: (0..40).collect(),
            },
        );
        // A small single-user pattern.
        patterns.insert(vec![TemplateId(2)], mk(10, &[7]));
        // A bigram (never counted for coverage).
        patterns.insert(vec![TemplateId(0), TemplateId(1)], mk(200, &[0]));
        MinedPatterns {
            patterns,
            total_queries: 1_000,
            ..Default::default()
        }
    }

    #[test]
    fn strict_thresholds_take_only_the_obvious_bot() {
        // Max unigram frequency is 500; at 80 % of max only the bot pattern
        // qualifies, and the 40-user pattern is excluded by userPopularity.
        let m = mined_fixture();
        let r = classify_sws(
            &m,
            &HashMap::new(),
            SwsThresholds {
                frequency_pct: 80.0,
                max_user_popularity: 1,
            },
        );
        assert_eq!(r.patterns, vec![vec![TemplateId(0)]]);
        assert!((r.coverage_pct - 50.0).abs() < 1e-9);
    }

    #[test]
    fn loose_thresholds_cover_more() {
        // Matches the Table 8 monotonicity: lower frequency threshold and
        // higher userPopularity ceiling → more coverage.
        let m = mined_fixture();
        let marks = HashMap::new();
        let grid = sws_grid(&m, &marks, &[80.0, 10.0, 0.1], &[1, 64]);
        // Rows: user popularity; columns: frequency threshold.
        assert!(grid[0][0] <= grid[0][2] + 1e-9);
        assert!(grid[0][2] <= grid[1][2] + 1e-9);
        // At up=64, fp=0.1 %: everything qualifies → 81 % coverage.
        assert!((grid[1][2] - 81.0).abs() < 1e-9);
    }

    #[test]
    fn union_merges_contiguous_windows_into_one_range() {
        let qs: Vec<_> = [
            "SELECT count(*) FROM photoprimary WHERE htmid >= 100 AND htmid <= 199",
            "SELECT count(*) FROM photoprimary WHERE htmid >= 200 AND htmid <= 299",
            "SELECT count(*) FROM photoprimary WHERE htmid >= 300 AND htmid <= 399",
        ]
        .iter()
        .map(|s| sqlog_sql::parse_query(s).unwrap())
        .collect();
        let merged = union_windows(&qs).unwrap();
        assert_eq!(
            merged.to_string(),
            "SELECT count(*) FROM photoprimary WHERE htmid BETWEEN 100 AND 399"
        );
    }

    #[test]
    fn union_merges_between_windows_regardless_of_order() {
        let qs: Vec<_> = [
            "SELECT a FROM t WHERE r BETWEEN 20 AND 29",
            "SELECT a FROM t WHERE r BETWEEN 10 AND 19",
        ]
        .iter()
        .map(|s| sqlog_sql::parse_query(s).unwrap())
        .collect();
        let merged = union_windows(&qs).unwrap();
        assert!(merged.to_string().ends_with("r BETWEEN 10 AND 29"));
    }

    #[test]
    fn union_falls_back_to_or_for_disjoint_windows() {
        let qs: Vec<_> = [
            "SELECT a FROM t WHERE htmid >= 100 AND htmid <= 199",
            "SELECT a FROM t WHERE htmid >= 900 AND htmid <= 999",
        ]
        .iter()
        .map(|s| sqlog_sql::parse_query(s).unwrap())
        .collect();
        let merged = union_windows(&qs).unwrap();
        let text = merged.to_string();
        assert!(text.contains(" OR "), "{text}");
        // The fallback must still re-parse.
        sqlog_sql::parse_query(&text).unwrap();
    }

    #[test]
    fn union_requires_at_least_two_queries_with_where() {
        let one = [sqlog_sql::parse_query("SELECT a FROM t WHERE x = 1").unwrap()];
        assert!(union_windows(&one).is_none());
        let no_where: Vec<_> = ["SELECT a FROM t", "SELECT a FROM t"]
            .iter()
            .map(|s| sqlog_sql::parse_query(s).unwrap())
            .collect();
        assert!(union_windows(&no_where).is_none());
    }

    #[test]
    fn antipattern_marks_exclude_patterns() {
        let m = mined_fixture();
        let mut marks = HashMap::new();
        marks.insert(vec![TemplateId(0)], AntipatternClass::DwStifle);
        let r = classify_sws(
            &m,
            &marks,
            SwsThresholds {
                frequency_pct: 0.1,
                max_user_popularity: 1,
            },
        );
        assert!(!r.patterns.contains(&vec![TemplateId(0)]));
    }
}
