//! Step 3 of the pipeline: pattern mining (Definitions 7–10).
//!
//! A pattern is a sequence of query templates; an instance is an
//! uninterrupted run of matching queries from one user (Def. 8). The paper
//! defines patterns but not a mining algorithm; we use *run-collapse n-gram
//! mining*:
//!
//! 1. the parsed records are split into per-user **sessions** (a new session
//!    starts when the gap to the user's previous query exceeds
//!    `session_gap_ms` — Def. 8's "no other requests in between" plus
//!    §4.1.1's "short time between them"),
//! 2. within each session, every template occurrence is an instance of the
//!    length-1 pattern `[t]`, and every *non-overlapping* n-gram occurrence
//!    (n ≤ `max_ngram`) is an instance of the length-n pattern.
//!
//! Frequency counts instances (Def. 9); userPopularity counts distinct users
//! across instances (Def. 10). Non-overlapping counting makes the DW pair
//! pattern `[A, A]` of the paper's Table 6 come out at roughly half the
//! frequency of `[A]`, matching the ratio between Tables 6 and 7.

use crate::config::PipelineConfig;
use crate::parse_step::ParsedRecord;
use crate::store::TemplateId;
use sqlog_log::QueryLog;
use std::collections::{HashMap, HashSet};

/// One per-user session: indices into the parsed-record vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Session {
    /// Interned user id (index into [`Sessions::user_names`]).
    pub user: u32,
    /// Record indices, in time order.
    pub records: Vec<usize>,
}

/// All sessions of a parsed log.
#[derive(Debug, Default)]
pub struct Sessions {
    /// The sessions, ordered by (user, time).
    pub sessions: Vec<Session>,
    /// Interned user names.
    pub user_names: Vec<String>,
}

/// Splits parsed records into per-user sessions.
pub fn build_sessions(log: &QueryLog, records: &[ParsedRecord], gap_ms: u64) -> Sessions {
    let mut user_ids: HashMap<&str, u32> = HashMap::new();
    let mut user_names: Vec<String> = Vec::new();
    let mut per_user: HashMap<u32, Vec<usize>> = HashMap::new();

    for (ri, rec) in records.iter().enumerate() {
        let user_key = log.entries[rec.entry_idx as usize].user_key();
        let uid = *user_ids.entry(user_key).or_insert_with(|| {
            user_names.push(user_key.to_string());
            (user_names.len() - 1) as u32
        });
        per_user.entry(uid).or_default().push(ri);
    }

    let mut sessions = Vec::new();
    let mut uids: Vec<u32> = per_user.keys().copied().collect();
    uids.sort_unstable();
    for uid in uids {
        let stream = &per_user[&uid];
        let mut current = Session {
            user: uid,
            records: Vec::new(),
        };
        let mut last_ms: Option<i64> = None;
        for &ri in stream {
            let t = log.entries[records[ri].entry_idx as usize]
                .timestamp
                .millis();
            if let Some(prev) = last_ms {
                if (t - prev) as u64 > gap_ms && !current.records.is_empty() {
                    sessions.push(std::mem::replace(
                        &mut current,
                        Session {
                            user: uid,
                            records: Vec::new(),
                        },
                    ));
                }
            }
            current.records.push(ri);
            last_ms = Some(t);
        }
        if !current.records.is_empty() {
            sessions.push(current);
        }
    }
    Sessions {
        sessions,
        user_names,
    }
}

/// Statistics of one mined pattern.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PatternData {
    /// Number of instances (Def. 9).
    pub frequency: u64,
    /// Distinct users with at least one instance (Def. 10 is this set's size).
    pub users: HashSet<u32>,
}

/// All mined patterns, keyed by their template sequence.
#[derive(Debug, Default)]
pub struct MinedPatterns {
    /// Pattern → statistics.
    pub patterns: HashMap<Vec<TemplateId>, PatternData>,
    /// Total SELECT queries mined (denominator for coverage percentages).
    pub total_queries: u64,
}

impl MinedPatterns {
    /// Patterns sorted by descending frequency (rank order of the paper's
    /// tables and figures), filtered by the configured minimum frequency.
    pub fn ranked(&self, min_frequency: u64) -> Vec<(&Vec<TemplateId>, &PatternData)> {
        let mut v: Vec<_> = self
            .patterns
            .iter()
            .filter(|(_, d)| d.frequency >= min_frequency)
            .collect();
        v.sort_by(|a, b| b.1.frequency.cmp(&a.1.frequency).then_with(|| a.0.cmp(b.0)));
        v
    }

    /// userPopularity of a pattern (Def. 10).
    pub fn user_popularity(&self, key: &[TemplateId]) -> usize {
        self.patterns.get(key).map_or(0, |d| d.users.len())
    }
}

/// Mines patterns from the sessions.
pub fn mine_patterns(
    sessions: &Sessions,
    records: &[ParsedRecord],
    cfg: &PipelineConfig,
) -> MinedPatterns {
    let mut patterns: HashMap<Vec<TemplateId>, PatternData> = HashMap::new();
    let mut total = 0u64;

    for session in &sessions.sessions {
        let templates: Vec<TemplateId> = session
            .records
            .iter()
            .map(|&ri| records[ri].template)
            .collect();
        total += templates.len() as u64;

        // Unigrams: every occurrence is an instance.
        for &t in &templates {
            let d = patterns.entry(vec![t]).or_default();
            d.frequency += 1;
            d.users.insert(session.user);
        }

        // n-grams, non-overlapping per pattern. The table of
        // last-counted-occurrence ends is per session; its keys borrow from
        // `templates`, so it lives inside this scope.
        for n in 2..=cfg.max_ngram.max(1) {
            if templates.len() < n {
                break;
            }
            let mut last_end: HashMap<&[TemplateId], usize> = HashMap::new();
            for i in 0..=(templates.len() - n) {
                let gram = &templates[i..i + n];
                let end = last_end.get(gram).copied().unwrap_or(0);
                if i >= end {
                    last_end.insert(gram, i + n);
                    let d = patterns.entry(gram.to_vec()).or_default();
                    d.frequency += 1;
                    d.users.insert(session.user);
                }
            }
        }
    }

    MinedPatterns {
        patterns,
        total_queries: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_step::parse_log;
    use crate::store::TemplateStore;
    use sqlog_log::{LogEntry, QueryLog, Timestamp};

    fn log_of(rows: &[(&str, i64, &str)]) -> (QueryLog, Vec<ParsedRecord>, TemplateStore) {
        let log = QueryLog::from_entries(
            rows.iter()
                .enumerate()
                .map(|(i, (stmt, secs, user))| {
                    LogEntry::minimal(i as u64, *stmt, Timestamp::from_secs(*secs)).with_user(*user)
                })
                .collect(),
        );
        let store = TemplateStore::new();
        let parsed = parse_log(&log, &store, 1);
        (log, parsed.records, store)
    }

    #[test]
    fn sessions_split_on_gap_and_user() {
        let (log, records, _) = log_of(&[
            ("SELECT a FROM t WHERE x = 1", 0, "u1"),
            ("SELECT a FROM t WHERE x = 2", 10, "u1"),
            ("SELECT a FROM t WHERE x = 3", 10_000, "u1"), // > gap
            ("SELECT a FROM t WHERE x = 4", 12, "u2"),
        ]);
        // With a 20 000 s gap allowance only the user switch splits.
        let s = build_sessions(&log, &records, 20_000_000);
        assert_eq!(s.sessions.len(), 2);
        // With a 60 s allowance the 9 990 s pause splits u1's stream too
        // (but the 10 s gap does not).
        let s = build_sessions(&log, &records, 60_000);
        assert_eq!(s.sessions.len(), 3);
        assert_eq!(s.user_names.len(), 2);
    }

    #[test]
    fn unigram_frequencies_count_queries() {
        let (log, records, _) = log_of(&[
            ("SELECT a FROM t WHERE x = 1", 0, "u1"),
            ("SELECT a FROM t WHERE x = 2", 1, "u1"),
            ("SELECT a FROM t WHERE x = 3", 2, "u2"),
        ]);
        let sessions = build_sessions(&log, &records, 300_000);
        let mined = mine_patterns(&sessions, &records, &PipelineConfig::default());
        let t = records[0].template;
        let d = &mined.patterns[&vec![t]];
        assert_eq!(d.frequency, 3);
        assert_eq!(d.users.len(), 2);
        assert_eq!(mined.total_queries, 3);
    }

    #[test]
    fn bigrams_count_non_overlapping() {
        // A A A A → [A,A] must count 2, not 3.
        let (log, records, _) = log_of(&[
            ("SELECT a FROM t WHERE x = 1", 0, "u1"),
            ("SELECT a FROM t WHERE x = 2", 1, "u1"),
            ("SELECT a FROM t WHERE x = 3", 2, "u1"),
            ("SELECT a FROM t WHERE x = 4", 3, "u1"),
        ]);
        let sessions = build_sessions(&log, &records, 300_000);
        let mined = mine_patterns(&sessions, &records, &PipelineConfig::default());
        let t = records[0].template;
        assert_eq!(mined.patterns[&vec![t, t]].frequency, 2);
        assert_eq!(mined.patterns[&vec![t]].frequency, 4);
    }

    #[test]
    fn alternation_yields_both_orders() {
        // A B A B → [A,B] twice, [B,A] once.
        let (log, records, _) = log_of(&[
            ("SELECT a FROM t WHERE x = 1", 0, "u1"),
            ("SELECT b FROM t WHERE x = 1", 1, "u1"),
            ("SELECT a FROM t WHERE x = 2", 2, "u1"),
            ("SELECT b FROM t WHERE x = 2", 3, "u1"),
        ]);
        let sessions = build_sessions(&log, &records, 300_000);
        let mined = mine_patterns(&sessions, &records, &PipelineConfig::default());
        let (a, b) = (records[0].template, records[1].template);
        assert_eq!(mined.patterns[&vec![a, b]].frequency, 2);
        assert_eq!(mined.patterns[&vec![b, a]].frequency, 1);
    }

    #[test]
    fn patterns_do_not_cross_session_boundaries() {
        let (log, records, _) = log_of(&[
            ("SELECT a FROM t WHERE x = 1", 0, "u1"),
            ("SELECT b FROM t WHERE x = 1", 1_000_000, "u1"),
        ]);
        let sessions = build_sessions(&log, &records, 300_000);
        let mined = mine_patterns(&sessions, &records, &PipelineConfig::default());
        let (a, b) = (records[0].template, records[1].template);
        assert!(!mined.patterns.contains_key(&vec![a, b]));
    }

    #[test]
    fn ranked_orders_by_frequency() {
        let (log, records, _) = log_of(&[
            ("SELECT a FROM t WHERE x = 1", 0, "u1"),
            ("SELECT a FROM t WHERE x = 2", 1, "u1"),
            ("SELECT c FROM t WHERE x = 1", 2, "u1"),
        ]);
        let sessions = build_sessions(&log, &records, 300_000);
        let mined = mine_patterns(&sessions, &records, &PipelineConfig::default());
        let ranked = mined.ranked(1);
        assert!(ranked[0].1.frequency >= ranked.last().unwrap().1.frequency);
        // min_frequency filters.
        let ranked2 = mined.ranked(2);
        assert!(ranked2.len() < ranked.len());
    }
}
