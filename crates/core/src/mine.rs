//! Step 3 of the pipeline: pattern mining (Definitions 7–10).
//!
//! A pattern is a sequence of query templates; an instance is an
//! uninterrupted run of matching queries from one user (Def. 8). The paper
//! defines patterns but not a mining algorithm; we use *run-collapse n-gram
//! mining*:
//!
//! 1. the parsed records are split into per-user **sessions** (a new session
//!    starts when the gap to the user's previous query exceeds
//!    `session_gap_ms` — Def. 8's "no other requests in between" plus
//!    §4.1.1's "short time between them"),
//! 2. within each session, every template occurrence is an instance of the
//!    length-1 pattern `[t]`, and every *non-overlapping* n-gram occurrence
//!    (n ≤ `max_ngram`) is an instance of the length-n pattern.
//!
//! Frequency counts instances (Def. 9); userPopularity counts distinct users
//! across instances (Def. 10). Non-overlapping counting makes the DW pair
//! pattern `[A, A]` of the paper's Table 6 come out at roughly half the
//! frequency of `[A]`, matching the ratio between Tables 6 and 7.
//!
//! The hot path is allocation-free per occurrence: a [`PatternCounter`]
//! interns each pattern key once (dense `u32` pattern ids, slice-borrow
//! lookups — no `vec![t]` / `gram.to_vec()` per occurrence), tracks
//! non-overlap ends in a stamp-versioned table instead of a per-session
//! hash map, and resolves unigrams through a direct template-id index.
//! Sessions partition by user, so mining shards across contiguous session
//! ranges and the merged counts are identical for every thread count.

use crate::config::PipelineConfig;
use crate::fault;
use crate::parse_step::ParsedRecord;
use crate::shard::{
    balance_chunks, guarded, resolve_threads, run_shards_traced, whole_range, ShardTrace,
};
use crate::store::TemplateId;
use sqlog_log::{LogView, QueryLog};
use sqlog_obs::{Recorder, SpanId};
use sqlog_skeleton::FnvHashMap;
use std::collections::{HashMap, HashSet};

/// One per-user session: indices into the parsed-record vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Session {
    /// Interned user id (index into [`Sessions::user_names`]).
    pub user: u32,
    /// Record indices, in time order.
    pub records: Vec<usize>,
}

/// All sessions of a parsed log.
#[derive(Debug, Default)]
pub struct Sessions {
    /// The sessions, ordered by (user, time).
    pub sessions: Vec<Session>,
    /// Interned user names.
    pub user_names: Vec<String>,
    /// Poison records skipped during degraded re-runs of panicked shards.
    pub poison: usize,
    /// Session shards whose worker panicked and was recovered per-record.
    pub degraded_shards: usize,
}

/// Per-shard fault state for session splitting: the armed injection marker
/// plus whether records run under per-record panic isolation (the degraded
/// re-run of a panicked shard).
struct SplitGuard {
    fault: Option<String>,
    isolate: bool,
}

/// Splits one user's record stream into gap-separated sessions, appending
/// them to `out`. With `guard.isolate`, every record is processed under a
/// panic guard and poison records are skipped (counted in the return value)
/// instead of aborting the stream.
fn split_user_stream(
    view: &LogView<'_>,
    records: &[ParsedRecord],
    guard: &SplitGuard,
    uid: u32,
    stream: &[usize],
    gap_ms: u64,
    out: &mut Vec<Session>,
) -> usize {
    let mut current = Session {
        user: uid,
        records: Vec::new(),
    };
    let mut poison = 0usize;
    let mut last_ms: Option<i64> = None;
    for &ri in stream {
        let entry = view.entry(records[ri].entry_idx as usize);
        let t = if guard.isolate {
            // A poison record contributes neither a session member nor a
            // timestamp, exactly as if it had been dropped upstream.
            match guarded(|| {
                fault::trip(&guard.fault, &entry.statement);
                entry.timestamp.millis()
            }) {
                Some(t) => t,
                None => {
                    poison += 1;
                    continue;
                }
            }
        } else {
            fault::trip(&guard.fault, &entry.statement);
            entry.timestamp.millis()
        };
        if let Some(prev) = last_ms {
            if (t - prev) as u64 > gap_ms && !current.records.is_empty() {
                out.push(std::mem::replace(
                    &mut current,
                    Session {
                        user: uid,
                        records: Vec::new(),
                    },
                ));
            }
        }
        current.records.push(ri);
        last_ms = Some(t);
    }
    if !current.records.is_empty() {
        out.push(current);
    }
    poison
}

/// Splits parsed records into per-user sessions.
///
/// Users are interned by first appearance in record order; sessions come
/// out ordered by (user id, time). With `threads > 1` the gap-splitting
/// shards across contiguous user ranges — the result is identical for every
/// thread count.
pub fn build_sessions_view(
    view: &LogView<'_>,
    records: &[ParsedRecord],
    gap_ms: u64,
    threads: usize,
) -> Sessions {
    build_sessions_view_traced(view, records, gap_ms, threads, &Recorder::disabled(), None)
}

/// [`build_sessions_view`] with observability: per-shard spans
/// (`"sessions.shard"`, parented under `parent`), a shard-latency histogram
/// and outcome counters land in `rec`. Sessions are identical to the
/// untraced call.
pub fn build_sessions_view_traced(
    view: &LogView<'_>,
    records: &[ParsedRecord],
    gap_ms: u64,
    threads: usize,
    rec: &Recorder,
    parent: Option<SpanId>,
) -> Sessions {
    let mut user_ids: FnvHashMap<&str, u32> = FnvHashMap::default();
    let mut user_names: Vec<String> = Vec::new();
    let mut streams: Vec<Vec<usize>> = Vec::new();

    for (ri, rec) in records.iter().enumerate() {
        let user_key = view.entry(rec.entry_idx as usize).user_key();
        let next = streams.len() as u32;
        let uid = *user_ids.entry(user_key).or_insert(next);
        if uid == next {
            user_names.push(user_key.to_string());
            streams.push(Vec::new());
        }
        streams[uid as usize].push(ri);
    }

    let threads = resolve_threads(threads).min(streams.len().max(1));
    let ranges = if threads <= 1 || streams.len() <= 1 {
        whole_range(streams.len())
    } else {
        let weights: Vec<u64> = streams.iter().map(|s| s.len() as u64).collect();
        balance_chunks(&weights, threads)
    };
    let streams = &streams;
    let (shards, degraded) = run_shards_traced(
        ranges,
        ShardTrace {
            rec,
            parent,
            span_name: "sessions.shard",
            hist_name: "sessions.shard_us",
        },
        // Work units = records belonging to the shard's user range.
        |r| streams[r.clone()].iter().map(|s| s.len() as u64).sum(),
        |r| {
            let guard = SplitGuard {
                fault: fault::armed("sessions"),
                isolate: false,
            };
            let mut out = Vec::new();
            for uid in r {
                split_user_stream(
                    view,
                    records,
                    &guard,
                    uid as u32,
                    &streams[uid],
                    gap_ms,
                    &mut out,
                );
            }
            (out, 0usize)
        },
        |r| {
            // Degraded re-run: per-record isolation inside each stream.
            let guard = SplitGuard {
                fault: fault::armed("sessions"),
                isolate: true,
            };
            let mut out = Vec::new();
            let mut poison = 0usize;
            for uid in r {
                poison += split_user_stream(
                    view,
                    records,
                    &guard,
                    uid as u32,
                    &streams[uid],
                    gap_ms,
                    &mut out,
                );
            }
            (out, poison)
        },
    );
    // Shards cover contiguous user ranges in order, so concatenation
    // reproduces the sequential (user, time) session order.
    let mut sessions = Vec::new();
    let mut poison = 0usize;
    for (shard, shard_poison) in shards {
        sessions.extend(shard);
        poison += shard_poison;
    }
    rec.counter("sessions.count", sessions.len() as u64);
    rec.counter("sessions.users", user_names.len() as u64);
    rec.counter("sessions.poison_records", poison as u64);
    rec.counter("sessions.degraded_shards", degraded as u64);
    Sessions {
        sessions,
        user_names,
        poison,
        degraded_shards: degraded,
    }
}

/// Splits parsed records into per-user sessions.
///
/// Compatibility wrapper around [`build_sessions_view`] (single-threaded)
/// for owned logs.
pub fn build_sessions(log: &QueryLog, records: &[ParsedRecord], gap_ms: u64) -> Sessions {
    build_sessions_view(&LogView::identity(log), records, gap_ms, 1)
}

/// Statistics of one mined pattern.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PatternData {
    /// Number of instances (Def. 9).
    pub frequency: u64,
    /// Distinct users with at least one instance (Def. 10 is this set's size).
    pub users: HashSet<u32>,
}

/// All mined patterns, keyed by their template sequence.
#[derive(Debug, Default)]
pub struct MinedPatterns {
    /// Pattern → statistics.
    pub patterns: HashMap<Vec<TemplateId>, PatternData>,
    /// Total SELECT queries mined (denominator for coverage percentages).
    pub total_queries: u64,
    /// Sessions skipped because mining them panicked (isolated during a
    /// degraded shard re-run; their counts are excluded).
    pub poison_sessions: usize,
    /// Mining shards whose worker panicked and was recovered per-session.
    pub degraded_shards: usize,
}

impl MinedPatterns {
    /// Patterns sorted by descending frequency (rank order of the paper's
    /// tables and figures), filtered by the configured minimum frequency.
    pub fn ranked(&self, min_frequency: u64) -> Vec<(&Vec<TemplateId>, &PatternData)> {
        let mut v: Vec<_> = self
            .patterns
            .iter()
            .filter(|(_, d)| d.frequency >= min_frequency)
            .collect();
        v.sort_by(|a, b| b.1.frequency.cmp(&a.1.frequency).then_with(|| a.0.cmp(b.0)));
        v
    }

    /// userPopularity of a pattern (Def. 10).
    pub fn user_popularity(&self, key: &[TemplateId]) -> usize {
        self.patterns.get(key).map_or(0, |d| d.users.len())
    }
}

/// Allocation-free pattern accumulator: interns each distinct pattern key
/// once and counts occurrences against dense `u32` pattern ids.
#[derive(Default)]
struct PatternCounter {
    /// Pattern key → dense id. Lookups borrow the key as `&[TemplateId]`;
    /// the owned `Vec` is only allocated on a pattern's first occurrence.
    by_key: FnvHashMap<Vec<TemplateId>, u32>,
    /// Dense id → key (for the final conversion to [`MinedPatterns`]).
    keys: Vec<Vec<TemplateId>>,
    freq: Vec<u64>,
    users: Vec<HashSet<u32>>,
    /// Template id → unigram pattern id + 1 (`0` = not yet interned):
    /// unigram counting never touches the hash map.
    uni: Vec<u32>,
    /// Pattern id → (session stamp, non-overlap end). The stamp versioning
    /// replaces the per-session `HashMap<&[TemplateId], usize>` of the
    /// naive implementation — no table is cleared or reallocated between
    /// sessions.
    last_end: Vec<(u32, u32)>,
    total_queries: u64,
}

impl PatternCounter {
    fn intern_slow(&mut self, key: &[TemplateId]) -> u32 {
        let id = self.keys.len() as u32;
        self.by_key.insert(key.to_vec(), id);
        self.keys.push(key.to_vec());
        self.freq.push(0);
        self.users.push(HashSet::new());
        self.last_end.push((u32::MAX, 0));
        id
    }

    fn unigram_id(&mut self, t: TemplateId) -> u32 {
        let ti = t.0 as usize;
        if ti >= self.uni.len() {
            self.uni.resize(ti + 1, 0);
        }
        if self.uni[ti] == 0 {
            let id = self.intern_slow(std::slice::from_ref(&t));
            self.uni[ti] = id + 1;
        }
        self.uni[ti] - 1
    }

    fn count(&mut self, id: u32, user: u32) {
        self.freq[id as usize] += 1;
        self.users[id as usize].insert(user);
    }

    /// Mines one session's template sequence. `stamp` must be unique per
    /// session within this counter (it versions the non-overlap table).
    fn mine_session(&mut self, stamp: u32, user: u32, templates: &[TemplateId], max_ngram: usize) {
        self.total_queries += templates.len() as u64;

        // Unigrams: every occurrence is an instance.
        for &t in templates {
            let id = self.unigram_id(t);
            self.count(id, user);
        }

        // n-grams, non-overlapping per pattern. Keys of different lengths
        // never collide, so one stamped table serves all n at once.
        for n in 2..=max_ngram.max(1) {
            if templates.len() < n {
                break;
            }
            for i in 0..=(templates.len() - n) {
                let gram = &templates[i..i + n];
                let id = match self.by_key.get(gram) {
                    Some(&id) => id,
                    None => self.intern_slow(gram),
                };
                let (s, end) = self.last_end[id as usize];
                if s != stamp || i >= end as usize {
                    self.last_end[id as usize] = (stamp, (i + n) as u32);
                    self.count(id, user);
                }
            }
        }
    }

    /// Mines a slice of sessions (one shard's worth).
    fn mine_sessions(
        sessions: &[Session],
        records: &[ParsedRecord],
        max_ngram: usize,
    ) -> PatternCounter {
        let fault = fault::armed("mine");
        let mut counter = PatternCounter::default();
        let mut templates: Vec<TemplateId> = Vec::new();
        for (stamp, session) in sessions.iter().enumerate() {
            trip_session(&fault, session, records);
            templates.clear();
            templates.extend(session.records.iter().map(|&ri| records[ri].template));
            counter.mine_session(stamp as u32, session.user, &templates, max_ngram);
        }
        counter
    }

    /// Degraded re-run of [`Self::mine_sessions`]: each session is mined
    /// into a *fresh* scratch counter under a panic guard, so a poison
    /// session leaves no partial counts behind — its counter is simply
    /// dropped and the session counted as poisoned. The per-session
    /// counters merge through the same commutative [`merge_counters`] as
    /// shard counters.
    fn mine_sessions_isolated(
        sessions: &[Session],
        records: &[ParsedRecord],
        max_ngram: usize,
    ) -> (Vec<PatternCounter>, usize) {
        let fault = fault::armed("mine");
        let mut counters = Vec::new();
        let mut poison = 0usize;
        let mut templates: Vec<TemplateId> = Vec::new();
        for session in sessions {
            templates.clear();
            let mined = guarded(|| {
                trip_session(&fault, session, records);
                templates.extend(session.records.iter().map(|&ri| records[ri].template));
                let mut c = PatternCounter::default();
                c.mine_session(0, session.user, &templates, max_ngram);
                c
            });
            match mined {
                Some(c) => counters.push(c),
                None => poison += 1,
            }
        }
        (counters, poison)
    }
}

/// Mining sees template ids, not statement text, so the fault-injection
/// marker is matched against each record's primary table name instead.
fn trip_session(fault: &Option<String>, session: &Session, records: &[ParsedRecord]) {
    if fault.is_some() {
        for &ri in &session.records {
            if let Some(t) = records[ri].primary_table.as_deref() {
                fault::trip(fault, t);
            }
        }
    }
}

/// Merges per-shard counters into the final map. Addition and set union are
/// commutative, so the result is independent of how sessions were sharded.
fn merge_counters(counters: Vec<PatternCounter>) -> MinedPatterns {
    let mut patterns: HashMap<Vec<TemplateId>, PatternData> = HashMap::new();
    let mut total = 0u64;
    for c in counters {
        total += c.total_queries;
        for (id, key) in c.keys.into_iter().enumerate() {
            let d = patterns.entry(key).or_default();
            d.frequency += c.freq[id];
            d.users.extend(c.users[id].iter().copied());
        }
    }
    MinedPatterns {
        patterns,
        total_queries: total,
        poison_sessions: 0,
        degraded_shards: 0,
    }
}

/// Mines patterns from the sessions.
pub fn mine_patterns(
    sessions: &Sessions,
    records: &[ParsedRecord],
    cfg: &PipelineConfig,
) -> MinedPatterns {
    mine_patterns_sharded(sessions, records, cfg, 1)
}

/// Mines patterns from the sessions on up to `threads` threads
/// (`0` = one per available core).
///
/// Sessions are user-partitioned and patterns never cross session
/// boundaries, so sharding the session list yields exactly the sequential
/// counts for any thread count.
pub fn mine_patterns_sharded(
    sessions: &Sessions,
    records: &[ParsedRecord],
    cfg: &PipelineConfig,
    threads: usize,
) -> MinedPatterns {
    mine_patterns_traced(sessions, records, cfg, threads, &Recorder::disabled(), None)
}

/// [`mine_patterns_sharded`] with observability: per-shard spans
/// (`"mine.shard"`, parented under `parent`), a shard-latency histogram, a
/// session-size histogram and outcome counters land in `rec`. Counts are
/// identical to the untraced call.
pub fn mine_patterns_traced(
    sessions: &Sessions,
    records: &[ParsedRecord],
    cfg: &PipelineConfig,
    threads: usize,
    rec: &Recorder,
    parent: Option<SpanId>,
) -> MinedPatterns {
    let all = &sessions.sessions;
    let threads = resolve_threads(threads).min(all.len().max(1));
    let ranges = if threads <= 1 || all.len() < 2 {
        whole_range(all.len())
    } else {
        let weights: Vec<u64> = all.iter().map(|s| s.records.len() as u64).collect();
        balance_chunks(&weights, threads)
    };
    let (shards, degraded) = run_shards_traced(
        ranges,
        ShardTrace {
            rec,
            parent,
            span_name: "mine.shard",
            hist_name: "mine.shard_us",
        },
        // Work units = queries in the shard's session range.
        |r| all[r.clone()].iter().map(|s| s.records.len() as u64).sum(),
        |r| {
            (
                vec![PatternCounter::mine_sessions(
                    &all[r],
                    records,
                    cfg.max_ngram,
                )],
                0usize,
            )
        },
        |r| PatternCounter::mine_sessions_isolated(&all[r], records, cfg.max_ngram),
    );
    let mut counters: Vec<PatternCounter> = Vec::new();
    let mut poison = 0usize;
    for (shard_counters, shard_poison) in shards {
        counters.extend(shard_counters);
        poison += shard_poison;
    }
    let mut mined = merge_counters(counters);
    mined.poison_sessions = poison;
    mined.degraded_shards = degraded;
    rec.counter("mine.patterns", mined.patterns.len() as u64);
    rec.counter("mine.total_queries", mined.total_queries);
    rec.counter("mine.poison_sessions", poison as u64);
    rec.counter("mine.degraded_shards", degraded as u64);
    if rec.is_enabled() {
        // Session-length distribution: one batched merge, not a lock per
        // session.
        let mut sizes = sqlog_obs::Histogram::default();
        for s in all {
            sizes.record(s.records.len() as u64);
        }
        rec.histogram_merge("mine.session_len", &sizes);
    }
    mined
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_step::parse_log;
    use crate::store::TemplateStore;
    use sqlog_log::{LogEntry, QueryLog, Timestamp};

    fn log_of(rows: &[(&str, i64, &str)]) -> (QueryLog, Vec<ParsedRecord>, TemplateStore) {
        let log = QueryLog::from_entries(
            rows.iter()
                .enumerate()
                .map(|(i, (stmt, secs, user))| {
                    LogEntry::minimal(i as u64, *stmt, Timestamp::from_secs(*secs)).with_user(*user)
                })
                .collect(),
        );
        let store = TemplateStore::new();
        let parsed = parse_log(&log, &store, 1);
        (log, parsed.records, store)
    }

    #[test]
    fn sessions_split_on_gap_and_user() {
        let (log, records, _) = log_of(&[
            ("SELECT a FROM t WHERE x = 1", 0, "u1"),
            ("SELECT a FROM t WHERE x = 2", 10, "u1"),
            ("SELECT a FROM t WHERE x = 3", 10_000, "u1"), // > gap
            ("SELECT a FROM t WHERE x = 4", 12, "u2"),
        ]);
        // With a 20 000 s gap allowance only the user switch splits.
        let s = build_sessions(&log, &records, 20_000_000);
        assert_eq!(s.sessions.len(), 2);
        // With a 60 s allowance the 9 990 s pause splits u1's stream too
        // (but the 10 s gap does not).
        let s = build_sessions(&log, &records, 60_000);
        assert_eq!(s.sessions.len(), 3);
        assert_eq!(s.user_names.len(), 2);
    }

    #[test]
    fn sharded_sessions_equal_sequential() {
        let mut rows: Vec<(String, i64, String)> = Vec::new();
        for step in 0..120i64 {
            for u in 0..5 {
                rows.push((
                    format!("SELECT a FROM t WHERE x = {step}"),
                    step * ((u as i64 % 3) * 200 + 1),
                    format!("user{u}"),
                ));
            }
        }
        let refs: Vec<(&str, i64, &str)> = rows
            .iter()
            .map(|(s, t, u)| (s.as_str(), *t, u.as_str()))
            .collect();
        let (mut log, _, _) = log_of(&refs);
        log.sort_by_time();
        let store = TemplateStore::new();
        let parsed = parse_log(&log, &store, 1);
        let view = LogView::identity(&log);
        let seq = build_sessions_view(&view, &parsed.records, 60_000, 1);
        for threads in [2, 3, 8] {
            let par = build_sessions_view(&view, &parsed.records, 60_000, threads);
            assert_eq!(seq.sessions, par.sessions, "threads {threads}");
            assert_eq!(seq.user_names, par.user_names, "threads {threads}");
        }
    }

    #[test]
    fn unigram_frequencies_count_queries() {
        let (log, records, _) = log_of(&[
            ("SELECT a FROM t WHERE x = 1", 0, "u1"),
            ("SELECT a FROM t WHERE x = 2", 1, "u1"),
            ("SELECT a FROM t WHERE x = 3", 2, "u2"),
        ]);
        let sessions = build_sessions(&log, &records, 300_000);
        let mined = mine_patterns(&sessions, &records, &PipelineConfig::default());
        let t = records[0].template;
        let d = &mined.patterns[&vec![t]];
        assert_eq!(d.frequency, 3);
        assert_eq!(d.users.len(), 2);
        assert_eq!(mined.total_queries, 3);
    }

    #[test]
    fn bigrams_count_non_overlapping() {
        // A A A A → [A,A] must count 2, not 3.
        let (log, records, _) = log_of(&[
            ("SELECT a FROM t WHERE x = 1", 0, "u1"),
            ("SELECT a FROM t WHERE x = 2", 1, "u1"),
            ("SELECT a FROM t WHERE x = 3", 2, "u1"),
            ("SELECT a FROM t WHERE x = 4", 3, "u1"),
        ]);
        let sessions = build_sessions(&log, &records, 300_000);
        let mined = mine_patterns(&sessions, &records, &PipelineConfig::default());
        let t = records[0].template;
        assert_eq!(mined.patterns[&vec![t, t]].frequency, 2);
        assert_eq!(mined.patterns[&vec![t]].frequency, 4);
    }

    #[test]
    fn alternation_yields_both_orders() {
        // A B A B → [A,B] twice, [B,A] once.
        let (log, records, _) = log_of(&[
            ("SELECT a FROM t WHERE x = 1", 0, "u1"),
            ("SELECT b FROM t WHERE x = 1", 1, "u1"),
            ("SELECT a FROM t WHERE x = 2", 2, "u1"),
            ("SELECT b FROM t WHERE x = 2", 3, "u1"),
        ]);
        let sessions = build_sessions(&log, &records, 300_000);
        let mined = mine_patterns(&sessions, &records, &PipelineConfig::default());
        let (a, b) = (records[0].template, records[1].template);
        assert_eq!(mined.patterns[&vec![a, b]].frequency, 2);
        assert_eq!(mined.patterns[&vec![b, a]].frequency, 1);
    }

    #[test]
    fn patterns_do_not_cross_session_boundaries() {
        let (log, records, _) = log_of(&[
            ("SELECT a FROM t WHERE x = 1", 0, "u1"),
            ("SELECT b FROM t WHERE x = 1", 1_000_000, "u1"),
        ]);
        let sessions = build_sessions(&log, &records, 300_000);
        let mined = mine_patterns(&sessions, &records, &PipelineConfig::default());
        let (a, b) = (records[0].template, records[1].template);
        assert!(!mined.patterns.contains_key(&vec![a, b]));
    }

    #[test]
    fn ranked_orders_by_frequency() {
        let (log, records, _) = log_of(&[
            ("SELECT a FROM t WHERE x = 1", 0, "u1"),
            ("SELECT a FROM t WHERE x = 2", 1, "u1"),
            ("SELECT c FROM t WHERE x = 1", 2, "u1"),
        ]);
        let sessions = build_sessions(&log, &records, 300_000);
        let mined = mine_patterns(&sessions, &records, &PipelineConfig::default());
        let ranked = mined.ranked(1);
        assert!(ranked[0].1.frequency >= ranked.last().unwrap().1.frequency);
        // min_frequency filters.
        let ranked2 = mined.ranked(2);
        assert!(ranked2.len() < ranked.len());
    }

    #[test]
    fn sharded_mining_equals_sequential() {
        // Interleaved users, repeated templates, multi-session streams.
        let mut rows: Vec<(String, i64, String)> = Vec::new();
        for step in 0..150i64 {
            for u in 0..6 {
                rows.push((
                    format!("SELECT c{} FROM t WHERE x = {step}", (step + u as i64) % 4),
                    step * 2 + u as i64,
                    format!("user{u}"),
                ));
            }
        }
        let refs: Vec<(&str, i64, &str)> = rows
            .iter()
            .map(|(s, t, u)| (s.as_str(), *t, u.as_str()))
            .collect();
        let (mut log, _, _) = log_of(&refs);
        log.sort_by_time();
        let store = TemplateStore::new();
        let parsed = parse_log(&log, &store, 1);
        let sessions = build_sessions(&log, &parsed.records, 60_000);
        let cfg = PipelineConfig::default();
        let seq = mine_patterns(&sessions, &parsed.records, &cfg);
        for threads in [2, 3, 8] {
            let par = mine_patterns_sharded(&sessions, &parsed.records, &cfg, threads);
            assert_eq!(seq.total_queries, par.total_queries, "threads {threads}");
            assert_eq!(seq.patterns, par.patterns, "threads {threads}");
        }
    }
}
