//! The template store: interned query templates.
//!
//! Every parsed statement maps to a [`QueryTemplate`]; the store interns
//! templates by fingerprint and hands out dense [`TemplateId`]s that the
//! miner and detectors use as cheap keys.

use sqlog_obs::Recorder;
use sqlog_skeleton::{Fingerprint, FnvHashMap, QueryTemplate};
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Dense identifier of an interned template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TemplateId(pub u32);

/// Thread-safe interner for query templates.
#[derive(Debug, Default)]
pub struct TemplateStore {
    inner: RwLock<StoreInner>,
    /// Observability sink for interner counters (disabled by default).
    /// Counters fire on the slow path only — a memoized worker never
    /// reaches the store, so an enabled recorder costs one counter update
    /// per *distinct-template sighting*, not per record.
    recorder: Recorder,
}

#[derive(Debug, Default)]
struct StoreInner {
    templates: Vec<QueryTemplate>,
    by_fp: FnvHashMap<Fingerprint, TemplateId>,
}

impl TemplateStore {
    /// An empty store.
    pub fn new() -> Self {
        TemplateStore::default()
    }

    /// An empty store that publishes interner counters (`store.intern_hits`,
    /// `store.intern_inserts`, `store.lock_poison_recovered`) to `rec`.
    pub fn with_recorder(rec: Recorder) -> Self {
        TemplateStore {
            inner: RwLock::default(),
            recorder: rec,
        }
    }

    // A panic while the write guard is held poisons the lock, but the store's
    // writers (`intern`, `renumber`) mutate `by_fp` and `templates` in
    // matched pairs with no fallible code in between — a poisoned store is
    // still internally consistent. Recover the data instead of cascading the
    // panic into every thread that touches the store afterwards.

    fn read(&self) -> RwLockReadGuard<'_, StoreInner> {
        self.inner.read().unwrap_or_else(|poisoned| {
            self.recorder.counter("store.lock_poison_recovered", 1);
            poisoned.into_inner()
        })
    }

    fn write(&self) -> RwLockWriteGuard<'_, StoreInner> {
        self.inner.write().unwrap_or_else(|poisoned| {
            self.recorder.counter("store.lock_poison_recovered", 1);
            poisoned.into_inner()
        })
    }

    /// Interns a template, returning its id (existing or fresh).
    pub fn intern(&self, template: QueryTemplate) -> TemplateId {
        // Fast path: read lock only. Counter updates take the recorder's own
        // mutex, so they run after the store guard drops.
        if let Some(&id) = self.read().by_fp.get(&template.fingerprint) {
            self.recorder.counter("store.intern_hits", 1);
            return id;
        }
        let mut inner = self.write();
        if let Some(&id) = inner.by_fp.get(&template.fingerprint) {
            drop(inner);
            self.recorder.counter("store.intern_hits", 1);
            return id;
        }
        let id = TemplateId(u32::try_from(inner.templates.len()).expect("template count < 2^32"));
        inner.by_fp.insert(template.fingerprint, id);
        inner.templates.push(template);
        drop(inner);
        self.recorder.counter("store.intern_inserts", 1);
        id
    }

    /// Returns a clone of the template with the given id.
    pub fn get(&self, id: TemplateId) -> QueryTemplate {
        self.read().templates[id.0 as usize].clone()
    }

    /// Runs `f` with a borrowed template (avoids the clone of [`Self::get`]).
    pub fn with<R>(&self, id: TemplateId, f: impl FnOnce(&QueryTemplate) -> R) -> R {
        f(&self.read().templates[id.0 as usize])
    }

    /// Renumbers the interned templates: `order[new]` is the *current* id of
    /// the template that receives id `new`. `order` must be a permutation of
    /// all current ids. Outstanding [`TemplateId`]s obtained before the call
    /// are invalidated — the parse step uses this to make ids canonical
    /// (first appearance in record order) regardless of how parser threads
    /// interleaved their interning, and remaps its records in the same pass.
    pub fn renumber(&self, order: &[TemplateId]) {
        let mut inner = self.write();
        assert_eq!(
            order.len(),
            inner.templates.len(),
            "renumber order must cover every template"
        );
        let templates: Vec<QueryTemplate> = order
            .iter()
            .map(|&TemplateId(old)| inner.templates[old as usize].clone())
            .collect();
        let by_fp: FnvHashMap<Fingerprint, TemplateId> = templates
            .iter()
            .enumerate()
            .map(|(new, t)| (t.fingerprint, TemplateId(new as u32)))
            .collect();
        // Validate before mutating: a panic past this point would leave the
        // two fields out of step, and poisoned-lock recovery assumes they
        // never are.
        assert_eq!(
            by_fp.len(),
            templates.len(),
            "renumber order must be a permutation"
        );
        inner.by_fp = by_fp;
        inner.templates = templates;
    }

    /// Approximate bytes held by the store: interned templates (heap
    /// strings included) plus the fingerprint index. Memory accounting
    /// only — not an allocator-exact figure.
    pub fn approx_bytes(&self) -> usize {
        let inner = self.read();
        let templates: usize = inner.templates.iter().map(|t| t.approx_bytes()).sum();
        let index = inner.by_fp.capacity()
            * (std::mem::size_of::<Fingerprint>() + std::mem::size_of::<TemplateId>());
        templates + index
    }

    /// Number of interned templates.
    pub fn len(&self) -> usize {
        self.read().templates.len()
    }

    /// True when no template is interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlog_sql::parse_query;

    fn tpl(sql: &str) -> QueryTemplate {
        QueryTemplate::of_query(&parse_query(sql).unwrap())
    }

    #[test]
    fn interning_deduplicates() {
        let store = TemplateStore::new();
        let a = store.intern(tpl("SELECT a FROM t WHERE x = 1"));
        let b = store.intern(tpl("SELECT a FROM t WHERE x = 999"));
        let c = store.intern(tpl("SELECT b FROM t WHERE x = 1"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn get_and_with_return_the_template() {
        let store = TemplateStore::new();
        let id = store.intern(tpl("SELECT a FROM t WHERE x = 1"));
        assert_eq!(store.get(id).swc, "x = <num>");
        assert_eq!(store.with(id, |t| t.sfc.clone()), "t");
    }

    #[test]
    fn renumber_permutes_ids() {
        let store = TemplateStore::new();
        let a = store.intern(tpl("SELECT a FROM t WHERE x = 1"));
        let b = store.intern(tpl("SELECT b FROM t WHERE x = 1"));
        let fa = store.with(a, |t| t.fingerprint);
        let fb = store.with(b, |t| t.fingerprint);
        store.renumber(&[b, a]);
        // The template that was `b` now has id 0, and lookups agree.
        assert_eq!(store.with(TemplateId(0), |t| t.fingerprint), fb);
        assert_eq!(store.with(TemplateId(1), |t| t.fingerprint), fa);
        assert_eq!(
            store.intern(tpl("SELECT b FROM t WHERE x = 9")),
            TemplateId(0)
        );
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn poisoned_lock_recovers_instead_of_cascading() {
        // A panic while the write guard is held (here: renumber's length
        // assert) poisons the RwLock. The store must keep serving readers
        // and writers afterwards — one crashed worker must not take every
        // other pipeline thread down with it.
        let store = TemplateStore::new();
        let a = store.intern(tpl("SELECT a FROM t WHERE x = 1"));
        let poisoning = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            store.renumber(&[]);
        }));
        assert!(poisoning.is_err(), "renumber must reject a bad order");
        assert_eq!(store.len(), 1);
        assert_eq!(store.intern(tpl("SELECT a FROM t WHERE x = 2")), a);
        let b = store.intern(tpl("SELECT b FROM t WHERE x = 1"));
        assert_eq!(store.with(b, |t| t.sfc.clone()), "t");
    }

    #[test]
    fn poisoned_lock_with_parse_cache_enabled_parses_identically() {
        // The parse cache memoizes per worker but every cache miss still
        // goes through the store; a lock poisoned by an earlier panic must
        // not change what a cache-enabled parse produces.
        use crate::parse_step::{parse_view_traced, ParseOptions};
        use sqlog_log::{LogEntry, LogView, QueryLog, Timestamp};

        let log = QueryLog::from_entries(
            (0..48u64)
                .map(|i| {
                    LogEntry::minimal(
                        i,
                        format!("SELECT name FROM Employee WHERE empId = {}", i % 6),
                        Timestamp::from_secs(i as i64),
                    )
                    .with_user("u1")
                })
                .collect(),
        );
        let view = LogView::identity(&log);
        let options = ParseOptions {
            cache: true,
            ..ParseOptions::default()
        };

        // Reference: a healthy store.
        let healthy = TemplateStore::new();
        let expected = parse_view_traced(&view, &healthy, &options, 2, &Recorder::disabled(), None);

        // Poison the lock (renumber's permutation assert fires while the
        // write guard is held), then parse with the cache enabled.
        let rec = Recorder::new();
        let store = TemplateStore::with_recorder(rec.clone());
        let poisoning = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            store.renumber(&[TemplateId(0)]);
        }));
        assert!(poisoning.is_err(), "renumber must reject a bad order");

        let got = parse_view_traced(&view, &store, &options, 2, &rec, None);
        assert!(got.cache.enabled, "cache must be on for this test");
        assert!(
            got.cache.hits > 0,
            "workload repeats shapes; cache must engage"
        );
        assert_eq!(got.records.len(), expected.records.len());
        for (a, b) in got.records.iter().zip(&expected.records) {
            assert_eq!((a.entry_idx, a.template), (b.entry_idx, b.template));
        }
        assert_eq!(store.len(), healthy.len());
        // The recovery is observable, not silent.
        assert!(
            rec.counters().get("store.lock_poison_recovered").copied() > Some(0),
            "poison recovery must bump its counter"
        );
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let store = TemplateStore::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..200 {
                        store.intern(tpl(&format!("SELECT c{} FROM t WHERE x = 1", i % 16)));
                    }
                });
            }
        });
        assert_eq!(store.len(), 16);
    }
}
