//! The template store: interned query templates.
//!
//! Every parsed statement maps to a [`QueryTemplate`]; the store interns
//! templates by fingerprint and hands out dense [`TemplateId`]s that the
//! miner and detectors use as cheap keys.

use parking_lot::RwLock;
use sqlog_skeleton::{Fingerprint, QueryTemplate};
use std::collections::HashMap;

/// Dense identifier of an interned template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TemplateId(pub u32);

/// Thread-safe interner for query templates.
#[derive(Debug, Default)]
pub struct TemplateStore {
    inner: RwLock<StoreInner>,
}

#[derive(Debug, Default)]
struct StoreInner {
    templates: Vec<QueryTemplate>,
    by_fp: HashMap<Fingerprint, TemplateId>,
}

impl TemplateStore {
    /// An empty store.
    pub fn new() -> Self {
        TemplateStore::default()
    }

    /// Interns a template, returning its id (existing or fresh).
    pub fn intern(&self, template: QueryTemplate) -> TemplateId {
        // Fast path: read lock only.
        if let Some(&id) = self.inner.read().by_fp.get(&template.fingerprint) {
            return id;
        }
        let mut inner = self.inner.write();
        if let Some(&id) = inner.by_fp.get(&template.fingerprint) {
            return id;
        }
        let id = TemplateId(u32::try_from(inner.templates.len()).expect("template count < 2^32"));
        inner.by_fp.insert(template.fingerprint, id);
        inner.templates.push(template);
        id
    }

    /// Returns a clone of the template with the given id.
    pub fn get(&self, id: TemplateId) -> QueryTemplate {
        self.inner.read().templates[id.0 as usize].clone()
    }

    /// Runs `f` with a borrowed template (avoids the clone of [`Self::get`]).
    pub fn with<R>(&self, id: TemplateId, f: impl FnOnce(&QueryTemplate) -> R) -> R {
        f(&self.inner.read().templates[id.0 as usize])
    }

    /// Number of interned templates.
    pub fn len(&self) -> usize {
        self.inner.read().templates.len()
    }

    /// True when no template is interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlog_sql::parse_query;

    fn tpl(sql: &str) -> QueryTemplate {
        QueryTemplate::of_query(&parse_query(sql).unwrap())
    }

    #[test]
    fn interning_deduplicates() {
        let store = TemplateStore::new();
        let a = store.intern(tpl("SELECT a FROM t WHERE x = 1"));
        let b = store.intern(tpl("SELECT a FROM t WHERE x = 999"));
        let c = store.intern(tpl("SELECT b FROM t WHERE x = 1"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn get_and_with_return_the_template() {
        let store = TemplateStore::new();
        let id = store.intern(tpl("SELECT a FROM t WHERE x = 1"));
        assert_eq!(store.get(id).swc, "x = <num>");
        assert_eq!(store.with(id, |t| t.sfc.clone()), "t");
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let store = TemplateStore::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..200 {
                        store.intern(tpl(&format!("SELECT c{} FROM t WHERE x = 1", i % 16)));
                    }
                });
            }
        });
        assert_eq!(store.len(), 16);
    }
}
