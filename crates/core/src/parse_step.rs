//! Step 2 of the pipeline: parsing statements (§5.3).
//!
//! Every statement of the pre-cleaned log is parsed into a syntax tree.
//! Statements with syntax errors are excluded (counted), non-SELECT
//! statements are excluded (counted per kind), and each surviving SELECT is
//! reduced to a compact [`ParsedRecord`]: its interned template id plus the
//! predicate facts the detectors need. The full AST is *not* retained —
//! records must stay small enough for multi-million-entry logs; solvers that
//! need an AST re-parse the one statement they rewrite.
//!
//! Parsing is embarrassingly parallel and runs on a scoped thread pool. Two
//! things keep the hot path cheap and the result deterministic:
//!
//! * each worker memoizes fingerprint → id locally, so the shared
//!   [`TemplateStore`] lock is only taken on a worker's *first* sight of a
//!   template, not once per record;
//! * after the join, template ids are renumbered canonically — id order =
//!   first appearance in record order — so the ids (which flow into pattern
//!   keys, marks, and instance identities) are identical for every thread
//!   count.

use crate::fault;
use crate::parse_cache::ShapeCache;
use crate::shard::{guarded, resolve_threads, run_shards_traced, whole_range, ShardTrace};
use crate::store::{TemplateId, TemplateStore};
use serde::{Deserialize, Serialize};
use sqlog_log::{LogView, QueryLog};
use sqlog_obs::{Recorder, SpanId};
use sqlog_skeleton::{
    primary_table, Fingerprint, FnvHashMap, OutputColumns, PredicateProfile, QueryTemplate,
};
use sqlog_sql::{parse_statements_with, ParseLimits, Statement, StatementKind};
use std::collections::HashMap;

/// A parsed SELECT statement, reduced to analysis facts.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedRecord {
    /// Index into the pre-cleaned log's entry vector.
    pub entry_idx: u32,
    /// Interned template.
    pub template: TemplateId,
    /// Classified WHERE-clause conjuncts.
    pub profile: PredicateProfile,
    /// Output columns of the projection.
    pub output: OutputColumns,
    /// The single base table, when the FROM clause is one plain table.
    pub primary_table: Option<String>,
}

/// Counters from the parse step.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParseStats {
    /// Statements examined.
    pub total: usize,
    /// Statements kept (SELECTs that parsed).
    pub selects: usize,
    /// Statements dropped as unparseable — syntax errors plus resource-limit
    /// rejections (the paper's §5.3 drops both the same way).
    pub errors: usize,
    /// The subset of `errors` rejected by a parser resource guard
    /// ([`ParseLimits`]) rather than a grammar error.
    pub limit_exceeded: usize,
    /// Statements skipped because processing them panicked (poison records,
    /// isolated during a degraded shard re-run).
    pub poison: usize,
    /// Parse shards whose worker panicked and was recovered per-record.
    pub degraded_shards: usize,
    /// Statements dropped per non-SELECT kind.
    pub non_select: HashMap<StatementKind, usize>,
}

impl ParseStats {
    /// Total non-SELECT statements dropped.
    pub fn non_select_total(&self) -> usize {
        self.non_select.values().sum()
    }
}

/// Effectiveness counters of the template-aware parse cache
/// (see [`crate::parse_cache`]).
///
/// Kept separate from [`ParseStats`]: each worker owns its cache, so the
/// hit/miss split depends on how statements shard across threads. The
/// *parse result* is identical either way; determinism comparisons zero
/// this struct alongside timings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParseCacheStats {
    /// Whether the cache was enabled for this parse.
    pub enabled: bool,
    /// Statements served from a worker's shape cache.
    pub hits: u64,
    /// Statements that populated a new cache entry (full parse).
    pub misses: u64,
    /// Statements that bypassed the cache — unkeyable text, oversized, or
    /// an uncacheable shape (full parse).
    pub fallbacks: u64,
    /// Cache hits verified against a full parse (debug builds only).
    pub crosschecks: u64,
}

impl ParseCacheStats {
    /// Hit rate over the cache-eligible statements, in percent.
    pub fn hit_rate_pct(&self) -> f64 {
        let total = self.hits + self.misses + self.fallbacks;
        if total == 0 {
            0.0
        } else {
            100.0 * self.hits as f64 / total as f64
        }
    }
}

/// Knobs of the parse stage beyond the resource limits.
#[derive(Debug, Clone, Copy)]
pub struct ParseOptions {
    /// Parser resource guards.
    pub limits: ParseLimits,
    /// Enable the template-aware parse cache ([`crate::parse_cache`]).
    pub cache: bool,
    /// In debug builds, cross-check this many cache hits per worker
    /// against a full parse (panics on divergence).
    pub crosscheck: usize,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions {
            limits: ParseLimits::default(),
            cache: true,
            crosscheck: 64,
        }
    }
}

/// The parsed log: records (in log order) plus statistics.
#[derive(Debug)]
pub struct ParsedLog {
    /// Records for the SELECT statements, ordered by log position.
    pub records: Vec<ParsedRecord>,
    /// Parse statistics.
    pub stats: ParseStats,
    /// Parse-cache effectiveness (all-zero when the cache is disabled).
    pub cache: ParseCacheStats,
}

pub(crate) enum Outcome {
    Select(Box<ParsedRecord>),
    NonSelect(StatementKind),
    Error {
        limit: bool,
    },
    /// Processing this statement panicked; it was skipped during recovery.
    Poison,
}

pub(crate) fn parse_one(
    store: &TemplateStore,
    memo: &mut FnvHashMap<Fingerprint, TemplateId>,
    limits: &ParseLimits,
    entry_idx: u32,
    sql: &str,
) -> Outcome {
    match parse_statements_with(sql, limits) {
        Ok(stmts) => {
            // A log row occasionally contains a `;`-separated batch; the
            // analysis treats the first SELECT as the row's query, matching
            // the one-row-one-query model of the SkyServer log.
            for stmt in &stmts {
                if let Statement::Select(q) = stmt {
                    let tpl = QueryTemplate::of_query(q);
                    let template = match memo.get(&tpl.fingerprint) {
                        Some(&id) => id,
                        None => {
                            let fp = tpl.fingerprint;
                            let id = store.intern(tpl);
                            memo.insert(fp, id);
                            id
                        }
                    };
                    return Outcome::Select(Box::new(ParsedRecord {
                        entry_idx,
                        template,
                        profile: PredicateProfile::of_select(&q.body),
                        output: OutputColumns::of_select(&q.body),
                        primary_table: primary_table(&q.body),
                    }));
                }
            }
            match stmts.first() {
                Some(Statement::Other(kind)) => Outcome::NonSelect(*kind),
                _ => Outcome::Error { limit: false },
            }
        }
        Err(e) => Outcome::Error {
            limit: e.is_limit(),
        },
    }
}

/// Renumbers template ids to first-appearance-in-record-order, making them
/// independent of parser-thread interleaving. Ids below `preexisting` (from
/// before this parse) keep their numbers.
fn canonicalize_templates(store: &TemplateStore, preexisting: usize, records: &mut [ParsedRecord]) {
    let total = store.len();
    if total == preexisting {
        return;
    }
    let mut remap: Vec<u32> = vec![u32::MAX; total];
    let mut order: Vec<TemplateId> = (0..preexisting as u32).map(TemplateId).collect();
    for (i, slot) in remap.iter_mut().enumerate().take(preexisting) {
        *slot = i as u32;
    }
    for rec in records.iter() {
        let old = rec.template.0 as usize;
        if remap[old] == u32::MAX {
            remap[old] = order.len() as u32;
            order.push(rec.template);
        }
    }
    // Templates interned but referenced by no record (cannot happen today —
    // every intern comes from a surviving SELECT) keep relative order.
    for (old, slot) in remap.iter_mut().enumerate().skip(preexisting) {
        if *slot == u32::MAX {
            *slot = order.len() as u32;
            order.push(TemplateId(old as u32));
        }
    }
    if order
        .iter()
        .enumerate()
        .all(|(new, id)| id.0 as usize == new)
    {
        return; // Already canonical (the single-threaded case).
    }
    store.renumber(&order);
    for rec in records.iter_mut() {
        rec.template = TemplateId(remap[rec.template.0 as usize]);
    }
}

/// Parses a log view into records, interning templates in `store`.
///
/// `threads == 0` uses one thread per available core. Records, statistics,
/// and template ids are identical for every thread count (ids are
/// canonicalized to first appearance in record order). Uses the default
/// [`ParseLimits`]; the pipeline passes its configured limits through
/// [`parse_view_with`].
pub fn parse_view(view: &LogView<'_>, store: &TemplateStore, threads: usize) -> ParsedLog {
    parse_view_with(view, store, &ParseLimits::default(), threads)
}

/// [`parse_view`] with explicit parser resource limits.
///
/// Shards that panic (a poison statement crashing the parser) are re-run
/// per-record: the poison statement alone is counted and dropped, every
/// other statement of the shard parses normally, and the template-id
/// canonicalization keeps ids identical for every thread count.
pub fn parse_view_with(
    view: &LogView<'_>,
    store: &TemplateStore,
    limits: &ParseLimits,
    threads: usize,
) -> ParsedLog {
    let options = ParseOptions {
        limits: *limits,
        ..ParseOptions::default()
    };
    parse_view_traced(view, store, &options, threads, &Recorder::disabled(), None)
}

/// [`parse_view_with`] with observability: per-shard spans
/// (`"parse.shard"`, parented under `parent`), a shard-latency histogram
/// and outcome counters — including template-interner effectiveness
/// (`parse.templates_interned` vs `parse.template_cache_hits`) and
/// parse-cache effectiveness (`parse.cache_hits` / `parse.cache_misses` /
/// `parse.cache_fallbacks`) — land in `rec`. Records and statistics are
/// identical to the untraced call, and identical whether or not the parse
/// cache is enabled.
pub fn parse_view_traced(
    view: &LogView<'_>,
    store: &TemplateStore,
    options: &ParseOptions,
    threads: usize,
    rec: &Recorder,
    parent: Option<SpanId>,
) -> ParsedLog {
    let n = view.len();
    let threads = resolve_threads(threads).min(n.max(1));
    let preexisting = store.len();

    let chunk = n.div_ceil(threads).max(1);
    let mut ranges: Vec<std::ops::Range<usize>> = (0..n)
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(n))
        .collect();
    if ranges.is_empty() {
        ranges = whole_range(0);
    }
    let (results, degraded) = run_shards_traced(
        ranges,
        ShardTrace {
            rec,
            parent,
            span_name: "parse.shard",
            hist_name: "parse.shard_us",
        },
        |r| r.len() as u64,
        |r| {
            let fault = fault::armed("parse");
            let mut memo: FnvHashMap<Fingerprint, TemplateId> = FnvHashMap::default();
            let mut cache = options.cache.then(ShapeCache::default);
            let outcomes = r
                .map(|i| {
                    let sql = &view.entry(i).statement;
                    fault::trip(&fault, sql);
                    parse_one_maybe_cached(
                        cache.as_mut(),
                        store,
                        &mut memo,
                        options,
                        view,
                        i as u32,
                        sql,
                    )
                })
                .collect::<Vec<_>>();
            if rec.is_enabled() {
                // Shard caches die at the join; account their footprint
                // here, while they still exist (counters sum across shards).
                if let Some(c) = &cache {
                    rec.counter("mem.parse_cache_bytes", c.approx_bytes() as u64);
                }
            }
            (outcomes, cache.map(tally).unwrap_or_default())
        },
        |r| {
            // Degraded re-run: each statement under its own panic guard.
            // The memo only caches fingerprint → interned id, and the shape
            // cache inserts entries only after a successful parse, so a
            // panic mid-record at worst wastes an entry — never corrupts
            // one.
            let fault = fault::armed("parse");
            let mut memo: FnvHashMap<Fingerprint, TemplateId> = FnvHashMap::default();
            let mut cache = options.cache.then(ShapeCache::default);
            let outcomes = r
                .map(|i| {
                    let sql = &view.entry(i).statement;
                    guarded(|| {
                        fault::trip(&fault, sql);
                        parse_one_maybe_cached(
                            cache.as_mut(),
                            store,
                            &mut memo,
                            options,
                            view,
                            i as u32,
                            sql,
                        )
                    })
                    .unwrap_or(Outcome::Poison)
                })
                .collect::<Vec<_>>();
            if rec.is_enabled() {
                if let Some(c) = &cache {
                    rec.counter("mem.parse_cache_bytes", c.approx_bytes() as u64);
                }
            }
            (outcomes, cache.map(tally).unwrap_or_default())
        },
    );

    let mut stats = ParseStats {
        total: n,
        degraded_shards: degraded,
        ..ParseStats::default()
    };
    let mut cache_stats = ParseCacheStats {
        enabled: options.cache,
        ..ParseCacheStats::default()
    };
    let mut records = Vec::with_capacity(n);
    for (outcomes, shard_cache) in results {
        cache_stats.hits += shard_cache.hits;
        cache_stats.misses += shard_cache.misses;
        cache_stats.fallbacks += shard_cache.fallbacks;
        cache_stats.crosschecks += shard_cache.crosschecks;
        for outcome in outcomes {
            match outcome {
                Outcome::Select(rec) => {
                    stats.selects += 1;
                    records.push(*rec);
                }
                Outcome::NonSelect(kind) => {
                    *stats.non_select.entry(kind).or_default() += 1;
                }
                Outcome::Error { limit } => {
                    stats.errors += 1;
                    if limit {
                        stats.limit_exceeded += 1;
                    }
                }
                Outcome::Poison => stats.poison += 1,
            }
        }
    }
    canonicalize_templates(store, preexisting, &mut records);
    if rec.is_enabled() {
        // O(#templates) walk — enabled runs only.
        rec.counter("mem.template_store_bytes", store.approx_bytes() as u64);
    }
    rec.counter("parse.total", stats.total as u64);
    rec.counter("parse.selects", stats.selects as u64);
    rec.counter("parse.errors", stats.errors as u64);
    rec.counter("parse.limit_rejected", stats.limit_exceeded as u64);
    rec.counter("parse.non_select", stats.non_select_total() as u64);
    rec.counter("parse.poison_records", stats.poison as u64);
    rec.counter("parse.degraded_shards", stats.degraded_shards as u64);
    // Interner effectiveness at stage granularity: every surviving SELECT
    // resolved a template; the ones that did not mint a fresh id hit a
    // worker memo or the shared store.
    let interned = (store.len() - preexisting) as u64;
    rec.counter("parse.templates_interned", interned);
    rec.counter(
        "parse.template_cache_hits",
        (stats.selects as u64).saturating_sub(interned),
    );
    rec.counter("parse.cache_hits", cache_stats.hits);
    rec.counter("parse.cache_misses", cache_stats.misses);
    rec.counter("parse.cache_fallbacks", cache_stats.fallbacks);
    rec.counter("parse.cache_crosschecks", cache_stats.crosschecks);
    ParsedLog {
        records,
        stats,
        cache: cache_stats,
    }
}

/// Routes one statement through the shape cache when enabled, or straight
/// to the parser otherwise.
fn parse_one_maybe_cached(
    cache: Option<&mut ShapeCache>,
    store: &TemplateStore,
    memo: &mut FnvHashMap<Fingerprint, TemplateId>,
    options: &ParseOptions,
    view: &LogView<'_>,
    entry_idx: u32,
    sql: &str,
) -> Outcome {
    match cache {
        Some(c) => c.parse_one_cached(
            store,
            memo,
            &options.limits,
            options.crosscheck,
            entry_idx,
            sql,
            &|i| view.entry(i as usize).statement.as_str(),
        ),
        None => parse_one(store, memo, &options.limits, entry_idx, sql),
    }
}

/// Reduces a worker's shape cache to its counters (the map is dropped).
fn tally(cache: ShapeCache) -> ParseCacheStats {
    ParseCacheStats {
        enabled: true,
        hits: cache.hits,
        misses: cache.misses,
        fallbacks: cache.fallbacks,
        crosschecks: cache.crosschecks,
    }
}

/// Parses a pre-cleaned log into records, interning templates in `store`.
///
/// Compatibility wrapper around [`parse_view`] for owned logs.
/// `threads == 0` uses one thread per available core.
pub fn parse_log(log: &QueryLog, store: &TemplateStore, threads: usize) -> ParsedLog {
    parse_view(&LogView::identity(log), store, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlog_log::{LogEntry, Timestamp};

    fn log(statements: &[&str]) -> QueryLog {
        QueryLog::from_entries(
            statements
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    LogEntry::minimal(i as u64, *s, Timestamp::from_secs(i as i64)).with_user("u")
                })
                .collect(),
        )
    }

    #[test]
    fn filters_non_select_and_errors() {
        let log = log(&[
            "SELECT a FROM t WHERE x = 1",
            "INSERT INTO t VALUES (1)",
            "SELECT b FROM",
            "DELETE FROM t",
            "SELECT a FROM t WHERE x = 2",
        ]);
        let store = TemplateStore::new();
        let parsed = parse_log(&log, &store, 1);
        assert_eq!(parsed.stats.total, 5);
        assert_eq!(parsed.stats.selects, 2);
        assert_eq!(parsed.stats.errors, 1);
        assert_eq!(parsed.stats.non_select_total(), 2);
        assert_eq!(parsed.records.len(), 2);
        // Same skeleton → same template id.
        assert_eq!(parsed.records[0].template, parsed.records[1].template);
        assert_eq!(store.len(), 1);
        // Entry indices point into the input log.
        assert_eq!(parsed.records[0].entry_idx, 0);
        assert_eq!(parsed.records[1].entry_idx, 4);
    }

    #[test]
    fn parallel_equals_sequential() {
        let statements: Vec<String> = (0..500)
            .map(|i| format!("SELECT c{} FROM t WHERE x = {}", i % 7, i))
            .collect();
        let refs: Vec<&str> = statements.iter().map(String::as_str).collect();
        let log = log(&refs);
        let store1 = TemplateStore::new();
        let seq = parse_log(&log, &store1, 1);
        for threads in [2, 3, 8] {
            let store2 = TemplateStore::new();
            let par = parse_log(&log, &store2, threads);
            assert_eq!(seq.stats, par.stats);
            // Canonical renumbering makes the ids — not just the
            // fingerprints — identical across thread counts.
            assert_eq!(seq.records, par.records, "threads {threads}");
            for (a, b) in seq.records.iter().zip(&par.records) {
                assert_eq!(
                    store1.with(a.template, |t| t.fingerprint),
                    store2.with(b.template, |t| t.fingerprint)
                );
            }
        }
    }

    #[test]
    fn template_ids_are_first_appearance_ordered() {
        let statements: Vec<String> = (0..200)
            .map(|i| format!("SELECT c{} FROM t WHERE x = {}", (199 - i) % 5, i))
            .collect();
        let refs: Vec<&str> = statements.iter().map(String::as_str).collect();
        let log = log(&refs);
        let store = TemplateStore::new();
        let parsed = parse_log(&log, &store, 8);
        let mut seen_max = 0u32;
        for rec in &parsed.records {
            assert!(
                rec.template.0 <= seen_max,
                "template {} appears before all of 0..{}",
                rec.template.0,
                seen_max
            );
            seen_max = seen_max.max(rec.template.0 + 1);
        }
    }

    #[test]
    fn batch_rows_use_first_select() {
        let log = log(&["INSERT INTO t VALUES (1); SELECT a FROM t WHERE x = 1"]);
        let store = TemplateStore::new();
        let parsed = parse_log(&log, &store, 1);
        assert_eq!(parsed.stats.selects, 1);
        assert_eq!(parsed.records[0].primary_table.as_deref(), Some("t"));
    }

    #[test]
    fn empty_log_is_fine() {
        let store = TemplateStore::new();
        let parsed = parse_log(&QueryLog::new(), &store, 4);
        assert_eq!(parsed.stats.total, 0);
        assert!(parsed.records.is_empty());
    }
}
