//! Step 2 of the pipeline: parsing statements (§5.3).
//!
//! Every statement of the pre-cleaned log is parsed into a syntax tree.
//! Statements with syntax errors are excluded (counted), non-SELECT
//! statements are excluded (counted per kind), and each surviving SELECT is
//! reduced to a compact [`ParsedRecord`]: its interned template id plus the
//! predicate facts the detectors need. The full AST is *not* retained —
//! records must stay small enough for multi-million-entry logs; solvers that
//! need an AST re-parse the one statement they rewrite.
//!
//! Parsing is embarrassingly parallel and runs on a scoped thread pool.

use crate::store::{TemplateId, TemplateStore};
use sqlog_log::QueryLog;
use sqlog_skeleton::{primary_table, OutputColumns, PredicateProfile, QueryTemplate};
use sqlog_sql::{parse_statements, Statement, StatementKind};
use std::collections::HashMap;

/// A parsed SELECT statement, reduced to analysis facts.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedRecord {
    /// Index into the pre-cleaned log's entry vector.
    pub entry_idx: u32,
    /// Interned template.
    pub template: TemplateId,
    /// Classified WHERE-clause conjuncts.
    pub profile: PredicateProfile,
    /// Output columns of the projection.
    pub output: OutputColumns,
    /// The single base table, when the FROM clause is one plain table.
    pub primary_table: Option<String>,
}

/// Counters from the parse step.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParseStats {
    /// Statements examined.
    pub total: usize,
    /// Statements kept (SELECTs that parsed).
    pub selects: usize,
    /// Statements dropped for syntax errors.
    pub errors: usize,
    /// Statements dropped per non-SELECT kind.
    pub non_select: HashMap<StatementKind, usize>,
}

impl ParseStats {
    /// Total non-SELECT statements dropped.
    pub fn non_select_total(&self) -> usize {
        self.non_select.values().sum()
    }
}

/// The parsed log: records (in log order) plus statistics.
#[derive(Debug)]
pub struct ParsedLog {
    /// Records for the SELECT statements, ordered by log position.
    pub records: Vec<ParsedRecord>,
    /// Parse statistics.
    pub stats: ParseStats,
}

enum Outcome {
    Select(Box<ParsedRecord>),
    NonSelect(StatementKind),
    Error,
}

fn parse_one(store: &TemplateStore, entry_idx: u32, sql: &str) -> Outcome {
    match parse_statements(sql) {
        Ok(stmts) => {
            // A log row occasionally contains a `;`-separated batch; the
            // analysis treats the first SELECT as the row's query, matching
            // the one-row-one-query model of the SkyServer log.
            for stmt in &stmts {
                if let Statement::Select(q) = stmt {
                    let template = store.intern(QueryTemplate::of_query(q));
                    return Outcome::Select(Box::new(ParsedRecord {
                        entry_idx,
                        template,
                        profile: PredicateProfile::of_select(&q.body),
                        output: OutputColumns::of_select(&q.body),
                        primary_table: primary_table(&q.body),
                    }));
                }
            }
            match stmts.first() {
                Some(Statement::Other(kind)) => Outcome::NonSelect(*kind),
                _ => Outcome::Error,
            }
        }
        Err(_) => Outcome::Error,
    }
}

/// Parses a pre-cleaned log into records, interning templates in `store`.
///
/// `threads == 0` uses one thread per available core.
pub fn parse_log(log: &QueryLog, store: &TemplateStore, threads: usize) -> ParsedLog {
    let n = log.len();
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    }
    .clamp(1, 64);

    let chunk = n.div_ceil(threads.max(1)).max(1);
    let mut results: Vec<Vec<Outcome>> = Vec::new();
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = log
            .entries
            .chunks(chunk)
            .enumerate()
            .map(|(ci, entries)| {
                s.spawn(move |_| {
                    entries
                        .iter()
                        .enumerate()
                        .map(|(i, e)| parse_one(store, (ci * chunk + i) as u32, &e.statement))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("parser thread panicked"));
        }
    })
    .expect("parser scope panicked");

    let mut stats = ParseStats {
        total: n,
        ..ParseStats::default()
    };
    let mut records = Vec::with_capacity(n);
    for outcome in results.into_iter().flatten() {
        match outcome {
            Outcome::Select(rec) => {
                stats.selects += 1;
                records.push(*rec);
            }
            Outcome::NonSelect(kind) => {
                *stats.non_select.entry(kind).or_default() += 1;
            }
            Outcome::Error => stats.errors += 1,
        }
    }
    ParsedLog { records, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlog_log::{LogEntry, Timestamp};

    fn log(statements: &[&str]) -> QueryLog {
        QueryLog::from_entries(
            statements
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    LogEntry::minimal(i as u64, *s, Timestamp::from_secs(i as i64)).with_user("u")
                })
                .collect(),
        )
    }

    #[test]
    fn filters_non_select_and_errors() {
        let log = log(&[
            "SELECT a FROM t WHERE x = 1",
            "INSERT INTO t VALUES (1)",
            "SELECT b FROM",
            "DELETE FROM t",
            "SELECT a FROM t WHERE x = 2",
        ]);
        let store = TemplateStore::new();
        let parsed = parse_log(&log, &store, 1);
        assert_eq!(parsed.stats.total, 5);
        assert_eq!(parsed.stats.selects, 2);
        assert_eq!(parsed.stats.errors, 1);
        assert_eq!(parsed.stats.non_select_total(), 2);
        assert_eq!(parsed.records.len(), 2);
        // Same skeleton → same template id.
        assert_eq!(parsed.records[0].template, parsed.records[1].template);
        assert_eq!(store.len(), 1);
        // Entry indices point into the input log.
        assert_eq!(parsed.records[0].entry_idx, 0);
        assert_eq!(parsed.records[1].entry_idx, 4);
    }

    #[test]
    fn parallel_equals_sequential() {
        let statements: Vec<String> = (0..500)
            .map(|i| format!("SELECT c{} FROM t WHERE x = {}", i % 7, i))
            .collect();
        let refs: Vec<&str> = statements.iter().map(String::as_str).collect();
        let log = log(&refs);
        let store1 = TemplateStore::new();
        let seq = parse_log(&log, &store1, 1);
        let store2 = TemplateStore::new();
        let par = parse_log(&log, &store2, 8);
        assert_eq!(seq.stats, par.stats);
        assert_eq!(seq.records.len(), par.records.len());
        for (a, b) in seq.records.iter().zip(&par.records) {
            assert_eq!(a.entry_idx, b.entry_idx);
            // Template ids may differ across stores; compare fingerprints.
            assert_eq!(
                store1.get(a.template).fingerprint,
                store2.get(b.template).fingerprint
            );
        }
    }

    #[test]
    fn batch_rows_use_first_select() {
        let log = log(&["INSERT INTO t VALUES (1); SELECT a FROM t WHERE x = 1"]);
        let store = TemplateStore::new();
        let parsed = parse_log(&log, &store, 1);
        assert_eq!(parsed.stats.selects, 1);
        assert_eq!(parsed.records[0].primary_table.as_deref(), Some("t"));
    }

    #[test]
    fn empty_log_is_fine() {
        let store = TemplateStore::new();
        let parsed = parse_log(&QueryLog::new(), &store, 4);
        assert_eq!(parsed.stats.total, 0);
        assert!(parsed.records.is_empty());
    }
}
