//! Pipeline statistics — the fields of the paper's Table 5.

use crate::detect::AntipatternClass;
use crate::parse_step::ParseCacheStats;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-antipattern-class tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassCounts {
    /// Distinct antipatterns (distinct identity keys).
    pub distinct: usize,
    /// Instances detected.
    pub instances: usize,
    /// Queries covered by instances.
    pub queries: usize,
}

/// Wall-clock spent in each pipeline stage, in milliseconds.
///
/// Timings are measurement noise, not results: two runs that clean a log
/// identically will still differ here. Comparisons of pipeline *output*
/// should go through [`Statistics::with_zeroed_timings`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageTimings {
    /// Reading + quarantining the input log. The pipeline never sees
    /// ingestion, so it leaves this zero; the binary that read the log
    /// fills it in (and folds it into `total_ms`).
    pub ingest_ms: u64,
    /// Sorting the input by timestamp (zero when already sorted).
    pub sort_ms: u64,
    /// Duplicate elimination (§5.2).
    pub dedup_ms: u64,
    /// Parsing + template interning (§5.3).
    pub parse_ms: u64,
    /// Session building (Def. 7).
    pub sessions_ms: u64,
    /// Pattern mining (Defs. 8–10).
    pub mine_ms: u64,
    /// Antipattern detection (Defs. 11–16 + extensions).
    pub detect_ms: u64,
    /// Solving / rewriting (§5.5).
    pub solve_ms: u64,
    /// Rendering the statistics report and writing outputs. Filled by the
    /// binary, like `ingest_ms`.
    pub report_ms: u64,
    /// End-to-end time: the pipeline's own wall-clock, plus `ingest_ms`
    /// and `report_ms` once the binary adds them.
    pub total_ms: u64,
}

impl StageTimings {
    /// Sum of the individual stage timings (including ingest/report).
    /// `total_ms` should be ≥ this minus rounding slack; the reconciliation
    /// test in the CLI harness checks it.
    pub fn stage_sum_ms(&self) -> u64 {
        self.ingest_ms
            + self.sort_ms
            + self.dedup_ms
            + self.parse_ms
            + self.sessions_ms
            + self.mine_ms
            + self.detect_ms
            + self.solve_ms
            + self.report_ms
    }
}

/// Run-to-completion accounting: everything the pipeline skipped, rejected
/// or recovered from instead of aborting.
///
/// All-zero on a healthy run. The counts are deterministic for a given
/// input — a poison record panics wherever it lands, so the same records
/// are skipped at every thread count — with one exception:
/// `degraded_shards` counts *shards* that panicked and were recovered, and
/// how work maps to shards depends on the thread count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunHealth {
    /// Input lines skipped at ingestion (lenient mode): malformed plus
    /// invalid-UTF-8. Filled by the caller that read the log — the pipeline
    /// itself never sees quarantined lines.
    pub quarantined_lines: usize,
    /// The subset of `quarantined_lines` that were not valid UTF-8.
    pub invalid_utf8_lines: usize,
    /// Statements rejected by a parser resource guard (depth, length or
    /// token budget) rather than a grammar error. Also included in
    /// [`Statistics::syntax_errors`].
    pub limit_rejected: usize,
    /// Records skipped because processing them panicked (dedup, parse and
    /// session stages).
    pub poison_records: usize,
    /// Sessions skipped because mining or detection panicked on them.
    pub poison_sessions: usize,
    /// Stage shards that panicked and were re-run with per-record (or
    /// per-session) isolation, summed across stages.
    pub degraded_shards: usize,
    /// Prior attempts of this run that were interrupted before completing
    /// (checkpointed runs only: the manifest counts every start, so a run
    /// resumed after two crashes reports 2). Purely informational — an
    /// interrupted-then-resumed run is *not* degraded, so this field does
    /// not affect [`RunHealth::completed_degraded`].
    pub interruptions: usize,
}

impl RunHealth {
    /// True when nothing was skipped, rejected or recovered and the run was
    /// never interrupted.
    pub fn is_clean(&self) -> bool {
        *self == RunHealth::default()
    }

    /// True when the run completed but skipped, rejected or recovered some
    /// work (quarantined lines, limit rejections, poison records/sessions,
    /// degraded shards) — the condition behind `sqlog-clean`'s exit code 2.
    /// Interruptions alone do not count: a resumed run that lost nothing is
    /// a full-fidelity result.
    pub fn completed_degraded(&self) -> bool {
        self.quarantined_lines > 0
            || self.invalid_utf8_lines > 0
            || self.limit_rejected > 0
            || self.poison_records > 0
            || self.poison_sessions > 0
            || self.degraded_shards > 0
    }
}

/// The overall result statistics (Table 5 of the paper).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Statistics {
    /// Size of the original query log.
    pub original_size: usize,
    /// Duplicates removed (§5.2).
    pub duplicates_removed: usize,
    /// Size after deleting duplicates.
    pub after_dedup: usize,
    /// SELECT statements among the deduplicated log.
    pub select_count: usize,
    /// Statements dropped for syntax errors.
    pub syntax_errors: usize,
    /// Non-SELECT statements dropped.
    pub non_select: usize,
    /// Final (clean) log size.
    pub final_size: usize,
    /// Removal-log size (all antipattern queries dropped).
    pub removal_size: usize,
    /// Count of mined patterns (frequency ≥ configured minimum).
    pub pattern_count: usize,
    /// Maximal pattern frequency.
    pub max_pattern_frequency: u64,
    /// Per-class counts, keyed by class label.
    pub per_class: BTreeMap<String, ClassCounts>,
    /// Solvable instances rewritten.
    pub solved_instances: usize,
    /// Queries consumed by rewrites.
    pub solved_queries: usize,
    /// Replacement statements emitted.
    pub rewritten_statements: usize,
    /// Solvable instances skipped due to overlap with earlier instances.
    pub skipped_overlaps: usize,
    /// Per-stage wall-clock timings.
    pub timings: StageTimings,
    /// Parse-cache effectiveness. Like timings, these counters are
    /// measurement detail, not results: the hit/miss split depends on how
    /// statements shard across workers, while the parse *output* does not.
    /// [`Statistics::with_zeroed_timings`] zeroes them too.
    pub parse_cache: ParseCacheStats,
    /// Faults skipped, rejected or recovered during the run.
    pub run_health: RunHealth,
}

impl Statistics {
    /// A copy with timings zeroed — the deterministic part of the result,
    /// suitable for equality checks across thread counts.
    pub fn with_zeroed_timings(&self) -> Statistics {
        Statistics {
            timings: StageTimings::default(),
            parse_cache: ParseCacheStats::default(),
            ..self.clone()
        }
    }

    /// Percentage of the original size.
    pub fn pct_of_original(&self, n: usize) -> f64 {
        if self.original_size == 0 {
            0.0
        } else {
            100.0 * n as f64 / self.original_size as f64
        }
    }

    /// Convenience accessor for one class (zero counts when absent).
    pub fn class(&self, class: &AntipatternClass) -> ClassCounts {
        self.per_class
            .get(class.label())
            .copied()
            .unwrap_or_default()
    }

    /// Share of the deduplicated log covered by solvable-antipattern queries
    /// (the paper reports ≈ 19.2 % for the Stifles).
    pub fn solvable_coverage_pct(&self) -> f64 {
        let solvable: usize = ["DW-Stifle", "DS-Stifle", "DF-Stifle", "SNC"]
            .iter()
            .filter_map(|label| self.per_class.get(*label))
            .map(|c| c.queries)
            .sum();
        if self.select_count == 0 {
            0.0
        } else {
            100.0 * solvable as f64 / self.select_count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentages() {
        let s = Statistics {
            original_size: 200,
            ..Statistics::default()
        };
        assert!((s.pct_of_original(50) - 25.0).abs() < 1e-9);
        let empty = Statistics::default();
        assert_eq!(empty.pct_of_original(10), 0.0);
    }

    #[test]
    fn class_accessor_defaults_to_zero() {
        let s = Statistics::default();
        assert_eq!(s.class(&AntipatternClass::DwStifle).queries, 0);
    }

    #[test]
    fn solvable_coverage() {
        let mut s = Statistics {
            select_count: 1_000,
            ..Statistics::default()
        };
        s.per_class.insert(
            "DW-Stifle".into(),
            ClassCounts {
                distinct: 2,
                instances: 5,
                queries: 150,
            },
        );
        s.per_class.insert(
            "CTH".into(),
            ClassCounts {
                distinct: 1,
                instances: 1,
                queries: 500, // must not count: CTH is unsolvable
            },
        );
        assert!((s.solvable_coverage_pct() - 15.0).abs() < 1e-9);
    }
}
