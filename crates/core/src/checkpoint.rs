//! Crash-safe checkpointed runs: the versioned run directory, per-stage
//! checkpoints, and the resumable driver over the pipeline's stage
//! operators.
//!
//! A **run directory** (`sqlog-clean --run-dir DIR`) holds everything one
//! cleaning run persists:
//!
//! ```text
//! DIR/
//!   MANIFEST.json            run identity: config fingerprint, input hash,
//!                            ingest policy, attempt/interruption counters
//!   checkpoints/<stage>.ckpt one file per completed stage
//!   quarantine.tsv           lenient-mode sidecar (default location)
//! ```
//!
//! Each checkpoint file is written atomically (temp file + fsync + rename,
//! see [`sqlog_log::atomic`]) and carries a header line with the payload's
//! byte length and FNV-1a hash — a torn or tampered write is always
//! detectable, never silently half-loaded. The payload is explicit JSON
//! (the vendored serde is a no-op stand-in), with the ingested/clean/
//! removal logs embedded in their TSV wire form.
//!
//! `sqlog-clean --resume DIR` validates the manifest against the current
//! config and input — refusing with a precise diagnostic on mismatch —
//! loads the longest valid prefix of stage checkpoints, and re-executes
//! only the remaining stages. Because the config fingerprint covers only
//! *semantic* knobs (never thread counts, the parse cache, or the
//! recorder), a run may be resumed at a different parallelism or cache
//! setting and still produce byte-identical output: every stage operator
//! is deterministic over its checkpointed inputs.
//!
//! A corrupted checkpoint is a non-fatal diagnostic: the stage (and
//! everything after it, whose checkpoints are then stale) is simply
//! re-run and re-checkpointed.

use crate::dedup::DedupStats;
use crate::detect::{AntipatternClass, AntipatternInstance};
use crate::fault;
use crate::mine::{MinedPatterns, PatternData, Session, Sessions};
use crate::parse_step::{ParseCacheStats, ParseStats, ParsedLog, ParsedRecord};
use crate::pipeline::{DetectOutput, Pipeline, PipelineResult};
use crate::solve::{SolveOutcome, SolvedRewrite};
use crate::stats::StageTimings;
use crate::store::{TemplateId, TemplateStore};
use sqlog_catalog::Catalog;
use sqlog_log::{read_log, write_log, AtomicFile, IngestPolicy, IngestStats, LogView, QueryLog};
use sqlog_obs::{Json, Recorder, SpanId};
use sqlog_skeleton::{
    Fingerprint, Fnv1a, OutputColumns, PredicateKind, PredicateProfile, QueryTemplate, Theta,
    ValueKind,
};
use sqlog_sql::StatementKind;
use std::collections::HashSet;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Version written into every manifest.
pub const MANIFEST_SCHEMA: u64 = 1;
/// Version written into every checkpoint header.
pub const CHECKPOINT_SCHEMA: u64 = 1;

/// The checkpointable pipeline stages, in execution order.
///
/// `sort` is not a stage of its own: it is a cheap, deterministic
/// permutation whose only consumer is dedup, and the dedup checkpoint
/// stores base-log indices — so a resume past dedup never needs it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Reading (and optionally quarantining) the input log.
    Ingest,
    /// Duplicate elimination (§5.2).
    Dedup,
    /// Parsing + template interning (§5.3).
    Parse,
    /// Per-user session building (Def. 7).
    Sessions,
    /// Pattern mining (Defs. 8–10).
    Mine,
    /// Antipattern detection (Defs. 11–16 + extensions).
    Detect,
    /// Solving / rewriting (§5.5).
    Solve,
}

impl Stage {
    /// All stages in execution order.
    pub const ALL: [Stage; 7] = [
        Stage::Ingest,
        Stage::Dedup,
        Stage::Parse,
        Stage::Sessions,
        Stage::Mine,
        Stage::Detect,
        Stage::Solve,
    ];

    /// The stage's checkpoint-file stem and fault-injection name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Ingest => "ingest",
            Stage::Dedup => "dedup",
            Stage::Parse => "parse",
            Stage::Sessions => "sessions",
            Stage::Mine => "mine",
            Stage::Detect => "detect",
            Stage::Solve => "solve",
        }
    }

    /// Parses a stage name (the inverse of [`Stage::name`]).
    pub fn from_name(name: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| s.name() == name)
    }

    /// The per-stage checkpoint-payload byte counter (recorder counters
    /// are keyed by `&'static str`, hence the explicit map).
    pub fn bytes_counter(self) -> &'static str {
        match self {
            Stage::Ingest => "checkpoint.bytes.ingest",
            Stage::Dedup => "checkpoint.bytes.dedup",
            Stage::Parse => "checkpoint.bytes.parse",
            Stage::Sessions => "checkpoint.bytes.sessions",
            Stage::Mine => "checkpoint.bytes.mine",
            Stage::Detect => "checkpoint.bytes.detect",
            Stage::Solve => "checkpoint.bytes.solve",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The run-identity record at `DIR/MANIFEST.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Manifest format version ([`MANIFEST_SCHEMA`]).
    pub schema: u64,
    /// Fingerprint of the semantic configuration + catalog
    /// ([`config_fingerprint`]). Execution knobs (threads, parse cache)
    /// are deliberately excluded — resuming at a different parallelism is
    /// supported and byte-identical.
    pub config_fingerprint: u64,
    /// Input file length in bytes.
    pub input_bytes: u64,
    /// FNV-1a 64 hash of the input file contents.
    pub input_fnv: u64,
    /// Ingestion policy of the run (`strict` / `lenient`).
    pub ingest_policy: IngestPolicy,
    /// Times this run was started (initial run + every resume).
    pub attempts: u64,
    /// Resumes of an incomplete run — i.e. starts that followed an
    /// interruption. Surfaced as `RunHealth::interruptions`.
    pub interruptions: u64,
    /// Set once the run's final artifacts were written.
    pub completed: bool,
}

fn policy_name(p: IngestPolicy) -> &'static str {
    match p {
        IngestPolicy::Strict => "strict",
        IngestPolicy::Lenient => "lenient",
    }
}

fn policy_from_name(s: &str) -> Option<IngestPolicy> {
    match s {
        "strict" => Some(IngestPolicy::Strict),
        "lenient" => Some(IngestPolicy::Lenient),
        _ => None,
    }
}

impl Manifest {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::U64(self.schema)),
            ("config_fingerprint", Json::U64(self.config_fingerprint)),
            ("input_bytes", Json::U64(self.input_bytes)),
            ("input_fnv", Json::U64(self.input_fnv)),
            (
                "ingest_policy",
                Json::Str(policy_name(self.ingest_policy).to_string()),
            ),
            ("attempts", Json::U64(self.attempts)),
            ("interruptions", Json::U64(self.interruptions)),
            ("completed", Json::Bool(self.completed)),
        ])
    }

    fn from_json(v: &Json) -> Result<Manifest, String> {
        Ok(Manifest {
            schema: get_u64(v, "schema")?,
            config_fingerprint: get_u64(v, "config_fingerprint")?,
            input_bytes: get_u64(v, "input_bytes")?,
            input_fnv: get_u64(v, "input_fnv")?,
            ingest_policy: policy_from_name(get_str(v, "ingest_policy")?)
                .ok_or("manifest: unknown ingest_policy")?,
            attempts: get_u64(v, "attempts")?,
            interruptions: get_u64(v, "interruptions")?,
            completed: get_bool(v, "completed")?,
        })
    }
}

/// A run directory on disk: manifest + checkpoints + sidecars.
#[derive(Debug, Clone)]
pub struct RunDir {
    root: PathBuf,
}

impl RunDir {
    /// Creates (or re-initializes) a run directory for a **fresh** run:
    /// the directory and its `checkpoints/` subdirectory are created, and
    /// any checkpoints or manifest left by a previous run are removed.
    /// Use [`RunDir::open`] to resume instead.
    pub fn create(root: impl AsRef<Path>) -> Result<RunDir, String> {
        let dir = RunDir {
            root: root.as_ref().to_path_buf(),
        };
        std::fs::create_dir_all(dir.checkpoints_dir())
            .map_err(|e| format!("cannot create run directory {}: {e}", dir.root.display()))?;
        // A fresh run must not accidentally resume from stale state.
        let _ = std::fs::remove_file(dir.manifest_path());
        for stage in Stage::ALL {
            let _ = std::fs::remove_file(dir.checkpoint_path(stage));
        }
        Ok(dir)
    }

    /// Opens an existing run directory for `--resume`. Fails when the
    /// directory or its manifest is missing.
    pub fn open(root: impl AsRef<Path>) -> Result<RunDir, String> {
        let dir = RunDir {
            root: root.as_ref().to_path_buf(),
        };
        if !dir.manifest_path().is_file() {
            return Err(format!(
                "{} is not a run directory (no MANIFEST.json) — was it created with --run-dir?",
                dir.root.display()
            ));
        }
        std::fs::create_dir_all(dir.checkpoints_dir())
            .map_err(|e| format!("cannot open run directory {}: {e}", dir.root.display()))?;
        Ok(dir)
    }

    /// The directory root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn manifest_path(&self) -> PathBuf {
        self.root.join("MANIFEST.json")
    }

    fn checkpoints_dir(&self) -> PathBuf {
        self.root.join("checkpoints")
    }

    /// Path of a stage's checkpoint file.
    pub fn checkpoint_path(&self, stage: Stage) -> PathBuf {
        self.checkpoints_dir()
            .join(format!("{}.ckpt", stage.name()))
    }

    /// Default location of the lenient-mode quarantine sidecar.
    pub fn quarantine_path(&self) -> PathBuf {
        self.root.join("quarantine.tsv")
    }

    /// Reads and parses the manifest.
    pub fn load_manifest(&self) -> Result<Manifest, String> {
        let text = std::fs::read_to_string(self.manifest_path())
            .map_err(|e| format!("cannot read {}: {e}", self.manifest_path().display()))?;
        let v = Json::parse(&text).map_err(|e| format!("manifest: {e}"))?;
        Manifest::from_json(&v)
    }

    /// Writes the manifest atomically.
    pub fn store_manifest(&self, m: &Manifest) -> Result<(), String> {
        sqlog_log::atomic_write(self.manifest_path(), m.to_json().render().as_bytes())
            .map_err(|e| format!("cannot write {}: {e}", self.manifest_path().display()))
    }

    /// Marks the run complete (final artifacts written). Called by the
    /// binary after the clean/removal logs and reports landed.
    pub fn mark_completed(&self) -> Result<(), String> {
        let mut m = self.load_manifest()?;
        m.completed = true;
        self.store_manifest(&m)
    }
}

/// How a checkpointed run is driven.
#[derive(Debug, Clone)]
pub struct CheckpointOptions {
    /// The input log file (hashed into the manifest).
    pub input: PathBuf,
    /// Ingestion policy (recorded in the manifest; a resume must match).
    pub policy: IngestPolicy,
    /// Lenient-mode quarantine sidecar destination, written atomically.
    pub quarantine: Option<PathBuf>,
    /// `true` = `--resume`: validate the manifest and load checkpoints.
    /// `false` = fresh run: write a new manifest, checkpoint every stage.
    pub resume: bool,
    /// Stop (successfully) after this stage's checkpoint is on disk —
    /// the hook behind the conformance resumed leg and the in-process
    /// resume tests. `None` runs to completion.
    pub stop_after: Option<Stage>,
}

/// Everything a completed checkpointed run produces.
pub struct CheckpointOutcome {
    /// The pipeline result; `stats.run_health` already carries the
    /// ingestion counts and the interruption tally.
    pub result: PipelineResult,
    /// Ingestion accounting (from the live read or the ingest checkpoint).
    pub ingest_stats: IngestStats,
    /// Stages loaded from checkpoints instead of re-executed.
    pub loaded_stages: Vec<&'static str>,
    /// Non-fatal diagnostics (e.g. a corrupted checkpoint that forced a
    /// stage re-run). Also routed through the recorder as warnings.
    pub warnings: Vec<String>,
}

/// Fingerprint of the **semantic** configuration plus the catalog: every
/// knob that can change pipeline output, and none that cannot.
/// `parallelism`, `parse_threads`, the parse cache and the recorder are
/// excluded by design — the determinism contract says they never change a
/// byte of output, so they must not block a resume.
pub fn config_fingerprint(config: &crate::config::PipelineConfig, catalog: &Catalog) -> u64 {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = write!(
        s,
        "v1;dup={:?};gap={};ngram={};minfreq={};cthgap={};cthla={};key={};addcol={};\
         depth={};bytes={};tokens={};",
        config.duplicate_threshold_ms,
        config.session_gap_ms,
        config.max_ngram,
        config.min_pattern_frequency,
        config.cth_max_gap_ms,
        config.cth_lookahead,
        config.require_key_attribute,
        config.rewrite_adds_filter_column,
        config.max_parse_depth,
        config.max_statement_bytes,
        config.max_parse_tokens,
    );
    let mut tables: Vec<_> = catalog.tables().collect();
    tables.sort_by(|a, b| a.name.cmp(&b.name));
    for t in tables {
        let _ = write!(s, "table={};", t.name);
        for c in &t.columns {
            let _ = write!(s, "col={}:{:?};", c.name, c.ty);
        }
        for k in &t.primary_key {
            let _ = write!(s, "pk={k};");
        }
        for fk in &t.foreign_keys {
            let _ = write!(s, "fk={}->{}.{};", fk.column, fk.ref_table, fk.ref_column);
        }
    }
    Fingerprint::of_str(&s).0
}

/// Streams a file through FNV-1a 64, returning `(length, hash)`.
pub fn hash_file(path: &Path) -> Result<(u64, u64), String> {
    let mut f =
        std::fs::File::open(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut hasher = Fnv1a::new();
    let mut len = 0u64;
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = f
            .read(&mut buf)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        if n == 0 {
            break;
        }
        len += n as u64;
        hasher.update(&buf[..n]);
    }
    Ok((len, hasher.finish().0))
}

// ---------------------------------------------------------------------------
// JSON helpers (the vendored serde is a no-op; serialization is explicit,
// in the style of `run_report`).

fn get_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer {key:?}"))
}

fn get_usize(v: &Json, key: &str) -> Result<usize, String> {
    v.get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| format!("missing or non-integer {key:?}"))
}

fn get_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string {key:?}"))
}

fn get_bool(v: &Json, key: &str) -> Result<bool, String> {
    v.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("missing or non-boolean {key:?}"))
}

fn get_arr<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], String> {
    v.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing or non-array {key:?}"))
}

fn u(v: usize) -> Json {
    Json::U64(v as u64)
}

fn u32s(v: &[Json], what: &str) -> Result<Vec<u32>, String> {
    v.iter()
        .map(|x| {
            x.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| format!("{what}: non-u32 element"))
        })
        .collect()
}

fn usizes(v: &[Json], what: &str) -> Result<Vec<usize>, String> {
    v.iter()
        .map(|x| {
            x.as_usize()
                .ok_or_else(|| format!("{what}: non-integer element"))
        })
        .collect()
}

fn log_to_json(log: &QueryLog) -> Json {
    let mut bytes = Vec::new();
    write_log(log, &mut bytes).expect("serialize log to memory");
    Json::Str(String::from_utf8(bytes).expect("TSV log text is UTF-8"))
}

fn log_from_json(v: &Json, key: &str) -> Result<QueryLog, String> {
    let text = get_str(v, key)?;
    read_log(text.as_bytes()).map_err(|e| format!("{key}: embedded log: {e}"))
}

// --- stage payloads --------------------------------------------------------

fn ingest_to_json(log: &QueryLog, stats: &IngestStats) -> Json {
    Json::obj(vec![
        ("log", log_to_json(log)),
        (
            "stats",
            Json::obj(vec![
                ("lines", u(stats.lines)),
                ("entries", u(stats.entries)),
                ("quarantined", u(stats.quarantined)),
                ("malformed", u(stats.malformed)),
                ("invalid_utf8", u(stats.invalid_utf8)),
            ]),
        ),
    ])
}

fn ingest_from_json(v: &Json) -> Result<(QueryLog, IngestStats), String> {
    let log = log_from_json(v, "log")?;
    let s = v.get("stats").ok_or("missing \"stats\"")?;
    let stats = IngestStats {
        lines: get_usize(s, "lines")?,
        entries: get_usize(s, "entries")?,
        quarantined: get_usize(s, "quarantined")?,
        malformed: get_usize(s, "malformed")?,
        invalid_utf8: get_usize(s, "invalid_utf8")?,
    };
    if stats.entries != log.len() {
        return Err(format!(
            "entry count mismatch: stats say {}, log holds {}",
            stats.entries,
            log.len()
        ));
    }
    Ok((log, stats))
}

fn dedup_to_json(kept: &[u32], stats: &DedupStats) -> Json {
    Json::obj(vec![
        (
            "kept",
            Json::Arr(kept.iter().map(|&i| Json::U64(i as u64)).collect()),
        ),
        (
            "stats",
            Json::obj(vec![
                ("input", u(stats.input)),
                ("removed", u(stats.removed)),
                ("kept", u(stats.kept)),
                ("poison", u(stats.poison)),
                ("degraded_shards", u(stats.degraded_shards)),
            ]),
        ),
    ])
}

fn dedup_from_json(v: &Json, log_len: usize) -> Result<(Vec<u32>, DedupStats), String> {
    let kept = u32s(get_arr(v, "kept")?, "kept")?;
    if let Some(&bad) = kept.iter().find(|&&i| i as usize >= log_len) {
        return Err(format!(
            "kept index {bad} out of bounds for a {log_len}-entry log"
        ));
    }
    let s = v.get("stats").ok_or("missing \"stats\"")?;
    let stats = DedupStats {
        input: get_usize(s, "input")?,
        removed: get_usize(s, "removed")?,
        kept: get_usize(s, "kept")?,
        poison: get_usize(s, "poison")?,
        degraded_shards: get_usize(s, "degraded_shards")?,
    };
    if stats.kept != kept.len() {
        return Err("kept count disagrees with index vector".to_string());
    }
    Ok((kept, stats))
}

fn theta_name(t: Theta) -> &'static str {
    match t {
        Theta::Eq => "eq",
        Theta::NotEq => "ne",
        Theta::Lt => "lt",
        Theta::LtEq => "le",
        Theta::Gt => "gt",
        Theta::GtEq => "ge",
    }
}

fn theta_from_name(s: &str) -> Result<Theta, String> {
    Ok(match s {
        "eq" => Theta::Eq,
        "ne" => Theta::NotEq,
        "lt" => Theta::Lt,
        "le" => Theta::LtEq,
        "gt" => Theta::Gt,
        "ge" => Theta::GtEq,
        other => return Err(format!("unknown theta {other:?}")),
    })
}

fn value_to_json(v: &ValueKind) -> Json {
    let (tag, val) = match v {
        ValueKind::Number(s) => ("num", Some(Json::Str(s.clone()))),
        ValueKind::String(s) => ("str", Some(Json::Str(s.clone()))),
        ValueKind::Null => ("null", None),
        ValueKind::Bool(b) => ("bool", Some(Json::Bool(*b))),
        ValueKind::Variable(s) => ("var", Some(Json::Str(s.clone()))),
        ValueKind::Column(s) => ("col", Some(Json::Str(s.clone()))),
        ValueKind::Complex => ("complex", None),
    };
    let mut pairs = vec![("t", Json::Str(tag.to_string()))];
    if let Some(val) = val {
        pairs.push(("v", val));
    }
    Json::obj(pairs)
}

fn value_from_json(v: &Json) -> Result<ValueKind, String> {
    let sv = |v: &Json| -> Result<String, String> { Ok(get_str(v, "v")?.to_string()) };
    Ok(match get_str(v, "t")? {
        "num" => ValueKind::Number(sv(v)?),
        "str" => ValueKind::String(sv(v)?),
        "null" => ValueKind::Null,
        "bool" => ValueKind::Bool(get_bool(v, "v")?),
        "var" => ValueKind::Variable(sv(v)?),
        "col" => ValueKind::Column(sv(v)?),
        "complex" => ValueKind::Complex,
        other => return Err(format!("unknown value kind {other:?}")),
    })
}

fn predicate_to_json(p: &PredicateKind) -> Json {
    match p {
        PredicateKind::Comparison {
            column,
            theta,
            value,
        } => Json::obj(vec![
            ("t", Json::Str("cmp".into())),
            ("column", Json::Str(column.clone())),
            ("theta", Json::Str(theta_name(*theta).into())),
            ("value", value_to_json(value)),
        ]),
        PredicateKind::Between {
            column,
            low,
            high,
            negated,
        } => Json::obj(vec![
            ("t", Json::Str("between".into())),
            ("column", Json::Str(column.clone())),
            ("low", value_to_json(low)),
            ("high", value_to_json(high)),
            ("negated", Json::Bool(*negated)),
        ]),
        PredicateKind::InList {
            column,
            values,
            negated,
        } => Json::obj(vec![
            ("t", Json::Str("in".into())),
            ("column", Json::Str(column.clone())),
            (
                "values",
                Json::Arr(values.iter().map(value_to_json).collect()),
            ),
            ("negated", Json::Bool(*negated)),
        ]),
        PredicateKind::IsNull { column, negated } => Json::obj(vec![
            ("t", Json::Str("isnull".into())),
            ("column", Json::Str(column.clone())),
            ("negated", Json::Bool(*negated)),
        ]),
        PredicateKind::Like {
            column,
            pattern,
            negated,
        } => Json::obj(vec![
            ("t", Json::Str("like".into())),
            ("column", Json::Str(column.clone())),
            ("pattern", value_to_json(pattern)),
            ("negated", Json::Bool(*negated)),
        ]),
        PredicateKind::Other => Json::obj(vec![("t", Json::Str("other".into()))]),
    }
}

fn predicate_from_json(v: &Json) -> Result<PredicateKind, String> {
    let col = |v: &Json| -> Result<String, String> { Ok(get_str(v, "column")?.to_string()) };
    Ok(match get_str(v, "t")? {
        "cmp" => PredicateKind::Comparison {
            column: col(v)?,
            theta: theta_from_name(get_str(v, "theta")?)?,
            value: value_from_json(v.get("value").ok_or("missing \"value\"")?)?,
        },
        "between" => PredicateKind::Between {
            column: col(v)?,
            low: value_from_json(v.get("low").ok_or("missing \"low\"")?)?,
            high: value_from_json(v.get("high").ok_or("missing \"high\"")?)?,
            negated: get_bool(v, "negated")?,
        },
        "in" => PredicateKind::InList {
            column: col(v)?,
            values: get_arr(v, "values")?
                .iter()
                .map(value_from_json)
                .collect::<Result<_, _>>()?,
            negated: get_bool(v, "negated")?,
        },
        "isnull" => PredicateKind::IsNull {
            column: col(v)?,
            negated: get_bool(v, "negated")?,
        },
        "like" => PredicateKind::Like {
            column: col(v)?,
            pattern: value_from_json(v.get("pattern").ok_or("missing \"pattern\"")?)?,
            negated: get_bool(v, "negated")?,
        },
        "other" => PredicateKind::Other,
        other => return Err(format!("unknown predicate kind {other:?}")),
    })
}

fn template_to_json(t: &QueryTemplate) -> Json {
    Json::obj(vec![
        ("ssc", Json::Str(t.ssc.clone())),
        ("sfc", Json::Str(t.sfc.clone())),
        ("swc", Json::Str(t.swc.clone())),
        ("sc", Json::Str(t.sc.clone())),
        ("fc", Json::Str(t.fc.clone())),
        ("wc", Json::Str(t.wc.clone())),
        ("tail", Json::Str(t.tail.clone())),
        ("full", Json::Str(t.full.clone())),
        ("fingerprint", Json::U64(t.fingerprint.0)),
        ("triple_fingerprint", Json::U64(t.triple_fingerprint.0)),
    ])
}

fn template_from_json(v: &Json) -> Result<QueryTemplate, String> {
    let s = |key: &str| -> Result<String, String> { Ok(get_str(v, key)?.to_string()) };
    Ok(QueryTemplate {
        ssc: s("ssc")?,
        sfc: s("sfc")?,
        swc: s("swc")?,
        sc: s("sc")?,
        fc: s("fc")?,
        wc: s("wc")?,
        tail: s("tail")?,
        full: s("full")?,
        fingerprint: Fingerprint(get_u64(v, "fingerprint")?),
        triple_fingerprint: Fingerprint(get_u64(v, "triple_fingerprint")?),
    })
}

fn kind_name(k: StatementKind) -> &'static str {
    match k {
        StatementKind::Insert => "insert",
        StatementKind::Update => "update",
        StatementKind::Delete => "delete",
        StatementKind::Ddl => "ddl",
        StatementKind::Exec => "exec",
        StatementKind::Other => "other",
    }
}

fn kind_from_name(s: &str) -> Result<StatementKind, String> {
    Ok(match s {
        "insert" => StatementKind::Insert,
        "update" => StatementKind::Update,
        "delete" => StatementKind::Delete,
        "ddl" => StatementKind::Ddl,
        "exec" => StatementKind::Exec,
        "other" => StatementKind::Other,
        other => return Err(format!("unknown statement kind {other:?}")),
    })
}

fn parse_to_json(store: &TemplateStore, parsed: &ParsedLog) -> Json {
    let templates: Vec<Json> = (0..store.len())
        .map(|i| store.with(TemplateId(i as u32), template_to_json))
        .collect();
    let records: Vec<Json> = parsed
        .records
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("entry_idx", Json::U64(r.entry_idx as u64)),
                ("template", Json::U64(r.template.0 as u64)),
                (
                    "profile",
                    Json::Arr(r.profile.conjuncts.iter().map(predicate_to_json).collect()),
                ),
                (
                    "output",
                    Json::obj(vec![
                        ("wildcard", Json::Bool(r.output.wildcard)),
                        (
                            "names",
                            Json::Arr(
                                r.output
                                    .names
                                    .iter()
                                    .map(|n| Json::Str(n.clone()))
                                    .collect(),
                            ),
                        ),
                    ]),
                ),
                (
                    "primary_table",
                    match &r.primary_table {
                        Some(t) => Json::Str(t.clone()),
                        None => Json::Null,
                    },
                ),
            ])
        })
        .collect();
    let mut non_select: Vec<(StatementKind, usize)> = parsed
        .stats
        .non_select
        .iter()
        .map(|(&k, &n)| (k, n))
        .collect();
    non_select.sort_by_key(|(k, _)| kind_name(*k));
    Json::obj(vec![
        ("templates", Json::Arr(templates)),
        ("records", Json::Arr(records)),
        (
            "stats",
            Json::obj(vec![
                ("total", u(parsed.stats.total)),
                ("selects", u(parsed.stats.selects)),
                ("errors", u(parsed.stats.errors)),
                ("limit_exceeded", u(parsed.stats.limit_exceeded)),
                ("poison", u(parsed.stats.poison)),
                ("degraded_shards", u(parsed.stats.degraded_shards)),
                (
                    "non_select",
                    Json::Obj(
                        non_select
                            .into_iter()
                            .map(|(k, n)| (kind_name(k).to_string(), u(n)))
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "cache",
            Json::obj(vec![
                ("enabled", Json::Bool(parsed.cache.enabled)),
                ("hits", Json::U64(parsed.cache.hits)),
                ("misses", Json::U64(parsed.cache.misses)),
                ("fallbacks", Json::U64(parsed.cache.fallbacks)),
                ("crosschecks", Json::U64(parsed.cache.crosschecks)),
            ]),
        ),
    ])
}

fn parse_from_json(
    v: &Json,
    pre_clean_len: usize,
    rec: &Recorder,
) -> Result<(TemplateStore, ParsedLog), String> {
    let store = TemplateStore::with_recorder(rec.clone());
    for (i, tv) in get_arr(v, "templates")?.iter().enumerate() {
        let id = store.intern(template_from_json(tv)?);
        if id != TemplateId(i as u32) {
            return Err(format!(
                "template {i} interned as id {} — duplicate fingerprint in checkpoint",
                id.0
            ));
        }
    }
    let n_templates = store.len();
    let mut records = Vec::new();
    for rv in get_arr(v, "records")? {
        let entry_idx = get_usize(rv, "entry_idx")?;
        if entry_idx >= pre_clean_len {
            return Err(format!(
                "record entry_idx {entry_idx} out of bounds for a {pre_clean_len}-entry log"
            ));
        }
        let template = get_usize(rv, "template")?;
        if template >= n_templates {
            return Err(format!("record template id {template} out of bounds"));
        }
        let output = rv.get("output").ok_or("missing \"output\"")?;
        records.push(ParsedRecord {
            entry_idx: entry_idx as u32,
            template: TemplateId(template as u32),
            profile: PredicateProfile {
                conjuncts: get_arr(rv, "profile")?
                    .iter()
                    .map(predicate_from_json)
                    .collect::<Result<_, _>>()?,
            },
            output: OutputColumns {
                wildcard: get_bool(output, "wildcard")?,
                names: get_arr(output, "names")?
                    .iter()
                    .map(|n| {
                        n.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| "non-string output name".to_string())
                    })
                    .collect::<Result<_, _>>()?,
            },
            primary_table: match rv.get("primary_table") {
                Some(Json::Null) | None => None,
                Some(t) => Some(t.as_str().ok_or("non-string primary_table")?.to_string()),
            },
        });
    }
    let s = v.get("stats").ok_or("missing \"stats\"")?;
    let mut non_select = std::collections::HashMap::new();
    for (k, n) in s
        .get("non_select")
        .and_then(Json::as_obj)
        .ok_or("missing \"non_select\"")?
    {
        non_select.insert(
            kind_from_name(k)?,
            n.as_usize().ok_or("non-integer non_select count")?,
        );
    }
    let c = v.get("cache").ok_or("missing \"cache\"")?;
    Ok((
        store,
        ParsedLog {
            records,
            stats: ParseStats {
                total: get_usize(s, "total")?,
                selects: get_usize(s, "selects")?,
                errors: get_usize(s, "errors")?,
                limit_exceeded: get_usize(s, "limit_exceeded")?,
                poison: get_usize(s, "poison")?,
                degraded_shards: get_usize(s, "degraded_shards")?,
                non_select,
            },
            cache: ParseCacheStats {
                enabled: get_bool(c, "enabled")?,
                hits: get_u64(c, "hits")?,
                misses: get_u64(c, "misses")?,
                fallbacks: get_u64(c, "fallbacks")?,
                crosschecks: get_u64(c, "crosschecks")?,
            },
        },
    ))
}

fn sessions_to_json(sessions: &Sessions) -> Json {
    Json::obj(vec![
        (
            "user_names",
            Json::Arr(
                sessions
                    .user_names
                    .iter()
                    .map(|n| Json::Str(n.clone()))
                    .collect(),
            ),
        ),
        (
            "sessions",
            Json::Arr(
                sessions
                    .sessions
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("user", Json::U64(s.user as u64)),
                            (
                                "records",
                                Json::Arr(s.records.iter().map(|&r| u(r)).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("poison", u(sessions.poison)),
        ("degraded_shards", u(sessions.degraded_shards)),
    ])
}

fn sessions_from_json(v: &Json, n_records: usize) -> Result<Sessions, String> {
    let user_names: Vec<String> = get_arr(v, "user_names")?
        .iter()
        .map(|n| {
            n.as_str()
                .map(str::to_string)
                .ok_or_else(|| "non-string user name".to_string())
        })
        .collect::<Result<_, _>>()?;
    let mut sessions = Vec::new();
    for sv in get_arr(v, "sessions")? {
        let user = get_usize(sv, "user")?;
        if user >= user_names.len() {
            return Err(format!("session user id {user} out of bounds"));
        }
        let records = usizes(get_arr(sv, "records")?, "session records")?;
        if let Some(&bad) = records.iter().find(|&&r| r >= n_records) {
            return Err(format!("session record index {bad} out of bounds"));
        }
        sessions.push(Session {
            user: user as u32,
            records,
        });
    }
    Ok(Sessions {
        sessions,
        user_names,
        poison: get_usize(v, "poison")?,
        degraded_shards: get_usize(v, "degraded_shards")?,
    })
}

fn mine_to_json(mined: &MinedPatterns) -> Json {
    let mut patterns: Vec<(&Vec<TemplateId>, &PatternData)> = mined.patterns.iter().collect();
    patterns.sort_by(|a, b| a.0.cmp(b.0));
    Json::obj(vec![
        (
            "patterns",
            Json::Arr(
                patterns
                    .into_iter()
                    .map(|(key, data)| {
                        let mut users: Vec<u32> = data.users.iter().copied().collect();
                        users.sort_unstable();
                        Json::obj(vec![
                            (
                                "key",
                                Json::Arr(key.iter().map(|t| Json::U64(t.0 as u64)).collect()),
                            ),
                            ("frequency", Json::U64(data.frequency)),
                            (
                                "users",
                                Json::Arr(users.into_iter().map(|u| Json::U64(u as u64)).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("total_queries", Json::U64(mined.total_queries)),
        ("poison_sessions", u(mined.poison_sessions)),
        ("degraded_shards", u(mined.degraded_shards)),
    ])
}

fn mine_from_json(v: &Json) -> Result<MinedPatterns, String> {
    let mut mined = MinedPatterns {
        total_queries: get_u64(v, "total_queries")?,
        poison_sessions: get_usize(v, "poison_sessions")?,
        degraded_shards: get_usize(v, "degraded_shards")?,
        ..MinedPatterns::default()
    };
    for pv in get_arr(v, "patterns")? {
        let key: Vec<TemplateId> = u32s(get_arr(pv, "key")?, "pattern key")?
            .into_iter()
            .map(TemplateId)
            .collect();
        let users: HashSet<u32> = u32s(get_arr(pv, "users")?, "pattern users")?
            .into_iter()
            .collect();
        mined.patterns.insert(
            key,
            PatternData {
                frequency: get_u64(pv, "frequency")?,
                users,
            },
        );
    }
    Ok(mined)
}

fn class_to_json(c: &AntipatternClass) -> Json {
    // Builtin labels and custom names share one namespace; `class_from_json`
    // resolves builtins first, so a custom class must not collide with a
    // builtin label — which `ExtensionRegistry` already guarantees in
    // practice (a custom "DW-Stifle" would be indistinguishable anyway).
    Json::Str(c.label().to_string())
}

fn class_from_json(v: &Json) -> Result<AntipatternClass, String> {
    let label = v.as_str().ok_or("non-string antipattern class")?;
    Ok(match label {
        "DW-Stifle" => AntipatternClass::DwStifle,
        "DS-Stifle" => AntipatternClass::DsStifle,
        "DF-Stifle" => AntipatternClass::DfStifle,
        "CTH" => AntipatternClass::CthCandidate,
        "SNC" => AntipatternClass::Snc,
        other => AntipatternClass::Custom(other.to_string()),
    })
}

fn detect_to_json(detected: &DetectOutput) -> Json {
    Json::obj(vec![
        (
            "instances",
            Json::Arr(
                detected
                    .instances
                    .iter()
                    .map(|inst| {
                        Json::obj(vec![
                            ("class", class_to_json(&inst.class)),
                            (
                                "records",
                                Json::Arr(inst.records.iter().map(|&r| u(r)).collect()),
                            ),
                            (
                                "identity",
                                Json::Arr(
                                    inst.identity
                                        .iter()
                                        .map(|t| Json::U64(t.0 as u64))
                                        .collect(),
                                ),
                            ),
                            (
                                "marker_keys",
                                Json::Arr(
                                    inst.marker_keys
                                        .iter()
                                        .map(|key| {
                                            Json::Arr(
                                                key.iter().map(|t| Json::U64(t.0 as u64)).collect(),
                                            )
                                        })
                                        .collect(),
                                ),
                            ),
                            ("solvable", Json::Bool(inst.solvable)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("poison_sessions", u(detected.poison_sessions)),
        ("degraded_shards", u(detected.degraded_shards)),
    ])
}

fn detect_from_json(v: &Json, n_records: usize) -> Result<DetectOutput, String> {
    let mut instances = Vec::new();
    for iv in get_arr(v, "instances")? {
        let records = usizes(get_arr(iv, "records")?, "instance records")?;
        if let Some(&bad) = records.iter().find(|&&r| r >= n_records) {
            return Err(format!("instance record index {bad} out of bounds"));
        }
        instances.push(AntipatternInstance {
            class: class_from_json(iv.get("class").ok_or("missing \"class\"")?)?,
            records,
            identity: u32s(get_arr(iv, "identity")?, "identity")?
                .into_iter()
                .map(TemplateId)
                .collect(),
            marker_keys: get_arr(iv, "marker_keys")?
                .iter()
                .map(|kv| {
                    kv.as_arr()
                        .ok_or_else(|| "non-array marker key".to_string())
                        .and_then(|a| u32s(a, "marker key"))
                        .map(|ids| ids.into_iter().map(TemplateId).collect())
                })
                .collect::<Result<_, _>>()?,
            solvable: get_bool(iv, "solvable")?,
        });
    }
    Ok(DetectOutput {
        instances,
        poison_sessions: get_usize(v, "poison_sessions")?,
        degraded_shards: get_usize(v, "degraded_shards")?,
    })
}

fn solve_to_json(outcome: &SolveOutcome) -> Json {
    Json::obj(vec![
        ("clean", log_to_json(&outcome.clean_log)),
        ("removal", log_to_json(&outcome.removal_log)),
        ("solved_instances", u(outcome.solved_instances)),
        ("solved_queries", u(outcome.solved_queries)),
        ("rewritten_statements", u(outcome.rewritten_statements)),
        ("skipped_overlaps", u(outcome.skipped_overlaps)),
        (
            "rewrites",
            Json::Arr(
                outcome
                    .rewrites
                    .iter()
                    .map(|rw| {
                        let strs = |v: &[String]| {
                            Json::Arr(v.iter().map(|s| Json::Str(s.clone())).collect())
                        };
                        Json::obj(vec![
                            ("class", class_to_json(&rw.class)),
                            (
                                "entry_ids",
                                Json::Arr(rw.entry_ids.iter().map(|&i| Json::U64(i)).collect()),
                            ),
                            ("original_statements", strs(&rw.original_statements)),
                            ("rewritten_statements", strs(&rw.rewritten_statements)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn solve_from_json(v: &Json) -> Result<SolveOutcome, String> {
    let strings = |v: &Json, key: &str| -> Result<Vec<String>, String> {
        get_arr(v, key)?
            .iter()
            .map(|s| {
                s.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("non-string element in {key:?}"))
            })
            .collect()
    };
    let mut rewrites = Vec::new();
    for rv in get_arr(v, "rewrites")? {
        rewrites.push(SolvedRewrite {
            class: class_from_json(rv.get("class").ok_or("missing \"class\"")?)?,
            entry_ids: get_arr(rv, "entry_ids")?
                .iter()
                .map(|x| x.as_u64().ok_or_else(|| "non-integer entry id".to_string()))
                .collect::<Result<_, _>>()?,
            original_statements: strings(rv, "original_statements")?,
            rewritten_statements: strings(rv, "rewritten_statements")?,
        });
    }
    Ok(SolveOutcome {
        clean_log: log_from_json(v, "clean")?,
        removal_log: log_from_json(v, "removal")?,
        solved_instances: get_usize(v, "solved_instances")?,
        solved_queries: get_usize(v, "solved_queries")?,
        rewritten_statements: get_usize(v, "rewritten_statements")?,
        skipped_overlaps: get_usize(v, "skipped_overlaps")?,
        rewrites,
    })
}

// ---------------------------------------------------------------------------
// Checkpoint file I/O

/// Writes a stage checkpoint atomically: header line (stage, schema,
/// payload length, payload FNV-1a) + payload, via temp file + fsync +
/// rename. The `checkpoint`-stage fault hook fires *between* writing the
/// temp file and the rename — the window where a real crash leaves a torn
/// temp file but an intact (absent or previous) checkpoint.
fn write_checkpoint(
    dir: &RunDir,
    rec: &Recorder,
    stage: Stage,
    payload: &Json,
) -> Result<(), String> {
    let body = payload.render();
    let header = Json::obj(vec![
        ("stage", Json::Str(stage.name().to_string())),
        ("schema", Json::U64(CHECKPOINT_SCHEMA)),
        ("payload_bytes", Json::U64(body.len() as u64)),
        ("payload_fnv", Json::U64(Fingerprint::of_str(&body).0)),
    ])
    .render();
    let total = (header.len() + 1 + body.len()) as u64;
    let t = Instant::now();
    let mut span = rec.span("checkpoint.write");
    span.field("stage", stage.name());
    span.field("bytes", total);
    let path = dir.checkpoint_path(stage);
    let err = |e: std::io::Error| format!("cannot write {}: {e}", path.display());
    let mut f = AtomicFile::create(&path).map_err(err)?;
    f.write_all(header.as_bytes()).map_err(err)?;
    f.write_all(b"\n").map_err(err)?;
    f.write_all(body.as_bytes()).map_err(err)?;
    // Chaos hook: die after the bytes exist but before they become the
    // checkpoint. Marker = stage name.
    fault::trip(&fault::armed("checkpoint"), stage.name());
    f.commit().map_err(err)?;
    rec.counter("checkpoint.writes", 1);
    rec.counter("checkpoint.bytes_written", total);
    rec.counter(stage.bytes_counter(), total);
    rec.histogram("checkpoint.write_us", t.elapsed().as_micros() as u64);
    Ok(())
}

/// Reads and validates a stage checkpoint. `Ok(None)` = not present (the
/// stage was never completed); `Err` = present but unusable (torn write,
/// corruption, schema drift) — the caller reports it and re-runs the stage.
fn read_checkpoint(dir: &RunDir, rec: &Recorder, stage: Stage) -> Result<Option<Json>, String> {
    let path = dir.checkpoint_path(stage);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };
    let t = Instant::now();
    let mut span = rec.span("checkpoint.load");
    span.field("stage", stage.name());
    span.field("bytes", bytes.len() as u64);
    let nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or("truncated checkpoint (no header line)")?;
    let header_text =
        std::str::from_utf8(&bytes[..nl]).map_err(|_| "checkpoint header is not UTF-8")?;
    let header = Json::parse(header_text).map_err(|e| format!("checkpoint header: {e}"))?;
    let schema = get_u64(&header, "schema")?;
    if schema != CHECKPOINT_SCHEMA {
        return Err(format!(
            "unsupported checkpoint schema {schema} (expected {CHECKPOINT_SCHEMA})"
        ));
    }
    let named = get_str(&header, "stage")?;
    if named != stage.name() {
        return Err(format!(
            "checkpoint file names stage {named:?}, expected {:?}",
            stage.name()
        ));
    }
    let body = &bytes[nl + 1..];
    let declared = get_u64(&header, "payload_bytes")?;
    if declared != body.len() as u64 {
        return Err(format!(
            "payload is {} bytes, header declares {declared} (torn write?)",
            body.len()
        ));
    }
    let body_text = std::str::from_utf8(body).map_err(|_| "checkpoint payload is not UTF-8")?;
    let fnv = Fingerprint::of_str(body_text).0;
    let declared_fnv = get_u64(&header, "payload_fnv")?;
    if fnv != declared_fnv {
        return Err(format!(
            "payload hash {fnv:#018x} does not match header {declared_fnv:#018x} (corrupted?)"
        ));
    }
    let payload = Json::parse(body_text).map_err(|e| format!("checkpoint payload: {e}"))?;
    rec.counter("checkpoint.loads", 1);
    rec.histogram("checkpoint.load_us", t.elapsed().as_micros() as u64);
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// The checkpointed driver

/// Bookkeeping shared by every stage of the driver: which stages were
/// loaded, what went wrong non-fatally, and whether the checkpoint chain
/// is still intact (once one stage re-runs, later checkpoints are stale
/// and must not be loaded).
struct Progress<'a> {
    rec: &'a Recorder,
    chain_intact: bool,
    loaded_stages: Vec<&'static str>,
    warnings: Vec<String>,
}

impl Progress<'_> {
    /// Attempts to fetch `stage`'s checkpoint payload. Any failure breaks
    /// the chain: this stage and everything after it re-run.
    fn fetch(&mut self, dir: &RunDir, stage: Stage) -> Option<Json> {
        if !self.chain_intact {
            return None;
        }
        match read_checkpoint(dir, self.rec, stage) {
            Ok(Some(payload)) => Some(payload),
            Ok(None) => {
                self.chain_intact = false;
                None
            }
            Err(e) => {
                self.warn(format!(
                    "checkpoint {}: {e}; re-running the stage",
                    stage.name()
                ));
                self.chain_intact = false;
                None
            }
        }
    }

    /// Records a decoded (= skipped) stage.
    fn skipped(&mut self, stage: Stage) {
        self.rec.counter("resume.skip_stage", 1);
        self.rec.stage_skipped(stage.name());
        self.loaded_stages.push(stage.name());
    }

    /// Reports a decode failure and breaks the chain.
    fn decode_failed(&mut self, stage: Stage, e: String) {
        self.warn(format!(
            "checkpoint {}: {e}; re-running the stage",
            stage.name()
        ));
        self.chain_intact = false;
    }

    fn warn(&mut self, msg: String) {
        eprintln!("warning: {msg}");
        self.rec.warning(msg.clone());
        self.warnings.push(msg);
    }
}

/// Loads a stage from its checkpoint or computes + checkpoints it.
///
/// Not a method — the decode/compute closures need to borrow stage outputs
/// the driver owns, which a `&mut self` method would lock away.
fn stage_step<T>(
    progress: &mut Progress<'_>,
    dir: &RunDir,
    stage: Stage,
    decode: impl FnOnce(&Json) -> Result<T, String>,
    compute: impl FnOnce() -> T,
    encode: impl FnOnce(&T) -> Json,
    stage_ms: &mut u64,
) -> Result<T, String> {
    if let Some(payload) = progress.fetch(dir, stage) {
        match decode(&payload) {
            Ok(v) => {
                progress.skipped(stage);
                return Ok(v);
            }
            Err(e) => progress.decode_failed(stage, e),
        }
    }
    let t = Instant::now();
    let v = compute();
    *stage_ms = t.elapsed().as_millis() as u64;
    write_checkpoint(dir, progress.rec, stage, &encode(&v))?;
    Ok(v)
}

/// Drives the pipeline's stage operators over a run directory: each stage
/// is either loaded from its (validated) checkpoint or executed and
/// checkpointed. Returns `Ok(None)` when [`CheckpointOptions::stop_after`]
/// ended the run early; otherwise the completed [`CheckpointOutcome`].
///
/// Fatal errors (unreadable input, manifest mismatch, unwritable run
/// directory) are `Err`; a corrupted or torn checkpoint is *not* fatal —
/// it is reported and the stage re-runs.
pub fn run_checkpointed(
    pipeline: &Pipeline<'_>,
    dir: &RunDir,
    opts: &CheckpointOptions,
) -> Result<Option<CheckpointOutcome>, String> {
    let t_total = Instant::now();
    let rec = pipeline.config.recorder.clone();
    let cfg_fp = config_fingerprint(&pipeline.config, pipeline.catalog);
    let (input_bytes, input_fnv) = hash_file(&opts.input)?;

    let manifest = if opts.resume {
        let mut m = dir.load_manifest()?;
        if m.schema != MANIFEST_SCHEMA {
            return Err(format!(
                "cannot resume {}: manifest schema {} (this build expects {MANIFEST_SCHEMA})",
                dir.root().display(),
                m.schema
            ));
        }
        if m.config_fingerprint != cfg_fp {
            return Err(format!(
                "cannot resume {}: the run was started with a different configuration \
                 (manifest fingerprint {:#018x}, current {cfg_fp:#018x}); re-run with the \
                 original semantic options and schema, or start fresh with --run-dir",
                dir.root().display(),
                m.config_fingerprint
            ));
        }
        if m.input_bytes != input_bytes || m.input_fnv != input_fnv {
            return Err(format!(
                "cannot resume {}: input {} has changed since the run started \
                 (manifest: {} bytes, fnv {:#018x}; now: {input_bytes} bytes, \
                 fnv {input_fnv:#018x}); resume needs the identical input file",
                dir.root().display(),
                opts.input.display(),
                m.input_bytes,
                m.input_fnv
            ));
        }
        if m.ingest_policy != opts.policy {
            return Err(format!(
                "cannot resume {}: the run used {} ingestion, this invocation asks for {}",
                dir.root().display(),
                policy_name(m.ingest_policy),
                policy_name(opts.policy)
            ));
        }
        m.attempts += 1;
        if !m.completed {
            m.interruptions += 1;
        }
        dir.store_manifest(&m)?;
        m
    } else {
        let m = Manifest {
            schema: MANIFEST_SCHEMA,
            config_fingerprint: cfg_fp,
            input_bytes,
            input_fnv,
            ingest_policy: opts.policy,
            attempts: 1,
            interruptions: 0,
            completed: false,
        };
        dir.store_manifest(&m)?;
        m
    };

    let mut progress = Progress {
        rec: &rec,
        // Only a resume consults checkpoints; a fresh run starts with the
        // chain already broken (RunDir::create cleared them anyway).
        chain_intact: opts.resume,
        loaded_stages: Vec::new(),
        warnings: Vec::new(),
    };
    let mut timings = StageTimings::default();
    let stop = |stage: Stage| opts.stop_after == Some(stage);

    // --- ingest --- (not a `stage_step`: reading the input is fallible,
    // and a failed read must never leave a checkpoint behind)
    let (log, ingest_stats) = {
        let mut loaded = None;
        if let Some(payload) = progress.fetch(dir, Stage::Ingest) {
            match ingest_from_json(&payload) {
                Ok(v) => {
                    progress.skipped(Stage::Ingest);
                    loaded = Some(v);
                }
                Err(e) => progress.decode_failed(Stage::Ingest, e),
            }
        }
        match loaded {
            Some(v) => v,
            None => {
                let t = Instant::now();
                let v = {
                    rec.stage_begin("ingest", 0);
                    let span = rec.span("ingest");
                    ingest_input(opts, pipeline.config.parallelism, &rec, span.id())?
                };
                timings.ingest_ms = t.elapsed().as_millis() as u64;
                write_checkpoint(dir, &rec, Stage::Ingest, &ingest_to_json(&v.0, &v.1))?;
                v
            }
        }
    };
    if stop(Stage::Ingest) {
        return Ok(None);
    }

    // --- dedup (sort is folded in: the checkpoint stores base indices) ---
    let mut dedup_ms = 0u64;
    let (kept, dedup_stats) = stage_step(
        &mut progress,
        dir,
        Stage::Dedup,
        |v| dedup_from_json(v, log.len()),
        || {
            let t = Instant::now();
            let input = pipeline.op_sort(&log);
            timings.sort_ms = t.elapsed().as_millis() as u64;
            let (view, stats) = pipeline.op_dedup(&input);
            let kept: Vec<u32> = (0..view.len()).map(|i| view.base_index(i) as u32).collect();
            (kept, stats)
        },
        |(kept, stats)| dedup_to_json(kept, stats),
        &mut dedup_ms,
    )?;
    timings.dedup_ms = dedup_ms;
    let pre_clean = LogView::from_indices(&log, kept);
    if stop(Stage::Dedup) {
        return Ok(None);
    }

    // --- parse ---
    let mut parse_ms = 0u64;
    let (store, parsed) = stage_step(
        &mut progress,
        dir,
        Stage::Parse,
        |v| parse_from_json(v, pre_clean.len(), &rec),
        || {
            let store = TemplateStore::with_recorder(rec.clone());
            let parsed = pipeline.op_parse(&pre_clean, &store);
            (store, parsed)
        },
        |(store, parsed)| parse_to_json(store, parsed),
        &mut parse_ms,
    )?;
    timings.parse_ms = parse_ms;
    if stop(Stage::Parse) {
        return Ok(None);
    }

    // --- sessions ---
    let mut sessions_ms = 0u64;
    let sessions = stage_step(
        &mut progress,
        dir,
        Stage::Sessions,
        |v| sessions_from_json(v, parsed.records.len()),
        || pipeline.op_sessions(&pre_clean, &parsed.records),
        sessions_to_json,
        &mut sessions_ms,
    )?;
    timings.sessions_ms = sessions_ms;
    if stop(Stage::Sessions) {
        return Ok(None);
    }

    // --- mine ---
    let mut mine_ms = 0u64;
    let mined = stage_step(
        &mut progress,
        dir,
        Stage::Mine,
        mine_from_json,
        || pipeline.op_mine(&sessions, &parsed.records),
        mine_to_json,
        &mut mine_ms,
    )?;
    timings.mine_ms = mine_ms;
    if stop(Stage::Mine) {
        return Ok(None);
    }

    // --- detect ---
    let mut detect_ms = 0u64;
    let detected = stage_step(
        &mut progress,
        dir,
        Stage::Detect,
        |v| detect_from_json(v, parsed.records.len()),
        || pipeline.op_detect(&pre_clean, &parsed.records, &sessions, &store),
        detect_to_json,
        &mut detect_ms,
    )?;
    timings.detect_ms = detect_ms;
    if stop(Stage::Detect) {
        return Ok(None);
    }

    // --- solve ---
    let mut solve_ms = 0u64;
    let outcome = stage_step(
        &mut progress,
        dir,
        Stage::Solve,
        solve_from_json,
        || pipeline.op_solve(&pre_clean, &parsed.records, &sessions, &store, &detected),
        solve_to_json,
        &mut solve_ms,
    )?;
    timings.solve_ms = solve_ms;
    if stop(Stage::Solve) {
        return Ok(None);
    }

    timings.total_ms = t_total.elapsed().as_millis() as u64;
    let mut result = pipeline.assemble(
        log.len(),
        &pre_clean,
        &dedup_stats,
        parsed,
        &sessions,
        mined,
        detected,
        outcome,
        store,
        timings,
    );
    result.stats.run_health.quarantined_lines = ingest_stats.quarantined;
    result.stats.run_health.invalid_utf8_lines = ingest_stats.invalid_utf8;
    result.stats.run_health.interruptions = manifest.interruptions as usize;
    Ok(Some(CheckpointOutcome {
        result,
        ingest_stats,
        loaded_stages: progress.loaded_stages,
        warnings: progress.warnings,
    }))
}

/// Reads the input under the run's ingest policy — segmented and parallel
/// (`threads` segments, 0 = one per core), byte-identical to the sequential
/// reader — streaming quarantined lines into an atomically-written sidecar.
/// The `ingest`-stage fault hook trips on matching statements after the
/// read, inside the stage window.
fn ingest_input(
    opts: &CheckpointOptions,
    threads: usize,
    rec: &Recorder,
    parent: Option<SpanId>,
) -> Result<(QueryLog, IngestStats), String> {
    let mut sidecar = match &opts.quarantine {
        Some(path) => Some(
            AtomicFile::create(path)
                .map_err(|e| format!("cannot create {}: {e}", path.display()))?,
        ),
        None => None,
    };
    let (log, stats) = crate::ingest::ingest_file_traced(
        &opts.input,
        opts.policy,
        threads,
        sidecar.as_mut().map(|w| w as &mut dyn Write),
        rec,
        parent,
    )
    .map_err(|e| format!("cannot read {}: {e}", opts.input.display()))?;
    if let Some(s) = sidecar {
        let path = s.path().to_path_buf();
        s.commit()
            .map_err(|e| format!("cannot write quarantine sidecar {}: {e}", path.display()))?;
    }
    let fault = fault::armed("ingest");
    if fault.is_some() {
        for e in &log.entries {
            fault::trip(&fault, &e.statement);
        }
    }
    Ok((log, stats))
}
