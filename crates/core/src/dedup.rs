//! Step 1 of the pipeline: deleting duplicate queries (§5.2).
//!
//! Duplicates are identical statements (after text normalization — see
//! [`sqlog_skeleton::normalize_sql_text`]) from the same user within a small
//! time window. They are unintended re-submissions — web-form reloads or
//! application errors — and stand for the *same* information need, so they
//! are removed before any analysis. The threshold is configurable and
//! `None` means "unrestricted" (Table 4's last row).

use sqlog_log::{LogEntry, QueryLog};
use sqlog_skeleton::{text_fingerprint, Fingerprint};
use std::collections::HashMap;

/// Outcome statistics of duplicate removal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DedupStats {
    /// Entries examined.
    pub input: usize,
    /// Entries removed as duplicates.
    pub removed: usize,
    /// Entries kept.
    pub kept: usize,
}

/// Removes duplicates, returning the pre-cleaned log and statistics.
///
/// An entry is a duplicate when the same user issued a textually identical
/// statement at most `threshold_ms` earlier — where "earlier" compares
/// against the most recent occurrence, kept *or* removed, so a burst of
/// reloads collapses to its first statement. A large number of removals can
/// indicate an application refactoring, which is why the count is reported
/// (§5.2).
pub fn dedup(log: &QueryLog, threshold_ms: Option<u64>) -> (QueryLog, DedupStats) {
    debug_assert!(log.is_time_sorted(), "dedup requires a time-sorted log");
    let mut last_seen: HashMap<(&str, Fingerprint), i64> = HashMap::new();
    let mut out: Vec<LogEntry> = Vec::with_capacity(log.len());
    let mut removed = 0usize;

    for e in &log.entries {
        let fp = text_fingerprint(&e.statement);
        let key = (e.user_key(), fp);
        let now = e.timestamp.millis();
        let dup = match last_seen.get(&key) {
            Some(&prev) => match threshold_ms {
                Some(t) => (now - prev) as u64 <= t,
                None => true,
            },
            None => false,
        };
        last_seen.insert(key, now);
        if dup {
            removed += 1;
        } else {
            out.push(e.clone());
        }
    }

    let stats = DedupStats {
        input: log.len(),
        removed,
        kept: out.len(),
    };
    (QueryLog::from_entries(out), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlog_log::Timestamp;

    fn entry(id: u64, ms: i64, user: &str, stmt: &str) -> LogEntry {
        LogEntry::minimal(id, stmt, Timestamp::from_millis(ms)).with_user(user)
    }

    #[test]
    fn removes_sub_threshold_repeats() {
        let log = QueryLog::from_entries(vec![
            entry(0, 0, "a", "SELECT 1"),
            entry(1, 500, "a", "SELECT 1"),
            entry(2, 5_000, "a", "SELECT 1"),
        ]);
        let (clean, stats) = dedup(&log, Some(1_000));
        assert_eq!(stats.removed, 1);
        assert_eq!(clean.len(), 2);
        let ids: Vec<_> = clean.entries.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![0, 2]);
    }

    #[test]
    fn chains_collapse_to_the_first() {
        // 0 ─ 900ms ─ 1800ms: each repeat is within 1s of the previous one.
        let log = QueryLog::from_entries(vec![
            entry(0, 0, "a", "SELECT 1"),
            entry(1, 900, "a", "SELECT 1"),
            entry(2, 1_800, "a", "SELECT 1"),
        ]);
        let (clean, stats) = dedup(&log, Some(1_000));
        assert_eq!(stats.removed, 2);
        assert_eq!(clean.len(), 1);
    }

    #[test]
    fn different_users_never_dedup() {
        let log = QueryLog::from_entries(vec![
            entry(0, 0, "a", "SELECT 1"),
            entry(1, 100, "b", "SELECT 1"),
        ]);
        let (_, stats) = dedup(&log, Some(1_000));
        assert_eq!(stats.removed, 0);
    }

    #[test]
    fn unrestricted_threshold_removes_all_repeats() {
        let log = QueryLog::from_entries(vec![
            entry(0, 0, "a", "SELECT 1"),
            entry(1, 86_400_000, "a", "SELECT 1"),
            entry(2, 0, "a", "SELECT 2"),
        ]);
        let mut log = log;
        log.sort_by_time();
        let (clean, stats) = dedup(&log, None);
        assert_eq!(stats.removed, 1);
        assert_eq!(clean.len(), 2);
    }

    #[test]
    fn whitespace_and_case_variants_are_duplicates() {
        let log = QueryLog::from_entries(vec![
            entry(0, 0, "a", "SELECT objid FROM photoprimary WHERE x = 1"),
            entry(1, 300, "a", "select  OBJID\nfrom photoprimary where x = 1"),
        ]);
        let (_, stats) = dedup(&log, Some(1_000));
        assert_eq!(stats.removed, 1);
    }

    #[test]
    fn different_constants_are_not_duplicates() {
        let log = QueryLog::from_entries(vec![
            entry(0, 0, "a", "SELECT a FROM t WHERE x = 1"),
            entry(1, 100, "a", "SELECT a FROM t WHERE x = 2"),
        ]);
        let (_, stats) = dedup(&log, Some(1_000));
        assert_eq!(stats.removed, 0);
    }

    #[test]
    fn higher_threshold_removes_at_least_as_much() {
        // Monotonicity property behind Table 4.
        let mut entries = Vec::new();
        for i in 0..50i64 {
            entries.push(entry(i as u64, i * 700, "a", "SELECT 1"));
            entries.push(entry(100 + i as u64, i * 700 + 350, "a", "SELECT 2"));
        }
        let mut log = QueryLog::from_entries(entries);
        log.sort_by_time();
        let mut prev_removed = 0;
        for t in [0u64, 500, 1_000, 2_000, 5_000] {
            let (_, stats) = dedup(&log, Some(t));
            assert!(stats.removed >= prev_removed, "threshold {t}");
            prev_removed = stats.removed;
        }
        let (_, unrestricted) = dedup(&log, None);
        assert!(unrestricted.removed >= prev_removed);
    }
}
